// Quickstart: define a 2-processor task system with one global and one
// local semaphore, compute the MPCP priority structure and blocking
// bounds, run both schedulability tests, and simulate to cross-check.
//
//   $ ./quickstart
#include <iostream>

#include "analysis/report.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "trace/gantt.h"

using namespace mpcp;

int main() {
  // ---- 1. Describe the workload. -------------------------------------
  // Two processors. "sensor" and "control" share the global semaphore
  // GBUF (a sensor-fusion buffer); "control" and "logger" share the local
  // semaphore LLOG on processor 0.
  TaskSystemBuilder builder(2);
  const ResourceId gbuf = builder.addResource("GBUF");
  const ResourceId llog = builder.addResource("LLOG");

  builder.addTask({.name = "control",
                   .period = 100,
                   .processor = 0,
                   .body = Body{}
                               .compute(10)
                               .section(gbuf, 5)   // read fused sensor data
                               .compute(15)
                               .section(llog, 3)   // append to local log
                               .compute(7)});
  builder.addTask({.name = "logger",
                   .period = 400,
                   .processor = 0,
                   .body = Body{}.compute(20).section(llog, 10).compute(30)});
  builder.addTask({.name = "sensor",
                   .period = 200,
                   .processor = 1,
                   .body = Body{}.compute(30).section(gbuf, 8).compute(12)});
  const TaskSystem sys = std::move(builder).build();

  // ---- 2. Priority structure (Section 4). -----------------------------
  const PriorityTables tables(sys);
  std::cout << "=== Priority ceilings (Table 4-1 style) ===\n"
            << renderCeilingTable(sys, tables) << "\n"
            << "=== gcs execution priorities (Table 4-2 style) ===\n"
            << renderGcsPriorityTable(sys, tables) << "\n";

  // ---- 3. Blocking bounds + schedulability (Section 5.1/5.3). ---------
  const ProtocolAnalysis analysis = analyzeUnder(ProtocolKind::kMpcp, sys);
  std::cout << "=== Schedulability under MPCP ===\n"
            << renderScheduleReport(sys, analysis.report) << "\n";

  // ---- 4. Simulate and cross-check. -----------------------------------
  const SimResult result = simulate(ProtocolKind::kMpcp, sys);
  std::cout << "=== Simulation over " << result.horizon << " ticks ===\n";
  for (const TaskStats& st : result.per_task) {
    const Task& t = sys.task(st.task);
    std::cout << "  " << t.name << ": jobs=" << st.jobs_finished
              << " max-response=" << st.max_response
              << " (bound "
              << analysis.report.tasks[static_cast<std::size_t>(st.task.value())]
                     .response_time
              << ")"
              << " max-blocking=" << st.max_blocked << " (bound "
              << analysis.blocking[static_cast<std::size_t>(st.task.value())]
              << ")"
              << " misses=" << st.deadline_misses << "\n";
  }
  std::cout << "\n=== First 120 ticks ===\n"
            << renderGantt(sys, result, {.end = 120});
  return result.any_deadline_miss ? 1 : 0;
}
