// Serving aperiodic requests with a periodic server inside an MPCP
// system (Section 3.1: "An aperiodic task can be serviced by means of a
// periodic server"). The server is an ordinary periodic task — all of
// the protocol's blocking guarantees apply to it — and the replay layer
// measures aperiodic response times under polling vs deferrable service.
//
//   $ ./aperiodic_server [mean-interarrival] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/aperiodic.h"

using namespace mpcp;

namespace {

void summarize(const char* label, const std::vector<ServedRequest>& served) {
  std::vector<Duration> responses;
  int unfinished = 0;
  for (const ServedRequest& s : served) {
    if (s.completion < 0) {
      ++unfinished;
    } else {
      responses.push_back(s.responseTime());
    }
  }
  std::sort(responses.begin(), responses.end());
  const auto pick = [&](double q) {
    if (responses.empty()) return Duration{0};
    return responses[std::min(responses.size() - 1,
                              static_cast<std::size_t>(
                                  q * static_cast<double>(responses.size())))];
  };
  double mean = 0;
  for (Duration r : responses) mean += static_cast<double>(r);
  if (!responses.empty()) mean /= static_cast<double>(responses.size());
  std::cout << "  " << label << ": served " << responses.size()
            << ", unfinished " << unfinished << ", mean " << mean
            << ", p50 " << pick(0.5) << ", p95 " << pick(0.95) << ", max "
            << (responses.empty() ? 0 : responses.back()) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double mean_interarrival = argc > 1 ? std::atof(argv[1]) : 40.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;

  // Two processors; the server lives on P0 next to a control task that
  // shares a global buffer with a producer on P1.
  TaskSystemBuilder b(2);
  const ResourceId gbuf = b.addResource("GBUF");
  const TaskId server = b.addTask({.name = "server", .period = 50,
                                   .processor = 0,
                                   .body = Body{}.compute(12)});
  b.addTask({.name = "control", .period = 100, .processor = 0,
             .body = Body{}.compute(10).section(gbuf, 5).compute(10)});
  b.addTask({.name = "producer", .period = 80, .processor = 1,
             .body = Body{}.compute(20).section(gbuf, 8).compute(12)});
  const TaskSystem sys = std::move(b).build();

  const ProtocolAnalysis analysis = analyzeUnder(ProtocolKind::kMpcp, sys);
  std::cout << "periodic layer under MPCP: "
            << (analysis.report.rta_all ? "schedulable" : "NOT schedulable")
            << " (server budget 12 / period 50 = 24% bandwidth)\n";

  const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                               {.horizon = 40'000});
  std::cout << "periodic simulation: "
            << (r.any_deadline_miss ? "deadline miss!" : "no misses")
            << " over " << r.horizon << " ticks\n\n";

  Rng rng(seed);
  const auto arrivals = generateAperiodicArrivals(
      mean_interarrival, 2, 10, r.horizon - 1'000, rng);
  std::cout << arrivals.size() << " aperiodic requests (mean interarrival "
            << mean_interarrival << ", work U[2,10]):\n";
  summarize("polling   ",
            replayServer(r, server, arrivals, ServerDiscipline::kPolling));
  summarize("deferrable",
            replayServer(r, server, arrivals, ServerDiscipline::kDeferrable));
  std::cout << "\n(deferrable <= polling per request: bandwidth "
               "preservation; both ride on MPCP-scheduled server windows)\n";
  return 0;
}
