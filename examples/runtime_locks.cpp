// Real-thread demo of the Section 5.4 lock construction: a PriorityMutex
// protecting a shared account table, exercised by worker threads of
// different priorities. Shows direct handoff order and the fast-path /
// slow-path split.
//
//   $ ./runtime_locks [threads] [iterations]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "runtime/priority_mutex.h"

using namespace mpcp::runtime;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 50'000;

  PriorityMutex mutex(WaitMode::kSpin);
  std::int64_t shared_counter = 0;
  std::vector<std::int64_t> per_thread(static_cast<std::size_t>(threads), 0);

  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
        Spinlock::cpuRelax();
      }
      for (int i = 0; i < iters; ++i) {
        mutex.lock(/*priority=*/t);  // thread id doubles as priority
        ++shared_counter;            // the "global shared data structure"
        ++per_thread[static_cast<std::size_t>(t)];
        mutex.unlock();
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const std::int64_t expected =
      static_cast<std::int64_t>(threads) * iters;
  std::cout << "threads=" << threads << " iterations=" << iters << "\n"
            << "counter=" << shared_counter << " (expected " << expected
            << ") -> "
            << (shared_counter == expected ? "mutual exclusion OK"
                                           : "RACE DETECTED")
            << "\n"
            << "elapsed=" << elapsed << "s  ("
            << static_cast<double>(expected) / elapsed / 1e6
            << " M critical sections/s)\n"
            << "contended acquisitions=" << mutex.contendedAcquisitions()
            << "  direct handoffs=" << mutex.handoffs() << "\n";
  return shared_counter == expected ? 0 : 1;
}
