// Reproduces the paper's Example 4 / Figure 5-1: the Example 3 task set
// (3 processors, 7 tasks, 3 local + 2 global semaphores) running under
// the shared-memory protocol. Prints the priority tables (Tables 4-1 and
// 4-2), the event narrative, and the Gantt chart of the first activation
// window, then audits the run against the protocol invariants.
//
//   $ ./paper_example4
#include <iostream>

#include "analysis/report.h"
#include "core/simulate.h"
#include "taskgen/paper_examples.h"
#include "trace/gantt.h"
#include "trace/invariants.h"

using namespace mpcp;

int main() {
  const paper::Example3 ex = paper::makeExample3();

  const PriorityTables tables(ex.sys);
  std::cout << "=== Table 4-1: priority ceilings ===\n"
            << renderCeilingTable(ex.sys, tables) << "\n"
            << "=== Table 4-2: gcs execution priorities ===\n"
            << renderGcsPriorityTable(ex.sys, tables) << "\n";

  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 40});

  std::cout << "=== Figure 5-1: event narrative (first window) ===\n"
            << renderNarrative(ex.sys, r, 0, 20) << "\n"
            << "=== Figure 5-1: Gantt ===\n"
            << renderGantt(ex.sys, r, {.end = 25}) << "\n";

  const InvariantReport rep = checkProtocolInvariants(ex.sys, r);
  if (!rep.ok()) {
    std::cout << "INVARIANT VIOLATIONS:\n";
    for (const std::string& v : rep.violations) std::cout << "  " << v << "\n";
    return 1;
  }
  std::cout << "All protocol invariants hold: gcs's never preempted by\n"
               "non-critical code, handoffs in priority order, mutual\n"
               "exclusion intact.\n";
  return 0;
}
