// Protocol explorer: generate random workloads and compare protocols on
// them — analysis verdicts, blocking bounds, and simulated behaviour.
//
//   $ ./protocol_explorer [seed] [processors] [util-per-proc]
//
// Exit code 0 always; this is an exploration tool, not a test.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "analysis/report.h"
#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "taskgen/generator.h"
#include "trace/invariants.h"

using namespace mpcp;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2026;
  WorkloadParams params;
  params.processors = argc > 2 ? std::atoi(argv[2]) : 4;
  params.tasks_per_processor = 4;
  params.utilization_per_processor = argc > 3 ? std::atof(argv[3]) : 0.45;
  params.global_resources = 3;
  params.cs_max = 30;

  Rng rng(seed);
  const TaskSystem sys = generateWorkload(params, rng);

  std::cout << "seed=" << seed << "  processors=" << params.processors
            << "  tasks=" << sys.tasks().size() << "\n";
  int globals = 0;
  for (const ResourceInfo& r : sys.resources()) {
    globals += r.scope == ResourceScope::kGlobal ? 1 : 0;
  }
  std::cout << "resources: " << sys.resources().size() << " (" << globals
            << " global)\n\n";

  for (const ProtocolKind kind :
       {ProtocolKind::kMpcp, ProtocolKind::kDpcp}) {
    const ProtocolAnalysis analysis = analyzeUnder(kind, sys);
    std::cout << "================ " << toString(kind)
              << " ================\n"
              << renderScheduleReport(sys, analysis.report);
    const SimResult r = simulate(kind, sys, {.horizon_cap = 500'000});
    std::cout << "simulated " << r.horizon << " ticks: "
              << (r.any_deadline_miss ? "deadline miss observed"
                                      : "no deadline misses")
              << "\n";
    const InvariantReport rep = checkMutualExclusion(sys, r);
    std::cout << "mutual exclusion: "
              << (rep.ok() ? "ok" : rep.violations.front()) << "\n\n";
  }

  // Unbounded protocols, for contrast: just simulate.
  for (const ProtocolKind kind : {ProtocolKind::kNone, ProtocolKind::kPip}) {
    const SimResult r = simulate(kind, sys, {.horizon_cap = 500'000});
    Duration worst = 0;
    for (const TaskStats& st : r.per_task) {
      worst = std::max(worst, st.max_blocked);
    }
    std::cout << toString(kind) << ": worst observed blocking " << worst
              << (r.any_deadline_miss ? ", deadline misses" : ", no misses")
              << " (no analytical bound exists)\n";
  }
  return 0;
}
