// Domain scenario: an integrated-modular-avionics-style workload on a
// 3-processor shared-memory box.
//
//   P0 hosts the fast flight-control loop;
//   P1 hosts navigation and sensor fusion;
//   P2 hosts displays, telemetry and maintenance logging.
//
// Globally shared state: the air-data block (ADATA), the actuator command
// table (ACT), and the navigation solution (NAVSOL). Each processor also
// has local scratch structures. The example sizes the critical sections
// from the task bodies, then answers the designer's questions:
//   1. Is the system schedulable under MPCP? Under DPCP?
//   2. Where does the blocking come from (per-factor breakdown)?
//   3. Does a long maintenance job endanger the control loop? (It must
//      not — blocking is a function of critical sections only.)
//
//   $ ./avionics
#include <iostream>

#include "analysis/report.h"
#include "core/analyzer.h"
#include "core/blocking.h"
#include "core/simulate.h"
#include "model/task_system.h"

using namespace mpcp;

namespace {

TaskSystem buildAvionics(Duration maintenance_wcet) {
  TaskSystemBuilder b(3);
  const ResourceId adata = b.addResource("ADATA");
  const ResourceId act = b.addResource("ACT");
  const ResourceId navsol = b.addResource("NAVSOL");
  const ResourceId scratch0 = b.addResource("SCR0");
  const ResourceId scratch2 = b.addResource("SCR2");

  // --- P0: flight control -------------------------------------------
  b.addTask({.name = "fcs_loop", .period = 1'000, .processor = 0,
             .body = Body{}
                         .compute(80)
                         .section(adata, 20)   // read air data
                         .compute(120)
                         .section(act, 25)     // write actuator commands
                         .compute(55)});
  b.addTask({.name = "fcs_monitor", .period = 5'000, .processor = 0,
             .body = Body{}
                         .compute(200)
                         .section(scratch0, 40)
                         .section(act, 30)     // sanity-check commands
                         .compute(230)});

  // --- P1: navigation -------------------------------------------------
  b.addTask({.name = "nav_filter", .period = 2'000, .processor = 1,
             .body = Body{}
                         .compute(150)
                         .section(adata, 30)   // consume air data
                         .compute(200)
                         .section(navsol, 35)  // publish nav solution
                         .compute(85)});
  b.addTask({.name = "gps_ingest", .period = 10'000, .processor = 1,
             .body = Body{}.compute(400).section(navsol, 50).compute(350)});

  // --- P2: displays / telemetry ---------------------------------------
  b.addTask({.name = "display", .period = 4'000, .processor = 2,
             .body = Body{}
                         .compute(300)
                         .section(navsol, 40)  // read nav solution
                         .compute(260)});
  b.addTask({.name = "telemetry", .period = 20'000, .processor = 2,
             .body = Body{}
                         .compute(500)
                         .section(adata, 45)
                         .section(scratch2, 100)
                         .compute(800)});
  b.addTask({.name = "maintenance", .period = 50'000, .processor = 2,
             .body = Body{}
                         .compute(maintenance_wcet)
                         .section(scratch2, 120)
                         .compute(maintenance_wcet)});
  return std::move(b).build();
}

void report(const char* title, const TaskSystem& sys) {
  std::cout << "==================== " << title << " ====================\n";
  for (const ProtocolKind kind : {ProtocolKind::kMpcp, ProtocolKind::kDpcp}) {
    const ProtocolAnalysis analysis = analyzeUnder(kind, sys);
    std::cout << "--- " << toString(kind) << " ---\n"
              << renderScheduleReport(sys, analysis.report);
    const SimResult r = simulate(kind, sys, {.horizon_cap = 2'000'000});
    std::cout << "simulation: "
              << (r.any_deadline_miss ? "DEADLINE MISS" : "no misses")
              << " over " << r.horizon << " ticks\n\n";
  }

  // Per-factor blocking decomposition for the control loop under MPCP.
  const PriorityTables tables(sys);
  const MpcpBlockingAnalysis blocking(sys, tables);
  const BlockingBreakdown& fcs = blocking.blocking(TaskId(0));
  std::cout << "fcs_loop MPCP blocking breakdown (Section 5.1):\n"
            << "  F1 local lower-priority cs:      " << fcs.local_lower_cs
            << "\n  F2 lower-priority gcs in queue:  " << fcs.lower_gcs_queue
            << "\n  F3 higher-priority remote gcs:   "
            << fcs.higher_gcs_remote
            << "\n  F4 blocking-processor gcs:       "
            << fcs.blocking_proc_gcs
            << "\n  F5 lower-priority local gcs:     " << fcs.local_lower_gcs
            << "\n  deferred-execution penalty:      "
            << fcs.deferred_execution << "\n  total B_1:                       "
            << fcs.total() << "\n\n";
}

}  // namespace

int main() {
  report("baseline workload", buildAvionics(2'000));

  // The key MPCP promise: growing the maintenance task's *non-critical*
  // compute must not change anyone's blocking bound.
  const TaskSystem big = buildAvionics(10'000);
  const PriorityTables tables(big);
  const MpcpBlockingAnalysis blocking(big, tables);
  std::cout << "maintenance WCET x5: fcs_loop B_1 is still "
            << blocking.blocking(TaskId(0)).total()
            << " (a function of critical sections only)\n";
  return 0;
}
