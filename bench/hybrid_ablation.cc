// E12 — the conclusion's variation: "the shared memory and message-based
// protocols can be mixed to reduce critical blocking factors and/or
// support nested critical sections."
//
// Scenario built to expose the trade. Each application processor hosts
//   * a *tight* high-priority task (short period, shares a cold resource
//     with the next processor's tight task — ring topology), and
//   * a *heavy* low-priority task with one long section on the hot
//     resource every heavy task shares.
// Policies:
//   pure-shared  — MPCP everywhere: each heavy's hot gcs elevates ON ITS
//                  HOST, preempting the tight task there (factor F5);
//   pure-message — DPCP everywhere: the hot gcs's leave, but the cold
//                  ring (pinned to processor 0's sync duty) funnels every
//                  tight task's section through P0 (D3'/D4' terms);
//   hybrid       — hot message-based on a dedicated spare processor,
//                  cold shared-memory: both pressures removed.
#include <iostream>

#include "bench_util.h"
#include "common/strf.h"
#include "core/hybrid_blocking.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

struct Scenario {
  TaskSystem sys;
  ResourceId hot;
};

Scenario makeScenario(int procs, Duration hot_cs, Rng& rng) {
  constexpr Duration kColdCs = 100;
  TaskSystemBuilder b(procs + 1);  // + dedicated spare
  const ResourceId hot = b.addResource("HOT");
  std::vector<ResourceId> cold;
  for (int c = 0; c < procs; ++c) {
    const ResourceId r = b.addResource(strf("COLD", c));
    // All cold resources funnel through P0 when message-based.
    b.assignSyncProcessor(r, ProcessorId(0));
    cold.push_back(r);
  }
  b.assignSyncProcessor(hot, ProcessorId(procs));

  for (int p = 0; p < procs; ++p) {
    // Tight task: shares cold[p] with processor (p+1) % procs' tight task.
    {
      const Duration period = rng.uniformInt(1500, 4000);
      const Duration wcet = std::max<Duration>(kColdCs + 20, period * 3 / 10);
      Body body;
      body.compute(wcet - kColdCs - 10);
      body.section(cold[static_cast<std::size_t>(p)], kColdCs);
      body.compute(5);
      body.section(cold[static_cast<std::size_t>((p + 1) % procs)], 5);
      TaskSpec spec;
      spec.name = strf("tight", p);
      spec.period = period;
      spec.processor = p;
      spec.body = std::move(body);
      b.addTask(std::move(spec));
    }
    // Heavy task: long hot section.
    {
      const Duration period = rng.uniformInt(15000, 40000);
      const Duration wcet = std::max<Duration>(hot_cs + 20, period * 3 / 10);
      Body body;
      body.compute(wcet - hot_cs - 5);
      body.section(hot, hot_cs);
      body.compute(5);
      TaskSpec spec;
      spec.name = strf("heavy", p);
      spec.period = period;
      spec.processor = p;
      spec.body = std::move(body);
      b.addTask(std::move(spec));
    }
  }
  return Scenario{std::move(b).build(), hot};
}

}  // namespace

int main() {
  constexpr int kSeeds = 30;
  constexpr int kProcs = 4;

  printHeader(
      "hybrid policy: hot resource message-based, cold shared (RTA "
      "acceptance)");
  std::cout << cell("hot cs") << cell("pure-shared") << cell("pure-msg")
            << cell("hybrid") << "\n";
  for (Duration hot_cs : {100, 300, 600, 1000, 1500}) {
    int shared_ok = 0, msg_ok = 0, hybrid_ok = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(11000 + static_cast<std::uint64_t>(s));
      const Scenario sc = makeScenario(kProcs, hot_cs, rng);
      shared_ok += analyzeHybrid(sc.sys, HybridPolicy::allShared(sc.sys))
                       .report.rta_all;
      msg_ok += analyzeHybrid(sc.sys, HybridPolicy::allMessage(sc.sys))
                    .report.rta_all;
      HybridPolicy mix = HybridPolicy::allShared(sc.sys);
      mix.set(sc.hot, GlobalPolicy::kMessageBased);
      hybrid_ok += analyzeHybrid(sc.sys, mix).report.rta_all;
    }
    std::cout << cell(static_cast<std::int64_t>(hot_cs))
              << cell(static_cast<double>(shared_ok) / kSeeds)
              << cell(static_cast<double>(msg_ok) / kSeeds)
              << cell(static_cast<double>(hybrid_ok) / kSeeds) << "\n";
  }

  printHeader("tight tasks' mean blocking decomposition (hot cs = 1000)");
  {
    double f5_sh = 0, b_sh = 0, b_msg = 0, b_hyb = 0, d_msg = 0;
    std::int64_t tights = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(11000 + static_cast<std::uint64_t>(s));
      const Scenario sc = makeScenario(kProcs, 1000, rng);
      const PriorityTables tables(sc.sys);
      const auto shared =
          hybridBlocking(sc.sys, tables, HybridPolicy::allShared(sc.sys));
      const auto message =
          hybridBlocking(sc.sys, tables, HybridPolicy::allMessage(sc.sys));
      HybridPolicy mix = HybridPolicy::allShared(sc.sys);
      mix.set(sc.hot, GlobalPolicy::kMessageBased);
      const auto hybrid = hybridBlocking(sc.sys, tables, mix);
      for (const Task& t : sc.sys.tasks()) {
        if (t.name.rfind("tight", 0) != 0) continue;
        const std::size_t i = static_cast<std::size_t>(t.id.value());
        f5_sh += static_cast<double>(shared[i].local_lower_gcs);
        b_sh += static_cast<double>(shared[i].total());
        b_msg += static_cast<double>(message[i].total());
        d_msg += static_cast<double>(message[i].agent_interference +
                                     message[i].host_agent_load);
        b_hyb += static_cast<double>(hybrid[i].total());
        ++tights;
      }
    }
    const double n = static_cast<double>(tights);
    std::cout << "  pure-shared: B = " << b_sh / n << " (F5 share "
              << f5_sh / n << ")\n"
              << "  pure-msg:    B = " << b_msg / n
              << " (agent D3'+D4' share " << d_msg / n << ")\n"
              << "  hybrid:      B = " << b_hyb / n << "\n";
  }

  std::cout << "\nexpected shape: pure-shared collapses as the hot section\n"
               "grows (F5 elevates it on every application processor);\n"
               "pure-message carries a constant cold-funnelling penalty;\n"
               "the hybrid tracks the best of both — the mixing benefit\n"
               "the paper's conclusion anticipates.\n";
  return 0;
}
