// E17 — suspension vs spin: schedulability shoot-out.
//
// The paper's protocols suspend blocked jobs (MPCP/DPCP); the spin zoo
// busy-waits non-preemptively (spin-fifo = MSRP-style FIFO, spin-prio =
// priority-ordered). Spinning wastes the blocked processor but kills the
// suspension-induced factors (no deferred-execution penalty, no
// back-to-back gcs preemption), so the crossover is the interesting
// artifact: short critical sections favor spinning, long ones favor
// suspension — and priority-ordered spinning pays a starvation-shaped
// fixpoint penalty for low-priority tasks over FIFO.
//
// Sweeps RTA-schedulable fraction over utilization, critical-section
// length and processor count for {mpcp, dpcp, hybrid, spin-fifo,
// spin-prio}, checks acceptance soundness by simulating every accepted
// system, prints the tables, writes shootout.csv (one row per sweep
// point x protocol) and BENCH_spin_shootout.json.
//
// MPCP_BENCH_QUICK=1 shrinks seeds/points (ctest and the CI perf job);
// MPCP_BENCH_DIR redirects the CSV and JSON outputs.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/protocol_registry.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

const std::vector<ProtocolKind> kContenders = {
    ProtocolKind::kMpcp, ProtocolKind::kDpcp, ProtocolKind::kHybrid,
    ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio};

WorkloadParams baseParams() {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.9;
  p.cs_max = 10;  // short sections: spinning's home turf
  return p;
}

std::string outPath(const std::string& file) {
  const char* dir = std::getenv("MPCP_BENCH_DIR");
  return dir != nullptr ? std::string(dir) + "/" + file : file;
}

}  // namespace

int main() {
  const bool quick = std::getenv("MPCP_BENCH_QUICK") != nullptr;
  const int seeds = quick ? 10 : 40;
  WallTimer total;

  std::ostringstream csv;
  csv << "sweep,x,protocol,accepted_rta,accepted_ll,miss_given_accept\n";
  double worst_miss_given_accept = 0;

  const auto sweepPoint = [&](const std::string& sweep, double x,
                              const WorkloadParams& p,
                              std::uint64_t seed_base) {
    std::cout << cell(x, 12, 2);
    for (const ProtocolKind kind : kContenders) {
      const AcceptanceResult r =
          acceptanceSweep(kind, p, seeds, seed_base, /*simulate_accepted=*/true);
      std::cout << cell(r.accepted_rta);
      csv << sweep << ',' << x << ',' << toString(kind) << ','
          << r.accepted_rta << ',' << r.accepted_ll << ','
          << r.sim_miss_given_accept << "\n";
      worst_miss_given_accept =
          std::max(worst_miss_given_accept, r.sim_miss_given_accept);
    }
    std::cout << "\n";
  };

  const auto tableHeader = [] {
    std::cout << cell("x");
    for (const ProtocolKind kind : kContenders) std::cout << cell(toString(kind));
    std::cout << "\n";
  };

  printHeader("RTA-schedulable fraction vs per-processor utilization");
  tableHeader();
  for (double util : quick ? std::vector<double>{0.5, 0.7}
                           : std::vector<double>{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = util;
    sweepPoint("utilization", util, p, 1500);
  }

  printHeader("RTA-schedulable fraction vs critical-section length");
  tableHeader();
  for (Duration cs : quick ? std::vector<Duration>{5, 160}
                           : std::vector<Duration>{2, 5, 15, 40, 80, 160}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = 0.45;
    p.cs_max = cs;
    sweepPoint("cs_max", static_cast<double>(cs), p, 1600);
  }

  printHeader("RTA-schedulable fraction vs processor count");
  tableHeader();
  for (int procs : quick ? std::vector<int>{2, 4}
                         : std::vector<int>{2, 4, 8, 12}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = 0.45;
    p.processors = procs;
    sweepPoint("processors", procs, p, 1700);
  }

  printHeader("suspension-heavy workloads (spin inflation vs deferral)");
  tableHeader();
  for (double sp : quick ? std::vector<double>{0.5}
                         : std::vector<double>{0.0, 0.3, 0.6}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = 0.4;
    p.suspension_prob = sp;
    p.suspend_max = 10;
    sweepPoint("suspension_prob", sp, p, 1800);
  }

  std::cout << "\nexpected shape: the spin protocols lead at short\n"
               "critical sections (blocking = spin <= one remote section\n"
               "per processor, no deferred-execution charge) and fall\n"
               "behind the suspension protocols as sections lengthen —\n"
               "spin inflation then burns processor capacity that MPCP\n"
               "returns to lower-priority tasks. spin-prio trails\n"
               "spin-fifo when low-priority tasks face the starvation\n"
               "fixpoint.\n";

  // Acceptance soundness: an analysis-accepted system missing a deadline
  // in simulation is a bug in the blocking bounds, not a trend.
  std::cout << "\nmiss-after-accept (must be 0): " << worst_miss_given_accept
            << "\n";

  const std::string csv_path = outPath("shootout.csv");
  {
    std::ofstream out(csv_path);
    out << csv.str();
    if (!out) {
      std::cerr << "warning: could not write " << csv_path << "\n";
    } else {
      std::cout << "wrote " << csv_path << "\n";
    }
  }

  BenchJson json("spin_shootout");
  json.set("seeds_per_point", seeds);
  json.set("quick", quick);
  json.set("miss_given_accept_worst", worst_miss_given_accept);
  json.set("threads", exp::SweepRunner::global().threadCount());
  json.set("wall_s", total.seconds());
  json.write();
  return worst_miss_given_accept > 0 ? 1 : 0;
}
