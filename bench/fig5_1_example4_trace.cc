// E5 — Figure 5-1 / Example 4: full event trace of the Example 3 task
// set under the shared-memory protocol, audited for every characteristic
// the paper lists at the end of Section 5:
//
//   (a) local semaphores are managed by the uniprocessor PCP;
//   (b) any gcs executes at higher priority than all non-gcs code;
//   (c) a gcs can preempt another gcs of lower gcs priority;
//   (d) jobs suspended on a semaphore are signalled in priority order;
//   (e) while a job is suspended on a global semaphore, a lower-priority
//       job can execute on its processor.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/report.h"
#include "core/simulate.h"
#include "taskgen/paper_examples.h"
#include "trace/gantt.h"
#include "trace/invariants.h"
#include "trace/perfetto.h"

using namespace mpcp;

int main() {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 40});

  // Interactive companion to the ASCII Gantt: the same run as a Perfetto
  // trace, dropped next to the BENCH_*.json files ($MPCP_BENCH_DIR if
  // set) so CI can upload it as an artifact.
  {
    const char* dir = std::getenv("MPCP_BENCH_DIR");
    const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                             "paper_example4.perfetto.json";
    std::ofstream out(path);
    writePerfettoTrace(out, ex.sys, r);
    if (out) {
      std::cout << "wrote " << path << " (load in ui.perfetto.dev)\n";
    } else {
      std::cerr << "warning: could not write " << path << "\n";
    }
  }

  std::cout << "### Figure 5-1: Gantt of the first activation window\n"
            << renderGantt(ex.sys, r, {.end = 25}) << "\n"
            << "### Event narrative\n"
            << renderNarrative(ex.sys, r, 0, 16);

  // ---- audit the five characteristics ----
  bool ok = true;
  const auto check = [&](const char* what, bool value) {
    std::cout << (value ? "  [ok]  " : "  [FAIL]") << what << "\n";
    ok &= value;
  };

  std::cout << "\n### Characteristics (end of Section 5)\n";
  // (b) Theorem 2 audit over the whole trace.
  check("gcs never preempted by non-critical code (Theorem 2)",
        checkGcsPreemptionRule(ex.sys, r).ok());
  // (d) priority-ordered signalling.
  check("waiters signalled in priority order (rule 7)",
        checkPriorityOrderedHandoff(ex.sys, r).ok());
  // mutual exclusion, always.
  check("mutual exclusion on every semaphore",
        checkMutualExclusion(ex.sys, r).ok());

  // (c) gcs preempted by higher-priority gcs at least once in the window.
  bool gcs_preempted_gcs = false;
  for (const TraceEvent& e : r.trace) {
    if (e.kind != Ev::kPreempt) continue;
    // find whether both jobs were inside gcs's: approximate via segments.
    for (const ExecSegment& s1 : r.segments) {
      if (s1.job == e.job && s1.mode == ExecMode::kGcs && s1.end == e.t) {
        for (const ExecSegment& s2 : r.segments) {
          if (s2.job == e.other && s2.mode == ExecMode::kGcs &&
              s2.begin == e.t && s2.processor == s1.processor) {
            gcs_preempted_gcs = true;
          }
        }
      }
    }
  }
  check("a gcs preempted a lower-priority gcs somewhere in the run",
        gcs_preempted_gcs);

  // (e) someone executed while a local higher-priority job was suspended.
  bool lower_ran_during_suspension = false;
  for (const TraceEvent& w : r.trace) {
    if (w.kind != Ev::kLockWait || !ex.sys.isGlobal(w.resource)) continue;
    // find the matching grant
    Time granted = r.horizon;
    for (const TraceEvent& g : r.trace) {
      if (g.kind == Ev::kLockGrant && g.job == w.job &&
          g.resource == w.resource && g.t >= w.t) {
        granted = g.t;
        break;
      }
    }
    for (const ExecSegment& s : r.segments) {
      if (s.processor == w.processor && !(s.job == w.job) &&
          s.begin < granted && s.end > w.t &&
          ex.sys.task(s.job.task).priority <
              ex.sys.task(w.job.task).priority) {
        lower_ran_during_suspension = true;
      }
    }
  }
  check("lower-priority job ran while a higher one was suspended",
        lower_ran_during_suspension);

  // (a) local semaphores saw PCP action: at least one local lock-wait
  // followed by inheritance.
  bool local_pcp_active = false;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == Ev::kLockWait && !ex.sys.isGlobal(e.resource)) {
      local_pcp_active = true;
    }
  }
  std::cout << "  [info] local PCP blocking occurred in window: "
            << (local_pcp_active ? "yes" : "no (releases did not collide)")
            << "\n";

  std::cout << "\n### Runtime counters\n"
            << renderCountersReport(ex.sys, r.counters);

  std::cout << "\ndeadline misses: " << (r.any_deadline_miss ? "YES" : "none")
            << "\n";
  return ok && !r.any_deadline_miss ? 0 : 1;
}
