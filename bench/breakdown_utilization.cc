// E13 — breakdown utilization: the largest execution-demand scaling each
// protocol's analysis tolerates, making Section 5.2's comparison
// quantitative on a single axis. Also validates the metric against the
// simulator: at the breakdown factor the system still simulates
// miss-free; well beyond it, misses appear.
#include <iostream>

#include "analysis/breakdown.h"
#include "bench_util.h"
#include "taskgen/scale.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

WorkloadParams baseParams() {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.25;  // breakdown scales it up from here
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.8;
  p.cs_max = 20;
  return p;
}

ScheduleTest testFor(ProtocolKind kind) {
  return [kind](const TaskSystem& sys) {
    return analyzeUnder(kind, sys).report.rta_all;
  };
}

}  // namespace

int main() {
  constexpr int kSeeds = 25;
  WallTimer total;

  printHeader("mean breakdown utilization per processor (RTA)");
  std::cout << cell("cs_max") << cell("mpcp") << cell("dpcp")
            << cell("no-blocking") << "\n";
  for (Duration cs : {5, 20, 60, 120}) {
    // Each seed runs three binary searches; independent across seeds, so
    // fan them over the SweepRunner and fold the rows in seed order.
    struct Row {
      double mpcp = 0, dpcp = 0, free = 0;
    };
    const std::vector<Row> rows = exp::SweepRunner::global().map(
        kSeeds, 13'000, [&](int /*s*/, Rng& rng) {
          WorkloadParams p = baseParams();
          p.cs_max = cs;
          const TaskSystem sys = generateWorkload(p, rng);
          const double procs = sys.processorCount();
          Row row;
          row.mpcp = breakdownUtilization(sys, testFor(ProtocolKind::kMpcp))
                         .utilization /
                     procs;
          row.dpcp = breakdownUtilization(sys, testFor(ProtocolKind::kDpcp))
                         .utilization /
                     procs;
          // Upper reference: same RTA with B_i = 0 (blocking ignored).
          row.free =
              breakdownUtilization(sys, [](const TaskSystem& scaled) {
                const std::vector<Duration> zero(scaled.tasks().size(), 0);
                return analyzeSchedulability(scaled, zero).rta_all;
              }).utilization /
              procs;
          return row;
        });
    double mpcp_u = 0, dpcp_u = 0, free_u = 0;
    for (const Row& row : rows) {
      mpcp_u += row.mpcp;
      dpcp_u += row.dpcp;
      free_u += row.free;
    }
    std::cout << cell(static_cast<std::int64_t>(cs))
              << cell(mpcp_u / kSeeds) << cell(dpcp_u / kSeeds)
              << cell(free_u / kSeeds) << "\n";
  }
  std::cout << "\nexpected shape: no-blocking is the ceiling; MPCP >= DPCP\n"
               "throughout; the gap to the ceiling is the schedulability\n"
               "cost of synchronization and widens with section length.\n";

  printHeader("metric sanity: simulate at and beyond the breakdown point");
  struct SanityRow {
    bool ran = false;
    bool ok = false;
  };
  const std::vector<SanityRow> sanity = exp::SweepRunner::global().map(
      10, 13'500, [&](int /*s*/, Rng& rng) {
        SanityRow row;
        const TaskSystem sys = generateWorkload(baseParams(), rng);
        const BreakdownResult br =
            breakdownUtilization(sys, testFor(ProtocolKind::kMpcp));
        if (br.factor <= 0) return row;
        const TaskSystem at = scaleWorkload(sys, br.factor);
        const SimResult r = simulate(ProtocolKind::kMpcp, at,
                                     {.horizon_cap = 300'000,
                                      .record_trace = false});
        row.ran = true;
        row.ok = !r.any_deadline_miss;
        return row;
      });
  int ok_at = 0, runs = 0;
  for (const SanityRow& row : sanity) {
    if (!row.ran) continue;
    ++runs;
    ok_at += row.ok ? 1 : 0;
  }
  std::cout << "miss-free at the breakdown factor: " << ok_at << "/" << runs
            << " (must be all)\n";

  BenchJson json("breakdown_utilization");
  json.set("threads", exp::SweepRunner::global().threadCount());
  json.set("wall_s", total.seconds());
  json.write();
  return ok_at == runs ? 0 : 1;
}
