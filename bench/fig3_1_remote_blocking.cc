// E1 — Figure 3-1 / Example 1: remote blocking under plain semaphores
// grows with the *medium* task's non-critical execution; priority
// inheritance (and MPCP) bound it by critical-section length.
//
// Paper claim: "the blocking time of J1 will continue until J2 and any
// other intermediate priority jobs on P2 complete execution" (no
// inheritance), vs. bounded blocking with inheritance.
#include <iostream>

#include "bench_util.h"
#include "core/simulate.h"
#include "taskgen/paper_examples.h"
#include "test_support.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  printHeader("Figure 3-1: tau1's worst blocking vs medium-task WCET");
  std::cout << cell("medium WCET") << cell("none") << cell("pip")
            << cell("mpcp") << "\n";
  for (Duration w : {5, 10, 20, 40, 80, 160}) {
    std::cout << cell(w);
    for (const ProtocolKind kind :
         {ProtocolKind::kNone, ProtocolKind::kPip, ProtocolKind::kMpcp}) {
      const paper::Example1 ex = paper::makeExample1(w);
      const SimResult r = simulate(kind, ex.sys, {.horizon = 1200});
      std::cout << cell(maxBlockedOfTask(r, ex.tau1));
    }
    std::cout << "\n";
  }
  std::cout << "\nexpected shape: 'none' grows ~linearly with the medium\n"
               "WCET (unbounded priority inversion); 'pip' and 'mpcp' are\n"
               "flat (bounded by tau3's 4-tick critical section).\n";
  return 0;
}
