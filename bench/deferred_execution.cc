// E11 — Section 5.1's closing remark: the deferred-execution penalty.
//
// A job that suspends on global semaphores releases its remaining
// computation "compressed"; a lower-priority local task can then suffer
// one extra preemption per period. We quantify:
//   * the penalty's magnitude in B_i as suspension opportunities (NG)
//     grow;
//   * its schedulability cost (acceptance with vs without the penalty);
//   * its necessity: a concrete two-task scenario where the analysis
//     WITHOUT the penalty accepts but the simulation misses a deadline —
//     i.e. dropping the term is unsound, which is why the paper includes
//     it.
#include <iostream>

#include "analysis/schedulability.h"
#include "core/blocking.h"
#include "bench_util.h"
#include "test_support.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  constexpr int kSeeds = 30;

  printHeader("deferred-execution share of B_i vs gcs count");
  std::cout << cell("max NG") << cell("B w/o defer") << cell("B with")
            << cell("defer share") << "\n";
  for (int ng : {1, 2, 4, 8}) {
    WorkloadParams p;
    p.processors = 4;
    p.tasks_per_processor = 3;
    p.utilization_per_processor = 0.4;
    p.global_resources = 2;
    p.max_gcs_per_task = ng;
    p.global_sharing_prob = 1.0;
    p.cs_max = 15;
    double without = 0, with = 0;
    std::int64_t tasks = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(8000 + static_cast<std::uint64_t>(s));
      const TaskSystem sys = generateWorkload(p, rng);
      const AnalyzerOptions no_def{
          .mpcp = {.include_deferred_execution = false}};
      const ProtocolAnalysis a0 =
          analyzeUnder(ProtocolKind::kMpcp, sys, no_def);
      const ProtocolAnalysis a1 = analyzeUnder(ProtocolKind::kMpcp, sys);
      for (std::size_t i = 0; i < a0.blocking.size(); ++i) {
        without += static_cast<double>(a0.blocking[i]);
        with += static_cast<double>(a1.blocking[i]);
        ++tasks;
      }
    }
    std::cout << cell(static_cast<std::int64_t>(ng))
              << cell(without / static_cast<double>(tasks), 12, 0)
              << cell(with / static_cast<double>(tasks), 12, 0)
              << cell((with - without) / with, 12, 2) << "\n";
  }

  printHeader("acceptance cost of the penalty");
  std::cout << cell("util") << cell("with defer") << cell("w/o defer")
            << "\n";
  for (double util : {0.4, 0.5, 0.6, 0.7}) {
    WorkloadParams p;
    p.processors = 4;
    p.tasks_per_processor = 3;
    p.utilization_per_processor = util;
    p.global_resources = 2;
    p.cs_max = 15;
    int with = 0, without = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(8200 + static_cast<std::uint64_t>(s));
      const TaskSystem sys = generateWorkload(p, rng);
      with += analyzeUnder(ProtocolKind::kMpcp, sys).report.rta_all;
      const AnalyzerOptions no_def{
          .mpcp = {.include_deferred_execution = false}};
      without +=
          analyzeUnder(ProtocolKind::kMpcp, sys, no_def).report.rta_all;
    }
    std::cout << cell(util, 12, 2)
              << cell(static_cast<double>(with) / kSeeds)
              << cell(static_cast<double>(without) / kSeeds) << "\n";
  }

  printHeader(
      "necessity: a suspension-oblivious analysis wrongly accepts");
  // The classic back-to-back anomaly. hi (P0, T=10, C=2) suspends for up
  // to 9 ticks on remote G: its job-1 execution is deferred to the end of
  // its period and lands immediately before job 2, so lo sees TWO hi
  // bursts inside one ceil(W/T)=1 window. A deferral-oblivious RTA
  // (jitter = 0, no penalty) accepts lo at D=7; the simulation misses.
  // Our analysis carries hi's suspension bound as release jitter and
  // (for Theorem 3) the C_j penalty, and correctly rejects.
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "hi", .period = 10, .processor = 0,
             .body = Body{}.compute(1).section(g, 1)});
  b.addTask({.name = "lo", .period = 20, .phase = 8,
             .relative_deadline = 7, .processor = 0,
             .body = Body{}.compute(5)});
  b.addTask({.name = "rem", .period = 40, .processor = 1,
             .body = Body{}.section(g, 9).compute(1)});
  const TaskSystem sys = std::move(b).build();

  // Deferral-oblivious: MPCP blocking without the penalty, zero jitter.
  const PriorityTables tables(sys);
  const MpcpBlockingAnalysis oblivious_blocking(
      sys, tables, {.include_deferred_execution = false});
  std::vector<Duration> b0;
  for (const BlockingBreakdown& bb : oblivious_blocking.all()) {
    b0.push_back(bb.total());
  }
  const SchedulabilityReport oblivious = analyzeSchedulability(sys, b0);
  const ProtocolAnalysis full = analyzeUnder(ProtocolKind::kMpcp, sys);
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 80});

  const std::size_t lo_idx = 1;
  std::cout << "deferral-oblivious RTA on lo: "
            << (oblivious.tasks[lo_idx].rta_ok ? "ACCEPTS (R="
                                               : "rejects (R=")
            << oblivious.tasks[lo_idx].response_time << ", D=7)\n"
            << "full analysis (jitter + penalty) on lo: "
            << (full.report.tasks[lo_idx].rta_ok ? "accepts (R="
                                                 : "REJECTS (R=")
            << full.report.tasks[lo_idx].response_time << ")\n"
            << "simulation: "
            << (r.any_deadline_miss ? "deadline MISS observed" : "no miss")
            << "\n";
  const bool demonstrates = oblivious.tasks[lo_idx].rta_ok &&
                            !full.report.tasks[lo_idx].rta_ok &&
                            r.any_deadline_miss;
  std::cout << (demonstrates
                    ? "=> ignoring deferred execution is unsound, as the "
                      "paper warns; the jitter/penalty terms are required.\n"
                    : "=> scenario did not trigger; see EXPERIMENTS.md.\n");
  return demonstrates ? 0 : 1;
}
