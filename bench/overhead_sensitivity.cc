// E14 — Section 5.2's overhead argument, quantified: "the lesser blocking
// of the message-based protocol can be partially offset by the
// potentially lower assigned priorities to gcs's under the shared memory
// protocol ... [DPCP's] disadvantage has to be weighed against [MPCP's]
// higher implementation efficiency ... in contrast to the large overhead
// inherent in the message-passing protocol where every gcs of a job is
// generally executed in a remote processor."
//
// We charge both protocols the same lock/unlock costs, and additionally
// charge message-based execution two migration legs per global section,
// then sweep the migration cost. DPCP's acceptance should erode with the
// messaging cost while MPCP's stays flat.
#include <iostream>

#include "bench_util.h"
#include "taskgen/overheads.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  constexpr int kSeeds = 30;
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.45;
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.8;
  p.cs_min = 5;
  p.cs_max = 25;

  printHeader("RTA acceptance vs per-leg messaging cost (lock/unlock = 2)");
  std::cout << cell("migration leg") << cell("mpcp") << cell("dpcp") << "\n";
  for (Duration leg : {0, 5, 10, 20, 40}) {
    int mpcp_ok = 0, dpcp_ok = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(15'000 + static_cast<std::uint64_t>(s));
      const TaskSystem raw = generateWorkload(p, rng);
      const OverheadModel model{.lock_entry = 2, .unlock_exit = 2,
                                .migration_leg = leg};
      const TaskSystem for_mpcp =
          applyOverheadModel(raw, model, /*global_sections_migrate=*/false);
      const TaskSystem for_dpcp =
          applyOverheadModel(raw, model, /*global_sections_migrate=*/true);
      mpcp_ok += analyzeUnder(ProtocolKind::kMpcp, for_mpcp).report.rta_all;
      dpcp_ok += analyzeUnder(ProtocolKind::kDpcp, for_dpcp).report.rta_all;
    }
    std::cout << cell(static_cast<std::int64_t>(leg))
              << cell(static_cast<double>(mpcp_ok) / kSeeds)
              << cell(static_cast<double>(dpcp_ok) / kSeeds) << "\n";
  }

  printHeader("simulation cross-check at migration leg = 20");
  {
    int checked = 0, agree = 0;
    for (int s = 0; s < 10; ++s) {
      Rng rng(15'000 + static_cast<std::uint64_t>(s));
      const TaskSystem raw = generateWorkload(p, rng);
      const OverheadModel model{.lock_entry = 2, .unlock_exit = 2,
                                .migration_leg = 20};
      const TaskSystem for_dpcp = applyOverheadModel(raw, model, true);
      const auto verdict = analyzeUnder(ProtocolKind::kDpcp, for_dpcp);
      if (!verdict.report.rta_all) continue;
      const SimResult r = simulate(ProtocolKind::kDpcp, for_dpcp,
                                   {.horizon_cap = 300'000,
                                    .record_trace = false});
      ++checked;
      agree += r.any_deadline_miss ? 0 : 1;
    }
    std::cout << "accepted-and-miss-free: " << agree << "/" << checked
              << " (must be all)\n";
    if (agree != checked) return 1;
  }

  std::cout << "\nexpected shape: equal curves at zero messaging cost;\n"
               "DPCP erodes as the per-leg cost grows (every gcs pays two\n"
               "legs of inflated, ceiling-priority execution), while MPCP\n"
               "is unaffected — the overhead asymmetry Section 5.2 argues.\n";
  return 0;
}
