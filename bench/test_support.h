// Small result-inspection helpers shared by the bench binaries.
#pragma once

#include <algorithm>

#include "sim/result.h"

namespace mpcp::bench {

/// Worst observed priority-inversion time over all jobs of `task`.
inline Duration maxBlockedOfTask(const SimResult& result, TaskId task) {
  Duration worst = 0;
  for (const JobRecord& jr : result.jobs) {
    if (jr.id.task == task) worst = std::max(worst, jr.blocked);
  }
  return worst;
}

/// Worst observed response time over finished jobs of `task`.
inline Duration maxResponseOfTask(const SimResult& result, TaskId task) {
  Duration worst = 0;
  for (const JobRecord& jr : result.jobs) {
    if (jr.id.task == task && jr.finish >= 0) {
      worst = std::max(worst, jr.responseTime());
    }
  }
  return worst;
}

}  // namespace mpcp::bench
