// E3 — Table 4-1: priority ceilings of the Example 3 semaphores.
//
// Structural claims reproduced: local ceilings equal the highest user
// priority (within the task band); global ceilings are P_G + highest
// user priority, strictly above every task priority; the ceiling order
// follows the top-user order (P_{S4} > P_{S5} since tau1 > tau2).
#include <iostream>

#include "analysis/ceilings.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "taskgen/paper_examples.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  const paper::Example3 ex = paper::makeExample3();
  const PriorityTables tables(ex.sys);

  printHeader("Table 4-1: priority ceilings (reconstructed Example 3)");
  std::cout << renderCeilingTable(ex.sys, tables);

  printHeader("structural checks against the paper's table");
  struct Check {
    const char* claim;
    bool ok;
  };
  const Check checks[] = {
      {"ceiling(S1 local) = prio(tau2), its only user",
       tables.ceiling(ex.s1) == ex.sys.task(ex.tau[1]).priority},
      {"ceiling(S2 local) = prio(tau5) (> tau7)",
       tables.ceiling(ex.s2) == ex.sys.task(ex.tau[4]).priority},
      {"ceiling(S3 local) = prio(tau6) (> tau7)",
       tables.ceiling(ex.s3) == ex.sys.task(ex.tau[5]).priority},
      {"ceiling(S4 global) = P_G + prio(tau1)",
       tables.ceiling(ex.s4) ==
           ex.sys.task(ex.tau[0]).priority.inGlobalBand(ex.sys.globalBase())},
      {"ceiling(S5 global) = P_G + prio(tau2)",
       tables.ceiling(ex.s5) ==
           ex.sys.task(ex.tau[1]).priority.inGlobalBand(ex.sys.globalBase())},
      {"every global ceiling > P_H",
       tables.ceiling(ex.s4) > ex.sys.maxTaskPriority() &&
           tables.ceiling(ex.s5) > ex.sys.maxTaskPriority()},
      {"P_{S4} > P_{S5} => ceiling(S4) > ceiling(S5)",
       tables.ceiling(ex.s4) > tables.ceiling(ex.s5)},
  };
  bool all = true;
  for (const Check& c : checks) {
    std::cout << (c.ok ? "  [ok]  " : "  [FAIL]") << c.claim << "\n";
    all &= c.ok;
  }
  return all ? 0 : 1;
}
