// E8 — Section 5.3 / Theorem 3: the schedulability pipeline end-to-end.
//
//   * Theorem 3 (Liu-Layland + blocking) vs the response-time analysis:
//     acceptance ratios across utilizations (RTA dominates LL);
//   * soundness: every accepted system simulates miss-free;
//   * the cost of blocking: acceptance with B_i vs a (wrong) B_i = 0
//     baseline quantifies the schedulability loss due to synchronization,
//     the paper's central "schedulability loss B/T" metric.
#include <iostream>

#include "analysis/schedulability.h"
#include "bench_util.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  constexpr int kSeeds = 40;
  WallTimer total;
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.global_resources = 2;
  p.cs_max = 25;

  printHeader("Theorem 3 vs hyperbolic vs RTA acceptance, and the "
              "blocking penalty");
  std::cout << cell("util") << cell("LL w/ B") << cell("HB w/ B")
            << cell("RTA w/ B") << cell("RTA B=0") << cell("penalty")
            << "\n";
  for (double util : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    p.utilization_per_processor = util;
    // Four independent analyses per seed; fan the seeds across the
    // SweepRunner and fold the rows in seed order (bit-identical to the
    // old serial loop at any thread count).
    struct Row {
      bool ll = false, hb = false, rta = false, rta_nob = false;
    };
    const std::vector<Row> rows = exp::SweepRunner::global().map(
        kSeeds, 4000, [&](int /*s*/, Rng& rng) {
          Row row;
          const TaskSystem sys = generateWorkload(p, rng);
          const ProtocolAnalysis analysis =
              analyzeUnder(ProtocolKind::kMpcp, sys);
          row.ll = analysis.report.ll_all;
          row.hb = hyperbolicAll(sys, analysis.blocking);
          row.rta = analysis.report.rta_all;
          const std::vector<Duration> zero(sys.tasks().size(), 0);
          row.rta_nob = analyzeSchedulability(sys, zero).rta_all;
          return row;
        });
    int ll = 0, hb = 0, rta = 0, rta_nob = 0;
    for (const Row& row : rows) {
      ll += row.ll;
      hb += row.hb;
      rta += row.rta;
      rta_nob += row.rta_nob;
    }
    std::cout << cell(util, 12, 2)
              << cell(static_cast<double>(ll) / kSeeds)
              << cell(static_cast<double>(hb) / kSeeds)
              << cell(static_cast<double>(rta) / kSeeds)
              << cell(static_cast<double>(rta_nob) / kSeeds)
              << cell(static_cast<double>(rta_nob - rta) / kSeeds) << "\n";
  }
  std::cout << "\nexpected shape: RTA >= HB >= LL at every utilization\n"
               "(the hyperbolic bound is an extension beyond the paper);\n"
               "the 'penalty' column is the schedulability loss due to\n"
               "synchronization blocking (B_i/T_i in Theorem 3's terms).\n";

  printHeader("soundness audit (accepted => simulates miss-free)");
  int violations = 0, accepted_total = 0;
  for (double util : {0.3, 0.5}) {
    p.utilization_per_processor = util;
    const auto res =
        acceptanceSweep(ProtocolKind::kMpcp, p, kSeeds, 4200, true);
    accepted_total += static_cast<int>(res.accepted_rta * kSeeds);
    violations +=
        static_cast<int>(res.sim_miss_given_accept * res.accepted_rta *
                         kSeeds);
  }
  std::cout << "accepted systems: " << accepted_total
            << ", post-acceptance misses: " << violations
            << " (must be 0)\n";

  BenchJson json("schedulability");
  json.set("threads", exp::SweepRunner::global().threadCount());
  json.set("wall_s", total.seconds());
  json.write();
  return violations == 0 ? 0 : 1;
}
