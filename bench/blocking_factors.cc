// E6 — Section 5.1: the five blocking factors, measured.
//
// For random workloads we report (a) the mean analytical contribution of
// each factor to B_i, swept over the knobs the factors depend on, and
// (b) the worst observed blocking in simulation next to the analytical
// bound — the bound must dominate, and the ratio indicates its
// pessimism.
#include <iostream>

#include "bench_util.h"
#include "core/blocking.h"
#include "test_support.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

struct FactorMeans {
  double f1 = 0, f2 = 0, f3 = 0, f4 = 0, f5 = 0, deferred = 0, total = 0;
};

FactorMeans meanFactors(const WorkloadParams& params, int seeds,
                        std::uint64_t base) {
  FactorMeans m;
  std::int64_t tasks = 0;
  for (int s = 0; s < seeds; ++s) {
    Rng rng(base + static_cast<std::uint64_t>(s));
    const TaskSystem sys = generateWorkload(params, rng);
    const PriorityTables tables(sys);
    const MpcpBlockingAnalysis analysis(sys, tables);
    for (const BlockingBreakdown& b : analysis.all()) {
      m.f1 += static_cast<double>(b.local_lower_cs);
      m.f2 += static_cast<double>(b.lower_gcs_queue);
      m.f3 += static_cast<double>(b.higher_gcs_remote);
      m.f4 += static_cast<double>(b.blocking_proc_gcs);
      m.f5 += static_cast<double>(b.local_lower_gcs);
      m.deferred += static_cast<double>(b.deferred_execution);
      m.total += static_cast<double>(b.total());
      ++tasks;
    }
  }
  const double n = static_cast<double>(tasks);
  m.f1 /= n; m.f2 /= n; m.f3 /= n; m.f4 /= n; m.f5 /= n;
  m.deferred /= n; m.total /= n;
  return m;
}

void printRow(const std::string& label, const FactorMeans& m) {
  std::cout << cell(label) << cell(m.f1, 9, 1) << cell(m.f2, 9, 1)
            << cell(m.f3, 9, 1) << cell(m.f4, 9, 1) << cell(m.f5, 9, 1)
            << cell(m.deferred, 9, 1) << cell(m.total, 9, 1) << "\n";
}

WorkloadParams baseParams() {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.4;
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.cs_max = 20;
  return p;
}

void header(const char* knob) {
  std::cout << cell(knob) << cell("F1", 9) << cell("F2", 9) << cell("F3", 9)
            << cell("F4", 9) << cell("F5", 9) << cell("defer", 9)
            << cell("B_i", 9) << "\n";
}

}  // namespace

int main() {
  constexpr int kSeeds = 30;

  printHeader("mean per-task blocking factors vs processor count");
  header("processors");
  for (int procs : {2, 4, 8, 16}) {
    WorkloadParams p = baseParams();
    p.processors = procs;
    printRow(std::to_string(procs), meanFactors(p, kSeeds, 10));
  }

  printHeader("mean per-task blocking factors vs critical-section length");
  header("cs_max");
  for (Duration cs : {5, 10, 20, 40, 80}) {
    WorkloadParams p = baseParams();
    p.cs_max = cs;
    printRow(std::to_string(cs), meanFactors(p, kSeeds, 20));
  }

  printHeader("mean per-task blocking factors vs gcs count per task (NG)");
  header("max NG");
  for (int ng : {1, 2, 4, 8}) {
    WorkloadParams p = baseParams();
    p.max_gcs_per_task = ng;
    p.global_sharing_prob = 1.0;
    printRow(std::to_string(ng), meanFactors(p, kSeeds, 30));
  }

  printHeader("mean per-task blocking factors vs global resource count");
  header("resources");
  for (int res : {1, 2, 4, 8}) {
    WorkloadParams p = baseParams();
    p.global_resources = res;
    printRow(std::to_string(res), meanFactors(p, kSeeds, 40));
  }

  // ---- factor-5 reading ablation (DESIGN.md reconstruction note) -------
  printHeader(
      "factor-5 'min' (sound-tight) vs the OCR's literal 'max' reading");
  std::cout << cell("max NG") << cell("F5 min") << cell("F5 max")
            << cell("B min") << cell("B max") << "\n";
  for (int ng : {1, 2, 4}) {
    WorkloadParams p = baseParams();
    p.max_gcs_per_task = ng;
    p.global_sharing_prob = 1.0;
    double f5_min = 0, f5_max = 0, b_min = 0, b_max = 0;
    std::int64_t tasks = 0;
    for (int sd = 0; sd < kSeeds; ++sd) {
      Rng rng(60 + static_cast<std::uint64_t>(sd));
      const TaskSystem sys = generateWorkload(p, rng);
      const PriorityTables tables(sys);
      const MpcpBlockingAnalysis tight(sys, tables,
                                       {.paper_literal_factor5 = false});
      const MpcpBlockingAnalysis literal(sys, tables,
                                         {.paper_literal_factor5 = true});
      for (const Task& t : sys.tasks()) {
        f5_min += static_cast<double>(tight.blocking(t.id).local_lower_gcs);
        f5_max +=
            static_cast<double>(literal.blocking(t.id).local_lower_gcs);
        b_min += static_cast<double>(tight.blocking(t.id).total());
        b_max += static_cast<double>(literal.blocking(t.id).total());
        ++tasks;
      }
    }
    const double n = static_cast<double>(tasks);
    std::cout << cell(static_cast<std::int64_t>(ng)) << cell(f5_min / n, 12, 1)
              << cell(f5_max / n, 12, 1) << cell(b_min / n, 12, 1)
              << cell(b_max / n, 12, 1) << "\n";
  }
  std::cout << "(both readings are valid upper bounds; the literal 'max'\n"
               "is uniformly looser — see DESIGN.md on the OCR ambiguity)\n";

  // ---- bound vs observation --------------------------------------------
  printHeader("analytical bound vs worst observed blocking (miss-free runs)");
  std::cout << cell("seed") << cell("max observed") << cell("max bound")
            << cell("bound held") << "\n";
  int sound = 0, runs = 0;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    const WorkloadParams p = baseParams();
    const TaskSystem sys = generateWorkload(p, rng);
    const PriorityTables tables(sys);
    const MpcpBlockingAnalysis analysis(sys, tables);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 200'000});
    if (r.any_deadline_miss) continue;
    Duration worst_obs = 0, worst_bound = 0;
    bool held = true;
    for (const Task& t : sys.tasks()) {
      const Duration obs = maxBlockedOfTask(r, t.id);
      const Duration bound = analysis.blocking(t.id).total();
      worst_obs = std::max(worst_obs, obs);
      worst_bound = std::max(worst_bound, bound);
      held &= obs <= bound;
    }
    ++runs;
    sound += held ? 1 : 0;
    if (seed < 108) {  // print a sample of rows
      std::cout << cell(static_cast<std::int64_t>(seed)) << cell(worst_obs)
                << cell(worst_bound) << cell(held ? "yes" : "NO") << "\n";
    }
  }
  std::cout << "bound held in " << sound << "/" << runs
            << " miss-free runs (must be all)\n";
  return sound == runs ? 0 : 1;
}
