// E9 — Section 5.1's nesting remark: nested global critical sections.
//
// MPCP forbids nested gcs's; the escape hatch is collapsing them into
// group locks ("introducing semaphores which subsume the nested
// semaphores"), which coarsens locking. DPCP tolerates nesting natively
// as long as the nested semaphores share a synchronization processor
// (Section 5.2). This ablation quantifies the trade:
//
//   * group-lock collapse lengthens effective sections and merges
//     contention domains -> blocking grows with nesting probability;
//   * DPCP runs the nested system directly but pays its usual agent
//     funnelling.
#include <iostream>

#include "bench_util.h"
#include "taskgen/group_locks.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

WorkloadParams baseParams(double nested_prob) {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.45;
  p.global_resources = 3;
  p.max_gcs_per_task = 3;
  p.global_sharing_prob = 0.9;
  p.cs_max = 20;
  p.nested_global_prob = nested_prob;
  return p;
}

/// Rebuilds `sys` with every resource pinned to sync processor 0 so DPCP
/// accepts arbitrary global nesting.
TaskSystem pinAllResources(const TaskSystem& sys) {
  TaskSystemBuilder b(sys.processorCount(),
                      {.allow_nested_global = true});
  for (const ResourceInfo& r : sys.resources()) {
    const ResourceId nr = b.addResource(r.name);
    b.assignSyncProcessor(nr, ProcessorId(0));
  }
  for (const Task& t : sys.tasks()) {
    b.addTask({.name = t.name, .period = t.period, .phase = t.phase,
               .processor = t.processor.value(), .body = t.body});
  }
  return std::move(b).build();
}

}  // namespace

int main() {
  constexpr int kSeeds = 30;

  printHeader(
      "nested global sections: MPCP(group locks) vs DPCP(native nesting)");
  std::cout << cell("nest prob") << cell("mpcp+group") << cell("dpcp-native")
            << cell("mean B grp") << cell("mean B dpcp") << "\n";
  for (double nest : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    int mpcp_ok = 0, dpcp_ok = 0;
    double b_grp = 0, b_dpcp = 0;
    std::int64_t tasks = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(7000 + static_cast<std::uint64_t>(s));
      const TaskSystem nested = generateWorkload(baseParams(nest), rng);

      // MPCP path: collapse to group locks first.
      const TaskSystem grouped = collapseToGroupLocks(nested);
      const ProtocolAnalysis am = analyzeUnder(ProtocolKind::kMpcp, grouped);
      mpcp_ok += am.report.rta_all;

      // DPCP path: nest natively, all resources on one sync processor.
      const TaskSystem pinned = pinAllResources(nested);
      const ProtocolAnalysis ad = analyzeUnder(ProtocolKind::kDpcp, pinned);
      dpcp_ok += ad.report.rta_all;

      for (std::size_t i = 0; i < am.blocking.size(); ++i) {
        b_grp += static_cast<double>(am.blocking[i]);
        b_dpcp += static_cast<double>(ad.blocking[i]);
        ++tasks;
      }
    }
    std::cout << cell(nest, 12, 2)
              << cell(static_cast<double>(mpcp_ok) / kSeeds)
              << cell(static_cast<double>(dpcp_ok) / kSeeds)
              << cell(b_grp / static_cast<double>(tasks), 12, 0)
              << cell(b_dpcp / static_cast<double>(tasks), 12, 0) << "\n";
  }

  printHeader("group-lock cost in isolation (same flat workload, fused "
              "contention domains)");
  // Compare a flat system against the same system with its two global
  // resources artificially fused (as if nesting had forced a group):
  // the fused version must have >= blocking for every task.
  std::cout << cell("cs_max") << cell("B flat") << cell("B fused") << "\n";
  for (Duration cs : {10, 20, 40}) {
    double flat_b = 0, fused_b = 0;
    std::int64_t tasks = 0;
    for (int s = 0; s < kSeeds; ++s) {
      WorkloadParams p = baseParams(0.0);
      p.global_resources = 2;
      p.cs_max = cs;
      Rng rng(7500 + static_cast<std::uint64_t>(s));
      const TaskSystem flat = generateWorkload(p, rng);
      // Fuse: rebuild with a single global resource replacing both.
      TaskSystemBuilder b(flat.processorCount(), TaskSystemOptions{});
      std::vector<ResourceId> remap;
      const ResourceId fused = b.addResource("FUSED");
      for (const ResourceInfo& r : flat.resources()) {
        remap.push_back(r.scope == ResourceScope::kGlobal
                            ? fused
                            : b.addResource(r.name));
      }
      for (const Task& t : flat.tasks()) {
        Body body;
        for (const Op& op : t.body.ops()) {
          if (const auto* c = std::get_if<ComputeOp>(&op)) {
            body.compute(c->duration);
          } else if (const auto* l = std::get_if<LockOp>(&op)) {
            body.lock(remap[static_cast<std::size_t>(l->resource.value())]);
          } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
            body.unlock(remap[static_cast<std::size_t>(u->resource.value())]);
          }
        }
        b.addTask({.name = t.name, .period = t.period,
                   .processor = t.processor.value(), .body = body});
      }
      const TaskSystem fused_sys = std::move(b).build();
      const ProtocolAnalysis af = analyzeUnder(ProtocolKind::kMpcp, flat);
      const ProtocolAnalysis au = analyzeUnder(ProtocolKind::kMpcp, fused_sys);
      for (std::size_t i = 0; i < af.blocking.size(); ++i) {
        flat_b += static_cast<double>(af.blocking[i]);
        fused_b += static_cast<double>(au.blocking[i]);
        ++tasks;
      }
    }
    std::cout << cell(static_cast<std::int64_t>(cs))
              << cell(flat_b / static_cast<double>(tasks), 12, 0)
              << cell(fused_b / static_cast<double>(tasks), 12, 0) << "\n";
  }
  std::cout << "\nexpected shape: fused/grouped locking inflates blocking\n"
               "(coarser contention domains), increasingly so with longer\n"
               "sections — the cost Section 5.1 warns about; DPCP-native\n"
               "nesting avoids the fusion but pays agent funnelling.\n";
  return 0;
}
