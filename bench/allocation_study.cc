// E15 — the conclusion's allocation sketch: "A task allocation scheme
// ... would attempt to allocate tasks with a high degree of resource
// sharing to the same processor(s). Since the task allocation is
// determined offline, the complexity of the allocation algorithm need
// not be a dominating factor."
//
// We generate unbound task sets with clustered resource sharing, allocate
// with plain first-fit-decreasing vs the resource-affinity heuristic, and
// compare (a) how many resources end up global, (b) MPCP blocking, and
// (c) RTA acceptance.
#include <iostream>

#include "bench_util.h"
#include "common/strf.h"
#include "taskgen/allocation.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

/// Task sets built as sharing *clusters*: each cluster's tasks share one
/// resource, so a sharing-aware allocator can make every cluster local.
std::vector<UnboundTask> makeClusters(int clusters, int tasks_per_cluster,
                                      double cluster_util, Rng& rng,
                                      int* resource_count) {
  std::vector<UnboundTask> tasks;
  for (int c = 0; c < clusters; ++c) {
    const ResourceId r(c);
    for (int k = 0; k < tasks_per_cluster; ++k) {
      const Duration period = rng.uniformInt(2'000, 20'000);
      const double u = cluster_util / tasks_per_cluster *
                       rng.uniformReal(0.6, 1.4);
      const Duration wcet = std::max<Duration>(
          20, static_cast<Duration>(u * static_cast<double>(period)));
      const Duration cs = std::max<Duration>(2, wcet / 10);
      UnboundTask t;
      t.name = strf("c", c, "_t", k);
      t.period = period;
      t.body = Body{}.compute(wcet - cs - 5).section(r, cs).compute(5);
      tasks.push_back(std::move(t));
    }
  }
  *resource_count = clusters;
  return tasks;
}

int countGlobals(const TaskSystem& sys) {
  int n = 0;
  for (const ResourceInfo& r : sys.resources()) {
    n += r.scope == ResourceScope::kGlobal ? 1 : 0;
  }
  return n;
}

double meanBlocking(const TaskSystem& sys) {
  const ProtocolAnalysis a = analyzeUnder(ProtocolKind::kMpcp, sys);
  double sum = 0;
  for (Duration b : a.blocking) sum += static_cast<double>(b);
  return sum / static_cast<double>(a.blocking.size());
}

}  // namespace

int main() {
  constexpr int kSeeds = 30;
  constexpr int kProcs = 4;

  printHeader("FFD vs resource-affinity allocation (4 processors)");
  std::cout << cell("cluster util") << cell("glob FFD") << cell("glob AFF")
            << cell("B FFD") << cell("B AFF") << cell("rta FFD")
            << cell("rta AFF") << "\n";
  for (double util : {0.4, 0.6, 0.8}) {
    double glob_ffd = 0, glob_aff = 0, b_ffd = 0, b_aff = 0;
    int ok_ffd = 0, ok_aff = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(17'000 + static_cast<std::uint64_t>(s));
      int resources = 0;
      // 4 clusters of 3 tasks; each cluster sums to `util`.
      const auto tasks = makeClusters(4, 3, util, rng, &resources);
      const auto ffd = allocateFirstFitDecreasing(tasks, kProcs, 0.9);
      const auto aff = allocateResourceAffinity(tasks, kProcs, 0.9);
      const TaskSystem sys_ffd = bindTasks(tasks, ffd, kProcs, resources);
      const TaskSystem sys_aff = bindTasks(tasks, aff, kProcs, resources);
      glob_ffd += countGlobals(sys_ffd);
      glob_aff += countGlobals(sys_aff);
      b_ffd += meanBlocking(sys_ffd);
      b_aff += meanBlocking(sys_aff);
      ok_ffd += analyzeUnder(ProtocolKind::kMpcp, sys_ffd).report.rta_all;
      ok_aff += analyzeUnder(ProtocolKind::kMpcp, sys_aff).report.rta_all;
    }
    std::cout << cell(util, 12, 2) << cell(glob_ffd / kSeeds, 12, 2)
              << cell(glob_aff / kSeeds, 12, 2)
              << cell(b_ffd / kSeeds, 12, 0) << cell(b_aff / kSeeds, 12, 0)
              << cell(static_cast<double>(ok_ffd) / kSeeds)
              << cell(static_cast<double>(ok_aff) / kSeeds) << "\n";
  }
  std::cout << "\nexpected shape: affinity allocation converts global\n"
               "semaphores into local ones (glob AFF << glob FFD), cutting\n"
               "mean blocking and raising acceptance — until capacity\n"
               "pressure forces clusters apart at high utilization.\n";
  return 0;
}
