// E4 — Table 4-2: per-job gcs execution priorities in Example 3.
//
// The paper's refinement over the message-based protocol: a gcs of job
// J_i on S_g runs at P_G + (highest priority of *remote* users of S_g),
// which can be strictly below S_g's full ceiling — here tau1's and tau2's
// gcs's run below ceiling because they themselves are the top users.
#include <iostream>

#include "analysis/ceilings.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "taskgen/paper_examples.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  const paper::Example3 ex = paper::makeExample3();
  const PriorityTables tables(ex.sys);

  printHeader("Table 4-2: gcs execution priorities (reconstructed)");
  std::cout << renderGcsPriorityTable(ex.sys, tables);

  printHeader("structural checks");
  const Priority pg = ex.sys.globalBase();
  const auto prio = [&](int i) {
    return ex.sys.task(ex.tau[static_cast<std::size_t>(i - 1)]).priority;
  };
  struct Check {
    const char* claim;
    bool ok;
  };
  const Check checks[] = {
      {"tau1's S4 gcs runs at P_G + prio(tau3) — BELOW the ceiling",
       tables.gcsPriority(ex.s4, ProcessorId(0)) ==
               prio(3).inGlobalBand(pg) &&
           tables.gcsPriority(ex.s4, ProcessorId(0)) <
               tables.ceiling(ex.s4)},
      {"tau3's / tau5's S4 gcs run at the full ceiling P_G + prio(tau1)",
       tables.gcsPriority(ex.s4, ProcessorId(1)) == tables.ceiling(ex.s4) &&
           tables.gcsPriority(ex.s4, ProcessorId(2)) ==
               tables.ceiling(ex.s4)},
      {"tau2's S5 gcs runs at P_G + prio(tau4) — BELOW the ceiling",
       tables.gcsPriority(ex.s5, ProcessorId(0)) ==
               prio(4).inGlobalBand(pg) &&
           tables.gcsPriority(ex.s5, ProcessorId(0)) <
               tables.ceiling(ex.s5)},
      {"every gcs priority exceeds every task priority (Theorem 2)",
       tables.gcsPriority(ex.s4, ProcessorId(0)) >
               ex.sys.maxTaskPriority() &&
           tables.gcsPriority(ex.s5, ProcessorId(0)) >
               ex.sys.maxTaskPriority()},
  };
  bool all = true;
  for (const Check& c : checks) {
    std::cout << (c.ok ? "  [ok]  " : "  [FAIL]") << c.claim << "\n";
    all &= c.ok;
  }
  return all ? 0 : 1;
}
