// E14 — engine/runner throughput suite.
//
// Measures the raw speed of the discrete-event engine across four
// trace-off scenarios that stress different hot paths, plus a trace-on
// events/sec phase and a serial-vs-parallel sweep determinism check:
//
//   small      4x3  tasks — dispatch/settle overhead dominates
//   large      16x8 tasks (128) — the headline jobs/sec scenario the
//              perf gate tracks (bench/baselines/BENCH_engine.json)
//   contended  8x6 tasks, every task sharing few global semaphores with
//              long sections — protocol queueing and handoff paths
//   fault      8x6 tasks with an armed fault plan + containment — the
//              armed-path overhead (jitter, budgets, watchdog scans)
//
// Results land in BENCH_engine.json (schema v2, per-scenario keys with
// provenance; see bench_util.h) for tools/bench_diff to compare against
// bench/baselines/. MPCP_BENCH_QUICK=1 shrinks every phase (ctest and
// the CI perf job use it with pinned seeds, so numbers are comparable
// run to run); MPCP_BENCH_ONLY=<scenario> runs a single scenario
// (profiling); MPCP_THREADS pins the parallel phase's thread count.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "fault/plan.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

WorkloadParams throughputParams() {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.45;
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.9;
  p.cs_max = 30;
  return p;
}

WorkloadParams largeParams() {
  WorkloadParams p;
  p.processors = 16;
  p.tasks_per_processor = 8;
  p.utilization_per_processor = 0.45;
  p.global_resources = 6;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.6;
  p.cs_max = 30;
  return p;
}

WorkloadParams contendedParams() {
  WorkloadParams p;
  p.processors = 8;
  p.tasks_per_processor = 6;
  p.utilization_per_processor = 0.5;
  p.global_resources = 3;
  p.max_gcs_per_task = 3;
  p.global_sharing_prob = 1.0;
  p.cs_max = 60;
  return p;
}

constexpr std::uint64_t kSeedBase = 42'000;

/// True when `name` should run (MPCP_BENCH_ONLY filter).
bool scenarioSelected(const std::string& name) {
  const char* only = std::getenv("MPCP_BENCH_ONLY");
  return only == nullptr || name == only;
}

/// Runs `sims` generate+simulate iterations and records
/// <name>_{sims,jobs,wall_s,jobs_per_sec} in `json`.
void throughputScenario(BenchJson& json, const std::string& name,
                        const WorkloadParams& params, int sims,
                        std::uint64_t seed_base,
                        const fault::FaultPlan* plan = nullptr,
                        fault::ContainmentConfig containment = {}) {
  if (!scenarioSelected(name)) return;
  printHeader("engine throughput, " + name + " (trace off)");
  std::int64_t jobs = 0;
  WallTimer timer;
  for (int s = 0; s < sims; ++s) {
    Rng rng(seed_base + static_cast<std::uint64_t>(s));
    const TaskSystem sys = generateWorkload(params, rng);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 300'000,
                                  .record_trace = false,
                                  .fault_plan = plan,
                                  .containment = containment});
    jobs += static_cast<std::int64_t>(r.jobs.size());
  }
  const double wall = timer.seconds();
  const double jps = static_cast<double>(jobs) / wall;
  std::cout << "sims " << sims << ", jobs " << jobs << ", wall " << wall
            << " s, jobs/sec " << jps << "\n";
  json.set(name + "_sims", sims);
  json.set(name + "_jobs", jobs);
  json.set(name + "_wall_s", wall);
  json.set(name + "_jobs_per_sec", jps);
}

/// FNV-1a fold of one simulation's observable outcome: finish times,
/// blocking, and miss bits of every job record, in record order. Any
/// scheduling divergence between two runs changes the digest.
std::uint64_t digestOf(const SimResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(r.jobs.size()));
  for (const JobRecord& jr : r.jobs) {
    mix(static_cast<std::uint64_t>(jr.id.task.value()));
    mix(static_cast<std::uint64_t>(jr.id.instance));
    mix(static_cast<std::uint64_t>(jr.finish));
    mix(static_cast<std::uint64_t>(jr.blocked));
    mix(jr.missed ? 1 : 0);
  }
  return h;
}

/// One sweep seed: generate a workload and simulate it end to end.
std::uint64_t sweepSeed(Rng& rng) {
  const TaskSystem sys = generateWorkload(throughputParams(), rng);
  const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                               {.horizon_cap = 300'000,
                                .record_trace = false});
  return digestOf(r);
}

}  // namespace

int main() {
  const bool quick = std::getenv("MPCP_BENCH_QUICK") != nullptr;
  const int small_seeds = quick ? 20 : 200;
  const int large_seeds = quick ? 3 : 20;
  const int contended_seeds = quick ? 5 : 40;
  const int fault_seeds = quick ? 5 : 40;
  const int trace_seeds = quick ? 10 : 60;
  const int sweep_seeds = quick ? 40 : 400;

  BenchJson json("engine");
  json.set("quick_mode", quick);
  json.set("hardware_concurrency",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  throughputScenario(json, "small", throughputParams(), small_seeds,
                     kSeedBase);
  throughputScenario(json, "large", largeParams(), large_seeds,
                     kSeedBase + 500);

  throughputScenario(json, "contended", contendedParams(), contended_seeds,
                     kSeedBase + 1000);

  // Armed run: a plan that fires on every instance of a few tasks plus
  // active containment, so the fault hooks (injection, budget clocks,
  // watchdog scans, full dirty-mask settles) are all on the clock.
  fault::FaultPlan plan;
  plan.specs.push_back({.kind = fault::FaultKind::kWcetOverrun,
                        .task = TaskId(0),
                        .instance = -1,
                        .factor = 1.3});
  plan.specs.push_back({.kind = fault::FaultKind::kReleaseJitter,
                        .task = TaskId(1),
                        .instance = -1,
                        .delta = 7});
  fault::ContainmentConfig containment;
  containment.budget_enforce = true;
  containment.grace = 2.0;
  containment.holder_watchdog = 500;
  throughputScenario(json, "fault", contendedParams(), fault_seeds,
                     kSeedBase + 1500, &plan, containment);

  if (scenarioSelected("trace")) {
    printHeader("engine throughput (trace on): events/sec");
    std::int64_t events = 0;
    WallTimer trace_timer;
    for (int s = 0; s < trace_seeds; ++s) {
      Rng rng(kSeedBase + static_cast<std::uint64_t>(s));
      const TaskSystem sys = generateWorkload(throughputParams(), rng);
      const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                   {.horizon_cap = 300'000,
                                    .record_trace = true});
      events += static_cast<std::int64_t>(r.trace.size());
    }
    const double trace_s = trace_timer.seconds();
    const double events_per_sec = static_cast<double>(events) / trace_s;
    std::cout << "sims " << trace_seeds << ", events " << events << ", wall "
              << trace_s << " s, events/sec " << events_per_sec << "\n";
    json.set("trace_sims", trace_seeds);
    json.set("trace_events", events);
    json.set("trace_wall_s", trace_s);
    json.set("trace_events_per_sec", events_per_sec);
  }

  bool deterministic = true;
  if (scenarioSelected("sweep")) {
    printHeader("multi-seed sweep: serial vs parallel SweepRunner");
    auto seedFn = [](int /*s*/, Rng& rng) { return sweepSeed(rng); };

    exp::SweepRunner serial(1);
    WallTimer serial_timer;
    const std::vector<std::uint64_t> serial_digests =
        serial.map(sweep_seeds, kSeedBase + 9000, seedFn);
    const double serial_s = serial_timer.seconds();

    const int par_threads = exp::ThreadPool::defaultThreadCount();
    exp::SweepRunner parallel(par_threads);
    WallTimer par_timer;
    const std::vector<std::uint64_t> par_digests =
        parallel.map(sweep_seeds, kSeedBase + 9000, seedFn);
    const double par_s = par_timer.seconds();

    deterministic = serial_digests == par_digests;
    const double speedup = par_s > 0 ? serial_s / par_s : 0.0;
    const double sweep_sims_per_sec =
        par_s > 0 ? static_cast<double>(sweep_seeds) / par_s : 0.0;
    std::cout << "seeds " << sweep_seeds << ", serial " << serial_s
              << " s, parallel(" << par_threads << " threads) " << par_s
              << " s, speedup " << speedup << "x, digests "
              << (deterministic ? "identical" : "DIVERGED") << "\n";
    json.set("sweep_seeds", sweep_seeds);
    json.set("sweep_serial_wall_s", serial_s);
    json.set("sweep_parallel_wall_s", par_s);
    json.set("sweep_threads", par_threads);
    json.set("sweep_speedup", speedup);
    json.set("sweep_sims_per_sec", sweep_sims_per_sec);
    json.set("sweep_deterministic", deterministic);
  }

  json.write();

  if (!deterministic) {
    std::cerr << "FAIL: parallel sweep diverged from serial sweep\n";
    return 1;
  }
  return 0;
}
