// E14 — engine/runner throughput microbenchmark.
//
// Measures the raw speed of the discrete-event engine (jobs/sec with the
// trace off, events/sec with it on) and of a multi-seed simulation sweep
// run serially vs fanned across the SweepRunner thread pool. Asserts that
// the parallel sweep is bit-identical to the serial one (digest match) and
// emits BENCH_engine.json so every PR records a perf trajectory (see
// EXPERIMENTS.md, "Running the benchmarks").
//
// MPCP_BENCH_QUICK=1 shrinks every phase (the ctest registration uses it);
// MPCP_THREADS pins the parallel phase's thread count.
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_util.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

WorkloadParams throughputParams() {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.45;
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.9;
  p.cs_max = 30;
  return p;
}

WorkloadParams largeParams() {
  WorkloadParams p;
  p.processors = 16;
  p.tasks_per_processor = 8;
  p.utilization_per_processor = 0.45;
  p.global_resources = 6;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.6;
  p.cs_max = 30;
  return p;
}

constexpr std::uint64_t kSeedBase = 42'000;

/// FNV-1a fold of one simulation's observable outcome: finish times,
/// blocking, and miss bits of every job record, in record order. Any
/// scheduling divergence between two runs changes the digest.
std::uint64_t digestOf(const SimResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(r.jobs.size()));
  for (const JobRecord& jr : r.jobs) {
    mix(static_cast<std::uint64_t>(jr.id.task.value()));
    mix(static_cast<std::uint64_t>(jr.id.instance));
    mix(static_cast<std::uint64_t>(jr.finish));
    mix(static_cast<std::uint64_t>(jr.blocked));
    mix(jr.missed ? 1 : 0);
  }
  return h;
}

/// One sweep seed: generate a workload and simulate it end to end.
std::uint64_t sweepSeed(Rng& rng) {
  const TaskSystem sys = generateWorkload(throughputParams(), rng);
  const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                               {.horizon_cap = 300'000,
                                .record_trace = false});
  return digestOf(r);
}

}  // namespace

int main() {
  const bool quick = std::getenv("MPCP_BENCH_QUICK") != nullptr;
  const int engine_seeds = quick ? 20 : 200;
  const int large_seeds = quick ? 3 : 20;
  const int trace_seeds = quick ? 10 : 60;
  const int sweep_seeds = quick ? 40 : 400;

  BenchJson json("engine");
  json.set("quick_mode", quick);
  json.set("hardware_concurrency",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  printHeader("engine throughput (trace off): generate + simulate");
  std::int64_t jobs = 0;
  WallTimer engine_timer;
  for (int s = 0; s < engine_seeds; ++s) {
    Rng rng(kSeedBase + static_cast<std::uint64_t>(s));
    const TaskSystem sys = generateWorkload(throughputParams(), rng);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 300'000,
                                  .record_trace = false});
    jobs += static_cast<std::int64_t>(r.jobs.size());
  }
  const double engine_s = engine_timer.seconds();
  const double jobs_per_sec = static_cast<double>(jobs) / engine_s;
  std::cout << "sims " << engine_seeds << ", jobs " << jobs << ", wall "
            << engine_s << " s, jobs/sec " << jobs_per_sec << "\n";
  json.set("small_sims", engine_seeds);
  json.set("small_jobs", jobs);
  json.set("small_wall_s", engine_s);
  json.set("small_jobs_per_sec", jobs_per_sec);

  printHeader("engine throughput, large system (128 tasks, trace off)");
  std::int64_t large_jobs = 0;
  WallTimer large_timer;
  for (int s = 0; s < large_seeds; ++s) {
    Rng rng(kSeedBase + 500 + static_cast<std::uint64_t>(s));
    const TaskSystem sys = generateWorkload(largeParams(), rng);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 300'000,
                                  .record_trace = false});
    large_jobs += static_cast<std::int64_t>(r.jobs.size());
  }
  const double large_s = large_timer.seconds();
  const double large_jobs_per_sec = static_cast<double>(large_jobs) / large_s;
  std::cout << "sims " << large_seeds << ", jobs " << large_jobs << ", wall "
            << large_s << " s, jobs/sec " << large_jobs_per_sec << "\n";
  json.set("large_sims", large_seeds);
  json.set("large_jobs", large_jobs);
  json.set("large_wall_s", large_s);
  json.set("large_jobs_per_sec", large_jobs_per_sec);

  printHeader("engine throughput (trace on): events/sec");
  std::int64_t events = 0;
  WallTimer trace_timer;
  for (int s = 0; s < trace_seeds; ++s) {
    Rng rng(kSeedBase + static_cast<std::uint64_t>(s));
    const TaskSystem sys = generateWorkload(throughputParams(), rng);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 300'000,
                                  .record_trace = true});
    events += static_cast<std::int64_t>(r.trace.size());
  }
  const double trace_s = trace_timer.seconds();
  const double events_per_sec = static_cast<double>(events) / trace_s;
  std::cout << "sims " << trace_seeds << ", events " << events << ", wall "
            << trace_s << " s, events/sec " << events_per_sec << "\n";
  json.set("trace_sims", trace_seeds);
  json.set("trace_events", events);
  json.set("trace_wall_s", trace_s);
  json.set("trace_events_per_sec", events_per_sec);

  printHeader("multi-seed sweep: serial vs parallel SweepRunner");
  auto seedFn = [](int /*s*/, Rng& rng) { return sweepSeed(rng); };

  exp::SweepRunner serial(1);
  WallTimer serial_timer;
  const std::vector<std::uint64_t> serial_digests =
      serial.map(sweep_seeds, kSeedBase + 9000, seedFn);
  const double serial_s = serial_timer.seconds();

  const int par_threads = exp::ThreadPool::defaultThreadCount();
  exp::SweepRunner parallel(par_threads);
  WallTimer par_timer;
  const std::vector<std::uint64_t> par_digests =
      parallel.map(sweep_seeds, kSeedBase + 9000, seedFn);
  const double par_s = par_timer.seconds();

  const bool deterministic = serial_digests == par_digests;
  const double speedup = par_s > 0 ? serial_s / par_s : 0.0;
  const double sweep_sims_per_sec =
      par_s > 0 ? static_cast<double>(sweep_seeds) / par_s : 0.0;
  std::cout << "seeds " << sweep_seeds << ", serial " << serial_s
            << " s, parallel(" << par_threads << " threads) " << par_s
            << " s, speedup " << speedup << "x, digests "
            << (deterministic ? "identical" : "DIVERGED") << "\n";
  json.set("sweep_seeds", sweep_seeds);
  json.set("sweep_serial_wall_s", serial_s);
  json.set("sweep_parallel_wall_s", par_s);
  json.set("sweep_threads", par_threads);
  json.set("sweep_speedup", speedup);
  json.set("sweep_sims_per_sec", sweep_sims_per_sec);
  json.set("sweep_deterministic", deterministic);

  json.write();

  if (!deterministic) {
    std::cerr << "FAIL: parallel sweep diverged from serial sweep\n";
    return 1;
  }
  return 0;
}
