// E7 — Section 5.2: shared-memory (MPCP) vs message-based (DPCP)
// protocol, as schedulable fractions over random workloads.
//
// Paper's qualitative claims reproduced quantitatively:
//   * factors 1-3 are comparable; the DPCP avoids factor 4/5-style local
//     interference only by *dedicating* synchronization processors, which
//     the shared-memory protocol can instead use as extra capacity;
//   * DPCP's gcs's always run at the full ceiling, MPCP's often lower;
//   * funnelling every resource through one sync processor (default
//     DPCP layout here: lowest user processor) concentrates agent load.
//
// Sweeps: utilization x cs length x processors; plus a dedicated-sync-
// processor variant where DPCP gets an extra (application-free)
// processor while MPCP uses that processor for tasks — the paper's
// "the shared memory protocol can use these extra processors as
// additional processing resources".
#include <iostream>

#include "bench_util.h"

using namespace mpcp;
using namespace mpcp::bench;

namespace {

WorkloadParams baseParams() {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.global_resources = 2;
  p.max_gcs_per_task = 2;
  p.global_sharing_prob = 0.9;
  p.cs_max = 30;
  return p;
}

}  // namespace

int main() {
  constexpr int kSeeds = 40;
  WallTimer total;

  printHeader("RTA-schedulable fraction vs per-processor utilization");
  std::cout << cell("util") << cell("mpcp") << cell("dpcp")
            << cell("mpcp-LL") << cell("dpcp-LL") << "\n";
  for (double util : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = util;
    const auto m = acceptanceSweep(ProtocolKind::kMpcp, p, kSeeds, 500);
    const auto d = acceptanceSweep(ProtocolKind::kDpcp, p, kSeeds, 500);
    std::cout << cell(util, 12, 2) << cell(m.accepted_rta)
              << cell(d.accepted_rta) << cell(m.accepted_ll)
              << cell(d.accepted_ll) << "\n";
  }

  printHeader("RTA-schedulable fraction vs critical-section length");
  std::cout << cell("cs_max") << cell("mpcp") << cell("dpcp") << "\n";
  for (Duration cs : {5, 15, 40, 80, 160}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = 0.45;
    p.cs_max = cs;
    const auto m = acceptanceSweep(ProtocolKind::kMpcp, p, kSeeds, 600);
    const auto d = acceptanceSweep(ProtocolKind::kDpcp, p, kSeeds, 600);
    std::cout << cell(static_cast<std::int64_t>(cs)) << cell(m.accepted_rta)
              << cell(d.accepted_rta) << "\n";
  }

  printHeader("RTA-schedulable fraction vs processor count");
  std::cout << cell("processors") << cell("mpcp") << cell("dpcp") << "\n";
  for (int procs : {2, 4, 8, 12}) {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = 0.45;
    p.processors = procs;
    const auto m = acceptanceSweep(ProtocolKind::kMpcp, p, kSeeds, 700);
    const auto d = acceptanceSweep(ProtocolKind::kDpcp, p, kSeeds, 700);
    std::cout << cell(static_cast<std::int64_t>(procs)) << cell(m.accepted_rta)
              << cell(d.accepted_rta)
              << "\n";
  }

  printHeader("soundness: accepted systems must not miss in simulation");
  {
    WorkloadParams p = baseParams();
    p.utilization_per_processor = 0.4;
    const auto m =
        acceptanceSweep(ProtocolKind::kMpcp, p, kSeeds, 800, true);
    const auto d =
        acceptanceSweep(ProtocolKind::kDpcp, p, kSeeds, 800, true);
    std::cout << "mpcp: accepted " << m.accepted_rta * 100
              << "%, miss-after-accept " << m.sim_miss_given_accept * 100
              << "% (must be 0)\n";
    std::cout << "dpcp: accepted " << d.accepted_rta * 100
              << "%, miss-after-accept " << d.sim_miss_given_accept * 100
              << "% (must be 0)\n";
    if (m.sim_miss_given_accept > 0 || d.sim_miss_given_accept > 0) return 1;
  }

  printHeader(
      "dedicated sync processor: DPCP offloads gcs's to an extra CPU; "
      "MPCP instead runs extra tasks there");
  // DPCP: P tasks-processors + 1 empty sync processor hosting all
  // resources. MPCP on the same (P+1)-processor box spreads the same
  // total work over all P+1 processors (lower per-processor utilization).
  std::cout << cell("util") << cell("dpcp+sync") << cell("mpcp-spread")
            << "\n";
  for (double util : {0.4, 0.5, 0.6, 0.7}) {
    constexpr int kProcs = 4;
    struct Row {
      bool dpcp = false, mpcp = false;
    };
    const std::vector<Row> rows = exp::SweepRunner::global().map(
        kSeeds, 900, [&](int /*s*/, Rng& rng) {
          Row row;
          // DPCP: generate on kProcs processors but declare kProcs+1 and
          // pin every global resource to the empty last processor.
          {
            WorkloadParams p = baseParams();
            p.utilization_per_processor = util;
            Rng fork = rng;  // both variants replay the same seed stream
            // Build on kProcs+1 with last processor unused by tasks:
            // easiest is to generate kProcs-proc system and rebuild +1.
            const TaskSystem gen = generateWorkload(p, fork);
            TaskSystemBuilder b(kProcs + 1,
                                TaskSystemOptions{});
            for (const ResourceInfo& r : gen.resources()) {
              const ResourceId nr = b.addResource(r.name);
              b.assignSyncProcessor(nr, ProcessorId(kProcs));  // dedicated
            }
            for (const Task& t : gen.tasks()) {
              b.addTask({.name = t.name, .period = t.period,
                         .phase = t.phase,
                         .processor = t.processor.value(), .body = t.body});
            }
            const TaskSystem sys = std::move(b).build();
            row.dpcp = analyzeUnder(ProtocolKind::kDpcp, sys).report.rta_all;
          }
          // MPCP: same total load spread over kProcs+1 processors.
          {
            WorkloadParams p = baseParams();
            p.processors = kProcs + 1;
            p.utilization_per_processor =
                util * kProcs / (kProcs + 1);  // same total work
            Rng fork = rng;
            const TaskSystem sys = generateWorkload(p, fork);
            row.mpcp = analyzeUnder(ProtocolKind::kMpcp, sys).report.rta_all;
          }
          return row;
        });
    int dpcp_ok = 0, mpcp_ok = 0;
    for (const Row& row : rows) {
      dpcp_ok += row.dpcp;
      mpcp_ok += row.mpcp;
    }
    std::cout << cell(util, 12, 2)
              << cell(static_cast<double>(dpcp_ok) / kSeeds)
              << cell(static_cast<double>(mpcp_ok) / kSeeds) << "\n";
  }
  std::cout << "\nexpected shape: MPCP >= DPCP on identical hardware at\n"
               "moderate sharing (DPCP pays agent funnelling); the\n"
               "dedicated-sync-processor column shows DPCP recovering by\n"
               "spending an extra CPU on synchronization, while MPCP turns\n"
               "the same CPU into schedulable capacity.\n";

  BenchJson json("mpcp_vs_dpcp");
  json.set("threads", exp::SweepRunner::global().threadCount());
  json.set("wall_s", total.seconds());
  json.write();
  return 0;
}
