// E10 — Section 5.4 implementation costs (google-benchmark).
//
// The paper argues the shared-memory protocol is cheap because a gcs
// entry is one atomic RMW when uncontended, plus a short spinlock-guarded
// queue operation when contended. We measure:
//   * uncontended lock/unlock latency: PriorityMutex vs std::mutex vs a
//     plain TAS spinlock (the RMW floor);
//   * contended throughput with 2/4 threads for both wait modes;
//   * the bus-traffic proxy: RMW attempts per acquisition under local
//     spinning (TTAS) vs global spinning (TAS).
#include <benchmark/benchmark.h>

#include <mutex>

#include "runtime/priority_mutex.h"
#include "runtime/spinlock.h"

using namespace mpcp::runtime;

namespace {

void BM_Uncontended_TasRmw(benchmark::State& state) {
  TasLock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_Uncontended_TasRmw);

void BM_Uncontended_Spinlock(benchmark::State& state) {
  Spinlock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_Uncontended_Spinlock);

void BM_Uncontended_PriorityMutex(benchmark::State& state) {
  PriorityMutex mutex;
  for (auto _ : state) {
    mutex.lock(1);
    benchmark::DoNotOptimize(&mutex);
    mutex.unlock();
  }
  state.counters["contended"] =
      static_cast<double>(mutex.contendedAcquisitions());
}
BENCHMARK(BM_Uncontended_PriorityMutex);

void BM_Uncontended_StdMutex(benchmark::State& state) {
  std::mutex mutex;
  for (auto _ : state) {
    mutex.lock();
    benchmark::DoNotOptimize(&mutex);
    mutex.unlock();
  }
}
BENCHMARK(BM_Uncontended_StdMutex);

// ---- contended throughput (threads hammer one mutex) -------------------

PriorityMutex g_spin_mutex{WaitMode::kSpin};
PriorityMutex g_block_mutex{WaitMode::kBlock};
std::mutex g_std_mutex;
std::int64_t g_shared = 0;

void BM_Contended_PriorityMutexSpin(benchmark::State& state) {
  for (auto _ : state) {
    g_spin_mutex.lock(static_cast<std::int32_t>(state.thread_index()));
    ++g_shared;
    g_spin_mutex.unlock();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["handoffs"] = static_cast<double>(g_spin_mutex.handoffs());
  }
}
BENCHMARK(BM_Contended_PriorityMutexSpin)->Threads(2)->Threads(4);

void BM_Contended_PriorityMutexBlock(benchmark::State& state) {
  for (auto _ : state) {
    g_block_mutex.lock(static_cast<std::int32_t>(state.thread_index()));
    ++g_shared;
    g_block_mutex.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Contended_PriorityMutexBlock)->Threads(2)->Threads(4);

void BM_Contended_StdMutex(benchmark::State& state) {
  for (auto _ : state) {
    g_std_mutex.lock();
    ++g_shared;
    g_std_mutex.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Contended_StdMutex)->Threads(2)->Threads(4);

// ---- bus-traffic proxy --------------------------------------------------

void BM_BusTraffic_GlobalSpinTas(benchmark::State& state) {
  static TasLock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
  if (state.thread_index() == 0) {
    state.counters["rmw_per_acq"] = benchmark::Counter(
        static_cast<double>(lock.rmwAttempts()),
        benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_BusTraffic_GlobalSpinTas)->Threads(2);

}  // namespace

BENCHMARK_MAIN();
