// Shared helpers for the experiment binaries (bench/).
//
// Each bench reproduces one artifact of the paper (a figure, a table, or
// an analysis claim) and prints the rows the paper reports. Absolute
// numbers differ from the 1990 hardware, but the *shape* — who wins,
// by what factor, where crossovers fall — is the reproduction target
// (see EXPERIMENTS.md).
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "taskgen/generator.h"

namespace mpcp::bench {

/// Prints a header followed by a separator sized to it.
inline void printHeader(const std::string& title) {
  std::cout << "\n### " << title << "\n";
}

/// Fixed-width cell helpers.
inline std::string cell(const std::string& s, int w = 12) {
  std::ostringstream os;
  os << std::left << std::setw(w) << s;
  return os.str();
}
inline std::string cell(double v, int w = 12, int prec = 3) {
  std::ostringstream os;
  os << std::left << std::setw(w) << std::fixed << std::setprecision(prec)
     << v;
  return os.str();
}
inline std::string cell(std::int64_t v, int w = 12) {
  std::ostringstream os;
  os << std::left << std::setw(w) << v;
  return os.str();
}

/// Fraction of `seeds` random workloads accepted by the RTA under `kind`,
/// plus the fraction whose simulation misses a deadline *despite*
/// acceptance (soundness violations; must be 0).
struct AcceptanceResult {
  double accepted_rta = 0;
  double accepted_ll = 0;
  double sim_miss_given_accept = 0;  // soundness violations
  int runs = 0;
};

inline AcceptanceResult acceptanceSweep(ProtocolKind kind,
                                        const WorkloadParams& params,
                                        int seeds,
                                        std::uint64_t seed_base = 1000,
                                        bool simulate_accepted = false) {
  AcceptanceResult out;
  int accepted = 0, accepted_ll = 0, missed = 0;
  for (int s = 0; s < seeds; ++s) {
    Rng rng(seed_base + static_cast<std::uint64_t>(s));
    const TaskSystem sys = generateWorkload(params, rng);
    const ProtocolAnalysis analysis = analyzeUnder(kind, sys);
    accepted_ll += analysis.report.ll_all ? 1 : 0;
    if (analysis.report.rta_all) {
      ++accepted;
      if (simulate_accepted) {
        const SimResult r = simulate(
            kind, sys,
            {.horizon_cap = 300'000, .stop_on_deadline_miss = true,
             .record_trace = false});
        missed += r.any_deadline_miss ? 1 : 0;
      }
    }
  }
  out.runs = seeds;
  out.accepted_rta = static_cast<double>(accepted) / seeds;
  out.accepted_ll = static_cast<double>(accepted_ll) / seeds;
  out.sim_miss_given_accept =
      accepted == 0 ? 0.0 : static_cast<double>(missed) / accepted;
  return out;
}

}  // namespace mpcp::bench
