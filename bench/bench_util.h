// Shared helpers for the experiment binaries (bench/).
//
// Each bench reproduces one artifact of the paper (a figure, a table, or
// an analysis claim) and prints the rows the paper reports. Absolute
// numbers differ from the 1990 hardware, but the *shape* — who wins,
// by what factor, where crossovers fall — is the reproduction target
// (see EXPERIMENTS.md).
//
// Ensemble sweeps fan their independent seeds across cores through
// exp::SweepRunner (thread count: MPCP_THREADS, default all cores);
// per-seed RNG streams and seed-ordered reduction keep every aggregate
// bit-identical to a serial run. Wall-clock timing and the BENCH_*.json
// writer below give every bench a machine-readable perf trajectory.
#pragma once

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "exp/sweep_runner.h"
#include "taskgen/generator.h"

namespace mpcp::bench {

/// Wall-clock stopwatch (steady clock), started at construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since construction / last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ----- baseline provenance -----
// Every BENCH_*.json records where its numbers came from, so a baseline
// comparison (tools/bench_diff) can tell an apples-to-apples regression
// from a hardware change: bench_diff downgrades failures to warnings
// when the CPU model differs from the baseline's.

/// Commit the numbers were measured at: $GITHUB_SHA (Actions) or
/// $MPCP_GIT_SHA (local override), else "unknown".
inline std::string gitSha() {
  for (const char* var : {"GITHUB_SHA", "MPCP_GIT_SHA"}) {
    const char* v = std::getenv(var);
    if (v != nullptr && *v != '\0') return v;
  }
  return "unknown";
}

/// First "model name" entry of /proc/cpuinfo, or "unknown".
inline std::string cpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const auto first = line.find_first_not_of(" \t", colon + 1);
    if (first == std::string::npos) continue;
    return line.substr(first);
  }
  return "unknown";
}

/// UTC timestamp of the run, ISO 8601.
inline std::string isoDate() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Accumulates key/number pairs and writes them as BENCH_<name>.json —
/// one flat JSON object per bench run, so successive PRs (or successive
/// local runs) can be diffed into a perf trajectory. Output lands in
/// $MPCP_BENCH_DIR if set, else the current directory.
///
/// Schema v2: every file carries provenance (git_sha, cpu_model, date)
/// in addition to the bench's own flat numeric fields.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    set("bench", name_);
    set("schema_version", std::int64_t{2});
    set("git_sha", gitSha());
    set("cpu_model", cpuModel());
    set("date", isoDate());
  }

  void set(const std::string& key, double v) {
    std::ostringstream os;
    os << std::setprecision(10) << v;
    fields_.emplace_back(key, os.str());
  }
  void set(const std::string& key, std::int64_t v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, int v) { set(key, std::int64_t{v}); }
  void set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
  }
  void set(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    fields_.emplace_back(key, quoted);
  }

  [[nodiscard]] std::string path() const {
    const char* dir = std::getenv("MPCP_BENCH_DIR");
    const std::string prefix = dir != nullptr ? std::string(dir) + "/" : "";
    return prefix + "BENCH_" + name_ + ".json";
  }

  /// Writes the file; returns false (and prints a warning) on I/O error.
  bool write() const {
    const std::string file = path();
    std::ofstream out(file);
    out << "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << "  \"" << fields_[i].first << "\": " << fields_[i].second
          << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    out.flush();
    if (!out) {
      std::cerr << "warning: could not write " << file << "\n";
      return false;
    }
    std::cout << "wrote " << file << "\n";
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Prints a header followed by a separator sized to it.
inline void printHeader(const std::string& title) {
  std::cout << "\n### " << title << "\n";
}

/// Fixed-width cell helpers.
inline std::string cell(const std::string& s, int w = 12) {
  std::ostringstream os;
  os << std::left << std::setw(w) << s;
  return os.str();
}
inline std::string cell(double v, int w = 12, int prec = 3) {
  std::ostringstream os;
  os << std::left << std::setw(w) << std::fixed << std::setprecision(prec)
     << v;
  return os.str();
}
inline std::string cell(std::int64_t v, int w = 12) {
  std::ostringstream os;
  os << std::left << std::setw(w) << v;
  return os.str();
}

/// Fraction of `seeds` random workloads accepted by the RTA under `kind`,
/// plus the fraction whose simulation misses a deadline *despite*
/// acceptance (soundness violations; must be 0).
struct AcceptanceResult {
  double accepted_rta = 0;
  double accepted_ll = 0;
  double sim_miss_given_accept = 0;  // soundness violations
  int runs = 0;
};

/// Seeds fan out across exp::SweepRunner threads; the fold below walks
/// rows in seed order, so the result is identical at any thread count.
/// Pass an explicit `runner` to pin the thread count (tests); nullptr
/// uses the process-wide runner (MPCP_THREADS).
inline AcceptanceResult acceptanceSweep(ProtocolKind kind,
                                        const WorkloadParams& params,
                                        int seeds,
                                        std::uint64_t seed_base = 1000,
                                        bool simulate_accepted = false,
                                        exp::SweepRunner* runner = nullptr) {
  struct SeedRow {
    bool rta = false;
    bool ll = false;
    bool miss = false;
  };
  exp::SweepRunner& r = runner != nullptr ? *runner : exp::SweepRunner::global();
  const std::vector<SeedRow> rows =
      r.map(seeds, seed_base, [&](int /*s*/, Rng& rng) {
        SeedRow row;
        const TaskSystem sys = generateWorkload(params, rng);
        const ProtocolAnalysis analysis = analyzeUnder(kind, sys);
        row.ll = analysis.report.ll_all;
        row.rta = analysis.report.rta_all;
        if (row.rta && simulate_accepted) {
          const SimResult sim = simulate(
              kind, sys,
              {.horizon_cap = 300'000, .stop_on_deadline_miss = true,
               .record_trace = false});
          row.miss = sim.any_deadline_miss;
        }
        return row;
      });

  AcceptanceResult out;
  int accepted = 0, accepted_ll = 0, missed = 0;
  for (const SeedRow& row : rows) {
    accepted_ll += row.ll ? 1 : 0;
    if (row.rta) {
      ++accepted;
      missed += row.miss ? 1 : 0;
    }
  }
  out.runs = seeds;
  out.accepted_rta = static_cast<double>(accepted) / seeds;
  out.accepted_ll = static_cast<double>(accepted_ll) / seeds;
  out.sim_miss_given_accept =
      accepted == 0 ? 0.0 : static_cast<double>(missed) / accepted;
  return out;
}

}  // namespace mpcp::bench
