// E2 — Figure 3-2 / Example 2: inheritance alone cannot bound remote
// blocking. tau3 (on P2) waits for global S held by low-priority tau2
// (on P1); high-priority tau1's *normal execution* on P1 keeps extending
// the wait under PIP. MPCP's elevated gcs priority removes the effect.
//
// Paper claim: "even the enforcement of priority inheritance does not
// force any changes ... the blocking duration of J3 can be a function of
// the entire execution time of job J1."
#include <iostream>

#include "bench_util.h"
#include "core/simulate.h"
#include "taskgen/paper_examples.h"
#include "test_support.h"

using namespace mpcp;
using namespace mpcp::bench;

int main() {
  printHeader("Figure 3-2: tau3's worst blocking vs tau1's WCET");
  std::cout << cell("tau1 WCET") << cell("pip") << cell("mpcp")
            << cell("dpcp") << "\n";
  for (Duration w : {5, 10, 20, 40, 80}) {
    std::cout << cell(w);
    for (const ProtocolKind kind :
         {ProtocolKind::kPip, ProtocolKind::kMpcp, ProtocolKind::kDpcp}) {
      const paper::Example2 ex = paper::makeExample2(w);
      const SimResult r = simulate(kind, ex.sys, {.horizon = 1200});
      std::cout << cell(maxBlockedOfTask(r, ex.tau3));
    }
    std::cout << "\n";
  }
  std::cout << "\nexpected shape: 'pip' grows with tau1's WCET (J3 waits\n"
               "through J1's whole execution); 'mpcp' and 'dpcp' are flat —\n"
               "blocking is a function of critical sections only (Theorem 2).\n";
  return 0;
}
