// Overhead-model transformation (Section 5.2/5.4 costs).
#include <gtest/gtest.h>

#include "analysis/profiles.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/overheads.h"

namespace mpcp {
namespace {

TaskSystem smallSystem() {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const ResourceId l = b.addResource("L");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(5).section(g, 4).section(l, 3)
                        .compute(2)});
  b.addTask({.name = "b", .period = 200, .processor = 1,
             .body = Body{}.section(g, 6).compute(1)});
  return std::move(b).build();
}

TEST(Overheads, LockUnlockCostsLandInsideSections) {
  const TaskSystem sys = smallSystem();
  const TaskSystem inflated = applyOverheadModel(
      sys, {.lock_entry = 2, .unlock_exit = 3}, false);
  const auto profiles = buildProfiles(inflated);
  // a's G section: 4 + 2 + 3 = 9; L section: 3 + 2 + 3 = 8.
  EXPECT_EQ(profiles[0].global_sections[0].duration, 9);
  EXPECT_EQ(profiles[0].local_sections[0].duration, 8);
  // WCET grows by 2 sections x 5 overhead.
  EXPECT_EQ(inflated.tasks()[0].wcet, sys.tasks()[0].wcet + 10);
}

TEST(Overheads, MigrationLegsOnlyOnGlobalSectionsWhenEnabled) {
  const TaskSystem sys = smallSystem();
  const OverheadModel model{.lock_entry = 1, .unlock_exit = 1,
                            .migration_leg = 10};
  const TaskSystem local_exec = applyOverheadModel(sys, model, false);
  const TaskSystem remote_exec = applyOverheadModel(sys, model, true);
  const auto pl = buildProfiles(local_exec);
  const auto pr = buildProfiles(remote_exec);
  // Without migration: G section = 4 + 1 + 1 = 6. With: + 2 legs = 26.
  EXPECT_EQ(pl[0].global_sections[0].duration, 6);
  EXPECT_EQ(pr[0].global_sections[0].duration, 26);
  // Local sections never pay migration.
  EXPECT_EQ(pl[0].local_sections[0].duration, 5);
  EXPECT_EQ(pr[0].local_sections[0].duration, 5);
}

TEST(Overheads, ZeroModelIsIdentity) {
  const TaskSystem sys = smallSystem();
  const TaskSystem same = applyOverheadModel(sys, {}, true);
  for (std::size_t i = 0; i < sys.tasks().size(); ++i) {
    EXPECT_TRUE(same.tasks()[i].body == sys.tasks()[i].body);
  }
}

TEST(Overheads, InflatedSystemStillSimulates) {
  const TaskSystem sys = smallSystem();
  const TaskSystem inflated = applyOverheadModel(
      sys, {.lock_entry = 2, .unlock_exit = 2, .migration_leg = 5}, true);
  const SimResult r = simulate(ProtocolKind::kDpcp, inflated,
                               {.horizon = 2000});
  EXPECT_FALSE(r.any_deadline_miss);
}

}  // namespace
}  // namespace mpcp
