// Theorem 3 (Liu-Layland with blocking) and the response-time analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/schedulability.h"
#include "core/analyzer.h"
#include "model/task_system.h"

namespace mpcp {
namespace {

TEST(LiuLayland, BoundValues) {
  EXPECT_DOUBLE_EQ(liuLaylandBound(1), 1.0);
  EXPECT_NEAR(liuLaylandBound(2), 0.8284, 1e-3);
  EXPECT_NEAR(liuLaylandBound(3), 0.7798, 1e-3);
  // n -> ln 2 (the 69% the paper quotes in Section 3.2).
  EXPECT_NEAR(liuLaylandBound(1000), std::log(2.0), 1e-3);
}

TaskSystem twoTask(Duration c1, Duration t1, Duration c2, Duration t2) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = t1, .processor = 0,
             .body = Body{}.compute(c1)});
  b.addTask({.name = "b", .period = t2, .processor = 0,
             .body = Body{}.compute(c2)});
  return std::move(b).build();
}

TEST(Schedulability, AcceptsLowUtilization) {
  const TaskSystem sys = twoTask(1, 10, 2, 20);  // U = 0.2
  const std::vector<Duration> blocking(2, 0);
  const auto report = analyzeSchedulability(sys, blocking);
  EXPECT_TRUE(report.ll_all);
  EXPECT_TRUE(report.rta_all);
}

TEST(Schedulability, RtaAcceptsWhatLlRejects) {
  // U = 0.5 + 0.45 = 0.95 > LL bound (0.828) but harmonic-ish periods
  // make it RTA-schedulable: R_b = 9 + ceil(9/10)*5 ... iterate: 19 <= 20.
  const TaskSystem sys = twoTask(5, 10, 9, 20);
  const std::vector<Duration> blocking(2, 0);
  const auto report = analyzeSchedulability(sys, blocking);
  EXPECT_FALSE(report.ll_all);
  EXPECT_TRUE(report.rta_all);
  EXPECT_EQ(report.tasks[1].response_time, 19);
}

TEST(Schedulability, RejectsOverload) {
  const TaskSystem sys = twoTask(6, 10, 9, 20);  // U = 1.05
  const std::vector<Duration> blocking(2, 0);
  const auto report = analyzeSchedulability(sys, blocking);
  EXPECT_FALSE(report.ll_all);
  EXPECT_FALSE(report.rta_all);
  EXPECT_GT(report.tasks[1].response_time, 20);
}

TEST(Schedulability, BlockingTermTipsTheVerdict) {
  const TaskSystem sys = twoTask(2, 10, 4, 20);  // U = 0.4: comfortable
  {
    const std::vector<Duration> blocking{0, 0};
    EXPECT_TRUE(analyzeSchedulability(sys, blocking).rta_all);
  }
  {
    // B_a = 9 pushes a's response past its 10-tick deadline.
    const std::vector<Duration> blocking{9, 0};
    const auto report = analyzeSchedulability(sys, blocking);
    EXPECT_FALSE(report.rta_all);
    EXPECT_FALSE(report.tasks[0].rta_ok);
    EXPECT_TRUE(report.tasks[1].rta_ok);
  }
}

TEST(Schedulability, JitterInflatesInterference) {
  // b sees a's interference; with jitter J_a = 6, one extra preemption
  // window appears: R_b grows.
  const TaskSystem sys = twoTask(3, 10, 5, 30);
  const std::vector<Duration> blocking(2, 0);
  const auto plain = analyzeSchedulability(sys, blocking);
  const std::vector<Duration> jitter{6, 0};
  const auto jittered = analyzeSchedulability(sys, blocking, jitter);
  EXPECT_GT(jittered.tasks[1].response_time, plain.tasks[1].response_time);
}

TEST(Schedulability, PerProcessorRanksIndependent) {
  // Two processors with one task each: both rank 1, bound = 1.0.
  TaskSystemBuilder b(2);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(9)});
  b.addTask({.name = "b", .period = 10, .processor = 1,
             .body = Body{}.compute(9)});
  const TaskSystem sys = std::move(b).build();
  const std::vector<Duration> blocking(2, 0);
  const auto report = analyzeSchedulability(sys, blocking);
  EXPECT_TRUE(report.ll_all);  // 0.9 <= 1.0 per processor
  EXPECT_TRUE(report.rta_all);
}

TEST(Schedulability, RejectsMismatchedSpans) {
  const TaskSystem sys = twoTask(1, 10, 1, 20);
  const std::vector<Duration> wrong(1, 0);
  EXPECT_THROW(analyzeSchedulability(sys, wrong), InvariantError);
}

TEST(Analyzer, EndToEndMpcpVerdictStructure) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(5).section(g, 2).compute(3)});
  b.addTask({.name = "b", .period = 200, .processor = 1,
             .body = Body{}.compute(10).section(g, 4).compute(6)});
  const TaskSystem sys = std::move(b).build();
  const ProtocolAnalysis pa = analyzeUnder(ProtocolKind::kMpcp, sys);
  ASSERT_EQ(pa.blocking.size(), 2u);
  // a's only blocking source is b's gcs (remote, lower priority): 4.
  EXPECT_EQ(pa.blocking[0], 4);
  EXPECT_TRUE(pa.report.rta_all);
  // a suspends once for up to 4 ticks -> jitter 4.
  EXPECT_EQ(pa.jitter[0], 4);
}

TEST(Analyzer, RefusesUnboundedProtocols) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.section(g, 1)});
  b.addTask({.name = "b", .period = 20, .processor = 1,
             .body = Body{}.section(g, 1)});
  const TaskSystem sys = std::move(b).build();
  EXPECT_THROW(analyzeUnder(ProtocolKind::kNone, sys), ConfigError);
  EXPECT_THROW(analyzeUnder(ProtocolKind::kPip, sys), ConfigError);
}

TEST(Analyzer, PcpPathForUniprocessorSystems) {
  TaskSystemBuilder b(1);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "a", .period = 20, .phase = 1, .processor = 0,
             .body = Body{}.compute(1).section(s, 2).compute(1)});
  b.addTask({.name = "b", .period = 40, .processor = 0,
             .body = Body{}.section(s, 5).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const ProtocolAnalysis pa = analyzeUnder(ProtocolKind::kPcp, sys);
  EXPECT_EQ(pa.blocking[0], 5);  // one lower-priority cs
  EXPECT_EQ(pa.blocking[1], 0);  // lowest priority: nothing below it
  EXPECT_TRUE(pa.report.rta_all);
}

}  // namespace
}  // namespace mpcp
