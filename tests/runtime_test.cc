// Real-thread tests for the Section 5.4 lock construction.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/priority_mutex.h"
#include "runtime/spinlock.h"

namespace mpcp::runtime {
namespace {

TEST(Spinlock, MutualExclusionCounter) {
  Spinlock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;  // data race iff mutual exclusion is broken
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

class PriorityMutexTest : public ::testing::TestWithParam<WaitMode> {};

TEST_P(PriorityMutexTest, MutualExclusionCounter) {
  PriorityMutex mutex(GetParam());
  std::int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        mutex.lock(t);
        ++counter;
        mutex.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST_P(PriorityMutexTest, HandoffFollowsPriorityOrder) {
  // Hold the lock; queue waiters with priorities 1..5 in scrambled order;
  // release and verify the acquisition order is 5,4,3,2,1.
  PriorityMutex mutex(GetParam());
  mutex.lock(100);  // held by the main thread

  constexpr int kWaiters = 5;
  const int arrival_order[kWaiters] = {3, 1, 5, 2, 4};
  std::atomic<int> queued{0};
  std::vector<int> acquisition;
  Spinlock acq_lock;
  std::vector<std::thread> threads;
  for (int k = 0; k < kWaiters; ++k) {
    const int prio = arrival_order[k];
    threads.emplace_back([&, prio] {
      // Roughly serialize arrivals so the queue order is the scrambled
      // order (exact serialization is impossible without intrusive hooks,
      // but the final acquisition order must be by priority regardless).
      queued.fetch_add(1);
      mutex.lock(prio);
      acq_lock.lock();
      acquisition.push_back(prio);
      acq_lock.unlock();
      mutex.unlock();
    });
    // Give the thread time to park before spawning the next.
    while (queued.load() <= k) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  mutex.unlock();
  for (auto& th : threads) th.join();

  ASSERT_EQ(acquisition.size(), static_cast<std::size_t>(kWaiters));
  EXPECT_EQ(acquisition, (std::vector<int>{5, 4, 3, 2, 1}));
  EXPECT_GE(mutex.handoffs(), static_cast<std::uint64_t>(kWaiters));
}

TEST_P(PriorityMutexTest, StressNoLostWakeups) {
  // Many threads hammer the lock; if a wakeup is ever lost the test hangs
  // (and the harness timeout flags it).
  PriorityMutex mutex(GetParam());
  std::atomic<std::int64_t> inside{0};
  std::atomic<bool> violation{false};
  constexpr int kThreads = 8;
  constexpr int kIters = 3'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        mutex.lock(i % 7);
        if (inside.fetch_add(1) != 0) violation = true;
        inside.fetch_sub(1);
        mutex.unlock();
      }
      (void)t;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
}

TEST_P(PriorityMutexTest, TryLockNeverQueues) {
  PriorityMutex mutex(GetParam());
  EXPECT_TRUE(mutex.try_lock());
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

INSTANTIATE_TEST_SUITE_P(BothWaitModes, PriorityMutexTest,
                         ::testing::Values(WaitMode::kSpin, WaitMode::kBlock),
                         [](const auto& param_info) {
                           return param_info.param == WaitMode::kSpin
                                      ? "spin"
                                      : "block";
                         });

TEST(TasLock, CountsRmwAttempts) {
  TasLock lock;
  lock.lock();
  lock.unlock();
  EXPECT_GE(lock.rmwAttempts(), 1u);
}

}  // namespace
}  // namespace mpcp::runtime
