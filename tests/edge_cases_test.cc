// Edge cases across the engine and protocols: degenerate bodies, exact
// boundary timing, configuration limits, constrained deadlines.
#include <gtest/gtest.h>

#include "analysis/ceilings.h"
#include "core/mpcp_protocol.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "sim/engine.h"
#include "test_util.h"

namespace mpcp {
namespace {

using ::mpcp::testing::countEvents;
using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

TEST(EdgeCases, BodyStartingWithLock) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const TaskId a = b.addTask({.name = "a", .period = 20, .processor = 0,
                              .body = Body{}.lock(g).compute(2).unlock(g)});
  b.addTask({.name = "b", .period = 30, .processor = 1,
             .body = Body{}.lock(g).compute(3).unlock(g)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 60});
  EXPECT_EQ(finishOf(r, a, 0), 2);
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(EdgeCases, FullUtilizationBackToBackJobs) {
  TaskSystemBuilder b(1);
  const TaskId t = b.addTask({.name = "t", .period = 5, .processor = 0,
                              .body = Body{}.compute(5)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 50});
  EXPECT_FALSE(r.any_deadline_miss);
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(finishOf(r, t, k), (k + 1) * 5);
  }
}

TEST(EdgeCases, ConstrainedDeadlineMissDetected) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "tight", .period = 20, .relative_deadline = 5,
             .processor = 0, .body = Body{}.compute(4)});
  b.addTask({.name = "long", .period = 40, .relative_deadline = 40,
             .processor = 0, .body = Body{}.compute(10)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 80});
  // RM by period: "tight" has higher priority, so it always meets D=5.
  EXPECT_FALSE(r.any_deadline_miss);

  TaskSystemBuilder b2(1);
  b2.addTask({.name = "tight", .period = 40, .relative_deadline = 5,
              .processor = 0, .body = Body{}.compute(4)});
  b2.addTask({.name = "long", .period = 20, .processor = 0,
              .body = Body{}.compute(10)});
  const TaskSystem sys2 = std::move(b2).build();
  const SimResult r2 = simulate(ProtocolKind::kNone, sys2, {.horizon = 80});
  // Now "long" outranks "tight" (shorter period): tight misses D=5.
  EXPECT_TRUE(r2.any_deadline_miss);
}

TEST(EdgeCases, TraceRecordingOffStillProducesStats) {
  TaskSystemBuilder b(1);
  const TaskId t = b.addTask({.name = "t", .period = 10, .processor = 0,
                              .body = Body{}.compute(3)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys,
                               {.horizon = 50, .record_trace = false});
  EXPECT_TRUE(r.trace.empty());
  EXPECT_TRUE(r.segments.empty());
  EXPECT_EQ(r.per_task[0].jobs_finished, 5);
  EXPECT_EQ(finishOf(r, t, 0), 3);
}

TEST(EdgeCases, JobCapAborts) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 1, .processor = 0,
             .body = Body{}.compute(1)});
  const TaskSystem sys = std::move(b).build();
  SimConfig config;
  config.horizon = 1'000;
  config.max_jobs = 10;
  EXPECT_THROW(simulate(ProtocolKind::kNone, sys, config), InvariantError);
}

TEST(EdgeCases, AutoHorizonCapsOnHugeHyperperiod) {
  TaskSystemBuilder b(1);
  // Coprime large periods: hyperperiod ~ 10^9, must be capped.
  b.addTask({.name = "a", .period = 99'991, .processor = 0,
             .body = Body{}.compute(1)});
  b.addTask({.name = "b", .period = 99'989, .processor = 0,
             .body = Body{}.compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys,
                               {.horizon_cap = 200'000});
  EXPECT_LE(r.horizon, 200'000);
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(EdgeCases, EngineRunTwiceThrows) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 10, .processor = 0,
             .body = Body{}.compute(1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  MpcpProtocol protocol(sys, tables);
  Engine engine(sys, protocol, {.horizon = 20});
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), InvariantError);
}

TEST(EdgeCases, UncontendedGcsStillElevates) {
  // Rule 3 is unconditional: even with the semaphore free, the gcs runs
  // elevated, so a higher-priority local arrival cannot preempt it.
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 1,
                               .processor = 0, .body = Body{}.compute(2)});
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.section(g, 3).compute(1)});
  b.addTask({.name = "rem", .period = 200, .phase = 100, .processor = 1,
             .body = Body{}.section(g, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  // lo's gcs [0,3) is never contended, yet hi (arriving at 1) must wait.
  EXPECT_EQ(finishOf(r, hi, 0), 5);
  EXPECT_EQ(maxBlockedOf(r, hi), 2);
  (void)lo;
}

TEST(EdgeCases, TwoGlobalResourcesHaveIndependentQueues) {
  TaskSystemBuilder b(3);
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "h1", .period = 100, .processor = 0,
             .body = Body{}.section(g1, 10).compute(1)});
  b.addTask({.name = "h2", .period = 110, .processor = 1,
             .body = Body{}.section(g2, 10).compute(1)});
  const TaskId w1 = b.addTask({.name = "w1", .period = 50, .phase = 2,
                               .processor = 2,
                               .body = Body{}.section(g1, 1).compute(1)});
  const TaskId w2 = b.addTask({.name = "w2", .period = 60, .phase = 2,
                               .processor = 2,
                               .body = Body{}.section(g2, 1).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 60});
  // Both waiters blocked on *different* resources; each is released by
  // its own holder at t=10, independently.
  EXPECT_GT(finishOf(r, w1, 0), 10);
  EXPECT_GT(finishOf(r, w2, 0), 10);
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(EdgeCases, SequentialRelockOfSameSemaphore) {
  TaskSystemBuilder b(1);
  const ResourceId s = b.addResource("S");
  const TaskId t = b.addTask({.name = "t", .period = 30, .processor = 0,
                              .body = Body{}.section(s, 2).compute(1)
                                         .section(s, 2).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kPcp, sys, {.horizon = 30});
  EXPECT_EQ(finishOf(r, t, 0), 6);
}

TEST(EdgeCases, DpcpSyncProcessorEqualsHostNoMigration) {
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  const TaskId a = b.addTask({.name = "a", .period = 40, .processor = 0,
                              .body = Body{}.compute(1).section(s, 2)
                                         .compute(1)});
  b.addTask({.name = "c", .period = 60, .processor = 1,
             .body = Body{}.section(s, 1).compute(1)});
  b.assignSyncProcessor(s, ProcessorId(0));  // a's own host
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 100});
  EXPECT_EQ(countEvents(r, Ev::kMigrate, a), 0);  // migrate() no-ops
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(EdgeCases, IdenticalPhaseReleaseOrderIsDeterministicFcfs) {
  // Two same-period tasks released together on one processor: earlier
  // declaration = higher RM tie-break priority = runs first, every period.
  TaskSystemBuilder b(1);
  const TaskId first = b.addTask({.name = "first", .period = 10,
                                  .processor = 0,
                                  .body = Body{}.compute(2)});
  const TaskId second = b.addTask({.name = "second", .period = 10,
                                   .processor = 0,
                                   .body = Body{}.compute(2)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 50});
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(finishOf(r, first, k), k * 10 + 2);
    EXPECT_EQ(finishOf(r, second, k), k * 10 + 4);
  }
}

TEST(EdgeCases, WaiterQueuedAtExactReleaseInstant) {
  // w requests S at the same instant the holder releases it; the settle
  // loop must resolve the race deterministically (w is granted within
  // the same tick, one way or the other — never lost).
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "holder", .period = 100, .processor = 0,
             .body = Body{}.section(s, 5).compute(1)});
  const TaskId w = b.addTask({.name = "w", .period = 50, .phase = 5,
                              .processor = 1,
                              .body = Body{}.section(s, 1).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  EXPECT_GE(finishOf(r, w, 0), 0);
  EXPECT_LE(finishOf(r, w, 0), 8);
  EXPECT_FALSE(r.any_deadline_miss);
}

}  // namespace
}  // namespace mpcp
