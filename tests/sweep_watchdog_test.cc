// Hardened-sweep tests: the wall-clock watchdog in mapGuarded cancels a
// runaway simulation (via SimConfig::cancel -> SimCancelled) and records
// a RunFailure while every other seed still produces its row, at any
// thread count; ThreadPool propagates a worker exception instead of
// terminating and stays usable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "core/simulate.h"
#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"
#include "model/task_system.h"

namespace mpcp {
namespace {

TaskSystem tinySystem() {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 10, .processor = 0,
             .body = Body{}.compute(3)});
  return std::move(b).build();
}

/// Simulates `sys` with the guard's cancel flag wired in. `horizon` huge
/// = a runaway run only the watchdog can stop.
std::int64_t guardedRun(const TaskSystem& sys, Time horizon,
                        const exp::RunGuard& guard) {
  SimConfig config;
  config.horizon = horizon;
  config.record_trace = false;
  config.max_jobs = std::numeric_limits<std::int64_t>::max();
  config.cancel = guard.cancel;
  return static_cast<std::int64_t>(
      simulate(ProtocolKind::kMpcp, sys, config).jobs.size());
}

TEST(SweepWatchdog, RunawayRunIsCancelledOthersSurvive) {
  const TaskSystem sys = tinySystem();
  constexpr int kSeeds = 5;
  constexpr int kRunaway = 2;

  for (const int threads : {1, 2, 4}) {
    exp::SweepRunner runner(threads);
    exp::GuardOptions opt;
    opt.wall_limit_s = 0.05;
    const auto out = runner.mapGuarded(
        kSeeds, /*seed_base=*/7, opt,
        [&](int s, Rng&, const exp::RunGuard& guard) {
          const Time horizon = s == kRunaway ? Time{2'000'000'000} : Time{200};
          return guardedRun(sys, horizon, guard);
        });

    ASSERT_EQ(out.failures.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(out.failures[0].seed, kRunaway);
    EXPECT_TRUE(out.failures[0].timed_out);
    EXPECT_FALSE(out.failures[0].error.empty());
    ASSERT_EQ(out.rows.size(), static_cast<std::size_t>(kSeeds));
    for (int s = 0; s < kSeeds; ++s) {
      if (s == kRunaway) {
        EXPECT_FALSE(out.rows[static_cast<std::size_t>(s)].has_value());
      } else {
        ASSERT_TRUE(out.rows[static_cast<std::size_t>(s)].has_value())
            << "seed " << s << " threads=" << threads;
        EXPECT_EQ(*out.rows[static_cast<std::size_t>(s)], 20);  // 200/10 jobs
      }
    }
  }
}

TEST(SweepWatchdog, ThrowingRunBecomesFailureNotTimeout) {
  exp::SweepRunner runner(2);
  const auto out = runner.mapGuarded(
      4, /*seed_base=*/1, exp::GuardOptions{},
      [](int s, Rng&, const exp::RunGuard&) -> int {
        if (s == 1) throw std::runtime_error("boom");
        return s * 10;
      });
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].seed, 1);
  EXPECT_FALSE(out.failures[0].timed_out);
  EXPECT_EQ(out.failures[0].error, "boom");
  EXPECT_EQ(*out.rows[0], 0);
  EXPECT_FALSE(out.rows[1].has_value());
  EXPECT_EQ(*out.rows[2], 20);
  EXPECT_EQ(*out.rows[3], 30);
}

TEST(SweepWatchdog, EngineThrowsSimCancelledOnRaisedFlag) {
  const TaskSystem sys = tinySystem();
  std::atomic<bool> cancel{true};
  SimConfig config;
  config.horizon = 1000;
  config.cancel = &cancel;
  EXPECT_THROW((void)simulate(ProtocolKind::kMpcp, sys, config),
               SimCancelled);
}

TEST(ThreadPool, WorkerExceptionPropagatesAndPoolSurvives) {
  exp::ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.parallelFor(16, [&](std::int64_t i) {
      ++ran;
      if (i == 5) throw std::runtime_error("task failed");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // Every iteration still ran (the pool drains before rethrowing) and the
  // pool is reusable — a dead worker would hang this second call.
  EXPECT_EQ(ran.load(), 16);
  std::atomic<int> again{0};
  pool.parallelFor(8, [&](std::int64_t) { ++again; });
  EXPECT_EQ(again.load(), 8);
}

TEST(ThreadPool, FirstExceptionWinsAcrossManyThrowers) {
  exp::ThreadPool pool(4);
  try {
    pool.parallelFor(64, [&](std::int64_t i) {
      if (i % 2 == 0) throw std::runtime_error("even failed");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "even failed");
  }
  std::atomic<int> ok{0};
  pool.parallelFor(4, [&](std::int64_t) { ++ok; });
  EXPECT_EQ(ok.load(), 4);
}

}  // namespace
}  // namespace mpcp
