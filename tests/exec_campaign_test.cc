// runCampaign resume semantics (ISSUE 5 tentpole): a journal cut short
// mid-campaign resumes into payloads identical to an uninterrupted run,
// `done` rows are reused verbatim (never recomputed), and config
// mismatches or missing --resume are refused up front.
#include "exec/campaign.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "exec/journal.h"
#include "exp/sweep_runner.h"

namespace mpcp::exec {
namespace {

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/mpcp_campaign_" + name + "_" +
         std::to_string(::getpid());
}

std::string rowFor(int s, Rng& rng) {
  return std::to_string(s) + "," + std::to_string(rng.uniformInt(0, 1 << 20));
}

TEST(Campaign, RunKeyIsDerivedSeed) {
  EXPECT_EQ(runKey(100, 0), "s100");
  EXPECT_EQ(runKey(100, 7), "s107");
}

TEST(Campaign, JournalThenFullResumeSkipsEverything) {
  const std::string path = tempPath("full_resume");
  std::remove(path.c_str());
  exp::SweepRunner runner(2);
  CampaignOptions options;
  options.journal_path = path;
  options.config_fingerprint = "test-v1 seeds=5";

  const CampaignOutcome first = runCampaign(runner, 5, 100, options, rowFor);
  ASSERT_TRUE(first.complete());
  EXPECT_EQ(first.exec.resumed_skips, 0u);

  options.resume = true;
  std::atomic<int> executions{0};
  const CampaignOutcome second =
      runCampaign(runner, 5, 100, options, [&](int s, Rng& rng) {
        executions.fetch_add(1);
        return rowFor(s, rng);
      });
  ASSERT_TRUE(second.complete());
  EXPECT_EQ(executions.load(), 0) << "resume must not re-execute done runs";
  EXPECT_EQ(second.exec.resumed_skips, 5u);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(*second.payloads[static_cast<std::size_t>(s)],
              *first.payloads[static_cast<std::size_t>(s)]);
  }
  std::remove(path.c_str());
}

TEST(Campaign, PartialJournalResumesToIdenticalPayloads) {
  const std::string path = tempPath("partial");
  std::remove(path.c_str());
  exp::SweepRunner runner(2);

  // Golden: uninterrupted, journal-free run.
  const CampaignOutcome golden =
      runCampaign(runner, 6, 100, CampaignOptions{}, rowFor);
  ASSERT_TRUE(golden.complete());

  // First attempt: seeds 3..5 fail (as if the machine was sick); their
  // `fail` records leave them pending.
  CampaignOptions options;
  options.journal_path = path;
  options.config_fingerprint = "test-v1 seeds=6";
  const CampaignOutcome crippled =
      runCampaign(runner, 6, 100, options, [](int s, Rng& rng) {
        if (s >= 3) throw std::runtime_error("transient failure");
        return rowFor(s, rng);
      });
  EXPECT_FALSE(crippled.complete());
  EXPECT_EQ(crippled.failures.size(), 3u);
  EXPECT_EQ(crippled.exec.failed, 3u);

  // Resume with a healthy body: only the failed seeds re-run, and the
  // payload vector matches the golden run byte for byte.
  options.resume = true;
  std::atomic<int> executions{0};
  const CampaignOutcome resumed =
      runCampaign(runner, 6, 100, options, [&](int s, Rng& rng) {
        executions.fetch_add(1);
        return rowFor(s, rng);
      });
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(resumed.exec.resumed_skips, 3u);
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(*resumed.payloads[static_cast<std::size_t>(s)],
              *golden.payloads[static_cast<std::size_t>(s)]);
  }
  std::remove(path.c_str());
}

TEST(Campaign, StartWithoutDoneIsReRun) {
  // Simulate a driver SIGKILLed mid-run: the journal holds done records
  // for seeds 0-1 and a bare start for seed 2.
  const std::string path = tempPath("torn_run");
  std::remove(path.c_str());
  exp::SweepRunner runner(1);
  {
    CampaignJournal journal(path);
    journal.append(RecordKind::kMeta, "config", "test-v1");
    Rng rng0 = exp::SweepRunner::rngFor(100, 0);
    journal.append(RecordKind::kDone, runKey(100, 0), rowFor(0, rng0));
    Rng rng1 = exp::SweepRunner::rngFor(100, 1);
    journal.append(RecordKind::kDone, runKey(100, 1), rowFor(1, rng1));
    journal.append(RecordKind::kStart, runKey(100, 2), "");
  }
  CampaignOptions options;
  options.journal_path = path;
  options.config_fingerprint = "test-v1";
  options.resume = true;
  std::atomic<int> executions{0};
  const CampaignOutcome outcome =
      runCampaign(runner, 3, 100, options, [&](int s, Rng& rng) {
        executions.fetch_add(1);
        return rowFor(s, rng);
      });
  ASSERT_TRUE(outcome.complete());
  EXPECT_EQ(executions.load(), 1);  // only the torn seed 2 re-ran
  EXPECT_EQ(outcome.exec.resumed_skips, 2u);
  std::remove(path.c_str());
}

TEST(Campaign, NonEmptyJournalWithoutResumeRefused) {
  const std::string path = tempPath("no_resume");
  std::remove(path.c_str());
  exp::SweepRunner runner(1);
  CampaignOptions options;
  options.journal_path = path;
  options.config_fingerprint = "test-v1";
  const CampaignOutcome first = runCampaign(runner, 2, 100, options, rowFor);
  ASSERT_TRUE(first.complete());
  EXPECT_THROW(
      { (void)runCampaign(runner, 2, 100, options, rowFor); }, ConfigError);
  std::remove(path.c_str());
}

TEST(Campaign, FingerprintMismatchRefused) {
  const std::string path = tempPath("mismatch");
  std::remove(path.c_str());
  exp::SweepRunner runner(1);
  CampaignOptions options;
  options.journal_path = path;
  options.config_fingerprint = "test-v1 horizon=5000";
  const CampaignOutcome first = runCampaign(runner, 2, 100, options, rowFor);
  ASSERT_TRUE(first.complete());
  options.resume = true;
  options.config_fingerprint = "test-v1 horizon=9999";
  EXPECT_THROW(
      { (void)runCampaign(runner, 2, 100, options, rowFor); }, ConfigError);
  std::remove(path.c_str());
}

TEST(Campaign, NoJournalIsPlainSweep) {
  exp::SweepRunner runner(2);
  const CampaignOutcome outcome =
      runCampaign(runner, 4, 7, CampaignOptions{}, rowFor);
  ASSERT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.exec.dispatched, 4u);
  EXPECT_EQ(outcome.exec.completed, 4u);
  for (int s = 0; s < 4; ++s) {
    Rng rng = exp::SweepRunner::rngFor(7, s);
    EXPECT_EQ(*outcome.payloads[static_cast<std::size_t>(s)], rowFor(s, rng));
  }
}

}  // namespace
}  // namespace mpcp::exec
