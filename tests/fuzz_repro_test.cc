// Repro files: serialization round-trip, deterministic replay, loud
// failure on malformed input.
#include <gtest/gtest.h>

#include "common/check.h"
#include "fuzz/repro.h"
#include "model/serialize.h"

namespace mpcp::fuzz {
namespace {

constexpr const char* kSystem = R"(
processors 2
resource G1
task hi period=40 processor=0
  compute 2
  lock G1
  compute 3
  unlock G1
end
task remote period=50 processor=1
  compute 1
  lock G1
  compute 4
  unlock G1
  compute 1
end
)";

ReproCase makeCase(Mutation m) {
  ReproCase rc;
  rc.protocol = "mpcp";
  rc.oracle = "invariant:gcs-priority";
  rc.mutation = m;
  rc.seed = 4711;
  rc.horizon_cap = 150'000;
  rc.differential_horizon = 900;
  rc.system = parseTaskSystemFromString(kSystem);
  return rc;
}

TEST(FuzzRepro, WriteParseRoundTrip) {
  const ReproCase rc = makeCase(Mutation::kGcsCeilingBase);
  const ReproCase back = parseRepro(writeRepro(rc));
  EXPECT_EQ(back.protocol, rc.protocol);
  EXPECT_EQ(back.oracle, rc.oracle);
  EXPECT_EQ(back.mutation, rc.mutation);
  EXPECT_EQ(back.seed, rc.seed);
  EXPECT_EQ(back.horizon_cap, rc.horizon_cap);
  EXPECT_EQ(back.differential_horizon, rc.differential_horizon);
  ASSERT_EQ(back.system.tasks().size(), rc.system.tasks().size());
  EXPECT_EQ(back.system.tasks()[0].name, "hi");
  // Round-tripping the round-trip is byte-stable.
  EXPECT_EQ(writeRepro(back), writeRepro(rc));
}

TEST(FuzzRepro, ReplayIsByteIdenticalAcrossInvocations) {
  const ReproCase rc = makeCase(Mutation::kNone);
  const ReplayOutcome a = replay(rc);
  const ReplayOutcome b = replay(rc);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzRepro, CleanSystemReplaysClean) {
  const ReproCase rc = makeCase(Mutation::kNone);
  const ReplayOutcome out = replay(rc);
  EXPECT_TRUE(out.clean()) << out.report;
  EXPECT_FALSE(out.reproducesRecordedOracle(rc));
}

TEST(FuzzRepro, MutationReplayReproducesRecordedOracle) {
  const ReproCase rc = makeCase(Mutation::kGcsCeilingBase);
  const ReplayOutcome with = replay(rc, /*with_mutation=*/true);
  EXPECT_FALSE(with.clean());
  EXPECT_TRUE(with.reproducesRecordedOracle(rc)) << with.report;
  // The same file replayed without the fault injection is clean — the
  // exact property the committed corpus relies on.
  const ReplayOutcome without = replay(rc, /*with_mutation=*/false);
  EXPECT_TRUE(without.clean()) << without.report;
}

TEST(FuzzRepro, MalformedHeaderThrows) {
  EXPECT_THROW((void)parseRepro("protocol mpcp\n"), ConfigError);
  EXPECT_THROW((void)parseRepro("oracle x\nsystem\nprocessors 1\n"),
               ConfigError);
  const ReproCase rc = makeCase(Mutation::kNone);
  std::string text = writeRepro(rc);
  text.insert(text.find("system"), "mutation no-such-mutation\n");
  EXPECT_THROW((void)parseRepro(text), ConfigError);
}

TEST(FuzzRepro, MissingFileThrows) {
  EXPECT_THROW((void)loadReproFile("/nonexistent/path/to.repro"),
               ConfigError);
}

}  // namespace
}  // namespace mpcp::fuzz
