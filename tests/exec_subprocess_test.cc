// SubprocessExecutor / RetryingExecutor (ISSUE 5 tentpole): a worker
// that segfaults, aborts, over-allocates, or exceeds its wall budget is
// decoded into a structured ExecResult while the driver survives; retry
// delays are deterministic; and a campaign fan-out at 1/2/4 threads
// keeps every healthy seed's payload when one seed crashes.
#include "exec/subprocess.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "exec/campaign.h"
#include "exec/retry.h"
#include "exp/run_executor.h"
#include "exp/sweep_runner.h"

namespace mpcp::exec {
namespace {

TEST(RetryDelay, DeterministicCappedBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay = std::chrono::milliseconds(100);
  policy.max_delay = std::chrono::milliseconds(300);
  policy.jitter_seed = 42;
  // Pure in (policy, attempt): identical on every call and machine.
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(retryDelay(policy, attempt).count(),
              retryDelay(policy, attempt).count());
  }
  // Jitter keeps every delay in [base/2, cap): growth then capping.
  EXPECT_GE(retryDelay(policy, 1).count(), 50);
  EXPECT_LT(retryDelay(policy, 1).count(), 100);
  EXPECT_GE(retryDelay(policy, 2).count(), 100);
  EXPECT_LT(retryDelay(policy, 2).count(), 200);
  EXPECT_GE(retryDelay(policy, 4).count(), 150);  // 800ms capped to 300
  EXPECT_LT(retryDelay(policy, 4).count(), 300);
  // Different jitter seeds draw different delays (with overwhelming odds
  // across four attempts).
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  bool any_diff = false;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    any_diff |= retryDelay(policy, attempt) != retryDelay(other, attempt);
  }
  EXPECT_TRUE(any_diff);
  // base_delay 0 never sleeps.
  RetryPolicy immediate;
  immediate.base_delay = std::chrono::milliseconds(0);
  EXPECT_EQ(retryDelay(immediate, 3).count(), 0);
}

TEST(InThread, ExceptionBecomesFailure) {
  exp::InThreadExecutor executor;
  const exp::ExecResult ok = executor.execute([] { return "row"; });
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.payload, "row");
  const exp::ExecResult bad = executor.execute(
      []() -> std::string { throw std::runtime_error("kaboom"); });
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("kaboom"), std::string::npos);
}

TEST(Subprocess, RelaysPayload) {
  SubprocessExecutor executor;
  const exp::ExecResult r = executor.execute([] {
    return std::string("payload with\nnewline and \0 byte", 31);
  });
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.payload, std::string("payload with\nnewline and \0 byte", 31));
  EXPECT_EQ(r.signal, 0);
}

TEST(Subprocess, BodyExceptionRelayedAsError) {
  SubprocessExecutor executor;
  const exp::ExecResult r = executor.execute([]() -> std::string {
    // The engine's invariant checks throw (not abort); a CHECK failure in
    // a worker must surface in the driver with its message intact.
    MPCP_CHECK(false, "ceiling table out of range at index 7");
    return "";
  });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.signal, 0);
  EXPECT_NE(r.error.find("ceiling table out of range at index 7"),
            std::string::npos);
}

TEST(Subprocess, SignalDeathDecoded) {
  SubprocessExecutor executor;
  const exp::ExecResult r = executor.execute([]() -> std::string {
    std::raise(SIGKILL);
    return "unreachable";
  });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.signal, SIGKILL);
  EXPECT_NE(r.error.find("signal"), std::string::npos);
}

TEST(Subprocess, SegfaultContained) {
  SubprocessExecutor executor;
  const exp::ExecResult r = executor.execute([]() -> std::string {
    volatile int* p = nullptr;
    *p = 1;  // NOLINT: the crash is the point
    return "unreachable";
  });
  EXPECT_FALSE(r.ok);
  // Plain builds die on SIGSEGV; ASan intercepts the fault and exits
  // nonzero instead. Either way the driver survives with a failure.
  EXPECT_TRUE(r.signal == SIGSEGV || r.exit_code != 0)
      << "signal=" << r.signal << " exit=" << r.exit_code;
}

TEST(Subprocess, SilentExitDecoded) {
  SubprocessExecutor executor;
  const exp::ExecResult r = executor.execute([]() -> std::string {
    _exit(42);  // worker dies without writing a result frame
  });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_NE(r.error.find("without a complete result frame"),
            std::string::npos);
}

TEST(Subprocess, StderrTailCaptured) {
  SubprocessExecutor executor;
  const exp::ExecResult r = executor.execute([]() -> std::string {
    std::fprintf(stderr, "worker diagnostic before death\n");
    std::fflush(stderr);
    std::raise(SIGKILL);
    return "";
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.stderr_tail.find("worker diagnostic before death"),
            std::string::npos);
}

TEST(Subprocess, WallLimitKillsWorker) {
  SubprocessLimits limits;
  limits.wall_limit_s = 0.2;
  SubprocessExecutor executor(limits);
  const auto t0 = std::chrono::steady_clock::now();
  const exp::ExecResult r = executor.execute([]() -> std::string {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return "too late";
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(elapsed, 10.0);  // the driver did not wait out the sleep
}

// ASan's shadow/allocator interacts with RLIMIT_DATA, so the strict
// over-allocation assertion only runs in plain builds.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if !defined(__has_feature)
#define MPCP_PLAIN_BUILD 1
#elif !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define MPCP_PLAIN_BUILD 1
#endif
#endif
#ifdef MPCP_PLAIN_BUILD
TEST(Subprocess, RssLimitContainsOverAllocation) {
  SubprocessLimits limits;
  limits.rss_limit_mb = 64;
  SubprocessExecutor executor(limits);
  const exp::ExecResult r = executor.execute([]() -> std::string {
    std::vector<char> hog(256u << 20, 1);  // 256 MiB against a 64 MiB cap
    return std::string(1, hog[12345]);
  });
  EXPECT_FALSE(r.ok);  // bad_alloc frame or outright death — never ok
}
#endif

TEST(Campaign, CrashedSeedIsolatedAtAnyThreadCount) {
  for (const int threads : {1, 2, 4}) {
    exp::SweepRunner runner(threads);
    SubprocessExecutor subprocess;
    CampaignOptions options;
    options.executor = &subprocess;
    options.retry.max_attempts = 2;
    const CampaignOutcome outcome = runCampaign(
        runner, 6, 100, options, [](int s, Rng& rng) -> std::string {
          if (s == 3) std::raise(SIGKILL);
          return "row-" + std::to_string(s) + "-" +
                 std::to_string(rng.uniformInt(0, 1'000'000));
        });

    ASSERT_EQ(outcome.payloads.size(), 6u) << "threads=" << threads;
    for (int s = 0; s < 6; ++s) {
      if (s == 3) {
        EXPECT_FALSE(outcome.payloads[static_cast<std::size_t>(s)])
            << "threads=" << threads;
      } else {
        ASSERT_TRUE(outcome.payloads[static_cast<std::size_t>(s)])
            << "threads=" << threads;
        // Seed-derived RNG: payloads are identical at any thread count.
        Rng rng = exp::SweepRunner::rngFor(100, s);
        EXPECT_EQ(*outcome.payloads[static_cast<std::size_t>(s)],
                  "row-" + std::to_string(s) + "-" +
                      std::to_string(rng.uniformInt(0, 1'000'000)));
      }
    }
    ASSERT_EQ(outcome.failures.size(), 1u) << "threads=" << threads;
    const exp::RunFailure& f = outcome.failures[0];
    EXPECT_EQ(f.seed, 3);
    EXPECT_EQ(f.signal, SIGKILL);
    EXPECT_EQ(f.attempts, 2);  // the retry was spent before giving up
    EXPECT_EQ(outcome.exec.dispatched, 6u);
    EXPECT_EQ(outcome.exec.completed, 5u);
    EXPECT_EQ(outcome.exec.failed, 1u);
    EXPECT_EQ(outcome.exec.retries, 1u);
    EXPECT_GE(outcome.exec.crashes, 1u);
  }
}

}  // namespace
}  // namespace mpcp::exec
