// Differential testing: the event-driven Engine + MpcpProtocol against
// the independent tick-stepped reference implementation. Identical
// finish times for every job across random workloads and the paper's
// Example 3 — any divergence flags a mechanical bug in one of the two.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/simulate.h"
#include "sim/reference_mpcp.h"
#include "taskgen/generator.h"
#include "taskgen/paper_examples.h"

namespace mpcp {
namespace {

void expectSameSchedule(const TaskSystem& sys, Time horizon,
                        const char* label) {
  const SimResult engine = simulate(ProtocolKind::kMpcp, sys,
                                    {.horizon = horizon});
  const ReferenceResult reference = simulateMpcpReference(sys, horizon);

  std::map<std::pair<std::int32_t, std::int64_t>, Time> engine_finish;
  for (const JobRecord& jr : engine.jobs) {
    engine_finish[{jr.id.task.value(), jr.id.instance}] = jr.finish;
  }
  ASSERT_EQ(engine.jobs.size(), reference.jobs.size()) << label;
  for (const ReferenceJobResult& rj : reference.jobs) {
    const auto it =
        engine_finish.find({rj.id.task.value(), rj.id.instance});
    ASSERT_NE(it, engine_finish.end()) << label << " missing " << rj.id;
    EXPECT_EQ(it->second, rj.finish)
        << label << ": " << sys.task(rj.id.task).name << "#"
        << rj.id.instance << " engine=" << it->second
        << " reference=" << rj.finish;
  }
  EXPECT_EQ(engine.any_deadline_miss, reference.any_deadline_miss) << label;
}

TEST(Differential, Example3MatchesReference) {
  const paper::Example3 ex = paper::makeExample3();
  expectSameSchedule(ex.sys, 600, "example3");
}

TEST(Differential, Examples1And2MatchReference) {
  expectSameSchedule(paper::makeExample1(7).sys, 400, "example1");
  expectSameSchedule(paper::makeExample2(9).sys, 400, "example2");
}

TEST(Differential, RandomWorkloadsMatchReference) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.5;
  p.period_min = 20;
  p.period_max = 200;   // small periods: the O(horizon) oracle is slow
  p.period_granularity = 10;
  p.global_resources = 2;
  p.global_sharing_prob = 0.9;
  p.cs_min = 1;
  p.cs_max = 5;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 911);
    const TaskSystem sys = generateWorkload(p, rng);
    expectSameSchedule(sys, 1'500,
                       ("seed " + std::to_string(seed)).c_str());
  }
}

TEST(Differential, SuspendingWorkloadsMatchReference) {
  WorkloadParams p;
  p.processors = 2;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.4;
  p.period_min = 20;
  p.period_max = 150;
  p.period_granularity = 5;
  p.global_resources = 1;
  p.cs_max = 4;
  p.suspension_prob = 0.6;
  p.suspend_max = 8;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 401);
    const TaskSystem sys = generateWorkload(p, rng);
    expectSameSchedule(sys, 1'000,
                       ("susp seed " + std::to_string(seed)).c_str());
  }
}

TEST(Differential, OverloadedSystemsStillAgree) {
  // Past the schedulability cliff both implementations must still agree
  // tick for tick (misses included).
  WorkloadParams p;
  p.processors = 2;
  p.tasks_per_processor = 4;
  p.utilization_per_processor = 0.95;
  p.period_min = 20;
  p.period_max = 100;
  p.period_granularity = 5;
  p.global_resources = 2;
  p.global_sharing_prob = 1.0;
  p.cs_max = 6;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 677);
    const TaskSystem sys = generateWorkload(p, rng);
    expectSameSchedule(sys, 800,
                       ("overload seed " + std::to_string(seed)).c_str());
  }
}

}  // namespace
}  // namespace mpcp
