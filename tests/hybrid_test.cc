// Hybrid shared-memory/message-based protocol (the conclusion's mixed
// variant): behaviour, pure-policy equivalence, analysis soundness.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/hybrid_blocking.h"
#include "core/hybrid_protocol.h"
#include "core/simulate.h"
#include "taskgen/generator.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

TaskSystem twoGlobalSystem() {
  TaskSystemBuilder b(3);
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 40, .phase = 1, .processor = 0,
             .body = Body{}.compute(1).section(g1, 2).compute(1)});
  b.addTask({.name = "b", .period = 60, .processor = 1,
             .body = Body{}.compute(1).section(g1, 3).section(g2, 2)
                        .compute(1)});
  b.addTask({.name = "c", .period = 90, .processor = 2,
             .body = Body{}.compute(1).section(g2, 4).compute(1)});
  return std::move(b).build();
}

TEST(Hybrid, AllSharedMatchesMpcpSchedule) {
  const TaskSystem sys = twoGlobalSystem();
  const SimResult rh = simulateHybrid(sys, HybridPolicy::allShared(sys),
                                      {.horizon = 2000});
  const SimResult rm = simulate(ProtocolKind::kMpcp, sys, {.horizon = 2000});
  ASSERT_EQ(rh.jobs.size(), rm.jobs.size());
  for (std::size_t i = 0; i < rh.jobs.size(); ++i) {
    EXPECT_EQ(rh.jobs[i].finish, rm.jobs[i].finish);
    EXPECT_EQ(rh.jobs[i].blocked, rm.jobs[i].blocked);
  }
}

TEST(Hybrid, AllMessageMatchesDpcpSchedule) {
  const TaskSystem sys = twoGlobalSystem();
  const SimResult rh = simulateHybrid(sys, HybridPolicy::allMessage(sys),
                                      {.horizon = 2000});
  const SimResult rd = simulate(ProtocolKind::kDpcp, sys, {.horizon = 2000});
  ASSERT_EQ(rh.jobs.size(), rd.jobs.size());
  for (std::size_t i = 0; i < rh.jobs.size(); ++i) {
    EXPECT_EQ(rh.jobs[i].finish, rd.jobs[i].finish);
    EXPECT_EQ(rh.jobs[i].blocked, rd.jobs[i].blocked);
  }
}

TEST(Hybrid, MixedPoliciesMigrateOnlyMessageSections) {
  TaskSystemBuilder b(3);
  const ResourceId shared = b.addResource("SHARED");
  const ResourceId msg = b.addResource("MSG");
  const TaskId a = b.addTask({.name = "a", .period = 50, .processor = 0,
                              .body = Body{}.compute(1).section(shared, 2)
                                         .section(msg, 2).compute(1)});
  b.addTask({.name = "b", .period = 70, .phase = 30, .processor = 1,
             .body = Body{}.section(shared, 1).section(msg, 1).compute(1)});
  b.assignSyncProcessor(msg, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  HybridPolicy policy = HybridPolicy::allShared(sys);
  policy.set(msg, GlobalPolicy::kMessageBased);
  const SimResult r = simulateHybrid(sys, policy, {.horizon = 100});
  // The MSG section of `a` runs on P2; the SHARED section stays on P0.
  bool saw_shared_local = false, saw_msg_remote = false;
  for (const ExecSegment& s : r.segments) {
    if (!(s.job.task == a) || s.mode != ExecMode::kGcs) continue;
    if (s.processor.value() == 0) saw_shared_local = true;
    if (s.processor.value() == 2) saw_msg_remote = true;
  }
  EXPECT_TRUE(saw_shared_local);
  EXPECT_TRUE(saw_msg_remote);
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(Hybrid, MessagePolicyRemovesLocalGcsInterference) {
  // lo's gcs preempts hi's normal code when shared; moving the resource
  // to message-based policy exports that interference to the sync
  // processor, so hi finishes earlier.
  auto build = [] {
    TaskSystemBuilder b(3);
    const ResourceId g = b.addResource("G");
    b.addTask({.name = "hi", .period = 50, .phase = 1, .processor = 0,
               .body = Body{}.compute(4)});
    b.addTask({.name = "lo", .period = 100, .processor = 0,
               .body = Body{}.section(g, 5).compute(1)});
    b.addTask({.name = "rem", .period = 80, .phase = 40, .processor = 1,
               .body = Body{}.section(g, 1).compute(1)});
    b.assignSyncProcessor(g, ProcessorId(2));
    return std::move(b).build();
  };
  const TaskSystem sys = build();
  const TaskId hi(0);

  const SimResult shared =
      simulateHybrid(sys, HybridPolicy::allShared(sys), {.horizon = 50});
  const SimResult message =
      simulateHybrid(sys, HybridPolicy::allMessage(sys), {.horizon = 50});
  // Shared: lo's gcs [0,5) blocks hi until 5 -> hi finishes at 9.
  // Message: lo's gcs runs on P2; hi runs [1,5) -> finishes at 5.
  EXPECT_EQ(finishOf(shared, hi, 0), 9);
  EXPECT_EQ(finishOf(message, hi, 0), 5);
  EXPECT_GT(maxBlockedOf(shared, hi), maxBlockedOf(message, hi));
}

TEST(Hybrid, RejectsSharedPolicyNesting) {
  TaskSystemBuilder b(2, {.allow_nested_global = true});
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 50, .processor = 0,
             .body = Body{}.lock(g1).section(g2, 1).unlock(g1).compute(1)});
  b.addTask({.name = "b", .period = 60, .processor = 1,
             .body = Body{}.section(g1, 1).section(g2, 1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  EXPECT_THROW(HybridProtocol(sys, tables, HybridPolicy::allShared(sys)),
               ConfigError);
  // Message policy on both (same default sync processor): accepted.
  EXPECT_NO_THROW(HybridProtocol(sys, tables, HybridPolicy::allMessage(sys)));
}

TEST(Hybrid, PureSharedBlockingMatchesMpcpBound) {
  const TaskSystem sys = twoGlobalSystem();
  const PriorityTables tables(sys);
  const auto hybrid =
      hybridBlocking(sys, tables, HybridPolicy::allShared(sys));
  const MpcpBlockingAnalysis mpcp_analysis(sys, tables);
  for (const Task& t : sys.tasks()) {
    EXPECT_EQ(hybrid[static_cast<std::size_t>(t.id.value())].total(),
              mpcp_analysis.blocking(t.id).total())
        << t.name;
  }
}

TEST(Hybrid, AnalysisSoundAgainstSimulation) {
  // Random workloads with a random policy split: accepted => no miss,
  // measured blocking <= bound.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 31);
    WorkloadParams params;
    params.processors = 3;
    params.tasks_per_processor = 3;
    params.utilization_per_processor = 0.4;
    params.global_resources = 2;
    params.cs_max = 15;
    const TaskSystem sys = generateWorkload(params, rng);
    HybridPolicy policy = HybridPolicy::allShared(sys);
    for (const ResourceInfo& r : sys.resources()) {
      if (r.scope == ResourceScope::kGlobal && rng.chance(0.5)) {
        policy.set(r.id, GlobalPolicy::kMessageBased);
      }
    }
    const ProtocolAnalysis analysis = analyzeHybrid(sys, policy);
    const SimResult r = simulateHybrid(sys, policy, {.horizon_cap = 300'000});
    const InvariantReport rep = checkMutualExclusion(sys, r);
    ASSERT_TRUE(rep.ok()) << rep.violations.front();
    if (analysis.report.rta_all) {
      EXPECT_FALSE(r.any_deadline_miss) << "seed " << seed;
    }
    if (!r.any_deadline_miss) {
      for (const Task& t : sys.tasks()) {
        EXPECT_LE(maxBlockedOf(r, t.id),
                  analysis.blocking[static_cast<std::size_t>(t.id.value())])
            << t.name << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace mpcp
