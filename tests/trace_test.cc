// Gantt rendering and invariant-checker behaviour (including detection of
// *synthetic* violations — a checker that can never fire proves nothing).
#include <gtest/gtest.h>

#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/paper_examples.h"
#include <sstream>

#include "trace/export.h"
#include "trace/gantt.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

TEST(Gantt, RendersModesAndReleases) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const ResourceId l = b.addResource("L");
  b.addTask({.name = "a", .period = 30, .processor = 0,
             .body = Body{}.compute(1).section(l, 1).section(g, 2)
                        .compute(1)});
  b.addTask({.name = "a2", .period = 40, .phase = 10, .processor = 0,
             .body = Body{}.section(l, 1)});
  b.addTask({.name = "b", .period = 50, .processor = 1,
             .body = Body{}.section(g, 1).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 30});
  const std::string gantt = renderGantt(sys, r);
  EXPECT_NE(gantt.find("a [P0]"), std::string::npos);
  EXPECT_NE(gantt.find("="), std::string::npos);   // normal execution
  EXPECT_NE(gantt.find("L"), std::string::npos);   // local cs
  EXPECT_NE(gantt.find("G"), std::string::npos);   // global cs
  EXPECT_NE(gantt.find("^"), std::string::npos);   // release marks
  EXPECT_NE(gantt.find("--- P1 ---"), std::string::npos);
}

TEST(Gantt, NarrativeMentionsEveryEventKindPresent) {
  const paper::Example1 ex = paper::makeExample1();
  const SimResult r = simulate(ProtocolKind::kNone, ex.sys, {.horizon = 40});
  const std::string text = renderNarrative(ex.sys, r);
  EXPECT_NE(text.find("release"), std::string::npos);
  EXPECT_NE(text.find("lock-grant"), std::string::npos);
  EXPECT_NE(text.find("lock-wait"), std::string::npos);
  EXPECT_NE(text.find("handoff"), std::string::npos);
  EXPECT_NE(text.find("[S]"), std::string::npos);
}

TEST(Invariants, CleanRunsPassAllCheckers) {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 2000});
  EXPECT_TRUE(checkMutualExclusion(ex.sys, r).ok());
  EXPECT_TRUE(checkPriorityOrderedHandoff(ex.sys, r).ok());
  EXPECT_TRUE(checkGcsPreemptionRule(ex.sys, r).ok());
}

TEST(Invariants, MutualExclusionCheckerDetectsDoubleGrant) {
  const paper::Example1 ex = paper::makeExample1();
  SimResult r = simulate(ProtocolKind::kNone, ex.sys, {.horizon = 40});
  // Forge a second grant while the semaphore is held.
  TraceEvent forged;
  forged.t = 2;
  forged.kind = Ev::kLockGrant;
  forged.job = JobId{ex.tau1, 0};
  forged.resource = ex.s;
  // Insert right after the real first grant.
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    if (r.trace[i].kind == Ev::kLockGrant) {
      r.trace.insert(r.trace.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     forged);
      break;
    }
  }
  EXPECT_FALSE(checkMutualExclusion(ex.sys, r).ok());
}

TEST(Invariants, HandoffCheckerDetectsPriorityViolation) {
  // FIFO queues under kNone really do hand off out of priority order;
  // build a scenario where that happens and confirm the checker fires.
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "holder", .period = 100, .processor = 0,
             .body = Body{}.section(s, 10)});
  b.addTask({.name = "hi", .period = 10, .phase = 5, .processor = 1,
             .body = Body{}.section(s, 1)});
  b.addTask({.name = "lo", .period = 50, .phase = 2, .processor = 2,
             .body = Body{}.section(s, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys,
                               {.horizon = 25});
  EXPECT_FALSE(checkPriorityOrderedHandoff(sys, r).ok());
}

TEST(Invariants, GcsCheckerDetectsTheoremTwoViolation) {
  // PIP does not elevate gcs's, so a higher-priority local task preempts
  // a gcs with normal code — exactly what Theorem 2 forbids and what the
  // checker must flag.
  const paper::Example2 ex = paper::makeExample2();
  const SimResult r = simulate(ProtocolKind::kPip, ex.sys, {.horizon = 100});
  // Under PIP there are no kGcsEnter events, so the checker cannot see
  // gcs residence; instead forge the interval the way MPCP would have:
  // tau2 locked S at t=1 and released at t>=4.
  SimResult forged = r;
  TraceEvent enter;
  enter.t = 1;
  enter.kind = Ev::kGcsEnter;
  enter.job = JobId{ex.tau2, 0};
  enter.processor = ProcessorId(0);
  enter.resource = ex.s;
  TraceEvent exit = enter;
  exit.kind = Ev::kGcsExit;
  exit.t = 9;
  forged.trace.insert(forged.trace.begin(), enter);
  forged.trace.push_back(exit);
  EXPECT_FALSE(checkGcsPreemptionRule(ex.sys, forged).ok())
      << "tau1's normal execution overlaps tau2's (forged) gcs residence";
}

TEST(Export, CsvTablesWellFormed) {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 200});

  std::ostringstream jobs;
  writeJobsCsv(jobs, ex.sys, r);
  const std::string jobs_csv = jobs.str();
  EXPECT_NE(jobs_csv.find("task,instance,release"), std::string::npos);
  // Header + one line per job record.
  const auto lines = static_cast<std::size_t>(
      std::count(jobs_csv.begin(), jobs_csv.end(), '\n'));
  EXPECT_EQ(lines, r.jobs.size() + 1);

  std::ostringstream trace;
  writeTraceCsv(trace, ex.sys, r);
  EXPECT_NE(trace.str().find("lock-grant"), std::string::npos);
  EXPECT_NE(trace.str().find("gcs-enter"), std::string::npos);

  std::ostringstream segs;
  writeSegmentsCsv(segs, ex.sys, r);
  EXPECT_NE(segs.str().find("normal"), std::string::npos);
  EXPECT_NE(segs.str().find("gcs"), std::string::npos);
}

TEST(Export, CsvEscapesNamesPerRfc4180) {
  // Task and semaphore names are user input: commas, quotes and
  // newlines must come out quoted with embedded quotes doubled, not
  // mangled or passed through raw.
  TaskSystemBuilder b(1);
  const ResourceId s = b.addResource("s,with\"quote");
  b.addTask({.name = "a,b", .period = 20, .processor = 0,
             .body = Body{}.compute(1).section(s, 2)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 20});

  std::ostringstream jobs;
  writeJobsCsv(jobs, sys, r);
  EXPECT_NE(jobs.str().find("\"a,b\",0,"), std::string::npos);

  std::ostringstream trace;
  writeTraceCsv(trace, sys, r);
  EXPECT_NE(trace.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"s,with\"\"quote\""), std::string::npos);

  std::ostringstream segs;
  writeSegmentsCsv(segs, sys, r);
  EXPECT_NE(segs.str().find("\"a,b\""), std::string::npos);
  // Unquoted raw names must not appear outside the quoted form.
  EXPECT_EQ(segs.str().find(",a,b,"), std::string::npos);
}

TEST(Invariants, CheckAllAggregates) {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 500});
  const InvariantReport rep = checkProtocolInvariants(ex.sys, r);
  EXPECT_TRUE(rep.ok());
}

}  // namespace
}  // namespace mpcp
