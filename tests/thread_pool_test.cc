// The ThreadPool multi-exception contract (ISSUE 5 satellite): when
// several iterations throw — including genuinely concurrently — exactly
// one exception is rethrown from parallelFor (the one from the chunk
// with the lowest starting index), no std::terminate fires, chunks that
// did not throw run to completion, and the pool remains usable.
#include "exp/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcp::exp {
namespace {

TEST(ThreadPoolExceptions, EveryIterationThrowsLowestChunkWins) {
  ThreadPool pool(4);
  const std::int64_t n = 1000;
  try {
    pool.parallelFor(n, [](std::int64_t i) {
      throw std::runtime_error("i=" + std::to_string(i));
    });
    FAIL() << "parallelFor swallowed every exception";
  } catch (const std::runtime_error& e) {
    // The chunk starting at 0 loses its first iteration to the throw, so
    // the deterministic winner is iteration 0 at any thread count.
    EXPECT_STREQ(e.what(), "i=0");
  }
}

TEST(ThreadPoolExceptions, ConcurrentThrowsKeepLowestChunk) {
  ThreadPool pool(4);
  const std::int64_t n = 1000;
  // Two iterations in distant chunks rendezvous (bounded spin, so a
  // single-threaded schedule cannot deadlock) and then throw as close to
  // simultaneously as the scheduler allows.
  std::atomic<int> arrivals{0};
  const auto maybe_throw = [&](std::int64_t i) {
    if (i != 0 && i != n / 2) return;
    arrivals.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    while (arrivals.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
    }
    throw std::runtime_error("i=" + std::to_string(i));
  };
  try {
    pool.parallelFor(n, maybe_throw);
    FAIL() << "parallelFor swallowed every exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "i=0");
  }
}

TEST(ThreadPoolExceptions, NonThrowingChunksStillRun) {
  const int threads = 4;
  ThreadPool pool(threads);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> ran(static_cast<std::size_t>(n));
  EXPECT_THROW(pool.parallelFor(n,
                                [&](std::int64_t i) {
                                  if (i == 0) throw std::runtime_error("boom");
                                  ran[static_cast<std::size_t>(i)].fetch_add(1);
                                }),
               std::runtime_error);
  // Only the throwing chunk's tail may be skipped; its size is bounded by
  // the pool's chunking rule (~n / (8 * threads)).
  const std::int64_t chunk_bound = std::max<std::int64_t>(1, n / (8 * threads));
  std::int64_t executed = 0;
  for (std::int64_t i = 1; i < n; ++i) {
    const int count = ran[static_cast<std::size_t>(i)].load();
    EXPECT_LE(count, 1) << "iteration " << i << " ran twice";
    executed += count;
  }
  EXPECT_GE(executed, n - chunk_bound);
}

TEST(ThreadPoolExceptions, PoolReusableAfterThrow) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(100,
                       [](std::int64_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // The pool must come back clean: no stale task_error_, no lost workers.
  std::atomic<std::int64_t> sum{0};
  pool.parallelFor(100, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPoolExceptions, SerialPoolPropagatesDirectly) {
  ThreadPool pool(1);
  try {
    pool.parallelFor(10, [](std::int64_t i) {
      if (i == 3) throw std::runtime_error("i=" + std::to_string(i));
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "i=3");
  }
  std::atomic<std::int64_t> sum{0};
  pool.parallelFor(10, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

}  // namespace
}  // namespace mpcp::exp
