// Containment-semantics tests: what the engine actually *does* with a
// FaultPlan under each policy. The headline golden trace pins the paper
// contract the watchdog must preserve: a force-released semaphore is
// handed to the highest-priority waiter (rule 7), unblocking it.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/simulate.h"
#include "fault/plan.h"
#include "model/task_system.h"
#include "sim/reference_mpcp.h"
#include "taskgen/generator.h"

namespace mpcp {
namespace {

using fault::ContainmentConfig;
using fault::FaultPlan;
using fault::MissAction;
using fault::parsePlan;

/// Three processors around one global semaphore. t_stuck (P0) grabs G at
/// t=1 and — under the stuck plan — never issues the V(). t_hi (P1) and
/// t_lo (P2) both request G at t=2; the period tie is broken by insertion
/// order, so the waiter priority order is t_hi > t_lo.
TaskSystem stuckHolderSystem() {
  TaskSystemBuilder b(3);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "t_stuck", .period = 1000, .processor = 0,
             .body = Body{}.compute(1).lock(g).compute(2).unlock(g)
                         .compute(1)});
  b.addTask({.name = "t_hi", .period = 1000, .processor = 1,
             .body = Body{}.compute(2).section(g, 1)});
  b.addTask({.name = "t_lo", .period = 1000, .processor = 2,
             .body = Body{}.compute(2).section(g, 1)});
  return std::move(b).build();
}

/// finish time per job, keyed (task, instance); -1 = unfinished.
std::map<std::pair<std::int32_t, std::int64_t>, Time> finishMap(
    const SimResult& r) {
  std::map<std::pair<std::int32_t, std::int64_t>, Time> m;
  for (const JobRecord& j : r.jobs) {
    m[{j.id.task.value(), j.id.instance}] = j.finish;
  }
  return m;
}

TEST(Containment, WatchdogUnblocksHighestPriorityWaiter) {
  const TaskSystem sys = stuckHolderSystem();
  const FaultPlan plan = parsePlan("stuck:t_stuck:0:G", sys);

  SimConfig config{.horizon = 100};
  config.fault_plan = &plan;
  config.containment.holder_watchdog = 10;
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, config);

  // The golden sequence: G acquired at t=1, watchdog fires after 10
  // ticks of residence, and the forced release hands off to t_hi's job
  // (the highest-priority waiter — paper rule 7), then t_lo's.
  const TraceEvent* forced = nullptr;
  const TraceEvent* first_handoff = nullptr;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == Ev::kForcedRelease && forced == nullptr) forced = &e;
    if (e.kind == Ev::kHandoff && forced != nullptr &&
        first_handoff == nullptr) {
      first_handoff = &e;
    }
  }
  ASSERT_NE(forced, nullptr);
  EXPECT_EQ(forced->t, 11);
  EXPECT_EQ(forced->job.task, TaskId(0));
  EXPECT_EQ(forced->resource, ResourceId(0));
  ASSERT_NE(first_handoff, nullptr);
  EXPECT_EQ(first_handoff->other.task, TaskId(1)) << "watchdog handoff must "
      "go to the highest-priority waiter";

  const auto finish = finishMap(r);
  EXPECT_GT(finish.at({1, 0}), 0) << "t_hi unblocked";
  EXPECT_GT(finish.at({2, 0}), 0) << "t_lo unblocked";
  EXPECT_GT(finish.at({2, 0}), finish.at({1, 0}));
  EXPECT_EQ(r.counters.forced_releases, 1u);
  EXPECT_EQ(r.counters.faults_contained, 1u);
  EXPECT_GE(r.counters.faults_injected, 1u);
}

TEST(Containment, StuckHolderWithoutWatchdogStarvesWaiters) {
  const TaskSystem sys = stuckHolderSystem();
  const FaultPlan plan = parsePlan("stuck:t_stuck:0:G", sys);
  SimConfig config{.horizon = 100};
  config.fault_plan = &plan;
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, config);
  const auto finish = finishMap(r);
  EXPECT_EQ(finish.at({1, 0}), -1);
  EXPECT_EQ(finish.at({2, 0}), -1);
  EXPECT_EQ(r.counters.forced_releases, 0u);
}

TEST(Containment, BudgetEnforceKillsOverrunningGcs) {
  const TaskSystem sys = stuckHolderSystem();
  // t_stuck's section on G is declared as 2 ticks; stretch it 10x.
  const FaultPlan plan = parsePlan("cs:t_stuck:0:G:x10", sys);
  SimConfig config{.horizon = 100};
  config.fault_plan = &plan;
  config.containment.budget_enforce = true;
  config.containment.grace = 1.0;
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, config);
  EXPECT_EQ(r.counters.budget_kills, 1u);
  EXPECT_GE(r.counters.faults_contained, 1u);
  // The kill releases G: both waiters complete well before the overrun
  // would have let them (t=1+20 at the earliest without enforcement).
  const auto finish = finishMap(r);
  EXPECT_GT(finish.at({1, 0}), 0);
  EXPECT_GT(finish.at({2, 0}), 0);
  EXPECT_LT(finish.at({1, 0}), 21);
  // The overrunning job escapes its section and still finishes.
  EXPECT_GT(finish.at({0, 0}), 0);
}

TEST(Containment, JobAbortRetiresMissedJob) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 10, .processor = 0,
             .body = Body{}.compute(4)});
  const TaskSystem sys = std::move(b).build();

  const FaultPlan plan = parsePlan("wcet:t:0:x10", sys);  // 4 -> 40 > D=10
  SimConfig config{.horizon = 60};
  config.fault_plan = &plan;
  config.containment.on_miss = MissAction::kAbortJob;
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, config);

  EXPECT_EQ(r.counters.jobs_aborted, 1u);
  bool saw_aborted = false;
  for (const JobRecord& j : r.jobs) {
    if (j.id.instance == 0) {
      EXPECT_TRUE(j.missed);
      EXPECT_TRUE(j.aborted);
      EXPECT_EQ(j.finish, -1);
      saw_aborted = true;
    }
  }
  EXPECT_TRUE(saw_aborted);
  // Later (un-faulted) instances run normally after the abort frees P0.
  const auto finish = finishMap(r);
  EXPECT_GT(finish.at({0, 1}), 0);
}

TEST(Containment, SkipNextReleaseShedsLoad) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 10, .processor = 0,
             .body = Body{}.compute(4)});
  const TaskSystem sys = std::move(b).build();

  const FaultPlan plan = parsePlan("wcet:t:0:x4", sys);  // 4 -> 16 > D=10
  SimConfig config{.horizon = 60};
  config.fault_plan = &plan;
  config.containment.on_miss = MissAction::kSkipNextRelease;
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, config);

  EXPECT_GE(r.counters.releases_skipped, 1u);
  bool saw_skip_event = false;
  for (const TraceEvent& e : r.trace) {
    saw_skip_event |= e.kind == Ev::kReleaseSkipped;
  }
  EXPECT_TRUE(saw_skip_event);
  EXPECT_GE(r.counters.misses_while_degraded, 1u);
}

TEST(Containment, InertPoliciesAreScheduleNeutral) {
  // budget-enforce with grace 1.0 and no fault plan must replay the
  // exact un-contained schedule: the budget equals the declared section
  // length, which a fault-free run never exceeds (V() fires the tick the
  // budget would).
  WorkloadParams params;
  params.processors = 3;
  params.tasks_per_processor = 3;
  params.global_resources = 2;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const TaskSystem sys = generateWorkload(params, rng);

    const SimResult plain =
        simulate(ProtocolKind::kMpcp, sys, {.horizon = 3000});

    SimConfig inert{.horizon = 3000};
    inert.containment.budget_enforce = true;
    inert.containment.grace = 1.0;
    const SimResult budget = simulate(ProtocolKind::kMpcp, sys, inert);

    SimConfig none{.horizon = 3000};
    FaultPlan empty;
    none.fault_plan = &empty;
    const SimResult empty_plan = simulate(ProtocolKind::kMpcp, sys, none);

    EXPECT_EQ(finishMap(plain), finishMap(budget)) << "seed " << seed;
    EXPECT_EQ(finishMap(plain), finishMap(empty_plan)) << "seed " << seed;
    EXPECT_EQ(budget.counters.budget_kills, 0u);
    EXPECT_EQ(budget.counters.faults_contained, 0u);
  }
}

TEST(Containment, EngineMatchesReferenceUnderMirrorablePlan) {
  const TaskSystem sys = stuckHolderSystem();
  const FaultPlan plan =
      parsePlan("wcet:t_lo:*:x2,jitter:t_hi:0:+3,cs:t_stuck:*:G:x2", sys);
  ASSERT_TRUE(plan.mirrorable());

  const Time horizon = 800;
  SimConfig config{.horizon = horizon, .record_trace = false};
  config.fault_plan = &plan;
  const SimResult engine = simulate(ProtocolKind::kMpcp, sys, config);
  const ReferenceResult ref = simulateMpcpReference(sys, horizon, &plan);

  std::map<std::pair<std::int32_t, std::int64_t>, Time> ref_finish;
  for (const ReferenceJobResult& j : ref.jobs) {
    ref_finish[{j.id.task.value(), j.id.instance}] = j.finish;
  }
  EXPECT_EQ(finishMap(engine), ref_finish);
  EXPECT_EQ(engine.any_deadline_miss, ref.any_deadline_miss);
  EXPECT_EQ(engine.counters.totalAcquisitions(),
            ref.counters.totalAcquisitions());
}

}  // namespace
}  // namespace mpcp
