// Regression gate over the committed corpus: every repro in tests/corpus
// replays CLEAN on a correct implementation, and repros recorded against
// a seeded mutation still reproduce their oracle when the fault is
// re-injected. A fuzz finding that gets fixed leaves its shrunk repro
// here so the bug class stays covered forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/repro.h"

#ifndef MPCP_CORPUS_DIR
#error "build must define MPCP_CORPUS_DIR"
#endif

namespace mpcp::fuzz {
namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> files;
  const std::filesystem::path dir(MPCP_CORPUS_DIR);
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".repro") {
        files.push_back(entry.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_FALSE(corpusFiles().empty())
      << "no .repro files under " << MPCP_CORPUS_DIR;
}

TEST(CorpusReplay, EveryEntryReplaysCleanWithoutMutation) {
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    const ReproCase rc = loadReproFile(path);
    const ReplayOutcome out = replay(rc, /*with_mutation=*/false);
    EXPECT_TRUE(out.clean()) << out.report;
  }
}

TEST(CorpusReplay, FaultEntriesReplayCleanWithTheirPlan) {
  // Fault-plan repros record *fixed* containment bugs: the full fault
  // suite (all policies + neutrality + differential) must pass with the
  // recorded plan re-applied, not just with the plan stripped.
  for (const std::string& path : corpusFiles()) {
    const ReproCase rc = loadReproFile(path);
    if (rc.fault_plan.empty()) continue;
    SCOPED_TRACE(path);
    const ReplayOutcome out = replay(rc, /*with_mutation=*/true);
    EXPECT_TRUE(out.clean()) << out.report;
  }
}

TEST(CorpusReplay, MutationEntriesStillReproduceTheirOracle) {
  for (const std::string& path : corpusFiles()) {
    const ReproCase rc = loadReproFile(path);
    if (rc.mutation == Mutation::kNone) continue;
    SCOPED_TRACE(path);
    const ReplayOutcome out = replay(rc, /*with_mutation=*/true);
    EXPECT_TRUE(out.reproducesRecordedOracle(rc)) << out.report;
  }
}

TEST(CorpusReplay, ReplayIsDeterministic) {
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    const ReproCase rc = loadReproFile(path);
    const ReplayOutcome a = replay(rc);
    const ReplayOutcome b = replay(rc);
    EXPECT_EQ(a.report, b.report);
  }
}

}  // namespace
}  // namespace mpcp::fuzz
