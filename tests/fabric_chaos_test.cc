// Chaos layer (ISSUE 10): schedule grammar, the stateless per-frame
// verdict, ChaosLink behavior over a real socketpair, the fabric's
// monotonic-clock helpers, and the coordinator checkpoint codec.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "exec/fabric/chaos.h"
#include "exec/fabric/checkpoint.h"
#include "exec/fabric/clock.h"
#include "exec/fabric/wire.h"

namespace mpcp::exec::fabric {
namespace {

TEST(ChaosGrammar, RoundTripsThroughFormat) {
  const std::string text =
      "seed:42,drop:*:60,delay:w1:30:300,dup:*:80,reorder:*:50,"
      "trunc:coord:20,partition:500:400:*";
  const ChaosSchedule a = parseChaosSchedule(text);
  EXPECT_EQ(a.seed, 42u);
  ASSERT_EQ(a.rules.size(), 6u);
  EXPECT_EQ(a.rules[0].kind, ChaosKind::kDrop);
  EXPECT_EQ(a.rules[0].permille, 60);
  EXPECT_EQ(a.rules[1].peer, "w1");
  EXPECT_EQ(a.rules[1].delay_ms, 30);
  EXPECT_EQ(a.rules[1].permille, 300);
  EXPECT_EQ(a.rules[5].kind, ChaosKind::kPartition);
  EXPECT_EQ(a.rules[5].start_ms, 500);
  EXPECT_EQ(a.rules[5].length_ms, 400);

  const std::string formatted = formatChaosSchedule(a);
  const ChaosSchedule b = parseChaosSchedule(formatted);
  EXPECT_EQ(formatChaosSchedule(b), formatted);
}

TEST(ChaosGrammar, DelayPermilleDefaultsToAlways) {
  const ChaosSchedule s = parseChaosSchedule("delay:*:25");
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_EQ(s.rules[0].permille, 1000);
  EXPECT_EQ(s.rules[0].delay_ms, 25);
}

TEST(ChaosGrammar, PartitionPeerDefaultsToStar) {
  const ChaosSchedule s = parseChaosSchedule("partition:100:200");
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_EQ(s.rules[0].peer, "*");
}

TEST(ChaosGrammar, EmptyTextIsEmptySchedule) {
  EXPECT_TRUE(parseChaosSchedule("").empty());
}

TEST(ChaosGrammar, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop:*",            // missing permille
      "drop:*:0",          // permille below 1
      "drop:*:1001",       // permille above 1000
      "drop:*:many",       // not an integer
      "drop::500",         // empty peer
      "delay:*",           // missing ms
      "delay:*:0",         // ms below 1
      "partition:100",     // missing length
      "partition:-1:100",  // negative start
      "frobnicate:*:10",   // unknown kind
      "drop:*:10,",        // trailing comma = empty token
      "seed:abc",          // seed not an integer
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parseChaosSchedule(text), ConfigError) << text;
  }
}

TEST(ChaosGrammar, RandomScheduleRoundTrips) {
  Rng rng(7);
  const ChaosSchedule s = ChaosSchedule::random(rng);
  EXPECT_FALSE(s.empty());
  const std::string formatted = formatChaosSchedule(s);
  EXPECT_EQ(formatChaosSchedule(parseChaosSchedule(formatted)), formatted);
  // Deterministic in the rng: the same seed draws the same schedule.
  Rng again(7);
  EXPECT_EQ(formatChaosSchedule(ChaosSchedule::random(again)), formatted);
}

TEST(ChaosVerdict, DeterministicPerFrame) {
  const ChaosSchedule s = parseChaosSchedule("seed:9,drop:*:500,dup:*:500");
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ChaosVerdict a = chaosVerdict(s, "w1", i, 0);
    const ChaosVerdict b = chaosVerdict(s, "w1", i, 0);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.dup, b.dup);
    EXPECT_EQ(a.delay_ms, b.delay_ms);
  }
}

TEST(ChaosVerdict, PermilleExtremes) {
  const ChaosSchedule always = parseChaosSchedule("drop:*:1000");
  const ChaosSchedule never;  // empty schedule: no rules fire
  int dropped = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (chaosVerdict(always, "w", i, 0).drop) ++dropped;
    EXPECT_FALSE(chaosVerdict(never, "w", i, 0).drop);
  }
  EXPECT_EQ(dropped, 100);
}

TEST(ChaosVerdict, MidPermilleFiresProportionally) {
  const ChaosSchedule s = parseChaosSchedule("seed:3,drop:*:500");
  int dropped = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (chaosVerdict(s, "w", i, 0).drop) ++dropped;
  }
  EXPECT_GT(dropped, 350);
  EXPECT_LT(dropped, 650);
}

TEST(ChaosVerdict, PeerRulesOnlyMatchThatPeer) {
  const ChaosSchedule s = parseChaosSchedule("drop:w1:1000");
  EXPECT_TRUE(chaosVerdict(s, "w1", 0, 0).drop);
  EXPECT_FALSE(chaosVerdict(s, "w2", 0, 0).drop);
}

TEST(ChaosVerdict, PartitionWindowIsHalfOpen) {
  const ChaosSchedule s = parseChaosSchedule("partition:100:50");
  EXPECT_FALSE(chaosVerdict(s, "w", 0, 99).drop);
  EXPECT_TRUE(chaosVerdict(s, "w", 0, 100).drop);   // start inclusive
  EXPECT_TRUE(chaosVerdict(s, "w", 0, 149).drop);
  EXPECT_FALSE(chaosVerdict(s, "w", 0, 150).drop);  // end exclusive
}

TEST(ChaosVerdict, DelayTakesMaxAcrossRules) {
  const ChaosSchedule s = parseChaosSchedule("delay:*:10,delay:*:40");
  EXPECT_EQ(chaosVerdict(s, "w", 0, 0).delay_ms, 40);
}

// --- ChaosLink over a real socketpair ------------------------------------

class LinkFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }

  /// Feeds everything currently readable on the receive side.
  void drain() {
    char buf[4096];
    for (;;) {
      const long n = ::recv(fds_[1], buf, sizeof buf, MSG_DONTWAIT);
      if (n <= 0) break;
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  std::vector<std::string> frames() {
    drain();
    std::vector<std::string> out;
    for (;;) {
      const FrameDecoder::Result r = decoder_.next();
      if (r.status != FrameDecoder::Status::kFrame) break;
      out.push_back(r.frame.payload);
    }
    return out;
  }

  int fds_[2] = {-1, -1};
  FrameDecoder decoder_;
};

TEST_F(LinkFixture, EmptyScheduleIsTransparent) {
  const ChaosSchedule s;
  ChaosLink link(&s, fds_[0], "w", 0);
  ASSERT_TRUE(link.send(FrameType::kHeartbeat, "hb"));
  const auto got = frames();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hb");
  EXPECT_EQ(link.stats().total(), 0u);
}

TEST_F(LinkFixture, DropEatsFramesAfterSendSucceeds) {
  const ChaosSchedule s = parseChaosSchedule("drop:*:1000");
  ChaosLink link(&s, fds_[0], "w", 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(link.send(FrameType::kHeartbeat, "hb"));
  }
  EXPECT_EQ(link.stats().dropped, 5u);
  EXPECT_TRUE(frames().empty());
}

TEST_F(LinkFixture, DupDeliversTwice) {
  const ChaosSchedule s = parseChaosSchedule("dup:*:1000");
  ChaosLink link(&s, fds_[0], "w", 0);
  ASSERT_TRUE(link.send(FrameType::kResult, "r1"));
  const auto got = frames();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "r1");
  EXPECT_EQ(got[1], "r1");
  EXPECT_EQ(link.stats().duplicated, 1u);
}

TEST_F(LinkFixture, TruncationPoisonsTheReceiversDecoder) {
  const ChaosSchedule s = parseChaosSchedule("trunc:*:1000");
  ChaosLink link(&s, fds_[0], "w", 0);
  // Two torn frames: the second's bytes land inside the first's missing
  // payload, so the decoder completes a "frame" whose CRC cannot match.
  const std::string payload(100, 'x');
  ASSERT_TRUE(link.send(FrameType::kResult, payload));
  ASSERT_TRUE(link.send(FrameType::kResult, payload));
  EXPECT_EQ(link.stats().truncated, 2u);
  drain();
  FrameDecoder::Result r = decoder_.next();
  while (r.status == FrameDecoder::Status::kFrame) r = decoder_.next();
  EXPECT_EQ(r.status, FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder_.poisoned());
}

TEST_F(LinkFixture, DelayHoldsFramesUntilTick) {
  const ChaosSchedule s = parseChaosSchedule("delay:*:5000");
  ChaosLink link(&s, fds_[0], "w", 0);
  ASSERT_TRUE(link.send(FrameType::kLease, "l1"));
  ASSERT_TRUE(link.send(FrameType::kLease, "l2"));
  EXPECT_EQ(link.stats().delayed, 2u);
  EXPECT_FALSE(link.queueEmpty());
  EXPECT_TRUE(frames().empty());  // nothing on the wire yet

  link.tick(steadyNowMs());  // not due: 5s hold
  EXPECT_TRUE(frames().empty());

  link.tick(steadyNowMs() + 6000);  // past the hold: FIFO flush
  EXPECT_TRUE(link.queueEmpty());
  const auto got = frames();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "l1");
  EXPECT_EQ(got[1], "l2");
}

TEST_F(LinkFixture, ReorderLetsLaterFramesOvertake) {
  // Find a seed-determined pattern where frame i is held for reorder and
  // frame i+1 is not, then observe i+1 arrive first on the wire.
  const ChaosSchedule s = parseChaosSchedule("seed:11,reorder:*:400");
  int held = -1;
  for (std::uint64_t i = 0; i + 1 < 32; ++i) {
    if (chaosVerdict(s, "w", i, 0).reorder &&
        !chaosVerdict(s, "w", i + 1, 0).reorder) {
      held = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(held, 0) << "schedule never reorders in 32 frames; pick a "
                        "different seed";
  ChaosLink link(&s, fds_[0], "w", 0);
  for (int i = 0; i <= held + 1; ++i) {
    ASSERT_TRUE(link.send(FrameType::kLease, "p" + std::to_string(i)));
  }
  // The held frame is absent from the immediate arrivals...
  std::vector<std::string> now = frames();
  ASSERT_FALSE(now.empty());
  EXPECT_EQ(now.back(), "p" + std::to_string(held + 1));
  for (const std::string& p : now) {
    EXPECT_NE(p, "p" + std::to_string(held));
  }
  // ...and arrives after its hold expires (earlier frames may have been
  // held too; FIFO within the queue is fine — overtaking already
  // happened on the wire).
  link.tick(steadyNowMs() + 1000);
  const auto late = frames();
  ASSERT_FALSE(late.empty());
  bool found = false;
  for (const std::string& p : late) {
    found |= p == "p" + std::to_string(held);
  }
  EXPECT_TRUE(found);
  EXPECT_GE(link.stats().reordered, 1u);
}

// --- clock.h -------------------------------------------------------------

TEST(FabricClock, DeadlineArithmetic) {
  EXPECT_FALSE(deadlineExpired(1000, 0, 0));    // zero budget = disabled
  EXPECT_FALSE(deadlineExpired(1000, 0, -5));   // negative = disabled
  EXPECT_FALSE(deadlineExpired(100, 200, 50));  // since ahead of now
  EXPECT_FALSE(deadlineExpired(150, 100, 50));  // exactly at budget
  EXPECT_TRUE(deadlineExpired(151, 100, 50));   // one past
}

TEST(FabricClock, SteadyNowIsMonotonic) {
  const std::int64_t a = steadyNowMs();
  const std::int64_t b = steadyNowMs();
  EXPECT_LE(a, b);
}

// --- coordinator checkpoint ----------------------------------------------

TEST(Checkpoint, RoundTripsIncludingSpaceyFingerprint) {
  CoordinatorCheckpoint ckpt;
  ckpt.fingerprint = "sweep-v1 protocol=mpcp seeds=12 horizon=5000";
  ckpt.attempts["s3"] = 2;
  ckpt.attempts["s7"] = 10;
  ckpt.in_flight.insert("s4");
  ckpt.in_flight.insert("s5");
  CoordinatorCheckpoint out;
  ASSERT_TRUE(decodeCheckpoint(encodeCheckpoint(ckpt), out));
  EXPECT_EQ(out.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(out.attempts, ckpt.attempts);
  EXPECT_EQ(out.in_flight, ckpt.in_flight);
}

TEST(Checkpoint, RejectsCorruption) {
  CoordinatorCheckpoint ckpt;
  ckpt.fingerprint = "f";
  ckpt.attempts["k"] = 1;
  const std::string good = encodeCheckpoint(ckpt);
  CoordinatorCheckpoint out;

  EXPECT_FALSE(decodeCheckpoint("", out));
  EXPECT_FALSE(decodeCheckpoint("mpcp-ckpt 99\ncrc 00000000\n", out));
  EXPECT_FALSE(decodeCheckpoint(good.substr(0, good.size() / 2), out));

  std::string flipped = good;
  flipped[good.find("attempt") + 9] ^= 1;  // corrupt the key byte-wise
  EXPECT_FALSE(decodeCheckpoint(flipped, out));

  std::string extra = good;
  extra.insert(extra.find("crc "), "mystery line\n");
  EXPECT_FALSE(decodeCheckpoint(extra, out));
}

TEST(Checkpoint, SaveAndLoadFile) {
  const std::string path =
      ::testing::TempDir() + "/fabric_chaos_test.ckpt";
  std::remove(path.c_str());

  CoordinatorCheckpoint out;
  EXPECT_FALSE(loadCheckpoint(path, out));  // missing file

  CoordinatorCheckpoint ckpt;
  ckpt.fingerprint = "fp with spaces";
  ckpt.attempts["s1"] = 3;
  ckpt.in_flight.insert("s2");
  saveCheckpoint(path, ckpt);
  ASSERT_TRUE(loadCheckpoint(path, out));
  EXPECT_EQ(out.fingerprint, "fp with spaces");
  EXPECT_EQ(out.attempts.at("s1"), 3);
  EXPECT_EQ(out.in_flight.count("s2"), 1u);

  // Corrupt the file on disk: load refuses rather than guessing.
  {
    std::ofstream f(path, std::ios::app);
    f << "trailing garbage\n";
  }
  EXPECT_FALSE(loadCheckpoint(path, out));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcp::exec::fabric
