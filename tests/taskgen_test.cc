// Workload generation, allocation heuristics, and group-lock collapse.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "core/simulate.h"
#include "taskgen/allocation.h"
#include "taskgen/generator.h"
#include "taskgen/group_locks.h"
#include "taskgen/uunifast.h"

namespace mpcp {
namespace {

TEST(UUniFast, SumsToTotalAndStaysPositive) {
  Rng rng(3);
  for (int n : {1, 2, 8, 32}) {
    const auto u = uunifast(n, 0.7, rng);
    ASSERT_EQ(u.size(), static_cast<std::size_t>(n));
    double sum = 0;
    for (double x : u) {
      EXPECT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.7, 1e-9);
  }
}

TEST(UUniFast, LogUniformPeriodRespectsRangeAndGranularity) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const Duration p = logUniformPeriod(1000, 100000, 100, rng);
    EXPECT_GE(p, 1000);
    EXPECT_LE(p, 100000);
    EXPECT_EQ(p % 100, 0);
  }
}

TEST(Generator, ProducesValidSystemsWithTargetShape) {
  WorkloadParams params;
  params.processors = 3;
  params.tasks_per_processor = 4;
  params.utilization_per_processor = 0.5;
  Rng rng(9);
  const TaskSystem sys = generateWorkload(params, rng);
  EXPECT_EQ(sys.processorCount(), 3);
  EXPECT_EQ(sys.tasks().size(), 12u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(sys.tasksOn(ProcessorId(p)).size(), 4u);
    // Rounding to integer WCETs distorts utilization slightly.
    EXPECT_NEAR(sys.utilizationOn(ProcessorId(p)), 0.5, 0.15);
  }
}

TEST(Generator, DeterministicGivenSeed) {
  WorkloadParams params;
  Rng r1(77), r2(77);
  const TaskSystem a = generateWorkload(params, r1);
  const TaskSystem b = generateWorkload(params, r2);
  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  for (std::size_t i = 0; i < a.tasks().size(); ++i) {
    EXPECT_EQ(a.tasks()[i].period, b.tasks()[i].period);
    EXPECT_EQ(a.tasks()[i].wcet, b.tasks()[i].wcet);
    EXPECT_TRUE(a.tasks()[i].body == b.tasks()[i].body);
  }
}

TEST(Generator, SectionsFitInsideWcet) {
  WorkloadParams params;
  params.cs_max = 200;  // force truncation pressure
  params.max_gcs_per_task = 4;
  Rng rng(123);
  const TaskSystem sys = generateWorkload(params, rng);
  for (const Task& t : sys.tasks()) {
    Duration cs_total = 0;
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) cs_total += cs.duration;
    }
    EXPECT_LT(cs_total, t.wcet) << t.name;  // >=1 tick of normal execution
  }
}

TEST(Generator, NestedGlobalOnlyWhenRequested) {
  WorkloadParams plain;
  Rng r1(5);
  const TaskSystem flat = generateWorkload(plain, r1);
  for (const Task& t : flat.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      EXPECT_EQ(cs.depth, 0) << t.name;
    }
  }

  WorkloadParams nested = plain;
  nested.nested_global_prob = 1.0;
  nested.max_gcs_per_task = 3;
  nested.global_sharing_prob = 1.0;
  bool found_nest = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found_nest; ++seed) {
    Rng r(seed);
    const TaskSystem sys = generateWorkload(nested, r);
    for (const Task& t : sys.tasks()) {
      for (const CriticalSection& cs : t.sections) {
        found_nest |= cs.depth > 0;
      }
    }
  }
  EXPECT_TRUE(found_nest);
}

std::vector<UnboundTask> someTasks() {
  const ResourceId r0(0), r1(1);
  std::vector<UnboundTask> tasks;
  tasks.push_back({"t1", 10, Body{}.compute(4).section(r0, 1)});   // u=.5
  tasks.push_back({"t2", 10, Body{}.compute(4)});                  // u=.4
  tasks.push_back({"t3", 20, Body{}.compute(7).section(r0, 1)});   // u=.4
  tasks.push_back({"t4", 20, Body{}.compute(6).section(r1, 1)});   // u=.35
  tasks.push_back({"t5", 40, Body{}.compute(8).section(r1, 2)});   // u=.25
  return tasks;
}

TEST(Allocation, FirstFitDecreasingRespectsCapacity) {
  const auto tasks = someTasks();
  // (0.69 is infeasible for this set: u = {.5, .4, .4, .35, .25} cannot
  // pack into 3 bins of 0.69 — so use 0.75, which FFD fills exactly.)
  const AllocationResult alloc = allocateFirstFitDecreasing(tasks, 3, 0.75);
  EXPECT_TRUE(alloc.within_capacity);
  std::vector<double> load(3, 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_GE(alloc.processor[i], 0);
    ASSERT_LT(alloc.processor[i], 3);
    load[static_cast<std::size_t>(alloc.processor[i])] +=
        static_cast<double>(tasks[i].body.totalCompute()) /
        static_cast<double>(tasks[i].period);
  }
  for (double l : load) EXPECT_LE(l, 0.75 + 1e-9);
}

TEST(Allocation, ResourceAffinityColocatesSharers) {
  const auto tasks = someTasks();
  const AllocationResult alloc = allocateResourceAffinity(tasks, 3, 0.95);
  // t1 and t3 share r0; t4 and t5 share r1 — affinity should co-locate
  // each pair (capacity 0.95 permits it).
  EXPECT_EQ(alloc.processor[0], alloc.processor[2]);
  EXPECT_EQ(alloc.processor[3], alloc.processor[4]);
}

TEST(Allocation, AffinityReducesGlobalResources) {
  const auto tasks = someTasks();
  const auto ffd = allocateFirstFitDecreasing(tasks, 3, 0.95);
  const auto aff = allocateResourceAffinity(tasks, 3, 0.95);
  const TaskSystem sys_ffd = bindTasks(tasks, ffd, 3, 2);
  const TaskSystem sys_aff = bindTasks(tasks, aff, 3, 2);
  int globals_ffd = 0, globals_aff = 0;
  for (const ResourceInfo& r : sys_ffd.resources()) {
    globals_ffd += r.scope == ResourceScope::kGlobal ? 1 : 0;
  }
  for (const ResourceInfo& r : sys_aff.resources()) {
    globals_aff += r.scope == ResourceScope::kGlobal ? 1 : 0;
  }
  EXPECT_LE(globals_aff, globals_ffd);
  EXPECT_EQ(globals_aff, 0);  // both pairs co-located -> all local
}

TEST(Allocation, OverCapacityFlagged) {
  const auto tasks = someTasks();
  const AllocationResult alloc = allocateFirstFitDecreasing(tasks, 1, 0.5);
  EXPECT_FALSE(alloc.within_capacity);
  for (int p : alloc.processor) EXPECT_EQ(p, 0);
}

TEST(GroupLocks, CollapsesNestedGlobalIntoFlatSections) {
  TaskSystemBuilder b(2, {.allow_nested_global = true});
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 60, .processor = 0,
             .body = Body{}.compute(1).lock(g1).compute(2).section(g2, 3)
                        .compute(1).unlock(g1).compute(1)});
  b.addTask({.name = "b", .period = 80, .processor = 1,
             .body = Body{}.compute(1).section(g2, 2).compute(1)});
  const TaskSystem nested = std::move(b).build();
  const TaskSystem flat = collapseToGroupLocks(nested);

  // Same timing.
  ASSERT_EQ(flat.tasks().size(), 2u);
  EXPECT_EQ(flat.tasks()[0].wcet, nested.tasks()[0].wcet);
  EXPECT_EQ(flat.tasks()[1].wcet, nested.tasks()[1].wcet);
  // No nesting left; a's two sections merged into one group section.
  for (const Task& t : flat.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      EXPECT_EQ(cs.depth, 0) << t.name;
    }
  }
  EXPECT_EQ(flat.tasks()[0].sections.size(), 1u);
  EXPECT_EQ(flat.tasks()[0].sections[0].duration, 6);  // 2 + 3 + 1
  // MPCP can now run it.
  const SimResult r = simulate(ProtocolKind::kMpcp, flat, {.horizon = 500});
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(GroupLocks, LeavesFlatSystemsAlone) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const ResourceId l = b.addResource("L");
  b.addTask({.name = "a", .period = 60, .processor = 0,
             .body = Body{}.section(g, 2).section(l, 1).compute(1)});
  b.addTask({.name = "b", .period = 80, .processor = 1,
             .body = Body{}.section(g, 2).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const TaskSystem out = collapseToGroupLocks(sys);
  EXPECT_EQ(out.resources().size(), sys.resources().size());
  for (std::size_t i = 0; i < sys.tasks().size(); ++i) {
    EXPECT_TRUE(out.tasks()[i].body == sys.tasks()[i].body);
  }
}

}  // namespace
}  // namespace mpcp
