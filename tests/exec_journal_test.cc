// CampaignJournal durability (ISSUE 5 satellite): torn-tail truncation
// at EVERY byte offset of the final record parses cleanly, CRC-corrupt
// interior lines are skipped with a counter, escaping round-trips
// arbitrary payloads, and completed() implements the resume semantics
// (done sets, fail erases, stale start records are ignored).
#include "exec/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/check.h"

namespace mpcp::exec {
namespace {

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/mpcp_journal_" + name + "_" +
         std::to_string(::getpid());
}

std::string makeLine(RecordKind kind, const std::string& key,
                     const std::string& payload) {
  const std::string body =
      std::string(toString(kind)) + " " + key + " " + escapeLine(payload);
  char hex[9];
  std::snprintf(hex, sizeof hex, "%08x", crc32(body));
  return std::string(hex) + " " + body + "\n";
}

TEST(JournalCrc, MatchesIeeeCheckValue) {
  // The canonical CRC-32 check value (zlib, PNG, IEEE 802.3).
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(JournalEscape, RoundTripsControlBytes) {
  const std::string nasty = "a,b\nline2\r\\back\\slash\n\n\r\r";
  const std::string escaped = escapeLine(nasty);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  EXPECT_EQ(unescapeLine(escaped), nasty);
  EXPECT_EQ(unescapeLine(escapeLine("")), "");
  EXPECT_EQ(unescapeLine(escapeLine("plain")), "plain");
}

TEST(Journal, AppendLoadRoundTrip) {
  const std::string path = tempPath("roundtrip");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path);
    journal.append(RecordKind::kMeta, "config", "sweep-v1 seeds=3");
    journal.append(RecordKind::kStart, "s1", "");
    journal.append(RecordKind::kDone, "s1", "1,2,3\nwith,newline");
    journal.append(RecordKind::kStart, "s2", "");
    journal.append(RecordKind::kFail, "s2", "worker killed by signal 9");
  }
  const JournalLoad load = loadJournalFile(path);
  EXPECT_EQ(load.corrupt_lines, 0u);
  EXPECT_FALSE(load.torn_tail);
  ASSERT_EQ(load.records.size(), 5u);
  EXPECT_EQ(load.meta, "sweep-v1 seeds=3");
  EXPECT_EQ(load.records[2].kind, RecordKind::kDone);
  EXPECT_EQ(load.records[2].key, "s1");
  EXPECT_EQ(load.records[2].payload, "1,2,3\nwith,newline");

  const auto completed = load.completed();
  ASSERT_EQ(completed.size(), 1u);  // s2 failed -> must re-run
  EXPECT_EQ(completed.at("s1"), "1,2,3\nwith,newline");
  std::remove(path.c_str());
}

TEST(Journal, MissingFileIsEmpty) {
  const JournalLoad load = loadJournalFile(tempPath("never_created"));
  EXPECT_TRUE(load.empty());
}

TEST(Journal, TornTailAtEveryByteOffset) {
  // A journal whose final record is truncated at ANY byte offset must
  // keep every earlier record, report torn_tail, and count no corruption
  // (a torn tail is the expected SIGKILL-mid-append signature, not rot).
  const std::string first = makeLine(RecordKind::kDone, "s1", "1,2,3");
  const std::string second =
      makeLine(RecordKind::kDone, "s2", "payload with spaces\nand newline");
  const std::string full = first + second;
  for (std::size_t cut = first.size(); cut < full.size(); ++cut) {
    const JournalLoad load = parseJournal(full.substr(0, cut));
    ASSERT_EQ(load.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(load.records[0].key, "s1") << "cut at " << cut;
    EXPECT_EQ(load.records[0].payload, "1,2,3") << "cut at " << cut;
    EXPECT_EQ(load.corrupt_lines, 0u) << "cut at " << cut;
    if (cut > first.size()) {
      EXPECT_TRUE(load.torn_tail) << "cut at " << cut;
    }
  }
  // The untruncated text parses both records.
  const JournalLoad whole = parseJournal(full);
  EXPECT_EQ(whole.records.size(), 2u);
  EXPECT_FALSE(whole.torn_tail);
}

TEST(Journal, CorruptInteriorLineSkippedAndCounted) {
  const std::string first = makeLine(RecordKind::kDone, "s1", "1,2,3");
  const std::string second = makeLine(RecordKind::kDone, "s2", "4,5,6");
  std::string damaged = first;
  damaged[12] ^= 0x01;  // flip a bit inside the first record's body
  const JournalLoad load = parseJournal(damaged + second);
  EXPECT_EQ(load.corrupt_lines, 1u);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].key, "s2");
  EXPECT_FALSE(load.empty());
}

TEST(Journal, GarbageLinesCounted) {
  const std::string good = makeLine(RecordKind::kDone, "s7", "row");
  const JournalLoad load =
      parseJournal("not a journal line\n" + good + "deadbeef nokind\n");
  EXPECT_EQ(load.corrupt_lines, 2u);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].key, "s7");
}

TEST(Journal, CompletedSemantics) {
  // done sets; a later fail erases (re-run); a stale start after done is
  // ignored; the last done wins.
  const std::string text =
      makeLine(RecordKind::kStart, "a", "") +
      makeLine(RecordKind::kDone, "a", "v1") +
      makeLine(RecordKind::kStart, "a", "") +       // stale, ignored
      makeLine(RecordKind::kStart, "b", "") +       // started, never done
      makeLine(RecordKind::kDone, "c", "old") +
      makeLine(RecordKind::kDone, "c", "new") +
      makeLine(RecordKind::kDone, "d", "gone") +
      makeLine(RecordKind::kFail, "d", "crashed");  // erased -> re-run
  const auto completed = parseJournal(text).completed();
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed.at("a"), "v1");
  EXPECT_EQ(completed.at("c"), "new");
  EXPECT_EQ(completed.count("b"), 0u);
  EXPECT_EQ(completed.count("d"), 0u);
}

TEST(Journal, AppendRejectsWhitespaceKeys) {
  const std::string path = tempPath("badkey");
  std::remove(path.c_str());
  CampaignJournal journal(path);
  EXPECT_THROW(journal.append(RecordKind::kDone, "bad key", "x"),
               InvariantError);
  std::remove(path.c_str());
}

TEST(Journal, UnopenablePathThrowsConfigError) {
  EXPECT_THROW(CampaignJournal("/nonexistent-dir/sub/j.journal"), ConfigError);
}

// --- JournalIo fault injection (ISSUE 10 satellite) ----------------------
//
// The seam simulates a hostile disk: ENOSPC and short writes at every
// byte offset of a record, failing fsync, and torn renames. The
// invariant under all of them: append() throws ConfigError (callers
// contain it), and whatever DID land on disk is parseable — a torn
// record is at most a torn tail, never a poisoned journal.

TEST(JournalFaults, EnospcAtEveryByteOffset) {
  const std::string record = formatRecord(RecordKind::kDone, "k1", "row");
  for (std::size_t budget = 0; budget < record.size(); ++budget) {
    for (const bool short_writes : {false, true}) {
      const std::string path = tempPath("enospc");
      std::remove(path.c_str());
      FaultyJournalIo io;
      io.budget_bytes = static_cast<std::int64_t>(budget);
      io.short_writes = short_writes;
      CampaignJournal j(path, &io);
      EXPECT_THROW(j.append(RecordKind::kDone, "k1", "row"), ConfigError)
          << "budget=" << budget << " short=" << short_writes;
      EXPECT_GE(io.write_errors, 1u);

      // Whatever landed must parse: with short writes a prefix of the
      // record is on disk (a torn tail); without, nothing is.
      const JournalLoad load = loadJournalFile(path);
      EXPECT_TRUE(load.records.empty());
      EXPECT_EQ(load.corrupt_lines, 0u);
      if (!short_writes) {
        EXPECT_FALSE(load.torn_tail);
      } else if (budget > 0) {
        EXPECT_TRUE(load.torn_tail) << "budget=" << budget;
      }
      std::remove(path.c_str());
    }
  }
}

TEST(JournalFaults, TornRecordAfterHealthyOnesIsJustATornTail) {
  const std::string r1 = formatRecord(RecordKind::kDone, "k1", "a");
  // Budget covers record one plus half of record two.
  const std::string path = tempPath("torn_after");
  std::remove(path.c_str());
  FaultyJournalIo io;
  io.short_writes = true;
  io.budget_bytes = static_cast<std::int64_t>(r1.size() + 7);
  CampaignJournal j(path, &io);
  j.append(RecordKind::kDone, "k1", "a");
  EXPECT_THROW(j.append(RecordKind::kDone, "k2", "b"), ConfigError);

  const JournalLoad load = loadJournalFile(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].key, "k1");
  EXPECT_TRUE(load.torn_tail);
  EXPECT_EQ(load.corrupt_lines, 0u);
  std::remove(path.c_str());
}

TEST(JournalFaults, FsyncFailureSurfacesAsConfigError) {
  const std::string path = tempPath("fsync");
  std::remove(path.c_str());
  FaultyJournalIo io;
  io.fsync_failures_after = 1;
  CampaignJournal j(path, &io);
  j.append(RecordKind::kDone, "k1", "a");  // first fsync succeeds
  EXPECT_THROW(j.append(RecordKind::kDone, "k2", "b"), ConfigError);
  EXPECT_EQ(io.fsync_errors, 1u);
  std::remove(path.c_str());
}

TEST(JournalFaults, PathFilterScopesTheFaults) {
  const std::string sick = tempPath("filter_shard");
  const std::string healthy = tempPath("filter_main");
  std::remove(sick.c_str());
  std::remove(healthy.c_str());
  FaultyJournalIo io;
  io.budget_bytes = 0;
  io.path_filter = "filter_shard";
  CampaignJournal js(sick, &io);
  CampaignJournal jh(healthy, &io);
  EXPECT_THROW(js.append(RecordKind::kDone, "k", "x"), ConfigError);
  jh.append(RecordKind::kDone, "k", "x");  // unfiltered path: no faults
  EXPECT_EQ(loadJournalFile(healthy).records.size(), 1u);
  std::remove(sick.c_str());
  std::remove(healthy.c_str());
}

TEST(JournalFaults, TornRenameLeavesTargetUntouched) {
  const std::string path = tempPath("atomic");
  writeFileAtomic(path, "original contents\n");

  FaultyJournalIo io;
  io.fail_renames = true;
  EXPECT_THROW(writeFileAtomic(path, "replacement\n", &io), ConfigError);
  EXPECT_GE(io.rename_errors, 1u);

  std::ifstream f(path);
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_EQ(line, "original contents");
  std::remove(path.c_str());
}

TEST(JournalFaults, AtomicWriteEnospcLeavesTargetUntouched) {
  const std::string path = tempPath("atomic_enospc");
  writeFileAtomic(path, "original contents\n");
  for (const bool short_writes : {false, true}) {
    FaultyJournalIo io;
    io.budget_bytes = 4;
    io.short_writes = short_writes;
    EXPECT_THROW(writeFileAtomic(path, "replacement\n", &io), ConfigError);
    std::ifstream f(path);
    std::string line;
    ASSERT_TRUE(std::getline(f, line));
    EXPECT_EQ(line, "original contents");
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcp::exec
