// Checked parsing of journaled sweep rows (ISSUE 8 bugfix). Resumed
// journal payloads are untrusted bytes — a kill -9 mid-flush or a
// corrupted journal hands cmdSweep arbitrary text — and the old bare
// std::stoull aborted with a context-free "stoull: invalid_argument".
// accumulateSweepTotals must instead diagnose the row, the column, and
// the offending field, and must reject wrong column counts outright.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "cli_util.h"

namespace mpcp::cli {
namespace {

constexpr std::size_t kColumns = 9;  // cmdSweep's totals width

std::array<std::uint64_t, kColumns> zeros() { return {}; }

std::string messageOf(const std::string& payload) {
  auto totals = zeros();
  try {
    accumulateSweepTotals(payload, totals.data(), totals.size());
  } catch (const UsageError&) {
    ADD_FAILURE() << "journal corruption is not a usage error (usage "
                     "reprint would bury the diagnosis)";
    return "";
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::runtime_error for '" << payload << "'";
  return "";
}

TEST(AccumulateSweepTotals, AccumulatesWellFormedRows) {
  auto totals = zeros();
  accumulateSweepTotals("7,1,0,20,20,5,2,1,3,0", totals.data(),
                        totals.size());
  accumulateSweepTotals("8,0,2,10,8,4,1,0,2,1", totals.data(), totals.size());
  // The seed column (7, 8) is never summed; the rest accumulate.
  const std::array<std::uint64_t, kColumns> want = {1,  2, 30, 28, 9,
                                                    3, 1, 5,  1};
  EXPECT_EQ(totals, want);
}

TEST(AccumulateSweepTotals, DiagnosesNonNumericField) {
  const std::string msg = messageOf("7,1,0,garbage,20,5,2,1,3,0");
  EXPECT_NE(msg.find("malformed sweep row"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'garbage'"), std::string::npos) << msg;
}

TEST(AccumulateSweepTotals, DiagnosesNegativeAndEmptyFields) {
  // stoull would have wrapped "-1" to 2^64-1 silently.
  EXPECT_NE(messageOf("7,1,0,-1,20,5,2,1,3,0").find("'-1'"),
            std::string::npos);
  EXPECT_NE(messageOf("7,1,,20,20,5,2,1,3,0").find("column 2"),
            std::string::npos);
}

TEST(AccumulateSweepTotals, DiagnosesTruncatedRow) {
  // A partial flush cut the row short; stoull would have silently
  // under-accumulated.
  const std::string msg = messageOf("7,1,0,20");
  EXPECT_NE(msg.find("expected 10"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 4"), std::string::npos) << msg;
}

TEST(AccumulateSweepTotals, DiagnosesExtraColumns) {
  const std::string msg = messageOf("7,1,0,20,20,5,2,1,3,0,99");
  EXPECT_NE(msg.find("got 11"), std::string::npos) << msg;
}

TEST(AccumulateSweepTotals, MalformedRowLeavesNoPartialSums) {
  // Field validation completes before any accumulation, so a bad row
  // never half-updates the totals it failed on.
  auto totals = zeros();
  EXPECT_THROW(accumulateSweepTotals("7,1,0,20,20,bad,2,1,3,0",
                                     totals.data(), totals.size()),
               std::runtime_error);
  EXPECT_EQ(totals, zeros());
}

}  // namespace
}  // namespace mpcp::cli
