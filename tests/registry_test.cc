// The protocol registry (ISSUE 8): one name-keyed source of truth for
// every protocol the repo speaks. The CLI parser, the factory shims, the
// analyzer and the fuzzer all delegate here, so these tests pin the
// contract they share: canonical append-only order, exact name<->kind
// round-trips, and first-class unknown-name diagnostics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/ceilings.h"
#include "common/check.h"
#include "core/protocol_factory.h"
#include "core/protocol_registry.h"
#include "model/task_system.h"

namespace mpcp {
namespace {

// Corpus repro files index protocols by this order; changing anything
// but the tail silently retargets old corpus entries (see the
// append-only note in core/protocol_registry.h).
const std::vector<std::string> kCanonicalOrder = {
    "none", "none-prio", "pip",    "pcp",       "mpcp",
    "dpcp", "hybrid",    "spin-fifo", "spin-prio"};

TEST(Registry, CanonicalOrderIsAppendOnly) {
  EXPECT_EQ(protocolNameList(), kCanonicalOrder);
  ASSERT_EQ(protocolRegistry().size(), kCanonicalOrder.size());
}

TEST(Registry, NameKindRoundTrip) {
  for (const ProtocolSpec& spec : protocolRegistry()) {
    EXPECT_EQ(protocolKindFromName(spec.name), spec.kind) << spec.name;
    EXPECT_STREQ(toString(spec.kind), spec.name) << spec.name;
    EXPECT_EQ(&protocolSpec(spec.kind), &spec) << spec.name;
    EXPECT_EQ(findProtocol(spec.name), &spec) << spec.name;
  }
}

TEST(Registry, UnknownNameIsFirstClassAndListsKnownNames) {
  EXPECT_EQ(findProtocol("msrpx"), nullptr);
  try {
    (void)protocolKindFromName("msrpx");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown protocol 'msrpx'"), std::string::npos) << msg;
    // The diagnostic must make every protocol discoverable.
    for (const std::string& name : kCanonicalOrder) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg << " / " << name;
    }
  }
}

TEST(Registry, SummariesAndCapabilityFlags) {
  for (const ProtocolSpec& spec : protocolRegistry()) {
    EXPECT_NE(spec.summary, nullptr) << spec.name;
    EXPECT_GT(std::string(spec.summary).size(), 10u) << spec.name;
  }
  EXPECT_TRUE(protocolSpec(ProtocolKind::kMpcp).analyzable);
  EXPECT_TRUE(protocolSpec(ProtocolKind::kMpcp).suspension_based);
  EXPECT_FALSE(protocolSpec(ProtocolKind::kNone).analyzable);
  // The spin protocols busy-wait (blocked jobs never suspend) and carry
  // their own blocking analysis (analysis/blocking_spin.h).
  for (const ProtocolKind k :
       {ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio}) {
    EXPECT_TRUE(protocolSpec(k).analyzable) << toString(k);
    EXPECT_FALSE(protocolSpec(k).suspension_based) << toString(k);
  }
}

TEST(Registry, FactoriesConstructAndSelfIdentify) {
  // A local-only flat-section system is acceptable to every protocol
  // (PCP rejects globals, spin rejects nesting; this has neither).
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(1).section(s, 2).compute(1)});
  b.addTask({.name = "b", .period = 200, .processor = 0,
             .body = Body{}.compute(2).section(s, 1)});
  b.addTask({.name = "c", .period = 150, .processor = 1,
             .body = Body{}.compute(3)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);

  for (const ProtocolSpec& spec : protocolRegistry()) {
    const auto via_registry = spec.make(sys, tables);
    const auto via_factory = makeProtocol(spec.kind, sys, tables);
    ASSERT_NE(via_registry, nullptr) << spec.name;
    ASSERT_NE(via_factory, nullptr) << spec.name;
    EXPECT_STREQ(via_registry->name(), via_factory->name()) << spec.name;
    // none-prio shares NoProtocol (which reports "none"); every other
    // protocol self-identifies with its canonical registry name.
    if (spec.kind != ProtocolKind::kNonePrio) {
      EXPECT_STREQ(via_factory->name(), spec.name);
    }
  }
}

}  // namespace
}  // namespace mpcp
