// exp::ThreadPool / exp::SweepRunner — the parallel experiment runner.
//
// The load-bearing property: every sweep is bit-identical at any thread
// count, because per-seed RNG streams derive from the seed index alone
// and rows land in seed-indexed slots. These tests pin that contract at
// 1, 2, and 8 threads, including through the real bench pipeline
// (acceptanceSweep: generate -> analyze -> simulate).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"

namespace mpcp {
namespace {

using bench::AcceptanceResult;
using bench::acceptanceSweep;
using exp::SweepRunner;
using exp::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ZeroAndNegativeIterationCountsAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallelFor(0, [&](std::int64_t) { ++calls; });
  pool.parallelFor(-5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  pool.parallelFor(3, [&](std::int64_t i) {
    seen[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ClampsNonPositiveThreadCountToOne) {
  EXPECT_EQ(ThreadPool(0).threadCount(), 1);
  EXPECT_EQ(ThreadPool(-3).threadCount(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(100,
                                [](std::int64_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);

  // The pool must survive a throwing batch.
  std::atomic<int> count{0};
  pool.parallelFor(50, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, LowestChunkStartExceptionWins) {
  ThreadPool pool(4);
  // Two iterations throw; the rethrown exception must be the one from the
  // chunk with the lowest start — deterministically the one containing
  // i == 3 (its chunk starts at 0, far below i == 700's).
  try {
    pool.parallelFor(1000, [](std::int64_t i) {
      if (i == 3) throw std::runtime_error("low");
      if (i == 700) throw std::runtime_error("high");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "low");
  }
}

TEST(ThreadPool, DefaultThreadCountReadsEnvironment) {
  setenv("MPCP_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3);
  setenv("MPCP_THREADS", "not-a-number", 1);
  const int fallback = ThreadPool::defaultThreadCount();
  EXPECT_GE(fallback, 1);  // falls back to hardware concurrency
  unsetenv("MPCP_THREADS");
}

TEST(SweepRunner, RngMatchesSerialSeedConvention) {
  // Benches always wrote `Rng rng(base + s)`; rngFor must reproduce that
  // stream exactly.
  for (int s : {0, 1, 17}) {
    Rng expected(12'345 + static_cast<std::uint64_t>(s));
    Rng got = SweepRunner::rngFor(12'345, s);
    for (int draw = 0; draw < 4; ++draw) {
      EXPECT_EQ(got.next(), expected.next());
    }
  }
}

TEST(SweepRunner, MapRowsLandInSeedOrderAtAnyThreadCount) {
  auto fn = [](int s, Rng& rng) {
    return rng.next() ^ static_cast<std::uint64_t>(s);
  };
  SweepRunner one(1);
  const std::vector<std::uint64_t> expected = one.map(257, 99, fn);
  ASSERT_EQ(expected.size(), 257u);
  for (int threads : {2, 8}) {
    SweepRunner runner(threads);
    EXPECT_EQ(runner.map(257, 99, fn), expected)
        << "at " << threads << " threads";
  }
}

TEST(SweepRunner, MapWithZeroSeedsReturnsEmpty) {
  SweepRunner runner(2);
  const auto rows =
      runner.map(0, 7, [](int, Rng& rng) { return rng.next(); });
  EXPECT_TRUE(rows.empty());
}

/// End-to-end through the bench pipeline: generate a workload, run the
/// schedulability analyses, simulate accepted systems — identical
/// aggregates at 1, 2, and 8 threads.
TEST(SweepRunner, AcceptanceSweepIsBitIdenticalAcrossThreadCounts) {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.global_resources = 2;
  p.cs_max = 25;
  p.utilization_per_processor = 0.55;
  constexpr int kSeeds = 12;

  SweepRunner serial(1);
  const AcceptanceResult base = acceptanceSweep(
      ProtocolKind::kMpcp, p, kSeeds, 31'000, /*simulate_accepted=*/true,
      &serial);
  EXPECT_EQ(base.runs, kSeeds);

  for (int threads : {2, 8}) {
    SweepRunner runner(threads);
    const AcceptanceResult r = acceptanceSweep(
        ProtocolKind::kMpcp, p, kSeeds, 31'000, true, &runner);
    EXPECT_EQ(r.accepted_rta, base.accepted_rta) << threads << " threads";
    EXPECT_EQ(r.accepted_ll, base.accepted_ll) << threads << " threads";
    EXPECT_EQ(r.sim_miss_given_accept, base.sim_miss_given_accept)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace mpcp
