// Property tests over seeded random workloads: the analytical claims of
// Section 5 must hold against the simulator.
//
//   P1  Soundness: if the analysis (Theorem 3 or RTA) declares a system
//       schedulable under MPCP/DPCP, the simulation shows no deadline
//       miss over the synchronous-release horizon.
//   P2  Blocking bounds: in a miss-free run, every job's measured
//       priority-inversion time stays within B_i.
//   P3  Protocol invariants hold on every run: mutual exclusion,
//       priority-ordered handoff, and (MPCP) Theorem 2.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "taskgen/generator.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::maxBlockedOf;

struct SweepParams {
  std::uint64_t seed;
  int processors;
  double util;
};

class SoundnessSweep : public ::testing::TestWithParam<SweepParams> {};

WorkloadParams workloadFor(const SweepParams& p) {
  WorkloadParams w;
  w.processors = p.processors;
  w.tasks_per_processor = 3;
  w.utilization_per_processor = p.util;
  w.period_min = 1'000;
  w.period_max = 20'000;
  w.period_granularity = 1'000;  // keeps hyperperiods simulable
  w.global_resources = 2;
  w.max_gcs_per_task = 2;
  w.global_sharing_prob = 0.7;
  w.local_resources_per_processor = 1;
  w.max_lcs_per_task = 1;
  w.cs_min = 1;
  w.cs_max = 20;
  return w;
}

TEST_P(SoundnessSweep, MpcpAnalysisVsSimulation) {
  Rng rng(GetParam().seed);
  const TaskSystem sys = generateWorkload(workloadFor(GetParam()), rng);
  const ProtocolAnalysis analysis = analyzeUnder(ProtocolKind::kMpcp, sys);

  const SimResult r =
      simulate(ProtocolKind::kMpcp, sys, {.horizon_cap = 400'000});

  // P3: invariants always hold.
  const InvariantReport rep = checkProtocolInvariants(sys, r);
  ASSERT_TRUE(rep.ok()) << rep.violations.front();

  // P1: accepted by the analysis => no miss observed.
  if (analysis.report.rta_all || analysis.report.ll_all) {
    EXPECT_FALSE(r.any_deadline_miss)
        << "analysis accepted but the simulation missed a deadline "
           "(seed "
        << GetParam().seed << ")";
  }

  // P2: measured blocking within the bound on miss-free runs.
  if (!r.any_deadline_miss) {
    for (const Task& t : sys.tasks()) {
      EXPECT_LE(maxBlockedOf(r, t.id),
                analysis.blocking[static_cast<std::size_t>(t.id.value())])
          << t.name << " exceeded its MPCP blocking bound (seed "
          << GetParam().seed << ")";
    }
  }
}

TEST_P(SoundnessSweep, DpcpAnalysisVsSimulation) {
  Rng rng(GetParam().seed ^ 0xD9C9ull);
  const TaskSystem sys = generateWorkload(workloadFor(GetParam()), rng);
  const ProtocolAnalysis analysis = analyzeUnder(ProtocolKind::kDpcp, sys);

  const SimResult r =
      simulate(ProtocolKind::kDpcp, sys, {.horizon_cap = 400'000});

  InvariantReport rep = checkMutualExclusion(sys, r);
  ASSERT_TRUE(rep.ok()) << rep.violations.front();
  rep = checkPriorityOrderedHandoff(sys, r);
  ASSERT_TRUE(rep.ok()) << rep.violations.front();

  if (analysis.report.rta_all || analysis.report.ll_all) {
    EXPECT_FALSE(r.any_deadline_miss)
        << "DPCP analysis accepted but simulation missed (seed "
        << GetParam().seed << ")";
  }
  if (!r.any_deadline_miss) {
    for (const Task& t : sys.tasks()) {
      EXPECT_LE(maxBlockedOf(r, t.id),
                analysis.blocking[static_cast<std::size_t>(t.id.value())])
          << t.name << " exceeded its DPCP blocking bound (seed "
          << GetParam().seed << ")";
    }
  }
}

std::vector<SweepParams> makeSweep() {
  std::vector<SweepParams> out;
  std::uint64_t seed = 1;
  for (int procs : {2, 4}) {
    for (double util : {0.3, 0.5}) {
      for (int k = 0; k < 10; ++k) {
        out.push_back({seed++, procs, util});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, SoundnessSweep, ::testing::ValuesIn(makeSweep()),
    [](const ::testing::TestParamInfo<SweepParams>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_p" +
             std::to_string(param_info.param.processors) + "_u" +
             std::to_string(static_cast<int>(param_info.param.util * 100));
    });

TEST(SoundnessMeta, SweepIsNotVacuous) {
  // At least a third of the low-utilization systems must be accepted by
  // the analysis, or P1 checks nothing.
  int accepted = 0, total = 0;
  for (const SweepParams& p : makeSweep()) {
    if (p.util > 0.4) continue;
    Rng rng(p.seed);
    const TaskSystem sys = generateWorkload(workloadFor(p), rng);
    const ProtocolAnalysis analysis = analyzeUnder(ProtocolKind::kMpcp, sys);
    accepted += analysis.report.rta_all ? 1 : 0;
    ++total;
  }
  EXPECT_GE(accepted * 3, total)
      << accepted << "/" << total << " accepted — tune the generator";
}

}  // namespace
}  // namespace mpcp
