#!/bin/sh
# Chaos smoke for the distributed campaign fabric (ISSUE 9 acceptance):
# run a fleet sweep at 1/2/4 workers while one worker SIGKILLs itself
# mid-key and another wedges silently past the lease deadline, then
# SIGKILL the coordinator too, resume, and demand aggregates AND journal
# byte-identical to a serial MPCP_THREADS=1 run.
# $1 = mpcp_cli, $2 = mpcp_worker, $3 = scratch dir.
set -eu
cli="$1"
worker="$2"
workdir="$3"
mkdir -p "$workdir"
cd "$workdir"
export MPCP_WORKER_BIN="$worker"

# Golden: the serial journaled run every fleet shape must reproduce.
rm -f golden.csv golden.journal
MPCP_THREADS=1 "$cli" sweep --seeds 12 --seed 7 --horizon 5000 \
    --journal golden.journal --out golden.csv 2>/dev/null

for workers in 1 2 4; do
  rm -rf fleet.csv resumed.csv f.journal f.journal.shards \
         crash.mark wedge.mark

  # Chaos pass: s9 kills its worker (once, mark-file gated), s11 wedges
  # 2.5s against a 1.2s lease deadline (reap), and the coordinator is
  # SIGKILLed mid-campaign. Any of these landing after completion still
  # exercises the resume path.
  MPCP_FABRIC_CRASH_KEY=s9 MPCP_FABRIC_CRASH_MARK=crash.mark \
  MPCP_FABRIC_WEDGE_KEY=s11 MPCP_FABRIC_WEDGE_MS=2500 \
  MPCP_FABRIC_WEDGE_MARK=wedge.mark \
  "$cli" sweep --seeds 12 --seed 7 --horizon 5000 \
      --workers "$workers" --journal f.journal \
      --per-run-sleep-ms 150 --lease-deadline-ms 1200 \
      --out fleet.csv 2>/dev/null &
  pid=$!
  sleep 2
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  # Resume without chaos. Orphaned workers from the killed coordinator
  # may rejoin (and even replay a one-shot chaos aid) — the lease
  # attempt accounting must absorb that too.
  "$cli" sweep --seeds 12 --seed 7 --horizon 5000 \
      --workers "$workers" --journal f.journal --resume \
      --out resumed.csv 2>resume.err
  cmp golden.csv resumed.csv || {
    echo "FAIL: resumed fleet CSV differs from serial golden at" \
         "--workers $workers" >&2
    exit 1
  }
  cmp golden.journal f.journal || {
    echo "FAIL: merged journal not byte-identical to serial journal at" \
         "--workers $workers" >&2
    exit 1
  }
  grep -q 'fleet:' resume.err || {
    echo "FAIL: fleet counters missing from resume stderr" >&2
    exit 1
  }
  echo "--workers $workers: byte-identical CSV + journal after crash," \
       "wedge, and coordinator kill -9"
done
echo OK
