// Shared helpers for the mpcp test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "model/task_system.h"
#include "sim/result.h"

namespace mpcp::testing {

/// Response time of the given job in a result; -1 if not found/unfinished.
inline Duration responseOf(const SimResult& result, TaskId task,
                           std::int64_t instance = 0) {
  for (const JobRecord& jr : result.jobs) {
    if (jr.id.task == task && jr.id.instance == instance) {
      return jr.responseTime();
    }
  }
  return -1;
}

/// Finish time of the given job; -1 if not found/unfinished.
inline Time finishOf(const SimResult& result, TaskId task,
                     std::int64_t instance = 0) {
  for (const JobRecord& jr : result.jobs) {
    if (jr.id.task == task && jr.id.instance == instance) return jr.finish;
  }
  return -1;
}

/// Worst observed blocking across all finished jobs of `task`.
inline Duration maxBlockedOf(const SimResult& result, TaskId task) {
  Duration worst = 0;
  for (const JobRecord& jr : result.jobs) {
    if (jr.id.task == task) worst = std::max(worst, jr.blocked);
  }
  return worst;
}

/// Count of events of a given kind (optionally restricted to a task).
inline int countEvents(const SimResult& result, Ev kind,
                       TaskId task = TaskId()) {
  int n = 0;
  for (const TraceEvent& e : result.trace) {
    if (e.kind == kind && (!task.valid() || e.job.task == task)) ++n;
  }
  return n;
}

}  // namespace mpcp::testing
