#include "common/arena.h"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

namespace mpcp {
namespace {

TEST(Arena, AlignmentRespected) {
  Arena a(256);
  auto* c = a.alloc<char>(3);
  ASSERT_NE(c, nullptr);
  auto* d = a.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  auto* i = a.alloc<std::int32_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i) % alignof(std::int32_t), 0u);
  struct alignas(64) Wide {
    char pad[64];
  };
  auto* w = a.alloc<Wide>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 64, 0u);
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena a(128);
  auto* x = a.alloc<std::uint64_t>(8);
  auto* y = a.alloc<std::uint64_t>(8);
  for (int i = 0; i < 8; ++i) x[i] = 0x1111111111111111ull;
  for (int i = 0; i < 8; ++i) y[i] = 0x2222222222222222ull;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(x[i], 0x1111111111111111ull);
}

TEST(Arena, GrowsBeyondFirstBlock) {
  Arena a(64);
  auto* big = a.alloc<std::uint8_t>(10'000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 10'000);
  EXPECT_GE(a.bytesReserved(), 10'000u);
  EXPECT_GE(a.blockCount(), 1u);
}

TEST(Arena, ResetReusesBlocksWithoutNewReservation) {
  Arena a(1024);
  (void)a.alloc<std::uint64_t>(1000);  // forces growth past the first block
  const std::size_t reserved = a.bytesReserved();
  const std::size_t blocks = a.blockCount();

  a.reset();
  EXPECT_EQ(a.bytesUsed(), 0u);
  // Same request pattern fits entirely in recycled blocks.
  (void)a.alloc<std::uint64_t>(1000);
  EXPECT_EQ(a.bytesReserved(), reserved);
  EXPECT_EQ(a.blockCount(), blocks);
}

TEST(Arena, HighWaterTracksPeakAcrossResets) {
  Arena a(256);
  (void)a.alloc<std::uint8_t>(500);
  const std::size_t peak = a.highWater();
  EXPECT_GE(peak, 500u);

  a.reset();
  (void)a.alloc<std::uint8_t>(10);
  EXPECT_LT(a.bytesUsed(), peak);
  EXPECT_EQ(a.highWater(), peak);  // reset keeps the historical peak

  (void)a.alloc<std::uint8_t>(2000);
  EXPECT_GT(a.highWater(), peak);
}

TEST(Arena, ZeroSizedAllocationIsAlignedAndNonNull) {
  Arena a;
  auto* p = a.alloc<double>(0);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(double), 0u);
}

TEST(Arena, AllocZeroedZeroes) {
  Arena a(64);
  auto* p = a.allocZeroed<std::uint32_t>(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p[i], 0u);
}

}  // namespace
}  // namespace mpcp
