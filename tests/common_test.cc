// Foundation types: priorities, ids, RNG, stable priority queue, math.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/math_util.h"
#include "common/priority.h"
#include "common/rng.h"
#include "common/stable_priority_queue.h"
#include "common/types.h"

namespace mpcp {
namespace {

TEST(Priority, OrderingAndBands) {
  const Priority lo(1), hi(5), base(10);
  EXPECT_LT(lo, hi);
  EXPECT_LT(kPriorityFloor, lo);
  EXPECT_EQ(lo.inGlobalBand(base).urgency(), 11);
  EXPECT_EQ(hi.inGlobalBand(base).urgency(), 15);
  // Every banded priority exceeds every in-band task priority <= base.
  EXPECT_GT(lo.inGlobalBand(base), base);
}

TEST(Ids, DistinctTypesAndValidity) {
  const TaskId t(3);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(TaskId().valid());
  EXPECT_EQ(t.value(), 3);
  const JobId j{t, 7};
  const JobId k{t, 8};
  EXPECT_NE(j, k);
  EXPECT_LT(j, k);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit
  EXPECT_EQ(rng.uniformInt(5, 5), 5);
  EXPECT_THROW(rng.uniformInt(2, 1), InvariantError);
}

TEST(Rng, Uniform01InRangeAndSpread) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StableQueue, PriorityOrderWithFifoTies) {
  StablePriorityQueue<int> q;
  q.push(1, Priority(5));
  q.push(2, Priority(9));
  q.push(3, Priority(5));
  q.push(4, Priority(9));
  EXPECT_EQ(q.pop(), 2);  // highest priority, earliest
  EXPECT_EQ(q.pop(), 4);  // same priority, later
  EXPECT_EQ(q.pop(), 1);  // lower priority, FIFO
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(StableQueue, RemoveAndContains) {
  StablePriorityQueue<int> q;
  q.push(1, Priority(1));
  q.push(2, Priority(2));
  EXPECT_TRUE(q.contains(1));
  EXPECT_TRUE(q.remove(1));
  EXPECT_FALSE(q.contains(1));
  EXPECT_FALSE(q.remove(1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peek(), 2);
  EXPECT_EQ(q.peekPriority(), Priority(2));
}

TEST(StableQueue, PopOnEmptyThrows) {
  StablePriorityQueue<int> q;
  EXPECT_THROW(q.pop(), InvariantError);
  EXPECT_THROW((void)q.peek(), InvariantError);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 5), 2);
  EXPECT_EQ(ceilDiv(11, 5), 3);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_EQ(ceilDiv(5, 5), 1);
}

TEST(MathUtil, LcmSaturating) {
  EXPECT_EQ(lcmSaturating(4, 6), 12);
  EXPECT_EQ(lcmSaturating(7, 13), 91);
  const Time huge = kTimeInfinity / 2;
  EXPECT_EQ(lcmSaturating(huge, huge - 1), kTimeInfinity);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    MPCP_CHECK(1 == 2, "the answer is " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the answer is 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace mpcp
