// Zero-allocation guarantee for the simulator hot path: once an Engine
// has been constructed (setup), run() must perform no heap allocations.
// This is what keeps sweep/fuzz/fault campaigns free of per-event
// allocator traffic (see DESIGN.md, "Allocation-free hot path").
//
// Mechanism: the test overrides the global operator new/delete family
// with a counting shim over malloc/free. Counting is enabled only
// around engine.run(), so gtest bookkeeping and setup allocations are
// not charged. The zero assertion applies in -DNDEBUG builds (the
// Release configuration the perf suite and CI perf gate measure);
// other builds run the same sweep and only report, so the test stays
// registered — and the sweep itself exercised — everywhere.
//
// Under ASan/TSan the sanitizer owns the allocator; the shim is
// compiled out and the test skips.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "core/protocol_factory.h"
#include "core/simulate.h"
#include "sim/engine.h"
#include "taskgen/generator.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MPCP_ALLOC_TEST_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MPCP_ALLOC_TEST_SANITIZED 1
#endif

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_new_calls{0};

inline void noteAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

#ifndef MPCP_ALLOC_TEST_SANITIZED

namespace {

void* countedAlloc(std::size_t size) {
  noteAlloc();
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* countedAlignedAlloc(std::size_t size, std::size_t align) {
  noteAlloc();
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  noteAlloc();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  noteAlloc();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !MPCP_ALLOC_TEST_SANITIZED

namespace mpcp {
namespace {

WorkloadParams contendedParams() {
  WorkloadParams params;
  params.processors = 4;
  params.tasks_per_processor = 4;
  params.utilization_per_processor = 0.5;
  params.global_resources = 3;
  params.max_gcs_per_task = 3;
  params.global_sharing_prob = 1.0;
  params.local_resources_per_processor = 1;
  params.max_lcs_per_task = 1;
  params.local_sharing_prob = 0.8;
  params.cs_max = 60;
  params.suspension_prob = 0.3;
  return params;
}

/// One measured run: setup (uncounted) then run() (counted). Returns the
/// number of operator-new calls observed during run().
std::size_t allocationsDuringRun(ProtocolKind kind, std::uint64_t seed) {
  Rng rng(seed);
  WorkloadParams params = contendedParams();
  if (kind == ProtocolKind::kPcp) {
    // PCP has no global semaphores: single processor, locals only.
    params.processors = 1;
    params.global_resources = 0;
    params.max_gcs_per_task = 0;
    params.global_sharing_prob = 0.0;
    params.local_resources_per_processor = 3;
    params.max_lcs_per_task = 2;
  }
  TaskSystem system = generateWorkload(params, rng);
  PriorityTables tables(system);
  auto protocol = makeProtocol(kind, system, tables);
  SimConfig config;
  config.record_trace = false;
  config.horizon = 300'000;

  Engine engine(system, *protocol, config);
  g_new_calls.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  SimResult result = engine.run();
  g_counting.store(false, std::memory_order_relaxed);
  // Keep the result alive past the counting window so its destructor's
  // frees are unambiguous, and sanity-check the run did real work.
  EXPECT_GT(result.jobs.size(), 0u) << toString(kind) << " seed " << seed;
  return g_new_calls.load(std::memory_order_relaxed);
}

TEST(Allocation, ZeroPerRunAfterSetupAcrossProtocolSweep) {
#ifdef MPCP_ALLOC_TEST_SANITIZED
  GTEST_SKIP() << "sanitizer build owns the allocator; shim compiled out";
#else
  const ProtocolKind kinds[] = {
      ProtocolKind::kNone, ProtocolKind::kNonePrio, ProtocolKind::kPip,
      ProtocolKind::kPcp,  ProtocolKind::kMpcp,     ProtocolKind::kDpcp,
      ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio};
  const std::uint64_t seeds[] = {101, 202, 303};
  for (ProtocolKind kind : kinds) {
    for (std::uint64_t seed : seeds) {
      const std::size_t allocs = allocationsDuringRun(kind, seed);
#ifdef NDEBUG
      EXPECT_EQ(allocs, 0u)
          << toString(kind) << " seed " << seed
          << ": run() allocated after setup";
#else
      // DCHECK builds keep the audits compiled in; report only, so a
      // debugging aid added inside a DCHECK cannot fail tier-1 builds.
      if (allocs != 0) {
        std::cout << "[ note ] " << toString(kind) << " seed " << seed
                  << ": " << allocs << " allocation(s) during run() "
                  << "(asserted zero in Release builds)\n";
      }
#endif
    }
  }
#endif
}

TEST(Allocation, ZeroPerRunWhenTraceArmed) {
#ifdef MPCP_ALLOC_TEST_SANITIZED
  GTEST_SKIP() << "sanitizer build owns the allocator; shim compiled out";
#else
  // Trace-armed runs preallocate worst-case event/segment capacity from
  // the job/op census at setup (ISSUE 8 perf satellite); recording must
  // then stay allocation-free even with every event class firing.
  Rng rng(505);
  TaskSystem system = generateWorkload(contendedParams(), rng);
  PriorityTables tables(system);
  for (const ProtocolKind kind :
       {ProtocolKind::kMpcp, ProtocolKind::kSpinFifo}) {
    auto protocol = makeProtocol(kind, system, tables);
    SimConfig config;
    config.record_trace = true;
    config.horizon = 100'000;
    Engine engine(system, *protocol, config);
    g_new_calls.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    SimResult result = engine.run();
    g_counting.store(false, std::memory_order_relaxed);
    EXPECT_GT(result.trace.size(), 0u) << toString(kind);
    const std::size_t allocs = g_new_calls.load(std::memory_order_relaxed);
#ifdef NDEBUG
    EXPECT_EQ(allocs, 0u)
        << toString(kind) << ": trace-armed run() allocated after setup";
#else
    if (allocs != 0) {
      std::cout << "[ note ] " << toString(kind) << " trace-armed run: "
                << allocs << " allocation(s) during run() (asserted zero "
                << "in Release builds)\n";
    }
#endif
  }
#endif
}

TEST(Allocation, ZeroPerRunWhenFaultArmed) {
#ifdef MPCP_ALLOC_TEST_SANITIZED
  GTEST_SKIP() << "sanitizer build owns the allocator; shim compiled out";
#else
  // Fault-armed runs take the eager bookkeeping path; they must be just
  // as allocation-free (campaign throughput depends on it).
  Rng rng(404);
  TaskSystem system = generateWorkload(contendedParams(), rng);
  PriorityTables tables(system);
  auto protocol = makeProtocol(ProtocolKind::kMpcp, system, tables);

  SimConfig config;
  config.record_trace = false;
  config.horizon = 300'000;
  fault::FaultPlan plan;
  fault::FaultSpec overrun;
  overrun.kind = fault::FaultKind::kWcetOverrun;
  overrun.task = TaskId(0);
  overrun.instance = -1;
  overrun.factor = 1.3;
  fault::FaultSpec jitter;
  jitter.kind = fault::FaultKind::kReleaseJitter;
  jitter.task = TaskId(1);
  jitter.instance = -1;
  jitter.delta = 7;
  plan.specs.push_back(overrun);
  plan.specs.push_back(jitter);
  config.fault_plan = &plan;
  config.containment.budget_enforce = true;
  config.containment.grace = 2.0;
  config.containment.holder_watchdog = 500;

  Engine engine(system, *protocol, config);
  g_new_calls.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  SimResult result = engine.run();
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_GT(result.jobs.size(), 0u);
  const std::size_t allocs = g_new_calls.load(std::memory_order_relaxed);
#ifdef NDEBUG
  EXPECT_EQ(allocs, 0u) << "fault-armed run() allocated after setup";
#else
  if (allocs != 0) {
    std::cout << "[ note ] fault-armed run: " << allocs
              << " allocation(s) during run() (asserted zero in Release "
              << "builds)\n";
  }
#endif
#endif
}

}  // namespace
}  // namespace mpcp
