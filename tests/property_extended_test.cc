// Second property-test battery: suspensions in random workloads, random
// hybrid policies, uniprocessor PCP blocked-at-most-once, DPCP agent
// load concentration, and protocol-equivalence properties.
#include <gtest/gtest.h>

#include "analysis/blocking_pcp.h"
#include "analysis/ceilings.h"
#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "taskgen/generator.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::maxBlockedOf;

TEST(PropertyExtended, MpcpSoundWithSuspendingWorkloads) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.35;
  p.period_min = 1'000;
  p.period_max = 20'000;
  p.period_granularity = 1'000;
  p.global_resources = 2;
  p.cs_max = 15;
  p.suspension_prob = 0.5;
  p.suspend_max = 50;
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 41);
    const TaskSystem sys = generateWorkload(p, rng);
    const ProtocolAnalysis analysis = analyzeUnder(ProtocolKind::kMpcp, sys);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 400'000});
    const InvariantReport rep = checkProtocolInvariants(sys, r);
    ASSERT_TRUE(rep.ok()) << rep.violations.front();
    if (analysis.report.rta_all) {
      ++accepted;
      EXPECT_FALSE(r.any_deadline_miss) << "seed " << seed;
    }
  }
  EXPECT_GT(accepted, 5) << "sweep too weak to be meaningful";
}

TEST(PropertyExtended, GcsPriorityAssignmentAuditOverRandomRuns) {
  WorkloadParams p;
  p.processors = 4;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.4;
  p.global_resources = 3;
  p.global_sharing_prob = 0.9;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 59);
    const TaskSystem sys = generateWorkload(p, rng);
    const PriorityTables tables(sys);
    {
      const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                   {.horizon_cap = 200'000});
      const InvariantReport rep = checkGcsPriorityAssignment(
          sys, r, tables, GcsPriorityRule::kSharedMemory);
      EXPECT_TRUE(rep.ok()) << rep.violations.front();
    }
    {
      const SimResult r = simulate(ProtocolKind::kDpcp, sys,
                                   {.horizon_cap = 200'000});
      const InvariantReport rep = checkGcsPriorityAssignment(
          sys, r, tables, GcsPriorityRule::kMessageBased);
      EXPECT_TRUE(rep.ok()) << rep.violations.front();
    }
  }
}

TEST(PropertyExtended, PcpBlockedAtMostOnceOverRandomUniprocessorSets) {
  // Non-suspending uniprocessor workloads: every job's measured blocking
  // must fit within ONE lower-priority critical section (the classic PCP
  // property), which is exactly the pcpBlocking bound.
  WorkloadParams p;
  p.processors = 1;
  p.tasks_per_processor = 5;
  p.utilization_per_processor = 0.6;
  p.period_min = 1'000;
  p.period_max = 10'000;
  p.period_granularity = 500;
  p.global_resources = 0;
  p.local_resources_per_processor = 3;
  p.max_lcs_per_task = 2;
  p.local_sharing_prob = 0.9;
  p.cs_max = 40;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 67);
    const TaskSystem sys = generateWorkload(p, rng);
    const PriorityTables tables(sys);
    const auto bounds = pcpBlocking(sys, tables);
    const SimResult r = simulate(ProtocolKind::kPcp, sys,
                                 {.horizon_cap = 200'000});
    for (const Task& t : sys.tasks()) {
      EXPECT_LE(maxBlockedOf(r, t.id),
                bounds[static_cast<std::size_t>(t.id.value())])
          << t.name << " seed " << seed;
    }
  }
}

TEST(PropertyExtended, RandomHybridPoliciesKeepInvariants) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.4;
  p.global_resources = 3;
  p.global_sharing_prob = 0.8;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 73);
    const TaskSystem sys = generateWorkload(p, rng);
    HybridPolicy policy = HybridPolicy::allShared(sys);
    for (const ResourceInfo& r : sys.resources()) {
      if (r.scope == ResourceScope::kGlobal && rng.chance(0.5)) {
        policy.set(r.id, GlobalPolicy::kMessageBased);
      }
    }
    const SimResult r = simulateHybrid(sys, policy,
                                       {.horizon_cap = 200'000});
    EXPECT_TRUE(checkMutualExclusion(sys, r).ok()) << "seed " << seed;
    EXPECT_TRUE(checkPriorityOrderedHandoff(sys, r).ok()) << "seed " << seed;
  }
}

TEST(PropertyExtended, DpcpConcentratesLoadOnSyncProcessor) {
  // Pin every global resource to a dedicated spare processor: under DPCP
  // that processor carries all gcs work; under MPCP it stays idle.
  TaskSystemBuilder b(3);
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 20, .processor = 0,
             .body = Body{}.compute(2).section(g1, 4).compute(1)});
  b.addTask({.name = "c", .period = 30, .processor = 1,
             .body = Body{}.compute(2).section(g2, 5).section(g1, 2)
                        .compute(1)});
  b.assignSyncProcessor(g1, ProcessorId(2));
  b.assignSyncProcessor(g2, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();

  const SimResult dpcp = simulate(ProtocolKind::kDpcp, sys, {.horizon = 600});
  const SimResult mpcp = simulate(ProtocolKind::kMpcp, sys, {.horizon = 600});
  ASSERT_EQ(dpcp.processor_busy.size(), 3u);
  EXPECT_GT(dpcp.processor_busy[2], 0);   // all gcs work lands on P2
  EXPECT_EQ(mpcp.processor_busy[2], 0);   // MPCP never touches P2
  // Total work is conserved across protocols.
  Duration total_d = 0, total_m = 0;
  for (Duration x : dpcp.processor_busy) total_d += x;
  for (Duration x : mpcp.processor_busy) total_m += x;
  EXPECT_EQ(total_d, total_m);
}

TEST(PropertyExtended, NonePrioEqualsMpcpWhenNoContentionEver) {
  // Tasks that never overlap on their global resource: every protocol
  // yields the same schedule except for gcs elevation effects; with no
  // local competition either, even finish times agree.
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(2).section(g, 2).compute(2)});
  b.addTask({.name = "c", .period = 100, .phase = 50, .processor = 1,
             .body = Body{}.compute(2).section(g, 2).compute(2)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r1 = simulate(ProtocolKind::kNonePrio, sys, {.horizon = 400});
  const SimResult r2 = simulate(ProtocolKind::kMpcp, sys, {.horizon = 400});
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (std::size_t i = 0; i < r1.jobs.size(); ++i) {
    EXPECT_EQ(r1.jobs[i].finish, r2.jobs[i].finish);
  }
}

}  // namespace
}  // namespace mpcp
