// Adversarial tests for the fleet wire protocol (ISSUE 9): framing
// round-trips, and every malformed-input class — truncation, oversized
// lengths, CRC damage, wrong versions, garbage — must produce a
// structured decoder error, never a crash or a mis-framed payload.
#include "exec/fabric/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/rng.h"
#include "exec/fabric/socket.h"
#include "exec/interrupt.h"
#include "gtest/gtest.h"

namespace mpcp::exec::fabric {
namespace {

Frame decodeOne(FrameDecoder& d, const std::string& bytes) {
  d.feed(bytes.data(), bytes.size());
  const FrameDecoder::Result r = d.next();
  EXPECT_EQ(r.status, FrameDecoder::Status::kFrame) << r.error;
  return r.frame;
}

TEST(FabricWire, RoundTripsEveryFrameType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kWelcome, FrameType::kReject,
        FrameType::kLease, FrameType::kResult, FrameType::kHeartbeat,
        FrameType::kSteal, FrameType::kBye}) {
    FrameDecoder d;
    const std::string payload =
        std::string("payload for ") + toString(type) + "\nwith\nnewlines";
    const Frame f = decodeOne(d, encodeFrame(type, payload));
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.payload, payload);
    EXPECT_FALSE(d.poisoned());
  }
}

TEST(FabricWire, RoundTripsEmptyAndBinaryPayloads) {
  FrameDecoder d;
  EXPECT_EQ(decodeOne(d, encodeFrame(FrameType::kHeartbeat, "")).payload, "");
  std::string binary;
  for (int i = 0; i < 256; ++i) binary += static_cast<char>(i);
  EXPECT_EQ(decodeOne(d, encodeFrame(FrameType::kResult, binary)).payload,
            binary);
}

TEST(FabricWire, DecodesByteByByteFeeds) {
  const std::string wire = encodeFrame(FrameType::kLease, "s1 s2 s3") +
                           encodeFrame(FrameType::kBye, "");
  FrameDecoder d;
  int frames = 0;
  for (const char c : wire) {
    d.feed(&c, 1);
    for (;;) {
      const FrameDecoder::Result r = d.next();
      if (r.status != FrameDecoder::Status::kFrame) {
        EXPECT_EQ(r.status, FrameDecoder::Status::kNeedMore);
        break;
      }
      ++frames;
      if (frames == 1) {
        EXPECT_EQ(r.frame.payload, "s1 s2 s3");
      }
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(FabricWire, TruncatedFrameReportsMidFrame) {
  const std::string wire = encodeFrame(FrameType::kResult, "s1 ok\n1,2,3");
  FrameDecoder d;
  d.feed(wire.data(), wire.size() - 3);
  EXPECT_EQ(d.next().status, FrameDecoder::Status::kNeedMore);
  EXPECT_TRUE(d.midFrame());
  d.feed(wire.data() + wire.size() - 3, 3);
  EXPECT_EQ(d.next().status, FrameDecoder::Status::kFrame);
  EXPECT_FALSE(d.midFrame());
}

TEST(FabricWire, RejectsBadMagic) {
  std::string wire = encodeFrame(FrameType::kHello, "x");
  wire[0] = 'X';
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  const FrameDecoder::Result r = d.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::kError);
  EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(FabricWire, RejectsWrongVersion) {
  std::string wire = encodeFrame(FrameType::kHello, "x");
  wire[4] = 9;  // version byte
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  const FrameDecoder::Result r = d.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::kError);
  EXPECT_NE(r.error.find("version"), std::string::npos);
}

TEST(FabricWire, RejectsUnknownFrameType) {
  std::string wire = encodeFrame(FrameType::kHello, "x");
  wire[5] = 42;  // type byte
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  const FrameDecoder::Result r = d.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::kError);
  EXPECT_NE(r.error.find("type"), std::string::npos);
}

TEST(FabricWire, RejectsNonzeroReservedBytes) {
  std::string wire = encodeFrame(FrameType::kHello, "x");
  wire[6] = 1;  // reserved
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  EXPECT_EQ(d.next().status, FrameDecoder::Status::kError);
}

TEST(FabricWire, RejectsOversizedLength) {
  std::string wire = encodeFrame(FrameType::kHello, "x");
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&wire[8], &huge, 4);  // payload_len (LE host on test archs)
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  const FrameDecoder::Result r = d.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::kError);
  EXPECT_NE(r.error.find("oversized"), std::string::npos);
}

TEST(FabricWire, RejectsCorruptedPayloadCrc) {
  std::string wire = encodeFrame(FrameType::kResult, "s1 ok\n1,2,3");
  wire[wire.size() - 1] ^= 0x40;  // flip a payload bit, keep the header
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  const FrameDecoder::Result r = d.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::kError);
  EXPECT_NE(r.error.find("CRC"), std::string::npos);
}

TEST(FabricWire, PoisonedDecoderStaysPoisoned) {
  std::string wire = encodeFrame(FrameType::kHello, "x");
  wire[0] = 'X';
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  EXPECT_EQ(d.next().status, FrameDecoder::Status::kError);
  EXPECT_TRUE(d.poisoned());
  // Even a pristine frame after the damage must not decode: there is no
  // resync on a stream protocol.
  const std::string good = encodeFrame(FrameType::kBye, "");
  d.feed(good.data(), good.size());
  EXPECT_EQ(d.next().status, FrameDecoder::Status::kError);
}

TEST(FabricWire, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder d;
    std::string junk;
    const int len = 1 + static_cast<int>(rng.uniformInt(0, 256));
    for (int i = 0; i < len; ++i) {
      junk += static_cast<char>(rng.uniformInt(0, 255));
    }
    d.feed(junk.data(), junk.size());
    for (int i = 0; i < 64; ++i) {
      const FrameDecoder::Result r = d.next();
      if (r.status != FrameDecoder::Status::kFrame) break;
    }
  }
}

TEST(FabricWire, FlippedBitsInValidStreamNeverMisframe) {
  const std::string wire = encodeFrame(FrameType::kResult, "s9 ok\nrow");
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::string damaged = wire;
    damaged[rng.uniformInt(0, damaged.size() - 1)] ^=
        static_cast<char>(1 + rng.uniformInt(0, 254));
    FrameDecoder d;
    d.feed(damaged.data(), damaged.size());
    const FrameDecoder::Result r = d.next();
    if (r.status == FrameDecoder::Status::kFrame) {
      // The flip may cancel out only in ways CRC tolerates — then the
      // frame must be byte-identical to the original.
      EXPECT_EQ(r.frame.payload, "s9 ok\nrow");
    }
  }
}

// Satellite (ISSUE 9): a write against a closed peer must fail with
// EPIPE, not kill the process with SIGPIPE.
TEST(FabricWire, SendAllToClosedPeerFailsWithoutSigpipe) {
  ignoreSigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // The first write may be accepted into the buffer; keep writing until
  // the EPIPE surfaces. MSG_NOSIGNAL in sendAll is the second layer.
  bool failed = false;
  const std::string big(1 << 16, 'x');
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !sendAll(fds[0], big.data(), big.size());
  }
  EXPECT_TRUE(failed);
  ::close(fds[0]);
}

TEST(FabricWire, SendFrameToClosedPeerFails) {
  ignoreSigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !sendFrame(fds[0], FrameType::kHeartbeat,
                        std::string(1 << 15, 'h'));
  }
  EXPECT_TRUE(failed);
  ::close(fds[0]);
}

TEST(FabricWire, ParsesAddressGrammar) {
  Address a;
  std::string err;
  ASSERT_TRUE(parseAddress("unix:/tmp/x.sock", a, err));
  EXPECT_TRUE(a.is_unix);
  EXPECT_EQ(a.path, "/tmp/x.sock");
  ASSERT_TRUE(parseAddress("127.0.0.1:9000", a, err));
  EXPECT_FALSE(a.is_unix);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, "9000");
  ASSERT_TRUE(parseAddress(":9000", a, err));
  EXPECT_EQ(a.host, "");
  EXPECT_FALSE(parseAddress("", a, err));
  EXPECT_FALSE(parseAddress("no-port-here", a, err));
}

}  // namespace
}  // namespace mpcp::exec::fabric
