// Aperiodic service through a periodic server (polling / deferrable),
// replayed against simulated server execution.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/aperiodic.h"

namespace mpcp {
namespace {

/// One server (T=10, C=3) plus a background task on one processor.
struct ServerRig {
  TaskId server;
  TaskSystem sys;
};

ServerRig makeRig() {
  ServerRig rig;
  TaskSystemBuilder b(1);
  rig.server = b.addTask({.name = "server", .period = 10, .processor = 0,
                          .body = Body{}.compute(3)});
  b.addTask({.name = "bg", .period = 40, .processor = 0,
             .body = Body{}.compute(10)});
  rig.sys = std::move(b).build();
  return rig;
}

TEST(Aperiodic, ArrivalGenerationRespectsParameters) {
  Rng rng(5);
  const auto arrivals = generateAperiodicArrivals(50.0, 2, 8, 10'000, rng);
  ASSERT_GT(arrivals.size(), 100u);  // ~200 expected
  ASSERT_LT(arrivals.size(), 400u);
  Time prev = 0;
  for (const AperiodicRequest& r : arrivals) {
    EXPECT_GE(r.arrival, prev);
    EXPECT_LT(r.arrival, 10'000);
    EXPECT_GE(r.work, 2);
    EXPECT_LE(r.work, 8);
    prev = r.arrival;
  }
}

TEST(Aperiodic, PollingServesPreReleaseArrivalsInFirstInstance) {
  const ServerRig rig = makeRig();
  const SimResult r = simulate(ProtocolKind::kNone, rig.sys, {.horizon = 40});
  // Request arrives at t=0 with 2 ticks of work; server instance 0 runs
  // [0,3): completion at 2.
  const auto served = replayServer(r, rig.server, {{0, 2}});
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].completion, 2);
}

TEST(Aperiodic, PollingDefersMidInstanceArrivalToNextPeriod) {
  const ServerRig rig = makeRig();
  const SimResult r = simulate(ProtocolKind::kNone, rig.sys, {.horizon = 40});
  // Arrival at t=1 (after the instance-0 release at t=0): strict polling
  // makes it wait for instance 1 (release 10, executes [10,13)).
  const auto polled =
      replayServer(r, rig.server, {{1, 2}}, ServerDiscipline::kPolling);
  EXPECT_EQ(polled[0].completion, 12);
  // A deferrable server serves it immediately within instance 0.
  const auto deferred =
      replayServer(r, rig.server, {{1, 2}}, ServerDiscipline::kDeferrable);
  EXPECT_EQ(deferred[0].completion, 3);
}

TEST(Aperiodic, BudgetExhaustionSpillsToNextInstance) {
  const ServerRig rig = makeRig();
  const SimResult r = simulate(ProtocolKind::kNone, rig.sys, {.horizon = 40});
  // 5 ticks of work at t=0 against a 3-tick budget: 3 served in
  // instance 0, the rest in instance 1 -> completion 10+2=12.
  const auto served = replayServer(r, rig.server, {{0, 5}});
  EXPECT_EQ(served[0].completion, 12);
}

TEST(Aperiodic, FifoOrderAmongRequests) {
  const ServerRig rig = makeRig();
  const SimResult r = simulate(ProtocolKind::kNone, rig.sys, {.horizon = 60});
  const auto served = replayServer(r, rig.server, {{0, 2}, {0, 2}, {0, 2}});
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0].completion, 2);
  EXPECT_EQ(served[1].completion, 11);  // instance 1: [10,13)
  EXPECT_EQ(served[2].completion, 13);
  EXPECT_LT(served[0].completion, served[1].completion);
}

TEST(Aperiodic, UnfinishedRequestsReportMinusOne) {
  const ServerRig rig = makeRig();
  const SimResult r = simulate(ProtocolKind::kNone, rig.sys, {.horizon = 20});
  const auto served = replayServer(r, rig.server, {{0, 100}});
  EXPECT_EQ(served[0].completion, -1);
}

TEST(Aperiodic, ServerInsideMpcpSystemStillServes) {
  // The server competes under MPCP with a task sharing a global resource;
  // its execution windows shift but the replay machinery is oblivious.
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const TaskId server = b.addTask({.name = "server", .period = 20,
                                   .processor = 0,
                                   .body = Body{}.compute(5)});
  b.addTask({.name = "worker", .period = 40, .processor = 0,
             .body = Body{}.compute(2).section(g, 3).compute(2)});
  b.addTask({.name = "remote", .period = 50, .processor = 1,
             .body = Body{}.compute(1).section(g, 4).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 200});
  Rng rng(7);
  const auto arrivals = generateAperiodicArrivals(15.0, 1, 3, 150, rng);
  const auto served = replayServer(r, server, arrivals);
  int finished = 0;
  for (const ServedRequest& s : served) {
    if (s.completion >= 0) {
      ++finished;
      EXPECT_GE(s.responseTime(), s.request.work);
    }
  }
  EXPECT_GT(finished, 0);
}

TEST(Aperiodic, DeferrableNeverSlowerThanPolling) {
  const ServerRig rig = makeRig();
  const SimResult r = simulate(ProtocolKind::kNone, rig.sys, {.horizon = 400});
  Rng rng(11);
  const auto arrivals = generateAperiodicArrivals(25.0, 1, 4, 300, rng);
  const auto polled =
      replayServer(r, rig.server, arrivals, ServerDiscipline::kPolling);
  const auto deferred =
      replayServer(r, rig.server, arrivals, ServerDiscipline::kDeferrable);
  ASSERT_EQ(polled.size(), deferred.size());
  for (std::size_t i = 0; i < polled.size(); ++i) {
    if (polled[i].completion < 0) continue;  // unfinished under polling
    ASSERT_GE(deferred[i].completion, 0);
    EXPECT_LE(deferred[i].completion, polled[i].completion);
  }
}

}  // namespace
}  // namespace mpcp
