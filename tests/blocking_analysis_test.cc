// Section 5.1 blocking factors — hand-computed expectations on crafted
// systems, one scenario per factor.
#include <gtest/gtest.h>

#include "analysis/ceilings.h"
#include "core/blocking.h"
#include "model/task_system.h"

namespace mpcp {
namespace {

// Four tasks, two processors, one local + one global semaphore.
//   tau1 (P0, T=40, prio 4): c1, [L1:1], [G1:2], c1          NG=1
//   tau3 (P1, T=50, prio 3): c1, [G1:3], c1                  NG=1
//   tau2 (P0, T=60, prio 2): c1, [L1:3], [G1:4], c1          NG=1
//   tau4 (P1, T=70, prio 1): c1, [G1:5], c1                  NG=1
struct FactorRig {
  TaskId t1, t2, t3, t4;
  ResourceId l1, g1;
  TaskSystem sys;
};

FactorRig makeFactorRig() {
  FactorRig f;
  TaskSystemBuilder b(2);
  f.l1 = b.addResource("L1");
  f.g1 = b.addResource("G1");
  f.t1 = b.addTask({.name = "tau1", .period = 40, .processor = 0,
                    .body = Body{}.compute(1).section(f.l1, 1)
                               .section(f.g1, 2).compute(1)});
  f.t3 = b.addTask({.name = "tau3", .period = 50, .processor = 1,
                    .body = Body{}.compute(1).section(f.g1, 3).compute(1)});
  f.t2 = b.addTask({.name = "tau2", .period = 60, .processor = 0,
                    .body = Body{}.compute(1).section(f.l1, 3)
                               .section(f.g1, 4).compute(1)});
  f.t4 = b.addTask({.name = "tau4", .period = 70, .processor = 1,
                    .body = Body{}.compute(1).section(f.g1, 5).compute(1)});
  f.sys = std::move(b).build();
  return f;
}

TEST(MpcpBlocking, FactorsForHighestPriorityTask) {
  const FactorRig f = makeFactorRig();
  const PriorityTables tables(f.sys);
  const MpcpBlockingAnalysis analysis(f.sys, tables,
                                      {.include_deferred_execution = false});
  const BlockingBreakdown& b =
      analysis.blocking(f.t1);
  // F1: tau2's L1 section (ceiling = prio(tau1) >= prio(tau1)), dur 3,
  //     times (NG+1) = 2 -> 6.
  EXPECT_EQ(b.local_lower_cs, 6);
  // F2: one lower-priority REMOTE gcs per access on G1: max(tau3: 3,
  //     tau4: 5) = 5 (tau2 is local -> F5's business).
  EXPECT_EQ(b.lower_gcs_queue, 5);
  // F3: no higher-priority tasks exist.
  EXPECT_EQ(b.higher_gcs_remote, 0);
  // F4: on blocking processor P1, every gcs priority equals
  //     P_G + prio(tau1); nothing exceeds the blockers.
  EXPECT_EQ(b.blocking_proc_gcs, 0);
  // F5: tau2 (local, lower, NG=1): min(NG_1+1, 2*NG_2) = min(2,2) = 2
  //     sections of maxGcs(tau2) = 4 -> 8.
  EXPECT_EQ(b.local_lower_gcs, 8);
  EXPECT_EQ(b.deferred_execution, 0);
  EXPECT_EQ(b.total(), 19);
}

TEST(MpcpBlocking, FactorsForMidPriorityLocalTask) {
  const FactorRig f = makeFactorRig();
  const PriorityTables tables(f.sys);
  const MpcpBlockingAnalysis analysis(f.sys, tables);
  const BlockingBreakdown& b = analysis.blocking(f.t2);
  // F1: no lower-priority task on P0.
  EXPECT_EQ(b.local_lower_cs, 0);
  // F2: lower-priority remote on G1: tau4 (5).
  EXPECT_EQ(b.lower_gcs_queue, 5);
  // F3: higher-priority remote sharing G1: tau3, dur 3,
  //     ceil(60/50) = 2 -> 6. (tau1 is local: normal preemption.)
  EXPECT_EQ(b.higher_gcs_remote, 6);
  EXPECT_EQ(b.blocking_proc_gcs, 0);
  // F5: no lower-priority local task.
  EXPECT_EQ(b.local_lower_gcs, 0);
  // Deferred execution: tau1 is local, higher priority, suspends (NG=1):
  // charge C_1 = 5.
  EXPECT_EQ(b.deferred_execution, 5);
  EXPECT_EQ(b.total(), 16);
}

TEST(MpcpBlocking, Factor4ChargesHigherGcsPriorityOnBlockingProcessor) {
  // tau_top (P2) makes G_high's gcs priority on P1 exceed G_low's, so
  // tau_x's gcs can delay tau_mid through its direct blocker tau_lo.
  TaskSystemBuilder b(3);
  const ResourceId g_low = b.addResource("G_low");
  const ResourceId g_high = b.addResource("G_high");
  b.addTask({.name = "top", .period = 30, .processor = 2,
             .body = Body{}.compute(1).section(g_high, 1).compute(1)});
  const TaskId mid = b.addTask(
      {.name = "mid", .period = 40, .processor = 0,
       .body = Body{}.compute(1).section(g_low, 1).compute(1)});
  b.addTask({.name = "x", .period = 50, .processor = 1,
             .body = Body{}.compute(1).section(g_high, 2).compute(1)});
  b.addTask({.name = "lo", .period = 60, .processor = 1,
             .body = Body{}.compute(1).section(g_low, 4).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  const MpcpBlockingAnalysis analysis(sys, tables);
  const BlockingBreakdown& bm = analysis.blocking(mid);
  EXPECT_EQ(bm.lower_gcs_queue, 4);      // tau_lo's G_low section
  // tau_x's G_high gcs (P_G + prio(top)) outranks the blocker
  // (P_G + prio(mid)): ceil(40/50) = 1 execution of 2 ticks.
  EXPECT_EQ(bm.blocking_proc_gcs, 2);
}

TEST(MpcpBlocking, PaperLiteralFactor5IsNeverTighter) {
  const FactorRig f = makeFactorRig();
  const PriorityTables tables(f.sys);
  const MpcpBlockingAnalysis tight(f.sys, tables,
                                   {.paper_literal_factor5 = false});
  const MpcpBlockingAnalysis literal(f.sys, tables,
                                     {.paper_literal_factor5 = true});
  for (const Task& t : f.sys.tasks()) {
    EXPECT_LE(tight.blocking(t.id).local_lower_gcs,
              literal.blocking(t.id).local_lower_gcs)
        << t.name;
  }
}

TEST(MpcpBlocking, IndependentTasksHaveZeroBlocking) {
  TaskSystemBuilder b(2);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(2)});
  b.addTask({.name = "b", .period = 20, .processor = 1,
             .body = Body{}.compute(3)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  const MpcpBlockingAnalysis analysis(sys, tables);
  for (const Task& t : sys.tasks()) {
    EXPECT_EQ(analysis.blocking(t.id).total(), 0) << t.name;
  }
}

TEST(MpcpBlocking, FactorsIndependentOfNonCriticalWcet) {
  // Stretching non-critical compute must leave factors F1..F5 unchanged
  // (the deferred-execution term legitimately grows with C_j).
  auto build = [](Duration stretch) {
    TaskSystemBuilder b(2);
    const ResourceId g = b.addResource("G");
    b.addTask({.name = "a", .period = 400, .processor = 0,
               .body = Body{}.compute(1).section(g, 3).compute(stretch)});
    b.addTask({.name = "b", .period = 600, .processor = 1,
               .body = Body{}.compute(1).section(g, 5).compute(stretch)});
    return std::move(b).build();
  };
  const TaskSystem s1 = build(1);
  const TaskSystem s2 = build(50);
  const PriorityTables t1(s1), t2(s2);
  const MpcpBlockingAnalysis a1(s1, t1, {.include_deferred_execution = false});
  const MpcpBlockingAnalysis a2(s2, t2, {.include_deferred_execution = false});
  for (const Task& t : s1.tasks()) {
    EXPECT_EQ(a1.blocking(t.id).total(), a2.blocking(t.id).total()) << t.name;
  }
}

TEST(MpcpBlocking, HigherPriorityLocalGcsNotCharged) {
  // tau_hi's gcs's on the same processor are normal preemption, never a
  // blocking factor for tau_lo... except through deferred execution.
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "hi", .period = 40, .processor = 0,
             .body = Body{}.compute(1).section(g, 3).compute(1)});
  const TaskId lo = b.addTask({.name = "lo", .period = 90, .processor = 0,
                               .body = Body{}.compute(5)});
  b.addTask({.name = "rem", .period = 60, .processor = 1,
             .body = Body{}.compute(1).section(g, 2).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  const MpcpBlockingAnalysis no_def(sys, tables,
                                    {.include_deferred_execution = false});
  // lo uses no semaphore: only F5-style interference could apply, but hi
  // is *higher* priority, so nothing is charged.
  EXPECT_EQ(no_def.blocking(lo).total(), 0);
  const MpcpBlockingAnalysis with_def(sys, tables);
  EXPECT_EQ(with_def.blocking(lo).deferred_execution, 5);  // C_hi = 5
}

}  // namespace
}  // namespace mpcp
