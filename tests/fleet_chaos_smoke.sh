#!/bin/sh
# Network-chaos smoke for the campaign fabric (ISSUE 10 acceptance):
# run a fleet sweep at 1/2/4 workers under a fixed hostile chaos
# schedule (drops, delays, dups, reorders, truncations, a partition
# window), SIGKILL the coordinator mid-campaign, take over from its
# checkpoint, and demand aggregates AND journal byte-identical to a
# serial MPCP_THREADS=1 run.
# $1 = mpcp_cli, $2 = mpcp_worker, $3 = scratch dir.
set -eu
cli="$1"
worker="$2"
workdir="$3"
mkdir -p "$workdir"
cd "$workdir"
export MPCP_WORKER_BIN="$worker"

# Every fault class in the grammar at once. Rates are hostile but
# honest: plenty of injected faults, yet heartbeats get through often
# enough that the run converges within the smoke's timeout.
chaos='seed:1306,drop:*:60,delay:*:30:300,dup:*:80,reorder:*:60,trunc:*:20,partition:500:400'

# Golden: the serial journaled run every chaotic fleet must reproduce.
rm -f golden.csv golden.journal
MPCP_THREADS=1 "$cli" sweep --seeds 12 --seed 7 --horizon 5000 \
    --journal golden.journal --out golden.csv 2>/dev/null

for workers in 1 2 4; do
  rm -rf fleet.csv resumed.csv f.journal f.journal.shards

  # Chaos pass with a generous attempt budget (truncation poisons
  # decoders, which charges attempts against innocent head keys), and
  # SIGKILL the coordinator mid-campaign so a checkpoint is orphaned.
  "$cli" sweep --seeds 12 --seed 7 --horizon 5000 \
      --workers "$workers" --journal f.journal \
      --chaos "$chaos" --max-attempts 10 \
      --per-run-sleep-ms 100 --lease-deadline-ms 2000 \
      --out fleet.csv 2>chaos.err &
  pid=$!
  sleep 2
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  # Takeover without chaos: adopt the checkpoint's attempt counts and
  # in-flight set, finish the campaign, merge the canonical journal.
  "$cli" sweep --seeds 12 --seed 7 --horizon 5000 \
      --workers "$workers" --journal f.journal --takeover \
      --out resumed.csv 2>resume.err
  cmp golden.csv resumed.csv || {
    echo "FAIL: takeover fleet CSV differs from serial golden at" \
         "--workers $workers" >&2
    exit 1
  }
  cmp golden.journal f.journal || {
    echo "FAIL: merged journal not byte-identical to serial journal at" \
         "--workers $workers" >&2
    exit 1
  }
  grep -q 'fleet:' resume.err || {
    echo "FAIL: fleet counters missing from takeover stderr" >&2
    exit 1
  }
  echo "--workers $workers: byte-identical CSV + journal after chaos" \
       "and coordinator kill -9 + --takeover"
done
echo OK
