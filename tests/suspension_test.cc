// Voluntary self-suspension (SuspendOp) — the Theorem 1 mechanism: a job
// that suspends n times can be blocked by up to n+1 lower-priority local
// critical sections, and its deferred execution jitters lower-priority
// neighbours.
#include <gtest/gtest.h>

#include "analysis/ceilings.h"
#include "common/rng.h"
#include "core/analyzer.h"
#include "core/blocking.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "test_util.h"

namespace mpcp {
namespace {

using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

TEST(Suspension, TimedSuspensionDelaysOnlyTheSuspendingJob) {
  TaskSystemBuilder b(1);
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .processor = 0,
                               .body = Body{}.compute(2).suspend(5)
                                          .compute(2)});
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.compute(4)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 50});
  // hi: run [0,2), suspend [2,7), run [7,9). lo fills the gap [2,6).
  EXPECT_EQ(finishOf(r, hi, 0), 9);
  EXPECT_EQ(finishOf(r, lo, 0), 6);
  // The suspension is voluntary: not blocking, not preemption.
  for (const JobRecord& jr : r.jobs) {
    if (jr.id.task == hi) {
      EXPECT_EQ(jr.suspended, 5);
      EXPECT_EQ(jr.blocked, 0);
    }
  }
}

TEST(Suspension, SuspendInsideCriticalSectionRejected) {
  TaskSystemBuilder b(1);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "bad", .period = 10, .processor = 0,
             .body = Body{}.lock(s).suspend(1).unlock(s).compute(1)});
  EXPECT_THROW(std::move(b).build(), ConfigError);
}

TEST(Suspension, TheoremOneExtraLocalBlocking) {
  // With n voluntary suspensions, F1 charges (n + 1) lower-priority local
  // sections (no global accesses here).
  auto build = [](int suspensions) {
    TaskSystemBuilder b(2);
    const ResourceId l = b.addResource("L");
    const ResourceId g = b.addResource("G");  // make it a real multiproc
    Body body = Body{}.compute(1).section(l, 1);
    for (int k = 0; k < suspensions; ++k) {
      body.suspend(3).compute(1);
    }
    b.addTask({.name = "hi", .period = 100, .processor = 0,
               .body = std::move(body)});
    b.addTask({.name = "lo", .period = 200, .processor = 0,
               .body = Body{}.section(l, 7).compute(1)});
    b.addTask({.name = "r1", .period = 150, .processor = 1,
               .body = Body{}.section(g, 1).compute(1)});
    b.addTask({.name = "r0", .period = 300, .processor = 0,
               .body = Body{}.section(g, 1).compute(1)});
    return std::move(b).build();
  };
  for (int n : {0, 1, 3}) {
    const TaskSystem sys = build(n);
    const PriorityTables tables(sys);
    const MpcpBlockingAnalysis analysis(sys, tables);
    // hi = task 0; F1 = (n + 1) * 7.
    EXPECT_EQ(analysis.blocking(TaskId(0)).local_lower_cs,
              static_cast<Duration>(n + 1) * 7)
        << "suspensions=" << n;
  }
}

TEST(Suspension, RepeatedBlockingAfterEachSuspensionObserved) {
  // Construct the Theorem 1 worst case in simulation: after each of hi's
  // suspensions, lo re-locks L just in time to block hi again.
  TaskSystemBuilder b(1);
  const ResourceId l = b.addResource("L");
  const TaskId hi = b.addTask(
      {.name = "hi", .period = 200, .phase = 1, .processor = 0,
       .body = Body{}.section(l, 1).suspend(2).section(l, 1).compute(1)});
  const TaskId lo = b.addTask(
      {.name = "lo", .period = 400, .processor = 0,
       .body = Body{}.section(l, 3).compute(1).section(l, 3).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kPcp, sys, {.horizon = 100});
  // lo locks L at t=0 (3 ticks). hi arrives at 1, blocks 2 ticks, runs
  // its first section [3,4), suspends [4,6); lo computes [4,5) and
  // re-locks L for [5,8); hi resumes at 6 and blocks again [6,8) ->
  // two blocking episodes totalling 4 > one 3-tick section.
  EXPECT_GT(maxBlockedOf(r, hi), 3);
  // And the PCP single-section bound does NOT hold for a suspending job —
  // exactly why Theorem 1 charges n+1 sections.
  const PriorityTables tables(sys);
  const MpcpBlockingAnalysis analysis(sys, tables);
  EXPECT_LE(maxBlockedOf(r, hi),
            analysis.blocking(hi).total() + 0);  // Theorem-1-style bound
  (void)lo;
}

TEST(Suspension, SelfSuspensionInAnalyzerBlocking) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(2).suspend(10).compute(2)
                        .section(g, 1)});
  b.addTask({.name = "b", .period = 200, .processor = 1,
             .body = Body{}.section(g, 2).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const ProtocolAnalysis pa = analyzeUnder(ProtocolKind::kMpcp, sys);
  // a's B includes its own 10-tick suspension plus b's 2-tick gcs.
  EXPECT_EQ(pa.blocking[0], 12);
  EXPECT_EQ(pa.jitter[0], 12);  // suspension + remote wait defer a's work
}

TEST(Suspension, AnalysisStillSoundWithSuspensions) {
  // Random-ish scenario with suspensions everywhere: accepted => no miss.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 977);
    TaskSystemBuilder b(2);
    const ResourceId g = b.addResource("G");
    const ResourceId l0 = b.addResource("L0");
    for (int p = 0; p < 2; ++p) {
      for (int k = 0; k < 2; ++k) {
        const Duration period = rng.uniformInt(2'000, 8'000);
        Body body;
        body.compute(rng.uniformInt(50, 150));
        if (rng.chance(0.7)) body.suspend(rng.uniformInt(10, 100));
        body.compute(rng.uniformInt(20, 80));
        body.section(g, rng.uniformInt(5, 25));
        if (p == 0 && rng.chance(0.5)) {
          body.section(l0, rng.uniformInt(5, 20));
        }
        body.compute(rng.uniformInt(10, 50));
        TaskSpec spec;
        spec.name = "t";
        spec.name += std::to_string(p);
        spec.name += '_';
        spec.name += std::to_string(k);
        spec.period = period;
        spec.processor = p;
        spec.body = std::move(body);
        b.addTask(std::move(spec));
      }
    }
    const TaskSystem sys = std::move(b).build();
    const ProtocolAnalysis pa = analyzeUnder(ProtocolKind::kMpcp, sys);
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 400'000});
    if (pa.report.rta_all) {
      EXPECT_FALSE(r.any_deadline_miss) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mpcp
