// Per-task sensitivity (slack) analysis.
#include <gtest/gtest.h>

#include "analysis/schedulability.h"
#include "analysis/sensitivity.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "model/task_system.h"

namespace mpcp {
namespace {

ScheduleTest rtaNoBlocking() {
  return [](const TaskSystem& sys) {
    const std::vector<Duration> zero(sys.tasks().size(), 0);
    return analyzeSchedulability(sys, zero).rta_all;
  };
}

TEST(Sensitivity, ScaleOneTaskOnlyTouchesThatTask) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const TaskId a = b.addTask({.name = "a", .period = 100, .processor = 0,
                              .body = Body{}.compute(10).section(g, 4)});
  const TaskId c = b.addTask({.name = "c", .period = 200, .processor = 1,
                              .body = Body{}.compute(20).section(g, 6)});
  const TaskSystem sys = std::move(b).build();
  const TaskSystem scaled = scaleOneTask(sys, a, 2.0);
  EXPECT_EQ(scaled.task(a).wcet, 28);  // (10+4)*2
  EXPECT_EQ(scaled.task(c).wcet, sys.task(c).wcet);
}

TEST(Sensitivity, SlackReflectsLoad) {
  // Two independent tasks on one processor: the light one has more
  // headroom than the heavy one.
  TaskSystemBuilder b(1);
  const TaskId light = b.addTask({.name = "light", .period = 100,
                                  .processor = 0,
                                  .body = Body{}.compute(5)});
  const TaskId heavy = b.addTask({.name = "heavy", .period = 200,
                                  .processor = 0,
                                  .body = Body{}.compute(120)});
  const TaskSystem sys = std::move(b).build();
  const auto result = sensitivityPerTask(sys, rtaNoBlocking());
  const double light_scale =
      result[static_cast<std::size_t>(light.value())].max_scale;
  const double heavy_scale =
      result[static_cast<std::size_t>(heavy.value())].max_scale;
  EXPECT_GT(light_scale, 1.0);
  EXPECT_GT(heavy_scale, 1.0);
  EXPECT_GT(light_scale, heavy_scale);
}

TEST(Sensitivity, ExactSlackSingleTask) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 100, .processor = 0,
             .body = Body{}.compute(10)});
  const TaskSystem sys = std::move(b).build();
  const auto result = sensitivityPerTask(sys, rtaNoBlocking(), 0.05, 20.0);
  EXPECT_NEAR(result[0].max_scale, 10.0, 0.2);  // C can reach T
}

TEST(Sensitivity, ZeroWhenSystemUnschedulableEvenAtFloor) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(9)});
  b.addTask({.name = "c", .period = 11, .processor = 0,
             .body = Body{}.compute(9)});
  const TaskSystem sys = std::move(b).build();
  const auto result = sensitivityPerTask(sys, rtaNoBlocking(), 0.5, 4.0);
  // Even halving one task cannot save a system whose OTHER task pair is
  // already overloaded.
  EXPECT_EQ(result[0].max_scale, 0.0);
  EXPECT_EQ(result[1].max_scale, 0.0);
}

TEST(Sensitivity, MpcpBottleneckIsTheGcsHeavyTask) {
  // Two structurally similar tasks; one carries a long gcs that inflates
  // everyone's blocking — its scale headroom should be no larger.
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const TaskId lean = b.addTask({.name = "lean", .period = 100,
                                 .processor = 0,
                                 .body = Body{}.compute(10).section(g, 1)});
  const TaskId gcs_heavy =
      b.addTask({.name = "gcs_heavy", .period = 100, .processor = 1,
                 .body = Body{}.compute(10).section(g, 30)});
  const TaskSystem sys = std::move(b).build();
  const auto test = [](const TaskSystem& s) {
    return analyzeUnder(ProtocolKind::kMpcp, s).report.rta_all;
  };
  const auto result = sensitivityPerTask(sys, test);
  EXPECT_GE(result[static_cast<std::size_t>(lean.value())].max_scale,
            result[static_cast<std::size_t>(gcs_heavy.value())].max_scale);
}

TEST(Sensitivity, AcceptedAtReportedScaleSimulatesCleanly) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const TaskId a = b.addTask({.name = "a", .period = 100, .processor = 0,
                              .body = Body{}.compute(8).section(g, 3)
                                         .compute(4)});
  b.addTask({.name = "c", .period = 150, .processor = 1,
             .body = Body{}.compute(10).section(g, 5).compute(5)});
  const TaskSystem sys = std::move(b).build();
  const auto test = [](const TaskSystem& s) {
    return analyzeUnder(ProtocolKind::kMpcp, s).report.rta_all;
  };
  const auto result = sensitivityPerTask(sys, test);
  const double scale =
      result[static_cast<std::size_t>(a.value())].max_scale;
  ASSERT_GT(scale, 0.0);
  const TaskSystem at = scaleOneTask(sys, a, scale);
  const SimResult r = simulate(ProtocolKind::kMpcp, at, {.horizon = 30'000});
  EXPECT_FALSE(r.any_deadline_miss);
}

}  // namespace
}  // namespace mpcp
