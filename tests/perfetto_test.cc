// Perfetto (Chrome trace-event JSON) exporter: structural validation
// with a minimal JSON parser, trace-event-format invariants, span
// pairing, and a byte-exact golden file for the paper's Example 4 run.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/paper_examples.h"
#include "trace/perfetto.h"

namespace mpcp {
namespace {

// --- minimal JSON syntax checker -------------------------------------
// Enough of RFC 8259 to reject anything a real parser would: balanced
// structure, quoted strings with escapes, numbers, literals. Values are
// not interpreted, only consumed.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};
// ---------------------------------------------------------------------

std::string example4Trace() {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 40});
  std::ostringstream os;
  writePerfettoTrace(os, ex.sys, r);
  return os.str();
}

std::size_t countOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Perfetto, Example4ExportIsValidJson) {
  const std::string json = example4Trace();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Perfetto, Example4HasTrackMetadataAndSpans) {
  const std::string json = example4Trace();
  // One process_name record per processor.
  EXPECT_EQ(countOccurrences(json, "\"process_name\""), 3u);
  // Example 4's run has contention on the globals, so blocking spans
  // must be present, and every opened span must be closed.
  const std::size_t begins = countOccurrences(json, "\"ph\":\"b\"");
  const std::size_t ends = countOccurrences(json, "\"ph\":\"e\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  // Execution segments made it across.
  EXPECT_GT(countOccurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(Perfetto, ExportIsDeterministic) {
  EXPECT_EQ(example4Trace(), example4Trace());
}

TEST(Perfetto, EscapesHostileNamesIntoValidJson) {
  TaskSystemBuilder b(1);
  const ResourceId s = b.addResource("S\"quote\\slash");
  b.addTask({.name = "evil\"name\nnewline", .period = 20, .processor = 0,
             .body = Body{}.compute(1).section(s, 2)});
  b.addTask({.name = "peer", .period = 40, .phase = 1, .processor = 0,
             .body = Body{}.section(s, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 60});
  std::ostringstream os;
  writePerfettoTrace(os, sys, r);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(Perfetto, Example4MatchesGoldenFile) {
  std::ifstream in(std::string(MPCP_GOLDEN_DIR) +
                   "/paper_example4_perfetto.json");
  ASSERT_TRUE(in) << "golden file missing";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(example4Trace(), golden.str())
      << "regenerate tests/golden/paper_example4_perfetto.json if the "
         "exporter's output format changed intentionally";
}

}  // namespace
}  // namespace mpcp
