// Engine behaviour without synchronization: releases, rate-monotonic
// priorities, preemption, deadline accounting, determinism.
#include <gtest/gtest.h>

#include "core/simulate.h"
#include "model/task_system.h"
#include "test_util.h"

namespace mpcp {
namespace {

using ::mpcp::testing::countEvents;
using ::mpcp::testing::finishOf;
using ::mpcp::testing::responseOf;

TaskSystem singleTask() {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t1", .period = 10, .processor = 0,
             .body = Body{}.compute(3)});
  return std::move(b).build();
}

TEST(SimEngine, SingleTaskRunsToCompletion) {
  const TaskSystem sys = singleTask();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 20});
  EXPECT_FALSE(r.any_deadline_miss);
  EXPECT_EQ(responseOf(r, TaskId(0), 0), 3);
  EXPECT_EQ(responseOf(r, TaskId(0), 1), 3);
  EXPECT_EQ(r.per_task[0].jobs_finished, 2);
}

TEST(SimEngine, RateMonotonicAssignsShorterPeriodHigherPriority) {
  TaskSystemBuilder b(1);
  const TaskId slow = b.addTask({.name = "slow", .period = 100,
                                 .processor = 0,
                                 .body = Body{}.compute(10)});
  const TaskId fast = b.addTask({.name = "fast", .period = 10,
                                 .processor = 0,
                                 .body = Body{}.compute(2)});
  const TaskSystem sys = std::move(b).build();
  EXPECT_GT(sys.task(fast).priority, sys.task(slow).priority);
}

TEST(SimEngine, HigherPriorityPreempts) {
  TaskSystemBuilder b(1);
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.compute(10)});
  const TaskId hi = b.addTask({.name = "hi", .period = 10, .phase = 2,
                               .processor = 0, .body = Body{}.compute(3)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 40});
  // hi arrives at t=2, preempts, runs 2..5; lo resumes and finishes at
  // 10 + 3 (second hi at 12.. wait: hi period 10, phase 2: releases 2,12.
  // lo: 0..2 (2 done), 5..12 (9 done), 15..16 -> finish 16.
  EXPECT_EQ(responseOf(r, hi, 0), 3);
  EXPECT_EQ(finishOf(r, lo, 0), 16);
  EXPECT_GE(countEvents(r, Ev::kPreempt, lo), 1);
}

TEST(SimEngine, EqualPriorityImpossibleViaRm_TieBrokenByOrder) {
  TaskSystemBuilder b(1);
  const TaskId first = b.addTask({.name = "a", .period = 10, .processor = 0,
                                  .body = Body{}.compute(2)});
  const TaskId second = b.addTask({.name = "b", .period = 10, .processor = 0,
                                   .body = Body{}.compute(2)});
  const TaskSystem sys = std::move(b).build();
  // Same period: earlier-declared task gets the higher RM priority.
  EXPECT_GT(sys.task(first).priority, sys.task(second).priority);
}

TEST(SimEngine, DeadlineMissDetected) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "over", .period = 10, .processor = 0,
             .body = Body{}.compute(7)});
  b.addTask({.name = "load", .period = 20, .processor = 0,
             .body = Body{}.compute(9)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 60});
  EXPECT_TRUE(r.any_deadline_miss);
}

TEST(SimEngine, StopOnDeadlineMissStopsEarly) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "over", .period = 10, .processor = 0,
             .body = Body{}.compute(12)});  // can never make it
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys,
                               {.horizon = 1000, .stop_on_deadline_miss = true});
  EXPECT_TRUE(r.any_deadline_miss);
}

TEST(SimEngine, PhasedReleases) {
  TaskSystemBuilder b(1);
  const TaskId t = b.addTask({.name = "t", .period = 10, .phase = 7,
                              .processor = 0, .body = Body{}.compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 30});
  EXPECT_EQ(finishOf(r, t, 0), 8);
  EXPECT_EQ(finishOf(r, t, 1), 18);
}

TEST(SimEngine, TwoProcessorsRunIndependently) {
  TaskSystemBuilder b(2);
  const TaskId a = b.addTask({.name = "a", .period = 10, .processor = 0,
                              .body = Body{}.compute(5)});
  const TaskId c = b.addTask({.name = "c", .period = 10, .processor = 1,
                              .body = Body{}.compute(5)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 10});
  EXPECT_EQ(finishOf(r, a, 0), 5);
  EXPECT_EQ(finishOf(r, c, 0), 5);  // in parallel, not serialized
}

TEST(SimEngine, DeterministicAcrossRuns) {
  TaskSystemBuilder b(2);
  b.addTask({.name = "a", .period = 7, .processor = 0,
             .body = Body{}.compute(3)});
  b.addTask({.name = "b", .period = 11, .processor = 1,
             .body = Body{}.compute(4)});
  b.addTask({.name = "c", .period = 13, .processor = 0,
             .body = Body{}.compute(2)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r1 = simulate(ProtocolKind::kNone, sys, {.horizon = 500});
  const SimResult r2 = simulate(ProtocolKind::kNone, sys, {.horizon = 500});
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (std::size_t i = 0; i < r1.jobs.size(); ++i) {
    EXPECT_EQ(r1.jobs[i].finish, r2.jobs[i].finish);
    EXPECT_EQ(r1.jobs[i].blocked, r2.jobs[i].blocked);
  }
  EXPECT_EQ(r1.trace.size(), r2.trace.size());
}

TEST(SimEngine, ExecutedTimeMatchesWcetForFinishedJobs) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "t", .period = 10, .processor = 0,
             .body = Body{}.compute(4)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 50});
  for (const JobRecord& jr : r.jobs) {
    if (jr.finish >= 0) {
      EXPECT_EQ(jr.executed, 4);
    }
  }
}

TEST(SimEngine, SegmentsCoverExecutionExactly) {
  TaskSystemBuilder b(1);
  const TaskId t = b.addTask({.name = "t", .period = 10, .processor = 0,
                              .body = Body{}.compute(4)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 20});
  Duration total = 0;
  for (const ExecSegment& s : r.segments) {
    EXPECT_EQ(s.job.task, t);
    EXPECT_LT(s.begin, s.end);
    total += s.end - s.begin;
  }
  EXPECT_EQ(total, 8);  // two jobs x 4 ticks
}

}  // namespace
}  // namespace mpcp
