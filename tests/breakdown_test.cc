// Workload scaling and breakdown-utilization search.
#include <gtest/gtest.h>

#include "analysis/breakdown.h"
#include "analysis/profiles.h"
#include "analysis/schedulability.h"
#include "common/rng.h"
#include "core/analyzer.h"
#include "taskgen/generator.h"
#include "taskgen/scale.h"

namespace mpcp {
namespace {

TEST(Scale, ScalesComputePreservesStructure) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(10).section(g, 4).suspend(3)
                        .compute(6)});
  b.addTask({.name = "b", .period = 200, .processor = 1,
             .body = Body{}.section(g, 8).compute(2)});
  const TaskSystem sys = std::move(b).build();
  const TaskSystem doubled = scaleWorkload(sys, 2.0);
  EXPECT_EQ(doubled.tasks()[0].wcet, 40);  // (10+4+6)*2
  EXPECT_EQ(doubled.tasks()[0].period, 100);
  EXPECT_EQ(doubled.tasks()[0].sections.size(), 1u);
  EXPECT_EQ(doubled.tasks()[0].sections[0].duration, 8);
  // Suspension untouched.
  const auto profiles = buildProfiles(doubled);
  EXPECT_EQ(profiles[0].total_suspension, 3);

  const TaskSystem halved = scaleWorkload(sys, 0.5);
  EXPECT_EQ(halved.tasks()[0].wcet, 10);
  EXPECT_EQ(halved.tasks()[0].sections[0].duration, 2);
}

TEST(Scale, MinimumOneTickPerComputeOp) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(1).compute(1)});  // merges to one op
  const TaskSystem sys = std::move(b).build();
  const TaskSystem tiny = scaleWorkload(sys, 0.01);
  EXPECT_GE(tiny.tasks()[0].wcet, 1);
}

TEST(Breakdown, FindsTheFlipPoint) {
  // Single task, C=10, T=100: RTA accepts up to factor 10 exactly.
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.compute(10)});
  const TaskSystem sys = std::move(b).build();
  const BreakdownResult r = breakdownUtilization(
      sys,
      [](const TaskSystem& scaled) {
        const std::vector<Duration> zero(scaled.tasks().size(), 0);
        return analyzeSchedulability(scaled, zero).rta_all;
      },
      0.05, 20.0, 0.01);
  EXPECT_NEAR(r.factor, 10.0, 0.1);
  EXPECT_NEAR(r.utilization, 1.0, 0.02);
}

TEST(Breakdown, ZeroWhenAlreadyUnschedulable) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(9)});
  b.addTask({.name = "c", .period = 20, .processor = 0,
             .body = Body{}.compute(15)});
  const TaskSystem sys = std::move(b).build();
  const BreakdownResult r = breakdownUtilization(
      sys,
      [](const TaskSystem& scaled) {
        const std::vector<Duration> zero(scaled.tasks().size(), 0);
        return analyzeSchedulability(scaled, zero).rta_all;
      },
      1.0, 4.0, 0.01);
  EXPECT_EQ(r.factor, 0.0);
}

TEST(Breakdown, MpcpDominatesDpcpOnAverage) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.2;
  p.cs_max = 40;
  p.global_sharing_prob = 0.9;
  double mpcp_sum = 0, dpcp_sum = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 131);
    const TaskSystem sys = generateWorkload(p, rng);
    mpcp_sum += breakdownUtilization(sys, [](const TaskSystem& s) {
                  return analyzeUnder(ProtocolKind::kMpcp, s).report.rta_all;
                }).utilization;
    dpcp_sum += breakdownUtilization(sys, [](const TaskSystem& s) {
                  return analyzeUnder(ProtocolKind::kDpcp, s).report.rta_all;
                }).utilization;
  }
  EXPECT_GE(mpcp_sum, dpcp_sum);
}

}  // namespace
}  // namespace mpcp
