// Oracle families of the differential protocol fuzzer: a correct
// implementation passes every family on well-formed systems; the seeded
// known-bad mutation is detected; results are deterministic.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutations.h"
#include "fuzz/oracles.h"
#include "model/serialize.h"
#include "model/task_system.h"
#include "taskgen/generator.h"
#include "taskgen/paper_examples.h"

namespace mpcp::fuzz {
namespace {

// Two processors sharing one global semaphore plus local traffic: enough
// structure to exercise every oracle family (gcs elevation, local PCP,
// the reference differential, and the no-global agreement reduction is
// covered by the local-only system below).
constexpr const char* kGlobalSample = R"(
processors 2
resource G1
resource L1
task hi period=40 processor=0
  compute 2
  lock G1
  compute 3
  unlock G1
  compute 1
end
task mid period=60 processor=0
  compute 1
  section L1 4
  compute 1
end
task remote period=50 processor=1
  compute 2
  lock G1
  compute 4
  unlock G1
  compute 2
end
)";

constexpr const char* kLocalOnlySample = R"(
processors 2
resource L1
resource L2
task a period=30 processor=0
  compute 1
  section L1 3
  compute 1
end
task b period=45 processor=0
  section L1 5
  compute 2
end
task c period=25 processor=1
  section L2 2
  compute 1
end
)";

TEST(FuzzOracles, CleanOnCorrectImplementation) {
  const TaskSystem sys = parseTaskSystemFromString(kGlobalSample);
  const std::vector<OracleFailure> failures = checkSystem(sys);
  for (const OracleFailure& f : failures) {
    ADD_FAILURE() << f.protocol << " " << f.oracle << ": " << f.details;
  }
}

TEST(FuzzOracles, CleanOnPaperExample) {
  const paper::Example3 ex = paper::makeExample3();
  EXPECT_TRUE(checkSystem(ex.sys).empty());
}

TEST(FuzzOracles, LocalOnlySystemsPassAgreementChecks) {
  const TaskSystem sys = parseTaskSystemFromString(kLocalOnlySample);
  EXPECT_TRUE(checkSystem(sys).empty());
}

TEST(FuzzOracles, GcsCeilingBaseMutationIsCaught) {
  const TaskSystem sys = parseTaskSystemFromString(kGlobalSample);
  OracleOptions opts;
  opts.mutation = Mutation::kGcsCeilingBase;
  const std::vector<OracleFailure> failures = checkSystem(sys, opts);
  ASSERT_FALSE(failures.empty())
      << "the seeded known-bad mutation must not pass the oracles";
  // The bug collapses rule-3 gcs priorities into the normal band, so the
  // gcs-priority assignment check (at minimum) fires against MPCP.
  bool mpcp_hit = false;
  for (const OracleFailure& f : failures) {
    if (f.protocol.find("mpcp") != std::string::npos) mpcp_hit = true;
  }
  EXPECT_TRUE(mpcp_hit);
}

// Three processors queue two spinners (different priorities, staggered
// arrivals) behind one long holder — the smallest shape where grant
// order is observable, so the misordered-spin mutations must diverge.
TaskSystem makeSpinContended() {
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("G1");
  b.addTask({.name = "hold", .period = 1000, .processor = 0,
             .body = Body{}.compute(1).section(s, 10).compute(1)});
  b.addTask({.name = "hi", .period = 100, .phase = 3, .processor = 1,
             .body = Body{}.compute(1).section(s, 5).compute(1)});
  b.addTask({.name = "lo", .period = 400, .phase = 1, .processor = 2,
             .body = Body{}.compute(1).section(s, 5).compute(1)});
  return std::move(b).build();
}

TEST(FuzzOracles, SpinContendedSystemIsCleanUnmutated) {
  const std::vector<OracleFailure> failures = checkSystem(makeSpinContended());
  for (const OracleFailure& f : failures) {
    ADD_FAILURE() << f.protocol << " " << f.oracle << ": " << f.details;
  }
}

TEST(FuzzOracles, SpinFifoLifoMutationIsCaught) {
  OracleOptions opts;
  opts.mutation = Mutation::kSpinFifoLifo;
  const std::vector<OracleFailure> failures =
      checkSystem(makeSpinContended(), opts);
  ASSERT_FALSE(failures.empty())
      << "LIFO grants in a claimed-FIFO spin lock must not pass";
  bool spin_hit = false;
  for (const OracleFailure& f : failures) {
    if (f.protocol.find("spin-fifo") != std::string::npos) spin_hit = true;
  }
  EXPECT_TRUE(spin_hit);
}

TEST(FuzzOracles, SpinPrioFifoMutationIsCaught) {
  OracleOptions opts;
  opts.mutation = Mutation::kSpinPrioFifo;
  const std::vector<OracleFailure> failures =
      checkSystem(makeSpinContended(), opts);
  ASSERT_FALSE(failures.empty())
      << "arrival-order grants in a priority spin lock must not pass";
  bool spin_hit = false;
  for (const OracleFailure& f : failures) {
    if (f.protocol.find("spin-prio") != std::string::npos) spin_hit = true;
  }
  EXPECT_TRUE(spin_hit);
}

TEST(FuzzOracles, MutationsOnlyTouchTheirTargetProtocol) {
  // A mutation keyed to one protocol must leave every other protocol's
  // runs clean — otherwise a finding could implicate the wrong protocol.
  OracleOptions opts;
  opts.mutation = Mutation::kSpinFifoLifo;
  for (const OracleFailure& f : checkSystem(makeSpinContended(), opts)) {
    EXPECT_NE(f.protocol.find("spin-fifo"), std::string::npos)
        << f.protocol << " " << f.oracle << ": " << f.details;
  }
}

TEST(FuzzOracles, FailureOrderIsDeterministic) {
  const TaskSystem sys = parseTaskSystemFromString(kGlobalSample);
  OracleOptions opts;
  opts.mutation = Mutation::kGcsCeilingBase;
  const std::vector<OracleFailure> a = checkSystem(sys, opts);
  const std::vector<OracleFailure> b = checkSystem(sys, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].protocol, b[i].protocol);
    EXPECT_EQ(a[i].oracle, b[i].oracle);
    EXPECT_EQ(a[i].details, b[i].details);
  }
}

TEST(FuzzOracles, WorkloadDrawIsDeterministicInSeed) {
  Rng r1(1234), r2(1234), r3(99);
  const WorkloadParams a = drawWorkloadParams(r1);
  const WorkloadParams b = drawWorkloadParams(r2);
  const WorkloadParams c = drawWorkloadParams(r3);
  EXPECT_EQ(a.processors, b.processors);
  EXPECT_EQ(a.tasks_per_processor, b.tasks_per_processor);
  EXPECT_EQ(a.global_resources, b.global_resources);
  EXPECT_EQ(a.period_min, b.period_min);
  EXPECT_EQ(a.period_max, b.period_max);
  // Different seeds should (for these two) draw different shapes; this is
  // a smoke check on the draw actually consuming the stream, not a
  // statistical claim.
  EXPECT_TRUE(a.processors != c.processors || a.period_min != c.period_min ||
              a.tasks_per_processor != c.tasks_per_processor ||
              a.global_resources != c.global_resources);
}

TEST(FuzzOracles, MutationRegistryRoundTrips) {
  for (const Mutation m : allMutations()) {
    const auto parsed = mutationFromName(toString(m));
    ASSERT_TRUE(parsed.has_value()) << toString(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(mutationFromName("no-such-mutation").has_value());
}

}  // namespace
}  // namespace mpcp::fuzz
