// runFleetCampaign merge + resume semantics (ISSUE 9): the canonical
// journal rewritten after a fleet campaign is byte-identical to what a
// serial journaled run would have produced, resume unions the main
// journal with every worker shard, and journal misuse is refused with
// the same rules as runCampaign. All tests run in degraded (local-drain)
// mode — no sockets, no forked workers — so they are fast and hermetic;
// the socketed paths are covered by fabric_fleet_test and the CLI smokes.
#include "exec/fabric/fleet_campaign.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/check.h"
#include "exec/fabric/checkpoint.h"
#include "exec/journal.h"

namespace mpcp::exec::fabric {
namespace {

namespace fs = std::filesystem;

std::string tempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/mpcp_fleet_campaign_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string payloadFor(const std::string& key) { return key + ",row-bytes"; }

// A campaign that always degrades to the in-process drain: nothing
// listens for workers (spawn_workers == 0) and the no-live-workers grace
// is near zero.
FleetCampaignOptions degradedOptions(const std::string& dir, int* executions) {
  FleetCampaignOptions o;
  o.journal_path = dir + "/campaign.journal";
  o.config_fingerprint = "fleet-test-v1";
  o.shard_dir = dir;
  o.fleet.listen = "unix:" + dir + "/fleet.sock";
  o.fleet.spawn_workers = 0;
  o.fleet.body_spec = "test-v1";
  o.fleet.timing.degrade_after_ms = 100;
  o.fleet.timing.poll_ms = 10;
  o.fleet.local_fn = [executions](const std::string& key) {
    if (executions != nullptr) ++*executions;
    FleetResult r;
    r.key = key;
    r.ok = true;
    r.payload = payloadFor(key);
    return r;
  };
  return o;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The exact byte stream a serial `runCampaign` with a journal writes for
// this campaign: meta, then start/done per seed in order.
std::string serialJournalBytes(int seeds, std::uint64_t base) {
  std::string bytes =
      formatRecord(RecordKind::kMeta, "config", "fleet-test-v1");
  for (int s = 0; s < seeds; ++s) {
    const std::string key = "s" + std::to_string(base + s);
    bytes += formatRecord(RecordKind::kStart, key, "");
    bytes += formatRecord(RecordKind::kDone, key, payloadFor(key));
  }
  return bytes;
}

TEST(FleetCampaign, DegradedRunCompletesAndMergesCanonicalBytes) {
  const std::string dir = tempDir("merge");
  int executions = 0;
  const FleetCampaignOptions o = degradedOptions(dir, &executions);

  const FleetCampaignOutcome out = runFleetCampaign(4, 100, o);
  ASSERT_TRUE(out.complete());
  EXPECT_FALSE(out.interrupted);
  EXPECT_EQ(executions, 4);
  EXPECT_EQ(out.fleet.degraded_local_runs, 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(*out.payloads[static_cast<std::size_t>(s)],
              payloadFor("s" + std::to_string(100 + s)));
  }
  // Byte-identical to the serial journaled run, not merely equivalent.
  EXPECT_EQ(readFile(o.journal_path), serialJournalBytes(4, 100));
}

TEST(FleetCampaign, ResumeReusesDoneRowsWithoutReExecuting) {
  const std::string dir = tempDir("resume");
  int executions = 0;
  FleetCampaignOptions o = degradedOptions(dir, &executions);

  ASSERT_TRUE(runFleetCampaign(3, 100, o).complete());
  EXPECT_EQ(executions, 3);

  o.resume = true;
  const FleetCampaignOutcome second = runFleetCampaign(3, 100, o);
  ASSERT_TRUE(second.complete());
  EXPECT_EQ(executions, 3) << "resume must not re-execute done runs";
  EXPECT_EQ(second.exec.resumed_skips, 3u);
  EXPECT_EQ(readFile(o.journal_path), serialJournalBytes(3, 100));
}

TEST(FleetCampaign, RefusesPopulatedJournalWithoutResume) {
  const std::string dir = tempDir("no_resume");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);
  ASSERT_TRUE(runFleetCampaign(2, 100, o).complete());
  EXPECT_THROW((void)runFleetCampaign(2, 100, o), ConfigError);
}

TEST(FleetCampaign, RefusesFingerprintMismatchOnResume) {
  const std::string dir = tempDir("fp_mismatch");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);
  ASSERT_TRUE(runFleetCampaign(2, 100, o).complete());
  o.resume = true;
  o.config_fingerprint = "fleet-test-v2";
  EXPECT_THROW((void)runFleetCampaign(2, 100, o), ConfigError);
}

TEST(FleetCampaign, ResumeOverlaysWorkerShardJournals) {
  const std::string dir = tempDir("shard_overlay");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);

  // Simulate a coordinator killed before the canonical merge: the main
  // journal has only the fingerprint and an in-flight start, while a
  // worker shard holds the completed row.
  {
    std::ofstream main(o.journal_path, std::ios::binary);
    main << formatRecord(RecordKind::kMeta, "config", "fleet-test-v1");
    main << formatRecord(RecordKind::kStart, "s100", "");
  }
  {
    std::ofstream shard(dir + "/w1.journal", std::ios::binary);
    shard << formatRecord(RecordKind::kDone, "s100", payloadFor("s100"));
  }

  int executions = 0;
  o.fleet.local_fn = [&executions](const std::string& key) {
    ++executions;
    EXPECT_NE(key, "s100") << "shard-completed key must not re-run";
    FleetResult r;
    r.key = key;
    r.ok = true;
    r.payload = payloadFor(key);
    return r;
  };
  o.resume = true;
  const FleetCampaignOutcome out = runFleetCampaign(2, 100, o);
  ASSERT_TRUE(out.complete());
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(*out.payloads[0], payloadFor("s100"));
  EXPECT_EQ(readFile(o.journal_path), serialJournalBytes(2, 100));
}

TEST(FleetCampaign, FreshRunDeletesStaleShards) {
  const std::string dir = tempDir("stale_shards");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);
  // A stale shard from an unrelated earlier campaign must not leak rows
  // into a fresh (non-resume) run.
  {
    std::ofstream shard(dir + "/old.journal", std::ios::binary);
    shard << formatRecord(RecordKind::kDone, "s100", "stale-bytes");
  }
  const FleetCampaignOutcome out = runFleetCampaign(2, 100, o);
  ASSERT_TRUE(out.complete());
  EXPECT_EQ(*out.payloads[0], payloadFor("s100"));
  EXPECT_FALSE(fs::exists(dir + "/old.journal"));
  EXPECT_EQ(readFile(o.journal_path), serialJournalBytes(2, 100));
}

TEST(FleetCampaign, PermanentFailureIsJournaledAndSorted) {
  const std::string dir = tempDir("perma_fail");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);
  o.fleet.local_fn = [](const std::string& key) {
    FleetResult r;
    r.key = key;
    if (key == "s101") {
      r.ok = false;
      r.payload = "body exploded";
    } else {
      r.ok = true;
      r.payload = payloadFor(key);
    }
    return r;
  };
  const FleetCampaignOutcome out = runFleetCampaign(3, 100, o);
  EXPECT_FALSE(out.complete());
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].seed, 1);  // runCampaign convention: the index s
  EXPECT_NE(out.failures[0].error.find("body exploded"), std::string::npos);
  // Incomplete campaigns keep the incremental journal (no canonical
  // rewrite) so a later resume still sees the fail record.
  const JournalLoad load = loadJournalFile(o.journal_path);
  bool saw_fail = false;
  for (const auto& rec : load.records) {
    saw_fail |= rec.kind == RecordKind::kFail && rec.key == "s101";
  }
  EXPECT_TRUE(saw_fail);
}

// --- coordinator checkpoint + takeover (ISSUE 10) ------------------------

TEST(FleetCampaign, TakeoverAdoptsCheckpointAttemptCounts) {
  const std::string dir = tempDir("takeover");
  int executions = 0;
  FleetCampaignOptions o = degradedOptions(dir, &executions);

  // A predecessor coordinator died mid-campaign: the journal knows the
  // campaign started, and the checkpoint knows s100 already burned its
  // whole attempt budget (default max_attempts = 3).
  {
    std::ofstream main(o.journal_path, std::ios::binary);
    main << formatRecord(RecordKind::kMeta, "config", "fleet-test-v1");
    main << formatRecord(RecordKind::kStart, "s100", "");
  }
  CoordinatorCheckpoint ckpt;
  ckpt.fingerprint = "fleet-test-v1";
  ckpt.attempts["s100"] = 3;
  ckpt.in_flight.insert("s100");
  saveCheckpoint(dir + "/coordinator.ckpt", ckpt);

  o.takeover = true;
  const FleetCampaignOutcome out = runFleetCampaign(2, 100, o);
  EXPECT_FALSE(out.complete());
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].seed, 0);
  EXPECT_NE(out.failures[0].error.find("attempt budget"), std::string::npos)
      << out.failures[0].error;
  // The healthy key still ran; the exhausted one did not re-execute.
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(*out.payloads[1], payloadFor("s101"));
}

TEST(FleetCampaign, TakeoverRefusesForeignCheckpoint) {
  const std::string dir = tempDir("takeover_fp");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);
  {
    std::ofstream main(o.journal_path, std::ios::binary);
    main << formatRecord(RecordKind::kMeta, "config", "fleet-test-v1");
  }
  CoordinatorCheckpoint ckpt;
  ckpt.fingerprint = "some-other-campaign";
  saveCheckpoint(dir + "/coordinator.ckpt", ckpt);
  o.takeover = true;
  EXPECT_THROW((void)runFleetCampaign(2, 100, o), ConfigError);
}

TEST(FleetCampaign, TakeoverWithCorruptCheckpointFallsBackToResume) {
  const std::string dir = tempDir("takeover_corrupt");
  int executions = 0;
  FleetCampaignOptions o = degradedOptions(dir, &executions);
  {
    std::ofstream main(o.journal_path, std::ios::binary);
    main << formatRecord(RecordKind::kMeta, "config", "fleet-test-v1");
  }
  {
    std::ofstream bad(dir + "/coordinator.ckpt", std::ios::binary);
    bad << "not a checkpoint at all\n";
  }
  o.takeover = true;
  const FleetCampaignOutcome out = runFleetCampaign(2, 100, o);
  ASSERT_TRUE(out.complete());
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(readFile(o.journal_path), serialJournalBytes(2, 100));
}

TEST(FleetCampaign, CleanCompletionRemovesTheCheckpoint) {
  const std::string dir = tempDir("ckpt_cleanup");
  FleetCampaignOptions o = degradedOptions(dir, nullptr);
  ASSERT_TRUE(runFleetCampaign(2, 100, o).complete());
  EXPECT_FALSE(fs::exists(dir + "/coordinator.ckpt"));
}

// --- disk-fault containment (ISSUE 10) -----------------------------------

TEST(FleetCampaign, ShardDiskFaultsAreContainedAndMergeStaysCanonical) {
  const std::string dir = tempDir("disk_fault");
  int executions = 0;
  FleetCampaignOptions o = degradedOptions(dir, &executions);
  // The degraded drain journals results to the "local" worker's shard;
  // break exactly that file (ENOSPC on every byte) while the main
  // journal and the canonical merge stay healthy.
  FaultyJournalIo io;
  io.budget_bytes = 0;
  io.path_filter = "local.journal";
  o.journal_io = &io;

  const FleetCampaignOutcome out = runFleetCampaign(3, 100, o);
  ASSERT_TRUE(out.complete());
  EXPECT_EQ(executions, 3);
  EXPECT_GE(out.exec.journal_write_errors, 1u);
  // Durability was lost, correctness was not: in-memory results survive
  // and the final merge rewrites the canonical bytes.
  EXPECT_EQ(readFile(o.journal_path), serialJournalBytes(3, 100));
}

TEST(FleetCampaign, SanitizesWorkerNamesForShardPaths) {
  EXPECT_EQ(sanitizeWorkerName("w1"), "w1");
  EXPECT_EQ(sanitizeWorkerName("node-3.local_9"), "node-3.local_9");
  EXPECT_EQ(sanitizeWorkerName("../evil/../../name"), ".._evil_.._.._name");
  EXPECT_EQ(sanitizeWorkerName(""), "worker");
}

}  // namespace
}  // namespace mpcp::exec::fabric
