// NoProtocol and PIP behaviour, including the paper's Example 1
// (Figure 3-1) and Example 2 (Figure 3-2) remote-blocking scenarios.
#include <gtest/gtest.h>

#include "core/simulate.h"
#include "model/task_system.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

// --- Example 1 (Figure 3-1) -------------------------------------------
// tau1 on P1 wants global S held by low-priority tau3 on P2; medium tau2
// on P2 preempts tau3, stretching tau1's remote blocking.
struct Example1 {
  TaskId t1, t2, t3;   // declared before sys: build() assigns them first
  ResourceId s;
  TaskSystem sys;

  explicit Example1(Duration medium_wcet = 5)
      : sys(build(medium_wcet, &t1, &t2, &t3, &s)) {}

  static TaskSystem build(Duration medium_wcet, TaskId* t1, TaskId* t2,
                          TaskId* t3, ResourceId* s) {
    TaskSystemBuilder b(2);
    *s = b.addResource("S");
    // Priorities via RM: tau1 (10) > tau2 (20) > tau3 (30).
    *t1 = b.addTask({.name = "tau1", .period = 100, .phase = 2,
                     .processor = 0,
                     .body = Body{}.compute(1).section(*s, 2).compute(1)});
    *t2 = b.addTask({.name = "tau2", .period = 200, .phase = 2,
                     .processor = 1, .body = Body{}.compute(medium_wcet)});
    *t3 = b.addTask({.name = "tau3", .period = 300, .processor = 1,
                     .body = Body{}.compute(1).section(*s, 4).compute(1)});
    return std::move(b).build();
  }
};

TEST(Example1, NoProtocolBlockingGrowsWithMediumLoad) {
  // tau3 locks S at t=1 (holds 4 ticks). tau1 requests S at t=3. tau2
  // arrives at t=2 and preempts tau3 for its whole WCET, so tau1's wait
  // includes tau2's non-critical execution — unbounded priority inversion.
  const Example1 small(5);
  const Example1 large(20);
  const SimResult rs =
      simulate(ProtocolKind::kNone, small.sys, {.horizon = 100});
  const SimResult rl =
      simulate(ProtocolKind::kNone, large.sys, {.horizon = 100});
  const Duration bs = maxBlockedOf(rs, small.t1);
  const Duration bl = maxBlockedOf(rl, large.t1);
  EXPECT_GT(bl, bs);                 // blocking scales with tau2's WCET
  EXPECT_GE(bl - bs, 20 - 5);        // by at least the WCET delta
}

TEST(Example1, PipBoundsBlockingByCriticalSection) {
  // With inheritance, tau3 runs its critical section at tau1's priority;
  // tau2 cannot preempt it. tau1 waits only for the cs remainder.
  const Example1 small(5);
  const Example1 large(20);
  const SimResult rs = simulate(ProtocolKind::kPip, small.sys, {.horizon = 100});
  const SimResult rl = simulate(ProtocolKind::kPip, large.sys, {.horizon = 100});
  EXPECT_EQ(maxBlockedOf(rs, small.t1), maxBlockedOf(rl, large.t1))
      << "PIP blocking must not depend on the medium task's WCET";
  // tau1 requests at t=3. tau3 locked S at t=1, ran one cs tick before
  // tau2's preemption at t=2, and resumes at t=3 on inheriting tau1's
  // priority; the remaining 3 cs ticks finish at t=6: 3 ticks of blocking.
  EXPECT_EQ(maxBlockedOf(rs, small.t1), 3);
}

// --- Example 2 (Figure 3-2) -------------------------------------------
// tau1 (high) and tau2 (low, holds global S) on P1; tau3 on P2 waits for
// S. Inheritance raises tau2 only to tau3's priority < tau1's, so tau1's
// *normal* execution still extends tau3's remote blocking. This is the
// scenario neither PIP nor uniprocessor PCP can fix (Section 3.3).
struct Example2 {
  TaskId t1, t2, t3;   // declared before sys: build() assigns them first
  ResourceId s;
  TaskSystem sys;

  explicit Example2(Duration t1_wcet = 5)
      : sys(build(t1_wcet, &t1, &t2, &t3, &s)) {}

  static TaskSystem build(Duration t1_wcet, TaskId* t1, TaskId* t2,
                          TaskId* t3, ResourceId* s) {
    TaskSystemBuilder b(2);
    *s = b.addResource("S");
    // RM: tau1 (10) > tau3 (20) > tau2 (30).
    *t1 = b.addTask({.name = "tau1", .period = 100, .phase = 2,
                     .processor = 0, .body = Body{}.compute(t1_wcet)});
    *t2 = b.addTask({.name = "tau2", .period = 300, .processor = 0,
                     .body = Body{}.compute(1).section(*s, 3).compute(1)});
    *t3 = b.addTask({.name = "tau3", .period = 200, .processor = 1,
                     .body = Body{}.compute(2).section(*s, 2).compute(1)});
    return std::move(b).build();
  }
};

TEST(Example2, PipCannotBoundRemoteBlockingByCsLength) {
  const Example2 small(5);
  const Example2 large(25);
  const SimResult rs = simulate(ProtocolKind::kPip, small.sys, {.horizon = 200});
  const SimResult rl = simulate(ProtocolKind::kPip, large.sys, {.horizon = 200});
  const Duration bs = maxBlockedOf(rs, small.t3);
  const Duration bl = maxBlockedOf(rl, large.t3);
  EXPECT_GT(bl, bs) << "tau3's blocking must grow with tau1's WCET under PIP";
  EXPECT_GE(bl - bs, 25 - 5);
}

TEST(Example2, MpcpBoundsRemoteBlockingByCsLength) {
  const Example2 small(5);
  const Example2 large(25);
  const SimResult rs = simulate(ProtocolKind::kMpcp, small.sys, {.horizon = 200});
  const SimResult rl = simulate(ProtocolKind::kMpcp, large.sys, {.horizon = 200});
  EXPECT_EQ(maxBlockedOf(rs, small.t3), maxBlockedOf(rl, large.t3))
      << "MPCP: tau3's blocking must not depend on tau1's WCET";
  // tau2 locks S at t=1 and runs the gcs at elevated priority; tau1's
  // arrival at t=2 cannot preempt. tau3 requests at t=2, waits until the
  // release at t=4: 2 ticks.
  EXPECT_EQ(maxBlockedOf(rs, small.t3), 2);
}

TEST(NoProtocol, MutualExclusionHolds) {
  const Example1 ex(5);
  const SimResult r = simulate(ProtocolKind::kNone, ex.sys, {.horizon = 300});
  const InvariantReport rep = checkMutualExclusion(ex.sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(NoProtocol, FifoGrantOrder) {
  // Three tasks on three processors contend for S; FIFO queue grants in
  // arrival order regardless of priority.
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  const TaskId hold = b.addTask({.name = "hold", .period = 100,
                                 .processor = 0,
                                 .body = Body{}.section(s, 10)});
  const TaskId hi = b.addTask({.name = "hi", .period = 10, .phase = 5,
                               .processor = 1,
                               .body = Body{}.section(s, 1)});
  const TaskId lo = b.addTask({.name = "lo", .period = 50, .phase = 2,
                               .processor = 2,
                               .body = Body{}.section(s, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys,
                               {.horizon = 30, .stop_on_deadline_miss = false});
  // lo queued at t=2, hi at t=5; FIFO serves lo first at t=10.
  EXPECT_EQ(finishOf(r, lo, 0), 11);
  EXPECT_EQ(finishOf(r, hi, 0), 12);
  (void)hold;
}

TEST(NoProtocol, PriorityQueueVariantServesHighestFirst) {
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "hold", .period = 100, .processor = 0,
             .body = Body{}.section(s, 10)});
  const TaskId hi = b.addTask({.name = "hi", .period = 10, .phase = 5,
                               .processor = 1,
                               .body = Body{}.section(s, 1)});
  const TaskId lo = b.addTask({.name = "lo", .period = 50, .phase = 2,
                               .processor = 2,
                               .body = Body{}.section(s, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNonePrio, sys, {.horizon = 30});
  EXPECT_EQ(finishOf(r, hi, 0), 11);  // priority beats arrival order
  EXPECT_EQ(finishOf(r, lo, 0), 12);
}

TEST(Pip, TransitiveInheritanceAcrossChain) {
  // tau_c (low) holds S1; tau_b (mid) holds S2 and blocks on S1; tau_a
  // (high) blocks on S2. tau_c must inherit tau_a's priority through the
  // chain so that the medium spoiler cannot preempt it.
  TaskSystemBuilder b(4, {.allow_nested_global = true});
  const ResourceId s1 = b.addResource("S1");
  const ResourceId s2 = b.addResource("S2");
  const TaskId a = b.addTask({.name = "a", .period = 10, .phase = 3,
                              .processor = 0,
                              .body = Body{}.section(s2, 2)});
  const TaskId spoiler = b.addTask({.name = "spoiler", .period = 20,
                                    .phase = 3, .processor = 3,
                                    .body = Body{}.compute(50)});
  const TaskId bb = b.addTask({.name = "b", .period = 50, .phase = 1,
                               .processor = 1,
                               .body = Body{}.lock(s2).compute(1).lock(s1)
                                          .compute(2).unlock(s1).unlock(s2)});
  const TaskId c = b.addTask({.name = "c", .period = 100, .processor = 3,
                              .body = Body{}.section(s1, 6)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kPip, sys, {.horizon = 100});
  // c locks S1 at 0. b locks S2 at 1, blocks on S1 at 2. a blocks on S2
  // at 3. spoiler (same processor as c, higher RM priority) arrives at 3
  // but must NOT preempt c once c inherits a's priority via b.
  // c releases S1 at 6; b finishes cs by 8; a done by 10.
  EXPECT_LE(finishOf(r, a, 0), 11);
  (void)spoiler; (void)c; (void)bb;
}

}  // namespace
}  // namespace mpcp
