// Parameterized protocol x scenario matrix: the same scenario battery
// runs under every protocol, checking universal invariants (mutual
// exclusion, determinism, work conservation) regardless of which
// protocol's priority rules are in effect.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/simulate.h"
#include "taskgen/generator.h"
#include "taskgen/paper_examples.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using MatrixParam = std::tuple<ProtocolKind, int /*scenario*/>;

class ProtocolMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static TaskSystem scenario(int which) {
    switch (which) {
      case 0:
        return paper::makeExample1(10).sys;
      case 1:
        return paper::makeExample2(10).sys;
      case 2:
        return paper::makeExample3().sys;
      default: {
        WorkloadParams p;
        p.processors = 3;
        p.tasks_per_processor = 3;
        p.utilization_per_processor = 0.45;
        p.global_resources = 2;
        p.global_sharing_prob = 0.8;
        p.cs_max = 15;
        Rng rng(static_cast<std::uint64_t>(which) * 1009);
        return generateWorkload(p, rng);
      }
    }
  }
};

TEST_P(ProtocolMatrix, MutualExclusionAlwaysHolds) {
  const auto [kind, which] = GetParam();
  const TaskSystem sys = scenario(which);
  const SimResult r = simulate(kind, sys, {.horizon_cap = 100'000});
  const InvariantReport rep = checkMutualExclusion(sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST_P(ProtocolMatrix, DeterministicReplay) {
  const auto [kind, which] = GetParam();
  const TaskSystem sys = scenario(which);
  const SimResult a = simulate(kind, sys, {.horizon_cap = 60'000});
  const SimResult b = simulate(kind, sys, {.horizon_cap = 60'000});
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST_P(ProtocolMatrix, WorkConservationAndAccounting) {
  const auto [kind, which] = GetParam();
  const TaskSystem sys = scenario(which);
  const SimResult r = simulate(kind, sys, {.horizon_cap = 60'000});
  // Busy time equals executed time; every finished job's response
  // decomposes exactly into the four accounting buckets.
  Duration busy = 0, executed = 0;
  for (Duration x : r.processor_busy) busy += x;
  for (const JobRecord& jr : r.jobs) {
    executed += jr.executed;
    if (jr.finish >= 0) {
      EXPECT_EQ(jr.responseTime(),
                jr.executed + jr.blocked + jr.preempted + jr.suspended);
      EXPECT_EQ(jr.executed, sys.task(jr.id.task).wcet);
    }
  }
  EXPECT_EQ(busy, executed);
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> out;
  for (const ProtocolKind kind :
       {ProtocolKind::kNone, ProtocolKind::kNonePrio, ProtocolKind::kPip,
        ProtocolKind::kMpcp, ProtocolKind::kDpcp}) {
    for (int scenario = 0; scenario < 6; ++scenario) {
      out.emplace_back(kind, scenario);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllScenarios, ProtocolMatrix, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<MatrixParam>& param_info) {
      // NB: no structured bindings here — a comma inside [] splits the
      // INSTANTIATE macro's arguments.
      std::string name = toString(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace mpcp
