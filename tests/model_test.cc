// Task model: body construction, section extraction, TaskSystem
// validation and derivation.
#include <gtest/gtest.h>

#include "model/body.h"
#include "model/sections.h"
#include "model/task_system.h"

namespace mpcp {
namespace {

TEST(Body, FluentConstructionAndTotals) {
  const ResourceId r(0);
  const Body b = Body{}.compute(2).lock(r).compute(3).unlock(r).compute(1);
  EXPECT_EQ(b.totalCompute(), 6);
  EXPECT_EQ(b.ops().size(), 5u);
}

TEST(Body, AdjacentComputesMerge) {
  const Body b = Body{}.compute(2).compute(3);
  EXPECT_EQ(b.ops().size(), 1u);
  EXPECT_EQ(b.totalCompute(), 5);
}

TEST(Body, SectionShorthand) {
  const ResourceId r(3);
  const Body b = Body{}.section(r, 4);
  ASSERT_EQ(b.ops().size(), 3u);
  EXPECT_TRUE(std::holds_alternative<LockOp>(b.ops()[0]));
  EXPECT_TRUE(std::holds_alternative<ComputeOp>(b.ops()[1]));
  EXPECT_TRUE(std::holds_alternative<UnlockOp>(b.ops()[2]));
}

TEST(Body, RejectsNonPositiveCompute) {
  EXPECT_THROW(Body{}.compute(0), InvariantError);
  EXPECT_THROW(Body{}.compute(-3), InvariantError);
}

TEST(Sections, ExtractsFlatSections) {
  const ResourceId a(0), b(1);
  const Body body = Body{}.compute(1).section(a, 2).compute(1).section(b, 3);
  const auto sections = extractSections(body);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].resource, a);
  EXPECT_EQ(sections[0].duration, 2);
  EXPECT_EQ(sections[0].depth, 0);
  EXPECT_EQ(sections[1].resource, b);
  EXPECT_EQ(sections[1].duration, 3);
}

TEST(Sections, NestedDurationsIncludeInner) {
  const ResourceId a(0), b(1);
  const Body body = Body{}
                        .lock(a)
                        .compute(1)
                        .lock(b)
                        .compute(2)
                        .unlock(b)
                        .compute(1)
                        .unlock(a);
  const auto sections = extractSections(body);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].resource, a);
  EXPECT_EQ(sections[0].duration, 4);  // includes inner
  EXPECT_EQ(sections[0].depth, 0);
  EXPECT_EQ(sections[1].resource, b);
  EXPECT_EQ(sections[1].duration, 2);
  EXPECT_EQ(sections[1].depth, 1);
  EXPECT_EQ(sections[1].parent, 0);
}

TEST(Sections, RejectsRelock) {
  const ResourceId a(0);
  EXPECT_THROW(extractSections(Body{}.lock(a).compute(1).lock(a)),
               ConfigError);
}

TEST(Sections, RejectsImproperNesting) {
  const ResourceId a(0), b(1);
  const Body body =
      Body{}.lock(a).lock(b).compute(1).unlock(a).unlock(b);
  EXPECT_THROW(extractSections(body), ConfigError);
}

TEST(Sections, RejectsUnreleasedLock) {
  const ResourceId a(0);
  EXPECT_THROW(extractSections(Body{}.lock(a).compute(1)), ConfigError);
}

TEST(Sections, RejectsUnmatchedUnlock) {
  const ResourceId a(0);
  EXPECT_THROW(extractSections(Body{}.compute(1).unlock(a)), ConfigError);
}

TEST(TaskSystem, RejectsBadSpecs) {
  {
    TaskSystemBuilder b(1);
    b.addTask({.name = "x", .period = 0, .processor = 0,
               .body = Body{}.compute(1)});
    EXPECT_THROW(std::move(b).build(), ConfigError);
  }
  {
    TaskSystemBuilder b(1);
    b.addTask({.name = "x", .period = 10, .processor = 5,
               .body = Body{}.compute(1)});
    EXPECT_THROW(std::move(b).build(), ConfigError);
  }
  {
    TaskSystemBuilder b(1);
    b.addTask({.name = "x", .period = 10, .processor = 0, .body = Body{}});
    EXPECT_THROW(std::move(b).build(), ConfigError);
  }
  {
    TaskSystemBuilder b(1);
    b.addTask({.name = "x", .period = 10, .relative_deadline = 20,
               .processor = 0, .body = Body{}.compute(1)});
    EXPECT_THROW(std::move(b).build(), ConfigError);  // D > T
  }
  EXPECT_THROW(TaskSystemBuilder(0), ConfigError);
}

TEST(TaskSystem, RejectsEmpty) {
  TaskSystemBuilder b(2);
  EXPECT_THROW(std::move(b).build(), ConfigError);
}

TEST(TaskSystem, RejectsUndeclaredResource) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "x", .period = 10, .processor = 0,
             .body = Body{}.section(ResourceId(7), 1)});
  EXPECT_THROW(std::move(b).build(), ConfigError);
}

TEST(TaskSystem, ExplicitPrioritiesAllOrNothing) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(1), .priority = Priority(5)});
  b.addTask({.name = "b", .period = 20, .processor = 0,
             .body = Body{}.compute(1)});
  EXPECT_THROW(std::move(b).build(), ConfigError);
}

TEST(TaskSystem, ExplicitPrioritiesMustBeUnique) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(1), .priority = Priority(5)});
  b.addTask({.name = "b", .period = 20, .processor = 0,
             .body = Body{}.compute(1), .priority = Priority(5)});
  EXPECT_THROW(std::move(b).build(), ConfigError);
}

TEST(TaskSystem, DerivesScopesUsersAndHomes) {
  TaskSystemBuilder b(2);
  const ResourceId loc = b.addResource("L");
  const ResourceId glob = b.addResource("G");
  const TaskId a = b.addTask({.name = "a", .period = 10, .processor = 0,
                              .body = Body{}.section(loc, 1)
                                         .section(glob, 1)});
  const TaskId c = b.addTask({.name = "c", .period = 20, .processor = 1,
                              .body = Body{}.section(glob, 2)});
  const TaskSystem sys = std::move(b).build();
  EXPECT_EQ(sys.resource(loc).scope, ResourceScope::kLocal);
  EXPECT_EQ(sys.resource(loc).home->value(), 0);
  EXPECT_EQ(sys.resource(glob).scope, ResourceScope::kGlobal);
  EXPECT_EQ(sys.resource(glob).users.size(), 2u);
  EXPECT_TRUE(sys.hasGlobalResources());
  EXPECT_EQ(sys.tasksOn(ProcessorId(0)).size(), 1u);
  EXPECT_EQ(sys.tasksOn(ProcessorId(0))[0], a);
  (void)c;
}

TEST(TaskSystem, DefaultDeadlineEqualsPeriodAndUtilization) {
  TaskSystemBuilder b(1);
  const TaskId a = b.addTask({.name = "a", .period = 20, .processor = 0,
                              .body = Body{}.compute(5)});
  const TaskSystem sys = std::move(b).build();
  EXPECT_EQ(sys.task(a).relative_deadline, 20);
  EXPECT_DOUBLE_EQ(sys.task(a).utilization(), 0.25);
  EXPECT_DOUBLE_EQ(sys.utilizationOn(ProcessorId(0)), 0.25);
}

TEST(TaskSystem, HyperperiodIsLcm) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 4, .processor = 0,
             .body = Body{}.compute(1)});
  b.addTask({.name = "b", .period = 6, .processor = 0,
             .body = Body{}.compute(1)});
  const TaskSystem sys = std::move(b).build();
  EXPECT_EQ(sys.hyperperiod(), 12);
}

TEST(TaskSystem, GlobalBaseAboveEveryTaskPriority) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.section(g, 1)});
  b.addTask({.name = "b", .period = 20, .processor = 1,
             .body = Body{}.section(g, 1)});
  const TaskSystem sys = std::move(b).build();
  for (const Task& t : sys.tasks()) {
    EXPECT_GT(sys.globalBase(), t.priority);
  }
}

}  // namespace
}  // namespace mpcp
