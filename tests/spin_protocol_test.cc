// Spin-lock protocols (ISSUE 8): MSRP-style non-preemptive FIFO spinning
// ("spin-fifo") and priority-ordered spinning ("spin-prio"). Golden
// hand-checked 2-processor schedules, the FIFO-vs-priority grant-order
// difference, the never-yields contract (nothing else runs on a
// spinner's processor), engine-vs-reference differentials, analysis
// soundness on the golden scenario, and flat-section enforcement.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "sim/reference_spin.h"
#include "taskgen/generator.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::countEvents;
using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

// --- Golden scenario: 2 processors, one global resource --------------
// tauB (P1) holds S [1,5); tauA (P0, high) requests at t=2 and spins
// until the handoff; tauC (P0, low) must not run during the spin.
struct Golden {
  TaskId a, b, c;
  ResourceId s;
  TaskSystem sys;
};

Golden makeGolden() {
  Golden g;
  TaskSystemBuilder bld(2);
  g.s = bld.addResource("S");
  g.a = bld.addTask({.name = "tauA", .period = 100, .phase = 1,
                     .processor = 0,
                     .body = Body{}.compute(1).section(g.s, 2).compute(1)});
  g.b = bld.addTask({.name = "tauB", .period = 200, .processor = 1,
                     .body = Body{}.compute(1).section(g.s, 4).compute(1)});
  g.c = bld.addTask({.name = "tauC", .period = 400, .processor = 0,
                     .body = Body{}.compute(10)});
  g.sys = std::move(bld).build();
  return g;
}

void expectGoldenSchedule(ProtocolKind kind) {
  const Golden g = makeGolden();
  const SimResult r = simulate(kind, g.sys, {.horizon = 100});
  // tauB: compute [0,1), cs [1,5), compute [5,6).
  EXPECT_EQ(finishOf(r, g.b), 6) << toString(kind);
  // tauA: compute [1,2), spin [2,5), cs [5,7), compute [7,8).
  EXPECT_EQ(finishOf(r, g.a), 8) << toString(kind);
  EXPECT_EQ(maxBlockedOf(r, g.a), 3)
      << toString(kind) << ": spin time is blocking time";
  // Never-yields: tauC ran [0,1), then NOTHING else may use P0 until
  // tauA finishes at 8 — the spin is non-preemptive busy-waiting, so
  // tauC resumes at 8 and finishes its remaining 9 ticks at 17. If the
  // spinner yielded the processor, tauC would finish earlier.
  EXPECT_EQ(finishOf(r, g.c), 17) << toString(kind);
  // Contention is visible in the trace: one wait, one handoff, and a
  // grant for each of the two acquisitions of S.
  EXPECT_EQ(countEvents(r, Ev::kLockWait, g.a), 1) << toString(kind);
  EXPECT_EQ(countEvents(r, Ev::kLockGrant, g.a), 1) << toString(kind);
  EXPECT_EQ(countEvents(r, Ev::kHandoff), 1) << toString(kind);
  EXPECT_TRUE(checkMutualExclusion(g.sys, r).ok()) << toString(kind);
  EXPECT_FALSE(r.any_deadline_miss) << toString(kind);
}

TEST(Spin, GoldenScheduleFifo) { expectGoldenSchedule(ProtocolKind::kSpinFifo); }
TEST(Spin, GoldenSchedulePrio) { expectGoldenSchedule(ProtocolKind::kSpinPrio); }

TEST(Spin, GoldenBlockingBoundIsSound) {
  const Golden g = makeGolden();
  for (const ProtocolKind kind :
       {ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio}) {
    const ProtocolAnalysis analysis = analyzeUnder(kind, g.sys);
    const SimResult r = simulate(kind, g.sys, {.horizon = 2'000});
    // tauA observes 3 ticks of spin; the bound (remote max cs = 4, plus
    // arrival blocking) must dominate it.
    EXPECT_GE(analysis.blocking[0], maxBlockedOf(r, g.a)) << toString(kind);
    EXPECT_FALSE(r.any_deadline_miss) << toString(kind);
  }
}

// --- Grant order: FIFO vs priority -----------------------------------
// Two spinners from different processors queue behind a long holder;
// arrival order is lo-then-hi, priority order is hi-then-lo.
struct ThreeWay {
  TaskId holder, hi, lo;
  ResourceId s;
  TaskSystem sys;
};

ThreeWay makeThreeWay() {
  ThreeWay w;
  TaskSystemBuilder bld(3);
  w.s = bld.addResource("S");
  w.holder =
      bld.addTask({.name = "hold", .period = 1000, .processor = 0,
                   .body = Body{}.compute(1).section(w.s, 10).compute(1)});
  w.hi = bld.addTask({.name = "hi", .period = 100, .phase = 3,
                      .processor = 1,
                      .body = Body{}.compute(1).section(w.s, 5).compute(1)});
  w.lo = bld.addTask({.name = "lo", .period = 400, .phase = 1,
                      .processor = 2,
                      .body = Body{}.compute(1).section(w.s, 5).compute(1)});
  w.sys = std::move(bld).build();
  return w;
}

TEST(Spin, FifoGrantsInArrivalOrder) {
  const ThreeWay w = makeThreeWay();
  // lo enqueues at t=2, hi at t=4; the holder releases at 11. FIFO
  // serves lo first: lo cs [11,16) -> finish 17; hi cs [16,21) -> 22.
  const SimResult r = simulate(ProtocolKind::kSpinFifo, w.sys, {.horizon = 60});
  EXPECT_EQ(finishOf(r, w.lo), 17);
  EXPECT_EQ(finishOf(r, w.hi), 22);
}

TEST(Spin, PriorityGrantsHighestFirst) {
  const ThreeWay w = makeThreeWay();
  // Same claims, priority-ordered grant: hi jumps the queue despite
  // arriving second. hi cs [11,16) -> finish 17; lo cs [16,21) -> 22.
  const SimResult r = simulate(ProtocolKind::kSpinPrio, w.sys, {.horizon = 60});
  EXPECT_EQ(finishOf(r, w.hi), 17);
  EXPECT_EQ(finishOf(r, w.lo), 22);
}

// --- Engine vs independent tick-stepped reference --------------------

void expectMatchesReference(const TaskSystem& sys, Time horizon,
                            ProtocolKind kind, const std::string& label) {
  const SimResult engine = simulate(kind, sys, {.horizon = horizon});
  const ReferenceResult reference = simulateSpinReference(
      sys, horizon, kind == ProtocolKind::kSpinPrio);
  std::map<std::pair<std::int32_t, std::int64_t>, Time> engine_finish;
  for (const JobRecord& jr : engine.jobs) {
    engine_finish[{jr.id.task.value(), jr.id.instance}] = jr.finish;
  }
  ASSERT_EQ(engine.jobs.size(), reference.jobs.size()) << label;
  for (const ReferenceJobResult& rj : reference.jobs) {
    const auto it = engine_finish.find({rj.id.task.value(), rj.id.instance});
    ASSERT_NE(it, engine_finish.end()) << label;
    EXPECT_EQ(it->second, rj.finish)
        << label << ": " << sys.task(rj.id.task).name << "#" << rj.id.instance
        << " engine=" << it->second << " reference=" << rj.finish;
  }
  EXPECT_EQ(engine.any_deadline_miss, reference.any_deadline_miss) << label;
}

TEST(Spin, GoldenScenariosMatchReference) {
  for (const ProtocolKind kind :
       {ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio}) {
    expectMatchesReference(makeGolden().sys, 400, kind, "golden");
    expectMatchesReference(makeThreeWay().sys, 400, kind, "three-way");
  }
}

TEST(Spin, RandomWorkloadsMatchReference) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.5;
  p.period_min = 20;
  p.period_max = 200;  // small periods: the O(horizon) oracle is slow
  p.period_granularity = 10;
  p.global_resources = 2;
  p.global_sharing_prob = 0.9;
  p.cs_min = 1;
  p.cs_max = 5;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 733);
    const TaskSystem sys = generateWorkload(p, rng);
    for (const ProtocolKind kind :
         {ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio}) {
      expectMatchesReference(sys, 1'200, kind,
                             "seed " + std::to_string(seed));
    }
  }
}

TEST(Spin, SuspendingWorkloadsMatchReference) {
  // Voluntary suspensions outside critical sections are legal under the
  // spin protocols (only blocked-on-lock waiting must busy-wait).
  WorkloadParams p;
  p.processors = 2;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.4;
  p.period_min = 20;
  p.period_max = 150;
  p.period_granularity = 5;
  p.global_resources = 1;
  p.cs_max = 4;
  p.suspension_prob = 0.6;
  p.suspend_max = 8;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 547);
    const TaskSystem sys = generateWorkload(p, rng);
    for (const ProtocolKind kind :
         {ProtocolKind::kSpinFifo, ProtocolKind::kSpinPrio}) {
      expectMatchesReference(sys, 1'000, kind,
                             "susp seed " + std::to_string(seed));
    }
  }
}

// --- Flat sections only ----------------------------------------------

TEST(Spin, NestedSectionsAreRejected) {
  TaskSystemBuilder bld(1, {.allow_nested_global = true});
  const ResourceId s1 = bld.addResource("S1");
  const ResourceId s2 = bld.addResource("S2");
  bld.addTask({.name = "nest", .period = 100, .processor = 0,
               .body = Body{}
                           .compute(1)
                           .lock(s1)
                           .compute(1)
                           .lock(s2)
                           .compute(1)
                           .unlock(s2)
                           .unlock(s1)});
  const TaskSystem sys = std::move(bld).build();
  EXPECT_THROW(simulate(ProtocolKind::kSpinFifo, sys, {.horizon = 50}),
               ConfigError);
  EXPECT_THROW(simulate(ProtocolKind::kSpinPrio, sys, {.horizon = 50}),
               ConfigError);
  EXPECT_THROW(simulateSpinReference(sys, 50, false), ConfigError);
}

}  // namespace
}  // namespace mpcp
