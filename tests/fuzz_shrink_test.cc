// Trace shrinking: a hand-built violating system with deliberate chaff
// must shrink to a minimal repro that still trips the same oracle.
#include <gtest/gtest.h>

#include "fuzz/oracles.h"
#include "fuzz/shrink.h"
#include "model/serialize.h"

namespace mpcp::fuzz {
namespace {

// Core violation (under the gcs-ceiling-base mutation): two processors
// contending on G1. Tasks "noise*" and the L1/L2 sections are chaff the
// shrinker should be able to strip without losing the violation.
constexpr const char* kChaffySystem = R"(
processors 3
resource G1
resource L1
resource L2
task hi period=40 processor=0
  compute 2
  lock G1
  compute 3
  unlock G1
  compute 1
end
task noise_a period=55 processor=0
  compute 1
  section L1 4
  compute 2
end
task remote period=50 processor=1
  compute 1
  lock G1
  compute 4
  unlock G1
  compute 1
end
task noise_b period=35 processor=1
  compute 2
  section L2 3
end
task noise_c period=25 processor=2
  compute 5
end
task noise_d period=70 processor=2
  compute 9
  suspend 4
  compute 2
end
)";

StillViolates sameOracle(const std::string& protocol,
                         const std::string& oracle) {
  OracleOptions opts;
  opts.mutation = Mutation::kGcsCeilingBase;
  return [=](const TaskSystem& candidate) {
    for (const OracleFailure& f : checkSystem(candidate, opts)) {
      if (f.protocol == protocol && f.oracle == oracle) return true;
    }
    return false;
  };
}

TEST(FuzzShrink, StripsChaffButKeepsViolation) {
  const TaskSystem start = parseTaskSystemFromString(kChaffySystem);
  OracleOptions opts;
  opts.mutation = Mutation::kGcsCeilingBase;
  const std::vector<OracleFailure> failures = checkSystem(start, opts);
  ASSERT_FALSE(failures.empty());
  const OracleFailure& f = failures.front();

  const StillViolates pred = sameOracle(f.protocol, f.oracle);
  ASSERT_TRUE(pred(start));
  const ShrinkResult r = shrinkSystem(start, pred);

  EXPECT_TRUE(pred(r.system)) << "shrunk system no longer violates";
  EXPECT_GE(r.evaluations, 1);
  // The violation needs both sides of the G1 contention but none of the
  // noise tasks: the shrinker must get (at least) down to the two
  // participants. Exact minimality is not required — monotone progress is.
  EXPECT_LE(r.system.tasks().size(), 3u)
      << serializeTaskSystemToString(r.system);
  EXPECT_GE(r.system.tasks().size(), 2u);
  // Whatever survived still uses the global semaphore from both sides.
  int lockers = 0;
  for (const Task& t : r.system.tasks()) {
    for (const Op& op : t.body.ops()) {
      if (const auto* l = std::get_if<LockOp>(&op)) {
        if (r.system.isGlobal(l->resource)) {
          lockers++;
          break;
        }
      }
    }
  }
  EXPECT_GE(lockers, 2);
}

TEST(FuzzShrink, IsDeterministic) {
  const TaskSystem start = parseTaskSystemFromString(kChaffySystem);
  OracleOptions opts;
  opts.mutation = Mutation::kGcsCeilingBase;
  const OracleFailure f = checkSystem(start, opts).front();
  const StillViolates pred = sameOracle(f.protocol, f.oracle);
  const ShrinkResult a = shrinkSystem(start, pred);
  const ShrinkResult b = shrinkSystem(start, pred);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(serializeTaskSystemToString(a.system),
            serializeTaskSystemToString(b.system));
}

TEST(FuzzShrink, EvaluationBudgetIsRespected) {
  const TaskSystem start = parseTaskSystemFromString(kChaffySystem);
  OracleOptions opts;
  opts.mutation = Mutation::kGcsCeilingBase;
  const OracleFailure f = checkSystem(start, opts).front();
  const StillViolates pred = sameOracle(f.protocol, f.oracle);
  const ShrinkResult r = shrinkSystem(start, pred, /*max_evaluations=*/5);
  EXPECT_LE(r.evaluations, 5);
  EXPECT_TRUE(pred(r.system));  // partial shrink still violates
}

TEST(FuzzShrink, MutableSystemRoundTripsUnchanged) {
  const TaskSystem start = parseTaskSystemFromString(kChaffySystem);
  const MutableSystem ms = MutableSystem::fromSystem(start);
  const auto rebuilt = ms.tryBuild();
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(serializeTaskSystemToString(*rebuilt),
            serializeTaskSystemToString(start));
}

}  // namespace
}  // namespace mpcp::fuzz
