// Message-based (distributed) priority ceiling protocol behaviour.
#include <gtest/gtest.h>

#include "analysis/ceilings.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::countEvents;
using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

TEST(Dpcp, GcsExecutesOnSyncProcessor) {
  // S is bound to P2 (a dedicated sync processor); tasks on P0/P1 using S
  // must migrate their critical sections there.
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  const TaskId a = b.addTask({.name = "a", .period = 50, .processor = 0,
                              .body = Body{}.compute(1).section(s, 2)
                                         .compute(1)});
  const TaskId c = b.addTask({.name = "c", .period = 70, .processor = 1,
                              .body = Body{}.compute(2).section(s, 2)
                                         .compute(1)});
  b.assignSyncProcessor(s, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 60});
  EXPECT_GE(countEvents(r, Ev::kMigrate, a), 2);  // to P2 and back
  EXPECT_GE(countEvents(r, Ev::kMigrate, c), 2);
  // All gcs-mode execution happens on P2.
  for (const ExecSegment& seg : r.segments) {
    if (seg.mode == ExecMode::kGcs) {
      EXPECT_EQ(seg.processor.value(), 2);
    }
  }
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(Dpcp, HostProcessorFreeDuringRemoteGcs) {
  // While a's critical section runs on the sync processor, a lower-
  // priority local task must be able to use P0.
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  const TaskId a = b.addTask({.name = "a", .period = 50, .processor = 0,
                              .body = Body{}.compute(1).section(s, 4)
                                         .compute(1)});
  const TaskId local_lo = b.addTask({.name = "local_lo", .period = 100,
                                     .processor = 0,
                                     .body = Body{}.compute(4)});
  const TaskId rem = b.addTask({.name = "rem", .period = 80, .phase = 30,
                                .processor = 1,
                                .body = Body{}.section(s, 1).compute(1)});
  b.assignSyncProcessor(s, ProcessorId(1));
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 60});
  // a computes 0..1, migrates to P1 for [1,5), final tick on P0 at 5.
  // local_lo uses P0 during [1,5): finishes at 5.
  EXPECT_EQ(finishOf(r, local_lo, 0), 5);
  EXPECT_EQ(finishOf(r, a, 0), 6);
  (void)rem;
}

TEST(Dpcp, AgentsPreemptBySemaphoreCeiling) {
  // Two resources homed on P2: the one used by the higher-priority task
  // has the higher ceiling, so its agent preempts the other's.
  TaskSystemBuilder b(3);
  const ResourceId s_hot = b.addResource("HOT");
  const ResourceId s_cold = b.addResource("COLD");
  const TaskId hi = b.addTask({.name = "hi", .period = 40, .phase = 2,
                               .processor = 0,
                               .body = Body{}.compute(1).section(s_hot, 2)
                                          .compute(1)});
  const TaskId lo = b.addTask({.name = "lo", .period = 90, .processor = 1,
                               .body = Body{}.compute(1).section(s_cold, 6)
                                          .compute(1)});
  // Extra users so both resources are global.
  b.addTask({.name = "u1", .period = 100, .phase = 50, .processor = 1,
             .body = Body{}.section(s_hot, 1)});
  b.addTask({.name = "u2", .period = 110, .phase = 50, .processor = 0,
             .body = Body{}.section(s_cold, 1)});
  b.assignSyncProcessor(s_hot, ProcessorId(2));
  b.assignSyncProcessor(s_cold, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  ASSERT_GT(tables.ceiling(s_hot), tables.ceiling(s_cold));
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 60});
  // lo's agent occupies P2 from t=1. hi's agent arrives at t=3 with the
  // higher ceiling and must preempt: hi's cs runs [3,5), so hi finishes
  // at 6 instead of waiting out lo's 6-tick section.
  EXPECT_EQ(finishOf(r, hi, 0), 6);
  EXPECT_GE(countEvents(r, Ev::kPreempt, lo), 1);
}

TEST(Dpcp, QueueServedInPriorityOrder) {
  TaskSystemBuilder b(4);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "holder", .period = 200, .processor = 0,
             .body = Body{}.section(s, 10)});
  const TaskId lo = b.addTask({.name = "lo", .period = 150, .phase = 2,
                               .processor = 1,
                               .body = Body{}.section(s, 1).compute(1)});
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 6,
                               .processor = 2,
                               .body = Body{}.section(s, 1).compute(1)});
  b.addTask({.name = "spare", .period = 300, .phase = 200, .processor = 3,
             .body = Body{}.section(s, 1)});
  b.assignSyncProcessor(s, ProcessorId(3));
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 50});
  EXPECT_LT(finishOf(r, hi, 0), finishOf(r, lo, 0));
  const InvariantReport rep = checkPriorityOrderedHandoff(sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(Dpcp, DefaultSyncProcessorIsLowestUserProcessor) {
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "a", .period = 50, .processor = 2,
             .body = Body{}.section(s, 1)});
  b.addTask({.name = "b", .period = 60, .processor = 1,
             .body = Body{}.section(s, 1)});
  const TaskSystem sys = std::move(b).build();
  ASSERT_TRUE(sys.resource(s).sync_processor.has_value());
  EXPECT_EQ(sys.resource(s).sync_processor->value(), 1);
}

TEST(Dpcp, NestedGlobalAllowedOnSameSyncProcessor) {
  TaskSystemBuilder b(3, {.allow_nested_global = true});
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  const TaskId a = b.addTask(
      {.name = "a", .period = 60, .processor = 0,
       .body = Body{}.compute(1).lock(g1).compute(1).section(g2, 1)
                  .compute(1).unlock(g1).compute(1)});
  b.addTask({.name = "b", .period = 70, .phase = 20, .processor = 1,
             .body = Body{}.section(g1, 1).section(g2, 1).compute(1)});
  b.assignSyncProcessor(g1, ProcessorId(2));
  b.assignSyncProcessor(g2, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 300});
  EXPECT_GT(finishOf(r, a, 0), 0);
  EXPECT_FALSE(r.any_deadline_miss);
  const InvariantReport rep = checkMutualExclusion(sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(Dpcp, NestedGlobalAcrossSyncProcessorsRejected) {
  TaskSystemBuilder b(3, {.allow_nested_global = true});
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 60, .processor = 0,
             .body = Body{}.lock(g1).section(g2, 1).unlock(g1).compute(1)});
  b.addTask({.name = "b", .period = 70, .processor = 1,
             .body = Body{}.section(g1, 1).section(g2, 1)});
  b.assignSyncProcessor(g1, ProcessorId(1));
  b.assignSyncProcessor(g2, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  EXPECT_THROW(simulate(ProtocolKind::kDpcp, sys, {.horizon = 10}),
               ConfigError);
}

TEST(Dpcp, GcsEntriesUseTheFullCeiling) {
  // Under the message-based protocol every gcs runs at the semaphore's
  // global priority ceiling (Section 4.4 quoting [8]).
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "a", .period = 50, .processor = 0,
             .body = Body{}.compute(1).section(s, 2).compute(1)});
  b.addTask({.name = "c", .period = 70, .processor = 1,
             .body = Body{}.compute(2).section(s, 2).compute(1)});
  b.assignSyncProcessor(s, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 1000});
  const PriorityTables tables(sys);
  const InvariantReport rep = checkGcsPriorityAssignment(
      sys, r, tables, GcsPriorityRule::kMessageBased);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(Dpcp, MutualExclusionUnderContention) {
  TaskSystemBuilder b(3);
  const ResourceId s1 = b.addResource("S1");
  const ResourceId s2 = b.addResource("S2");
  b.addTask({.name = "a", .period = 7, .processor = 0,
             .body = Body{}.section(s1, 1).section(s2, 1).compute(1)});
  b.addTask({.name = "b", .period = 11, .processor = 1,
             .body = Body{}.section(s2, 2).section(s1, 1).compute(1)});
  b.addTask({.name = "c", .period = 13, .processor = 2,
             .body = Body{}.section(s1, 2).compute(1).section(s2, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 2000});
  const InvariantReport rep = checkMutualExclusion(sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

}  // namespace
}  // namespace mpcp
