// Uniprocessor Priority Ceiling Protocol properties [10]: deadlock
// avoidance, blocked-at-most-once, ceiling blocking, inheritance.
#include <gtest/gtest.h>

#include "analysis/blocking_pcp.h"
#include "analysis/ceilings.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

/// The classic crossed-locks pair: tau_hi takes S1 then S2 nested;
/// tau_lo takes S2 then S1 nested. Plain semaphores deadlock; PCP must not.
struct CrossedLocks {
  TaskId hi, lo;
  ResourceId s1, s2;
  TaskSystem sys;
};

CrossedLocks makeCrossedLocks() {
  CrossedLocks c;
  TaskSystemBuilder b(1, {.allow_nested_global = true});  // nesting is local
  c.s1 = b.addResource("S1");
  c.s2 = b.addResource("S2");
  c.hi = b.addTask({.name = "hi", .period = 50, .phase = 2, .processor = 0,
                    .body = Body{}
                                .compute(1)
                                .lock(c.s1)
                                .compute(2)
                                .lock(c.s2)
                                .compute(2)
                                .unlock(c.s2)
                                .unlock(c.s1)
                                .compute(1)});
  c.lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                    .body = Body{}
                                .compute(1)
                                .lock(c.s2)
                                .compute(2)
                                .lock(c.s1)
                                .compute(2)
                                .unlock(c.s1)
                                .unlock(c.s2)
                                .compute(1)});
  c.sys = std::move(b).build();
  return c;
}

TEST(Pcp, PlainSemaphoresDeadlockOnCrossedLocks) {
  const CrossedLocks c = makeCrossedLocks();
  const SimResult r = simulate(ProtocolKind::kNone, c.sys, {.horizon = 100});
  // hi locks S1 at t=3, requests S2 at t=5 (lo holds it since t=2);
  // lo resumes, requests S1 at t=7 -> deadlock: neither finishes.
  EXPECT_EQ(finishOf(r, c.hi, 0), -1);
  EXPECT_EQ(finishOf(r, c.lo, 0), -1);
  EXPECT_TRUE(r.any_deadline_miss);
}

TEST(Pcp, AvoidsDeadlockOnCrossedLocks) {
  const CrossedLocks c = makeCrossedLocks();
  const SimResult r = simulate(ProtocolKind::kPcp, c.sys, {.horizon = 100});
  // Ceiling of S2 is hi's priority, so hi's request for S1 at t=3 is
  // DENIED while lo holds S2 -> lo finishes both sections, then hi runs.
  EXPECT_GT(finishOf(r, c.hi, 0), 0);
  EXPECT_GT(finishOf(r, c.lo, 0), 0);
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(Pcp, CeilingBlockingEvenOnFreeSemaphore) {
  // tau_m requests free S2 while tau_lo holds S1 whose ceiling is P_hi
  // >= P_m: the request must be denied (this is what prevents multiple
  // blocking). tau_hi exists only to raise S1's ceiling.
  TaskSystemBuilder b(1);
  const ResourceId s1 = b.addResource("S1");
  const ResourceId s2 = b.addResource("S2");
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 20,
                               .processor = 0,
                               .body = Body{}.section(s1, 1)});
  const TaskId mid = b.addTask({.name = "mid", .period = 70, .phase = 2,
                                .processor = 0,
                                .body = Body{}.compute(1).section(s2, 2)});
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.compute(1).section(s1, 4)
                                          .compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kPcp, sys, {.horizon = 60});
  // lo locks S1 at t=1 (ceiling = hi's priority) and runs one cs tick.
  // mid arrives t=2, computes t=2..3 (preempting lo), requests S2 at t=3:
  // denied by S1's ceiling; lo inherits mid's priority and finishes the
  // remaining 3 cs ticks at t=6. mid then locks S2, finishing at 6+2=8.
  EXPECT_EQ(finishOf(r, mid, 0), 8);
  EXPECT_EQ(maxBlockedOf(r, mid), 3);
  (void)hi; (void)lo;
}

TEST(Pcp, BlockedAtMostOneCriticalSection) {
  // Under PCP a job that never suspends is blocked for at most ONE
  // lower-priority critical section, even with many semaphores in play.
  TaskSystemBuilder b(1);
  const ResourceId s1 = b.addResource("S1");
  const ResourceId s2 = b.addResource("S2");
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 3,
                               .processor = 0,
                               .body = Body{}.compute(1).section(s1, 1)
                                          .section(s2, 1).compute(1)});
  const TaskId m1 = b.addTask({.name = "m1", .period = 80, .phase = 1,
                               .processor = 0,
                               .body = Body{}.section(s1, 5).compute(1)});
  const TaskId m2 = b.addTask({.name = "m2", .period = 100, .processor = 0,
                               .body = Body{}.section(s2, 5).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kPcp, sys, {.horizon = 80});
  // m2 locks S2 at 0 (ceiling P_hi). m1 arrives at 1 but its S1 request
  // at 1 is denied (S2's ceiling); hi arrives at 3. hi can be blocked by
  // at most one of the 5-tick sections, never both.
  const PriorityTables tables(sys);
  const auto bounds = pcpBlocking(sys, tables);
  EXPECT_LE(maxBlockedOf(r, hi),
            bounds[static_cast<std::size_t>(hi.value())]);
  EXPECT_EQ(bounds[static_cast<std::size_t>(hi.value())], 5);
  (void)m1; (void)m2;
}

TEST(Pcp, RejectsSystemsWithGlobalResources) {
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.section(s, 1)});
  b.addTask({.name = "b", .period = 20, .processor = 1,
             .body = Body{}.section(s, 1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  EXPECT_THROW(simulate(ProtocolKind::kPcp, sys, {.horizon = 10}),
               ConfigError);
  EXPECT_THROW(pcpBlocking(sys, tables), ConfigError);
}

TEST(Pcp, MeasuredBlockingWithinAnalyticalBound) {
  // Sweep several two-semaphore uniprocessor systems; observed blocking
  // must stay within the PCP bound for every task.
  for (Duration cs = 1; cs <= 6; ++cs) {
    TaskSystemBuilder b(1);
    const ResourceId s1 = b.addResource("S1");
    const ResourceId s2 = b.addResource("S2");
    b.addTask({.name = "hi", .period = 40, .phase = 2, .processor = 0,
               .body = Body{}.compute(1).section(s1, 1).compute(1)});
    b.addTask({.name = "mid", .period = 60, .phase = 1, .processor = 0,
               .body = Body{}.compute(1).section(s2, cs).compute(1)});
    b.addTask({.name = "lo", .period = 90, .processor = 0,
               .body = Body{}.section(s1, cs).section(s2, 1).compute(1)});
    const TaskSystem sys = std::move(b).build();
    const PriorityTables tables(sys);
    const auto bounds = pcpBlocking(sys, tables);
    const SimResult r = simulate(ProtocolKind::kPcp, sys, {.horizon = 400});
    for (const Task& t : sys.tasks()) {
      EXPECT_LE(maxBlockedOf(r, t.id),
                bounds[static_cast<std::size_t>(t.id.value())])
          << t.name << " cs=" << cs;
    }
  }
}

TEST(Pcp, MutualExclusionAndOrderInvariants) {
  const CrossedLocks c = makeCrossedLocks();
  const SimResult r = simulate(ProtocolKind::kPcp, c.sys, {.horizon = 400});
  const InvariantReport rep = checkMutualExclusion(c.sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

}  // namespace
}  // namespace mpcp
