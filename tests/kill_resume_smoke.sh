#!/bin/sh
# Kill -9 the sweep driver mid-campaign, resume from the journal, and
# demand a byte-identical aggregate CSV at several thread counts — the
# ISSUE 5 acceptance scenario. $1 = mpcp_cli binary, $2 = scratch dir.
set -eu
cli="$1"
workdir="$2"
mkdir -p "$workdir"
cd "$workdir"

for threads in 1 2 4; do
  rm -f golden.csv resumed.csv partial.csv j.journal
  MPCP_THREADS=$threads "$cli" sweep --seeds 6 --seed 7 --horizon 5000 \
      --out golden.csv 2>/dev/null

  # Slow runs down so the SIGKILL lands mid-campaign; any later landing
  # (even after completion) still exercises the resume path.
  MPCP_THREADS=$threads "$cli" sweep --seeds 6 --seed 7 --horizon 5000 \
      --journal j.journal --per-run-sleep-ms 300 \
      --out partial.csv 2>/dev/null &
  pid=$!
  sleep 1
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  MPCP_THREADS=$threads "$cli" sweep --seeds 6 --seed 7 --horizon 5000 \
      --journal j.journal --resume --out resumed.csv 2>resume.err
  cmp golden.csv resumed.csv || {
    echo "FAIL: resumed CSV differs from golden at MPCP_THREADS=$threads" >&2
    exit 1
  }
  grep -q 'resumed-skips=' resume.err || {
    echo "FAIL: executor counters missing from resume stderr" >&2
    exit 1
  }
  echo "MPCP_THREADS=$threads: byte-identical after kill -9 + --resume"
done
echo OK
