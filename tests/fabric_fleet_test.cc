// End-to-end coordinator/worker fleet tests (ISSUE 9 tentpole), run
// in-process over loopback unix sockets: the coordinator loop on the
// test thread, runWorker() on std::threads, and a registered "test-v1"
// body whose closure state lets tests stage wedges and count runs.
// Covers the lease lifecycle, work-stealing from stragglers, reaping a
// wedged worker past its heartbeat deadline, garbage-connection
// quarantine, handshake rejection, and graceful degradation.
#include "exec/fabric/coordinator.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/fabric/socket.h"
#include "exec/fabric/wire.h"
#include "exec/fabric/work.h"
#include "exec/fabric/worker.h"
#include "exec/interrupt.h"

namespace mpcp::exec::fabric {
namespace {

std::string tempSock(const std::string& name) {
  // Unix socket paths are capped around 100 bytes; keep them short.
  return "unix:" + testing::TempDir() + "/fab_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::vector<std::string> makeKeys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
  return keys;
}

// Shared state for the registered test body. The registry holds the
// factory for the whole process, so tests point this at their own
// fixture state before spawning workers.
struct BodyState {
  std::atomic<int> runs{0};
  std::atomic<int> sleep_ms{0};
  // One-shot wedge: the body sleeps wedge_ms the first time it sees
  // wedge_key, silently blowing the lease deadline.
  std::string wedge_key;
  std::atomic<int> wedge_ms{0};
  std::atomic<bool> wedge_armed{false};
};

BodyState* g_body_state = nullptr;

void registerTestBody() {
  static bool once = [] {
    registerFleetBodyKind("test-v1", [](const std::string&) -> FleetBodyFn {
      return [](const std::string& key) {
        BodyState* state = g_body_state;
        if (state != nullptr) {
          state->runs.fetch_add(1);
          if (key == state->wedge_key &&
              state->wedge_armed.exchange(false)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(state->wedge_ms.load()));
          } else if (state->sleep_ms.load() > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(state->sleep_ms.load()));
          }
        }
        FleetResult r;
        r.key = key;
        r.ok = true;
        r.payload = key + ",payload";
        return r;
      };
    });
    return true;
  }();
  (void)once;
}

struct Collected {
  std::mutex mu;
  std::map<std::string, std::string> payloads;
  std::map<std::string, std::string> worker_of;
  std::vector<std::string> failures;
};

FleetConfig baseConfig(const std::string& listen, Collected* got) {
  FleetConfig c;
  c.listen = listen;
  c.spawn_workers = 0;  // tests run workers as in-process threads
  c.body_spec = "test-v1";
  c.fingerprint = "fab-test-fp";
  c.timing.heartbeat_ms = 100;
  c.timing.lease_deadline_ms = 2000;
  c.timing.handshake_timeout_ms = 2000;
  c.timing.degrade_after_ms = 60000;  // effectively off unless a test opts in
  c.timing.poll_ms = 10;
  c.log = &std::cerr;
  c.on_result = [got](const FleetResult& r) {
    std::lock_guard<std::mutex> lock(got->mu);
    got->payloads[r.key] = r.payload;
    got->worker_of[r.key] = r.worker;
  };
  c.on_fail = [got](const std::string& key, const std::string& error) {
    std::lock_guard<std::mutex> lock(got->mu);
    got->failures.push_back(key + ": " + error);
  };
  return c;
}

std::thread workerThread(const std::string& connect, const std::string& name,
                         int* exit_code) {
  return std::thread([connect, name, exit_code] {
    WorkerConfig w;
    w.connect = connect;
    w.name = name;
    w.heartbeat_ms = 100;
    w.log = &std::cerr;
    *exit_code = runWorker(w);
  });
}

class FabricFleet : public testing::Test {
 protected:
  void SetUp() override {
    ignoreSigpipe();
    registerTestBody();
    g_body_state = &state_;
  }
  void TearDown() override { g_body_state = nullptr; }
  BodyState state_;
};

TEST_F(FabricFleet, SingleWorkerCompletesAllKeysAndLeavesOnBye) {
  const std::string addr = tempSock("basic");
  Collected got;
  const FleetConfig config = baseConfig(addr, &got);

  int worker_rc = -1;
  std::thread worker = workerThread(addr, "alpha", &worker_rc);
  const FleetOutcome out = runFleet(makeKeys(8), config);
  worker.join();

  EXPECT_EQ(out.completed, 8u);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_FALSE(out.interrupted);
  EXPECT_EQ(worker_rc, 0) << "worker should exit 0 on BYE";
  EXPECT_EQ(out.counters.workers_connected, 1u);
  EXPECT_GE(out.counters.leases_granted, 8u);
  EXPECT_EQ(got.payloads.size(), 8u);
  EXPECT_EQ(got.payloads.at("k3"), "k3,payload");
  EXPECT_EQ(got.worker_of.at("k3"), "alpha");
  EXPECT_TRUE(got.failures.empty());
}

TEST_F(FabricFleet, LateWorkerStealsFromTheStraggler) {
  const std::string addr = tempSock("steal");
  Collected got;
  FleetConfig config = baseConfig(addr, &got);
  // Lease everything to the first worker in one chunk, make each run
  // slow, then bring up a second worker with nothing left to grant: the
  // only way it gets work is stealing the straggler's tail.
  const int n = 16;
  config.lease_chunk = n;
  state_.sleep_ms = 30;

  int rc_a = -1;
  int rc_b = -1;
  std::thread a = workerThread(addr, "slowpoke", &rc_a);
  std::thread b;
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    b = workerThread(addr, "thief", &rc_b);
  });
  const FleetOutcome out = runFleet(makeKeys(n), config);
  starter.join();
  a.join();
  b.join();

  EXPECT_EQ(out.completed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(out.failed, 0u);
  EXPECT_GE(out.counters.leases_stolen, 1u);
  EXPECT_EQ(rc_a, 0);
  EXPECT_EQ(rc_b, 0);
  // The thief must have actually run some of the stolen keys.
  int by_thief = 0;
  for (const auto& [key, worker] : got.worker_of) {
    by_thief += worker == "thief" ? 1 : 0;
  }
  EXPECT_GE(by_thief, 1);
}

TEST_F(FabricFleet, WedgedWorkerIsReapedAndItsKeysReassigned) {
  const std::string addr = tempSock("reap");
  Collected got;
  FleetConfig config = baseConfig(addr, &got);
  // A worker cannot heartbeat mid-body (single-threaded session), so a
  // body that outlives the lease deadline IS the wedge.
  config.timing.lease_deadline_ms = 300;
  config.lease_chunk = 1;
  state_.wedge_key = "k2";
  state_.wedge_ms = 900;
  state_.wedge_armed = true;

  int worker_rc = -1;
  std::thread worker = workerThread(addr, "wedgy", &worker_rc);
  const FleetOutcome out = runFleet(makeKeys(6), config);
  worker.join();

  EXPECT_EQ(out.completed, 6u);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_GE(out.counters.workers_reaped, 1u);
  EXPECT_GE(out.counters.leases_expired, 1u);
  // The same worker reconnects after its dropped RESULT and finishes
  // the campaign (wedge is one-shot); the regrant re-runs k2.
  EXPECT_GE(out.counters.worker_reconnects, 1u);
  EXPECT_EQ(got.payloads.size(), 6u);
  EXPECT_EQ(got.payloads.at("k2"), "k2,payload");
}

TEST_F(FabricFleet, GarbageConnectionIsQuarantinedNotFatal) {
  const std::string addr = tempSock("garbage");
  Collected got;
  const FleetConfig config = baseConfig(addr, &got);

  int worker_rc = -1;
  std::thread worker;
  std::thread attacker([&] {
    Address a;
    std::string err;
    ASSERT_TRUE(parseAddress(addr, a, err));
    // Let the coordinator come up, then open a connection that speaks
    // no protocol at all.
    int fd = -1;
    for (int i = 0; i < 100 && fd < 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      fd = connectTo(a, err);
    }
    ASSERT_GE(fd, 0) << err;
    const std::string junk = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
    (void)sendAll(fd, junk.data(), junk.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(fd);
    // Only now start the real worker, so the campaign cannot finish
    // before the garbage is seen.
    worker = workerThread(addr, "honest", &worker_rc);
  });
  const FleetOutcome out = runFleet(makeKeys(5), config);
  attacker.join();
  worker.join();

  EXPECT_EQ(out.completed, 5u);
  EXPECT_GE(out.counters.frames_rejected, 1u);
  EXPECT_EQ(worker_rc, 0);
  EXPECT_TRUE(got.failures.empty());
}

TEST_F(FabricFleet, RejectsHelloForUnknownBodyKind) {
  const std::string addr = tempSock("reject");
  Collected got;
  const FleetConfig config = baseConfig(addr, &got);

  int worker_rc = -1;
  std::thread worker;
  std::atomic<bool> saw_reject{false};
  std::thread impostor([&] {
    Address a;
    std::string err;
    ASSERT_TRUE(parseAddress(addr, a, err));
    int fd = -1;
    for (int i = 0; i < 100 && fd < 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      fd = connectTo(a, err);
    }
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(sendFrame(fd, FrameType::kHello,
                          "fabric 1\nname=impostor\nkinds=other-v9"));
    FrameDecoder decoder;
    char buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline && !saw_reject) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      decoder.feed(buf, static_cast<std::size_t>(n));
      for (;;) {
        const FrameDecoder::Result r = decoder.next();
        if (r.status != FrameDecoder::Status::kFrame) break;
        if (r.frame.type == FrameType::kReject) saw_reject = true;
      }
    }
    ::close(fd);
    worker = workerThread(addr, "honest", &worker_rc);
  });
  const FleetOutcome out = runFleet(makeKeys(4), config);
  impostor.join();
  worker.join();

  EXPECT_EQ(out.completed, 4u);
  EXPECT_TRUE(saw_reject.load());
  EXPECT_GE(out.counters.handshake_rejects, 1u);
  EXPECT_EQ(worker_rc, 0);
}

TEST_F(FabricFleet, DegradesToLocalDrainWhenNoWorkersArrive) {
  const std::string addr = tempSock("degrade");
  Collected got;
  FleetConfig config = baseConfig(addr, &got);
  config.timing.degrade_after_ms = 100;
  config.local_fn = [](const std::string& key) {
    FleetResult r;
    r.key = key;
    r.ok = true;
    r.payload = key + ",local";
    return r;
  };

  const FleetOutcome out = runFleet(makeKeys(5), config);
  EXPECT_EQ(out.completed, 5u);
  EXPECT_EQ(out.counters.degraded_local_runs, 5u);
  EXPECT_EQ(got.payloads.at("k0"), "k0,local");
  EXPECT_EQ(got.worker_of.at("k0"), "local");
}

TEST_F(FabricFleet, ChaoticNetworkStillCompletesEveryKey) {
  // Chaos on BOTH sides of every link (ISSUE 10): duplicated, reordered,
  // delayed, and dropped frames. Rates are hostile but survivable; the
  // invariant is completion with every payload intact, courtesy of
  // reaping, requeue, and idempotent RESULT handling.
  const std::string addr = tempSock("chaos");
  Collected got;
  FleetConfig config = baseConfig(addr, &got);
  config.chaos =
      parseChaosSchedule("seed:5,drop:*:50,dup:*:120,reorder:*:100,"
                         "delay:*:10:300");
  config.max_attempts = 10;

  int rc_a = -1;
  int rc_b = -1;
  std::thread a([&] {
    WorkerConfig w;
    w.connect = addr;
    w.name = "stormy";
    w.heartbeat_ms = 100;
    w.chaos = config.chaos;
    w.log = &std::cerr;
    rc_a = runWorker(w);
  });
  std::thread b = workerThread(addr, "clearsky", &rc_b);
  const FleetOutcome out = runFleet(makeKeys(12), config);
  a.join();
  b.join();

  EXPECT_EQ(out.completed, 12u);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_EQ(got.payloads.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    const std::string k = "k" + std::to_string(i);
    EXPECT_EQ(got.payloads.at(k), k + ",payload");
  }
  // The coordinator folded its links' chaos stats into the counters.
  const std::uint64_t injected =
      out.counters.chaos_dropped + out.counters.chaos_delayed +
      out.counters.chaos_duplicated + out.counters.chaos_reordered;
  EXPECT_GE(injected, 1u);
}

TEST_F(FabricFleet, HeartbeatingLeaseHoarderIsReapedForNoProgress) {
  // A raw-wire "worker" that handshakes, accepts a LEASE, then
  // heartbeats forever without ever sending RESULT. Heartbeats keep it
  // past the silence reap; only the no-progress reap (ISSUE 10) can
  // recover its key. Deterministic: no chaos, no timing races beyond
  // the deadline itself.
  const std::string addr = tempSock("hoard");
  Collected got;
  FleetConfig config = baseConfig(addr, &got);
  config.timing.lease_deadline_ms = 400;
  config.lease_chunk = 1;

  std::atomic<bool> hoarder_leased{false};
  int honest_rc = -1;
  std::thread honest;
  std::thread hoarder([&] {
    Address a;
    std::string err;
    ASSERT_TRUE(parseAddress(addr, a, err));
    int fd = -1;
    for (int i = 0; i < 100 && fd < 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      fd = connectTo(a, err);
    }
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(sendFrame(fd, FrameType::kHello,
                          "fabric 1\nname=hoarder\nkinds=test-v1"));
    FrameDecoder decoder;
    char buf[4096];
    auto last_hb = std::chrono::steady_clock::now();
    for (;;) {
      // Heartbeat at 100ms; never answer the lease.
      if (std::chrono::steady_clock::now() - last_hb >
          std::chrono::milliseconds(100)) {
        if (!sendFrame(fd, FrameType::kHeartbeat, "")) break;
        last_hb = std::chrono::steady_clock::now();
      }
      struct timeval tv = {0, 20000};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n == 0) break;  // reaped: coordinator hung up on us
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        break;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
      for (;;) {
        const FrameDecoder::Result r = decoder.next();
        if (r.status != FrameDecoder::Status::kFrame) break;
        if (r.frame.type == FrameType::kLease) {
          if (!hoarder_leased.exchange(true)) {
            // Only now let the honest worker in, so the hoarder is
            // guaranteed to have claimed a key first.
            honest = workerThread(addr, "honest", &honest_rc);
          }
        }
        if (r.frame.type == FrameType::kBye) {
          ::close(fd);
          return;
        }
      }
    }
    ::close(fd);
  });

  const FleetOutcome out = runFleet(makeKeys(6), config);
  hoarder.join();
  honest.join();

  EXPECT_EQ(out.completed, 6u);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_TRUE(hoarder_leased.load());
  EXPECT_GE(out.counters.no_progress_reaps, 1u);
  EXPECT_EQ(got.payloads.size(), 6u);
  EXPECT_EQ(honest_rc, 0);
}

TEST_F(FabricFleet, WorkerGivesUpAfterMaxReconnectAttempts) {
  // Permanently-gone coordinator (ISSUE 10 satellite): nobody listens at
  // the address, so the worker burns its capped backoff attempts and
  // exits 1 instead of spinning forever.
  WorkerConfig w;
  w.connect = tempSock("nobody-home");
  w.name = "orphan";
  w.reconnect = RetryPolicy{2, std::chrono::milliseconds(10),
                            std::chrono::milliseconds(20), 0};
  w.log = &std::cerr;
  EXPECT_EQ(runWorker(w), 1);
}

TEST_F(FabricFleet, EmptyKeysetFinishesImmediately) {
  Collected got;
  const FleetConfig config = baseConfig(tempSock("empty"), &got);
  const FleetOutcome out = runFleet({}, config);
  EXPECT_EQ(out.completed, 0u);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_FALSE(out.interrupted);
}

}  // namespace
}  // namespace mpcp::exec::fabric
