// Rendering and misc plumbing: report tables, Gantt options, protocol
// factory, engine accounting fields.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/paper_examples.h"
#include "trace/gantt.h"

namespace mpcp {
namespace {

TEST(Report, CeilingTableShowsBandsSymbolically) {
  const paper::Example3 ex = paper::makeExample3();
  const PriorityTables tables(ex.sys);
  const std::string table = renderCeilingTable(ex.sys, tables);
  EXPECT_NE(table.find("S4"), std::string::npos);
  EXPECT_NE(table.find("P_G+7"), std::string::npos);  // ceiling(S4)
  EXPECT_NE(table.find("local"), std::string::npos);
  EXPECT_NE(table.find("global"), std::string::npos);
  EXPECT_NE(table.find("tau1,tau3,tau5"), std::string::npos);  // users
}

TEST(Report, GcsPriorityTableListsEachTaskResourcePairOnce) {
  const paper::Example3 ex = paper::makeExample3();
  const PriorityTables tables(ex.sys);
  const std::string table = renderGcsPriorityTable(ex.sys, tables);
  // tau1 uses S4 once; tau2 uses S5 once -> exactly 6 data rows.
  int rows = 0;
  std::istringstream is(table);
  std::string line;
  while (std::getline(is, line)) {
    rows += line.rfind("tau", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(rows, 6);
}

TEST(Report, ScheduleReportContainsVerdicts) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "easy", .period = 100, .processor = 0,
             .body = Body{}.compute(10)});
  const TaskSystem sys = std::move(b).build();
  const ProtocolAnalysis a = analyzeUnder(ProtocolKind::kMpcp, sys);
  const std::string report = renderScheduleReport(sys, a.report);
  EXPECT_NE(report.find("easy"), std::string::npos);
  EXPECT_NE(report.find("SCHEDULABLE"), std::string::npos);
  EXPECT_NE(report.find("LL-bound"), std::string::npos);
}

TEST(Factory, AllKindsConstructible) {
  const paper::Example3 ex = paper::makeExample3();
  const PriorityTables tables(ex.sys);
  for (const ProtocolKind kind :
       {ProtocolKind::kNone, ProtocolKind::kNonePrio, ProtocolKind::kPip,
        ProtocolKind::kMpcp, ProtocolKind::kDpcp}) {
    const auto protocol = makeProtocol(kind, ex.sys, tables);
    ASSERT_NE(protocol, nullptr) << toString(kind);
    EXPECT_NE(std::string(protocol->name()), "");
  }
  // kPcp must refuse the multiprocessor system.
  EXPECT_THROW(makeProtocol(ProtocolKind::kPcp, ex.sys, tables),
               ConfigError);
}

TEST(Gantt, WindowingAndGrouping) {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 100});
  const std::string windowed =
      renderGantt(ex.sys, r, {.begin = 10, .end = 20});
  // Ruler starts at the window, not at zero.
  EXPECT_NE(windowed.find("10"), std::string::npos);
  const std::string flat = renderGantt(
      ex.sys, r, {.end = 20, .group_by_processor = false});
  EXPECT_EQ(flat.find("--- P0 ---"), std::string::npos);
  const std::string grouped = renderGantt(ex.sys, r, {.end = 20});
  EXPECT_NE(grouped.find("--- P2 ---"), std::string::npos);
}

TEST(Engine, ProcessorBusyConservation) {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 500});
  Duration busy_total = 0;
  for (Duration b : r.processor_busy) busy_total += b;
  Duration executed_total = 0;
  for (const JobRecord& jr : r.jobs) executed_total += jr.executed;
  EXPECT_EQ(busy_total, executed_total);
  EXPECT_EQ(r.processor_busy.size(), 3u);
}

TEST(Engine, ResponsePlusWaitDecomposition) {
  // For every finished job: response = executed + blocked + preempted +
  // suspended (the attribution is exhaustive and disjoint).
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys,
                               {.horizon = 2'000});
  for (const JobRecord& jr : r.jobs) {
    if (jr.finish < 0) continue;
    EXPECT_EQ(jr.responseTime(),
              jr.executed + jr.blocked + jr.preempted + jr.suspended)
        << jr.id;
  }
}

TEST(Analyzer, PaperLiteralOptionFlowsThrough) {
  const paper::Example3 ex = paper::makeExample3();
  const AnalyzerOptions literal{{.paper_literal_factor5 = true}, {}};
  const ProtocolAnalysis a = analyzeUnder(ProtocolKind::kMpcp, ex.sys);
  const ProtocolAnalysis b =
      analyzeUnder(ProtocolKind::kMpcp, ex.sys, literal);
  for (std::size_t i = 0; i < a.blocking.size(); ++i) {
    EXPECT_LE(a.blocking[i], b.blocking[i]);
  }
}

}  // namespace
}  // namespace mpcp
