// FaultPlan unit tests: text grammar round-trips, named-field
// validation, compute-op stretching semantics, and the containment
// policy parser. The injection *behavior* (what the engine does with a
// plan) lives in fault_containment_test.cc.
#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "fault/plan.h"
#include "model/task_system.h"
#include "taskgen/generator.h"

namespace mpcp {
namespace {

using fault::ContainmentConfig;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::MissAction;
using fault::formatPlan;
using fault::parsePlan;

/// Two processors sharing G; L is local to P0.
TaskSystem twoProcSystem() {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const ResourceId l = b.addResource("L");
  b.addTask({.name = "tau1", .period = 100, .processor = 0,
             .body = Body{}.compute(2).section(g, 3).section(l, 1)});
  b.addTask({.name = "tau2", .period = 200, .processor = 1,
             .body = Body{}.compute(1).section(g, 2).compute(1)});
  return std::move(b).build();
}

TEST(FaultPlan, ParseFormatRoundTrip) {
  const TaskSystem sys = twoProcSystem();
  const std::string text =
      "wcet:tau1:*:x2.5,cs:tau2:0:G:x1.5+3,stuck:tau1:1:G,"
      "jitter:tau2:*:+7,stall:P1:100:50";
  const FaultPlan plan = parsePlan(text, sys);
  ASSERT_EQ(plan.specs.size(), 5u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kWcetOverrun);
  EXPECT_EQ(plan.specs[0].instance, -1);
  EXPECT_DOUBLE_EQ(plan.specs[0].factor, 2.5);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kCsOverrun);
  EXPECT_EQ(plan.specs[1].resource, ResourceId(0));
  EXPECT_EQ(plan.specs[1].delta, 3);
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kStuckHolder);
  EXPECT_EQ(plan.specs[2].instance, 1);
  EXPECT_EQ(plan.specs[3].kind, FaultKind::kReleaseJitter);
  EXPECT_EQ(plan.specs[3].delta, 7);
  EXPECT_EQ(plan.specs[4].kind, FaultKind::kProcStall);
  EXPECT_EQ(plan.specs[4].processor, ProcessorId(1));

  // The canonical rendering survives another parse/format cycle exactly
  // (the repro-file contract: headers are single whitespace-free tokens).
  const std::string canon = formatPlan(plan, sys);
  EXPECT_EQ(canon.find(' '), std::string::npos);
  EXPECT_EQ(formatPlan(parsePlan(canon, sys), sys), canon);
}

TEST(FaultPlan, ParseAcceptsBareIndices) {
  const TaskSystem sys = twoProcSystem();
  const FaultPlan plan = parsePlan("stuck:0:*:1", sys);
  ASSERT_EQ(plan.specs.size(), 1u);
  EXPECT_EQ(plan.specs[0].task, TaskId(0));
  EXPECT_EQ(plan.specs[0].resource, ResourceId(1));
}

TEST(FaultPlan, ParseRejectsBadInput) {
  const TaskSystem sys = twoProcSystem();
  EXPECT_THROW((void)parsePlan("melt:tau1:*", sys), ConfigError);
  EXPECT_THROW((void)parsePlan("wcet:tau1:*", sys), ConfigError);     // arity
  EXPECT_THROW((void)parsePlan("wcet:tau1:*:2.5", sys), ConfigError); // no 'x'
  EXPECT_THROW((void)parsePlan("jitter:tau2:*:7", sys), ConfigError); // no '+'
  EXPECT_THROW((void)parsePlan("wcet:tau9:*:x2", sys), ConfigError);  // task
}

TEST(FaultPlan, ValidateNamesTheBadField) {
  const TaskSystem sys = twoProcSystem();
  const auto expectError = [&](FaultSpec s, const char* needle) {
    FaultPlan p;
    p.specs.push_back(s);
    try {
      p.validate(sys);
      FAIL() << "expected ConfigError mentioning '" << needle << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expectError({.kind = FaultKind::kWcetOverrun, .task = TaskId(7),
               .factor = 2.0},
              "task");
  expectError({.kind = FaultKind::kWcetOverrun, .task = TaskId(0),
               .factor = 0.5},
              "factor");
  expectError({.kind = FaultKind::kWcetOverrun, .task = TaskId(0),
               .factor = 1.0, .delta = 0},
              "injects nothing");
  expectError({.kind = FaultKind::kCsOverrun, .task = TaskId(0),
               .resource = ResourceId(9), .factor = 2.0},
              "resource");
  expectError({.kind = FaultKind::kReleaseJitter, .task = TaskId(0),
               .delta = 0},
              "delta");
  expectError({.kind = FaultKind::kProcStall, .processor = ProcessorId(5),
               .length = 10},
              "processor");
  expectError({.kind = FaultKind::kProcStall, .processor = ProcessorId(0),
               .length = 0},
              "length");
}

TEST(FaultPlan, ComputeEffectStretchesOutsideAndInsideSections) {
  const TaskSystem sys = twoProcSystem();
  FaultPlan plan = parsePlan("wcet:tau1:*:x2+5,cs:tau1:*:G:x3", sys);

  // Outside any section: WCET factor applies, delta only when allowed.
  const auto out = plan.computeEffect(TaskId(0), 0, 10, ResourceId{}, true);
  EXPECT_EQ(out.duration, 25);  // 10*2 + 5
  EXPECT_TRUE(out.delta_used);
  EXPECT_EQ(out.kinds, fault::bitOf(FaultKind::kWcetOverrun));
  const auto no_delta =
      plan.computeEffect(TaskId(0), 0, 10, ResourceId{}, false);
  EXPECT_EQ(no_delta.duration, 20);
  EXPECT_FALSE(no_delta.delta_used);

  // Inside G: only the cs spec fires; inside L: neither does.
  const auto in_g = plan.computeEffect(TaskId(0), 0, 3, ResourceId(0), true);
  EXPECT_EQ(in_g.duration, 9);
  EXPECT_EQ(in_g.kinds, fault::bitOf(FaultKind::kCsOverrun));
  const auto in_l = plan.computeEffect(TaskId(0), 0, 3, ResourceId(1), true);
  EXPECT_EQ(in_l.duration, 3);
  EXPECT_EQ(in_l.kinds, 0u);

  // Wrong task / wrong instance: untouched.
  FaultPlan one = parsePlan("wcet:tau1:2:x2", sys);
  EXPECT_EQ(one.computeEffect(TaskId(0), 0, 10, ResourceId{}, true).duration,
            10);
  EXPECT_EQ(one.computeEffect(TaskId(0), 2, 10, ResourceId{}, true).duration,
            20);
  EXPECT_EQ(one.computeEffect(TaskId(1), 2, 10, ResourceId{}, true).duration,
            10);
}

TEST(FaultPlan, StuckJitterStallQueries) {
  const TaskSystem sys = twoProcSystem();
  const FaultPlan plan =
      parsePlan("stuck:tau1:1:G,jitter:tau2:0:+9,stall:P0:100:50", sys);
  EXPECT_TRUE(plan.stuckAt(TaskId(0), 1, ResourceId(0)));
  EXPECT_FALSE(plan.stuckAt(TaskId(0), 0, ResourceId(0)));
  EXPECT_FALSE(plan.stuckAt(TaskId(0), 1, ResourceId(1)));
  EXPECT_EQ(plan.releaseJitter(TaskId(1), 0), 9);
  EXPECT_EQ(plan.releaseJitter(TaskId(1), 1), 0);
  EXPECT_FALSE(plan.stalled(ProcessorId(0), 99));
  EXPECT_TRUE(plan.stalled(ProcessorId(0), 100));
  EXPECT_TRUE(plan.stalled(ProcessorId(0), 149));
  EXPECT_FALSE(plan.stalled(ProcessorId(0), 150));
  EXPECT_FALSE(plan.stalled(ProcessorId(1), 120));
  EXPECT_EQ(plan.nextStallBoundary(0), 100);
  EXPECT_EQ(plan.nextStallBoundary(100), 150);
  EXPECT_EQ(plan.nextStallBoundary(150), kTimeInfinity);
  EXPECT_TRUE(plan.hasStalls());
  EXPECT_FALSE(plan.mirrorable());
  EXPECT_TRUE(parsePlan("stuck:tau1:*:*", sys).mirrorable());
}

TEST(FaultPlan, RandomPlansValidate) {
  WorkloadParams params;
  params.processors = 3;
  params.tasks_per_processor = 2;
  params.global_resources = 2;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const TaskSystem sys = generateWorkload(params, rng);
    const FaultPlan plan = FaultPlan::random(rng, sys, 4);
    EXPECT_EQ(plan.specs.size(), 4u);
    EXPECT_NO_THROW(plan.validate(sys)) << "seed " << seed;
    // random() -> format -> parse must round-trip too.
    const std::string text = formatPlan(plan, sys);
    EXPECT_EQ(formatPlan(parsePlan(text, sys), sys), text);
  }
}

TEST(ContainmentConfig, FromNames) {
  EXPECT_FALSE(fault::containmentFromNames("none", 1.0, 500).any());
  EXPECT_FALSE(fault::containmentFromNames("", 1.0, 500).any());

  const ContainmentConfig cc = fault::containmentFromNames(
      "budget-enforce,watchdog,skip-next-release", 1.5, 250);
  EXPECT_TRUE(cc.budget_enforce);
  EXPECT_DOUBLE_EQ(cc.grace, 1.5);
  EXPECT_EQ(cc.holder_watchdog, 250);
  EXPECT_EQ(cc.on_miss, MissAction::kSkipNextRelease);
  EXPECT_TRUE(cc.any());

  EXPECT_THROW(
      (void)fault::containmentFromNames("job-abort,skip-next-release", 1.0,
                                        500),
      ConfigError);
  EXPECT_THROW((void)fault::containmentFromNames("frobnicate", 1.0, 500),
               ConfigError);
  EXPECT_THROW((void)fault::containmentFromNames("watchdog", 1.0, 0),
               ConfigError);
  EXPECT_THROW((void)fault::containmentFromNames("budget-enforce", 0.0, 500),
               ConfigError);
}

TEST(ModelValidation, BuilderNamesBadFields) {
  // Satellite of the fault work: malformed systems fail at build() with
  // the offending task named, so CLI/fuzz inputs never reach the engine.
  const auto expectError = [](auto&& mutate, const char* needle) {
    TaskSystemBuilder b(2);
    const ResourceId g = b.addResource("G");
    mutate(b, g);
    try {
      (void)std::move(b).build();
      FAIL() << "expected ConfigError mentioning '" << needle << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expectError(
      [](TaskSystemBuilder& b, ResourceId) {
        b.addTask({.name = "bad", .period = 0, .processor = 0,
                   .body = Body{}.compute(1)});
      },
      "period");
  expectError(
      [](TaskSystemBuilder& b, ResourceId) {
        b.addTask({.name = "bad", .period = 10, .processor = 5,
                   .body = Body{}.compute(1)});
      },
      "processor");
  expectError(
      [](TaskSystemBuilder& b, ResourceId) {
        b.addTask({.name = "bad", .period = 10, .processor = 0,
                   .body = Body{}});
      },
      "compute");
  expectError(
      [](TaskSystemBuilder& b, ResourceId) {
        b.addTask({.name = "bad", .period = 10, .processor = 0,
                   .body = Body{}.section(ResourceId(3), 2)});
      },
      "undeclared resource");
}

}  // namespace
}  // namespace mpcp
