// Hyperbolic bound extension: known values, dominance over Theorem 3,
// and soundness against the simulator.
#include <gtest/gtest.h>

#include "analysis/schedulability.h"
#include "common/rng.h"
#include "core/analyzer.h"
#include "core/simulate.h"
#include "taskgen/generator.h"

namespace mpcp {
namespace {

TEST(Hyperbolic, KnownValuesWithoutBlocking) {
  // Two tasks with U1=U2=0.41: product (1.41)^2 = 1.9881 <= 2 -> accept,
  // although the LL bound (0.828) rejects the 0.82 sum only marginally
  // accepts... use a case where they differ: U1=U2=0.45: sum 0.90 > 0.828
  // (LL rejects) but product 1.45^2 = 2.1025 > 2 (HB rejects too).
  // U1=0.5, U2=0.3: product 1.5*1.3 = 1.95 <= 2 accept; sum 0.8 < 0.828
  // accept. U1=0.6,U2=0.25: sum 0.85 > 0.828 LL rejects; product
  // 1.6*1.25 = 2.0 -> HB accepts (the classic dominance example).
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(6)});  // U = 0.6
  b.addTask({.name = "c", .period = 40, .processor = 0,
             .body = Body{}.compute(10)});  // U = 0.25
  const TaskSystem sys = std::move(b).build();
  const std::vector<Duration> zero(2, 0);
  const auto ll = analyzeSchedulability(sys, zero);
  EXPECT_FALSE(ll.ll_all);                  // 0.85 > 0.828
  EXPECT_TRUE(hyperbolicAll(sys, zero));    // 1.6 * 1.25 = 2.0
}

TEST(Hyperbolic, BlockingTermCounts) {
  TaskSystemBuilder b(1);
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.compute(5)});  // U = 0.5
  const TaskSystem sys = std::move(b).build();
  const std::vector<Duration> none{0};
  EXPECT_TRUE(hyperbolicAll(sys, none));  // 1.5 <= 2
  const std::vector<Duration> heavy{6};   // + 0.6 -> 2.1 > 2
  EXPECT_FALSE(hyperbolicAll(sys, heavy));
}

TEST(Hyperbolic, DominatesTheoremThreeOnRandomSystems) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 4;
  for (double util : {0.5, 0.7, 0.85}) {
    p.utilization_per_processor = util;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      Rng rng(seed * 53 + static_cast<std::uint64_t>(util * 100));
      const TaskSystem sys = generateWorkload(p, rng);
      const ProtocolAnalysis a = analyzeUnder(ProtocolKind::kMpcp, sys);
      if (a.report.ll_all) {
        EXPECT_TRUE(hyperbolicAll(sys, a.blocking))
            << "LL accepted but HB rejected (dominance violated), seed "
            << seed << " util " << util;
      }
    }
  }
}

TEST(Hyperbolic, AcceptedSystemsSimulateMissFree) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.55;
  p.cs_max = 20;
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 97);
    const TaskSystem sys = generateWorkload(p, rng);
    const ProtocolAnalysis a = analyzeUnder(ProtocolKind::kMpcp, sys);
    if (!hyperbolicAll(sys, a.blocking)) continue;
    ++accepted;
    const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                 {.horizon_cap = 300'000,
                                  .record_trace = false});
    EXPECT_FALSE(r.any_deadline_miss) << "seed " << seed;
  }
  EXPECT_GT(accepted, 3) << "sweep too weak";
}

}  // namespace
}  // namespace mpcp
