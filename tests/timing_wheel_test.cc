#include "sim/timing_wheel.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mpcp {
namespace {

// Reference model: a multimap from time to payloads. Drain order within a
// tick is not part of the wheel's contract (callers sort), so comparisons
// sort both sides.
class ReferenceQueue {
 public:
  void schedule(Time t, int p) { entries_.emplace(t, p); }
  [[nodiscard]] Time earliest() const {
    return entries_.empty() ? kTimeInfinity : entries_.begin()->first;
  }
  std::vector<int> drainAt(Time t) {
    std::vector<int> out;
    auto [lo, hi] = entries_.equal_range(t);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
    entries_.erase(lo, hi);
    return out;
  }
  bool cancel(Time t, int p) {
    auto [lo, hi] = entries_.equal_range(t);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == p) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::multimap<Time, int> entries_;
};

TEST(TimingWheel, SameTickBatchDrain) {
  TimingWheel<int> w;
  w.schedule(5, 1);
  w.schedule(5, 2);
  w.schedule(5, 3);
  w.schedule(7, 4);
  EXPECT_EQ(w.earliest(), 5);
  EXPECT_EQ(w.size(), 4u);

  std::vector<int> out;
  w.drainAt(5, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(w.earliest(), 7);

  w.drainAt(6, out);  // empty tick between events
  EXPECT_TRUE(out.empty());
  w.drainAt(7, out);
  EXPECT_EQ(out, (std::vector<int>{4}));
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.earliest(), kTimeInfinity);
}

TEST(TimingWheel, OverflowBeyondWindowMigratesBack) {
  TimingWheel<int> w;
  const Time far = static_cast<Time>(TimingWheel<int>::kSlots) * 3 + 17;
  w.schedule(far, 42);
  w.schedule(2, 7);
  EXPECT_EQ(w.earliest(), 2);

  std::vector<int> out;
  w.drainAt(2, out);
  EXPECT_EQ(out, (std::vector<int>{7}));
  EXPECT_EQ(w.earliest(), far);

  // Jump the window straight past the overflow threshold.
  w.drainAt(far - 1, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(w.earliest(), far);
  w.drainAt(far, out);
  EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(TimingWheel, SlotAliasingKeepsDistinctTimesApart) {
  // Two times that map to the same ring slot must never mix: the second
  // one sits in overflow until the window reaches it.
  TimingWheel<int> w;
  const Time later = static_cast<Time>(TimingWheel<int>::kSlots) + 3;
  w.schedule(3, 1);
  w.schedule(later, 2);
  std::vector<int> out;
  w.drainAt(3, out);
  EXPECT_EQ(out, (std::vector<int>{1}));
  EXPECT_EQ(w.earliest(), later);
  w.drainAt(later, out);
  EXPECT_EQ(out, (std::vector<int>{2}));
}

TEST(TimingWheel, CancelRingAndOverflow) {
  TimingWheel<int> w;
  const Time far = static_cast<Time>(TimingWheel<int>::kSlots) * 2;
  w.schedule(10, 1);
  w.schedule(10, 2);
  w.schedule(far, 3);

  EXPECT_TRUE(w.cancel(10, [](int p) { return p == 1; }));
  EXPECT_FALSE(w.cancel(10, [](int p) { return p == 1; }));  // already gone
  EXPECT_TRUE(w.cancel(far, [](int p) { return p == 3; }));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.earliest(), 10);

  std::vector<int> out;
  w.drainAt(10, out);
  EXPECT_EQ(out, (std::vector<int>{2}));
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, RandomizedAgainstReferenceHeap) {
  // 10k random schedule/drain/cancel operations, advancing time like the
  // engine does (always draining at the earliest pending tick).
  TimingWheel<int> w;
  ReferenceQueue ref;
  Rng rng(20'260'808);
  Time now = 0;
  int next_payload = 0;

  for (int step = 0; step < 10'000; ++step) {
    const std::int64_t dice = rng.uniformInt(0, 99);
    if (dice < 55) {
      // Mixed horizon: mostly near, sometimes far beyond the window.
      const Time dt =
          dice < 45 ? rng.uniformInt(0, 299)
                    : rng.uniformInt(0, TimingWheel<int>::kSlots * 4 - 1);
      w.schedule(now + dt, next_payload);
      ref.schedule(now + dt, next_payload);
      ++next_payload;
    } else if (dice < 75 && ref.size() > 0) {
      // Cancel a pseudo-random pending entry.
      const Time t = ref.earliest();
      std::vector<int> peek = ref.drainAt(t);
      for (int p : peek) ref.schedule(t, p);  // put them back
      const int victim = peek[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(peek.size()) - 1))];
      EXPECT_TRUE(w.cancel(t, [&](int p) { return p == victim; }));
      EXPECT_TRUE(ref.cancel(t, victim));
    } else {
      // Advance to the earliest tick and batch-drain it.
      ASSERT_EQ(w.earliest(), ref.earliest());
      if (ref.size() == 0) continue;
      now = ref.earliest();
      std::vector<int> got;
      w.drainAt(now, got);
      std::vector<int> want = ref.drainAt(now);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "divergence at t=" << now;
    }
    ASSERT_EQ(w.size(), ref.size());
  }

  // Drain everything left and compare.
  while (ref.size() > 0) {
    ASSERT_EQ(w.earliest(), ref.earliest());
    now = ref.earliest();
    std::vector<int> got;
    w.drainAt(now, got);
    std::vector<int> want = ref.drainAt(now);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want);
  }
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, ReserveKeepsSchedulingAllocationFree) {
  TimingWheel<int> w;
  w.reserve(64);
  // Churn far more than 64 entries through, but never more than 64 live:
  // the free list must recycle nodes instead of growing storage.
  std::vector<int> out;
  Time now = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      w.schedule(now + 1 + i % 7, i);
    }
    while (!w.empty()) {
      now = w.earliest();
      w.drainAt(now, out);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace mpcp
