// Exhaustive phasing sweeps on small systems: the analytical bounds must
// hold for EVERY release phasing, not just the synchronous one the other
// tests use. This is the strongest evidence the simulator + analysis pair
// is coherent — an unsound bound or an engine ordering bug tends to show
// up at some odd phasing.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::maxBlockedOf;

/// 2 processors, 3 tasks, one global + one local semaphore; phases of
/// tau2/tau3 swept over a full small period grid.
TaskSystem buildPhased(Time phase2, Time phase3) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  const ResourceId l = b.addResource("L");
  b.addTask({.name = "tau1", .period = 12, .processor = 0,
             .body = Body{}.compute(1).section(g, 2).compute(1)});
  b.addTask({.name = "tau2", .period = 18, .phase = phase2, .processor = 0,
             .body = Body{}.compute(1).section(l, 2).section(g, 3)
                        .compute(1)});
  b.addTask({.name = "tau3", .period = 24, .phase = phase3, .processor = 1,
             .body = Body{}.compute(2).section(g, 4).compute(1)});
  // tau4 makes L's ceiling reach tau1 (uses both semaphores, low prio).
  b.addTask({.name = "tau4", .period = 36, .phase = 1, .processor = 0,
             .body = Body{}.section(l, 2).compute(1)});
  return std::move(b).build();
}

TEST(PhasingSweep, MpcpBoundsHoldForEveryPhasing) {
  // Analysis is phase-independent: compute once.
  const TaskSystem reference = buildPhased(0, 0);
  const ProtocolAnalysis analysis =
      analyzeUnder(ProtocolKind::kMpcp, reference);

  int runs = 0;
  for (Time p2 = 0; p2 < 18; p2 += 2) {
    for (Time p3 = 0; p3 < 24; p3 += 3) {
      const TaskSystem sys = buildPhased(p2, p3);
      const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                   {.horizon = 2'000});
      ASSERT_TRUE(checkMutualExclusion(sys, r).ok())
          << "p2=" << p2 << " p3=" << p3;
      ASSERT_TRUE(checkGcsPreemptionRule(sys, r).ok())
          << "p2=" << p2 << " p3=" << p3;
      if (!r.any_deadline_miss) {
        for (const Task& t : sys.tasks()) {
          EXPECT_LE(
              maxBlockedOf(r, t.id),
              analysis.blocking[static_cast<std::size_t>(t.id.value())])
              << t.name << " p2=" << p2 << " p3=" << p3;
        }
      }
      if (analysis.report.rta_all) {
        EXPECT_FALSE(r.any_deadline_miss) << "p2=" << p2 << " p3=" << p3;
      }
      ++runs;
    }
  }
  EXPECT_EQ(runs, 9 * 8);
}

TEST(PhasingSweep, DpcpBoundsHoldForEveryPhasing) {
  const TaskSystem reference = buildPhased(0, 0);
  const ProtocolAnalysis analysis =
      analyzeUnder(ProtocolKind::kDpcp, reference);

  for (Time p2 = 0; p2 < 18; p2 += 3) {
    for (Time p3 = 0; p3 < 24; p3 += 4) {
      const TaskSystem sys = buildPhased(p2, p3);
      const SimResult r = simulate(ProtocolKind::kDpcp, sys,
                                   {.horizon = 2'000});
      ASSERT_TRUE(checkMutualExclusion(sys, r).ok())
          << "p2=" << p2 << " p3=" << p3;
      if (!r.any_deadline_miss) {
        for (const Task& t : sys.tasks()) {
          EXPECT_LE(
              maxBlockedOf(r, t.id),
              analysis.blocking[static_cast<std::size_t>(t.id.value())])
              << t.name << " p2=" << p2 << " p3=" << p3;
        }
      }
      if (analysis.report.rta_all) {
        EXPECT_FALSE(r.any_deadline_miss) << "p2=" << p2 << " p3=" << p3;
      }
    }
  }
}

/// Lighter variant (longer periods) so the RTA accepts it outright.
TaskSystem buildLightPhased(Time phase2, Time phase3) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "tau1", .period = 40, .processor = 0,
             .body = Body{}.compute(1).section(g, 2).compute(1)});
  b.addTask({.name = "tau2", .period = 60, .phase = phase2, .processor = 0,
             .body = Body{}.compute(1).section(g, 3).compute(1)});
  b.addTask({.name = "tau3", .period = 80, .phase = phase3, .processor = 1,
             .body = Body{}.compute(2).section(g, 4).compute(1)});
  return std::move(b).build();
}

TEST(PhasingSweep, ResponseTimesNeverExceedRtaBoundAcrossPhasings) {
  const TaskSystem reference = buildLightPhased(0, 0);
  const ProtocolAnalysis analysis =
      analyzeUnder(ProtocolKind::kMpcp, reference);
  ASSERT_TRUE(analysis.report.rta_all);

  for (Time p2 = 0; p2 < 60; p2 += 6) {
    for (Time p3 = 0; p3 < 80; p3 += 8) {
      const TaskSystem sys = buildLightPhased(p2, p3);
      const SimResult r = simulate(ProtocolKind::kMpcp, sys,
                                   {.horizon = 3'000});
      EXPECT_FALSE(r.any_deadline_miss) << "p2=" << p2 << " p3=" << p3;
      for (const TaskStats& st : r.per_task) {
        const auto& verdict =
            analysis.report.tasks[static_cast<std::size_t>(st.task.value())];
        EXPECT_LE(st.max_response, verdict.response_time)
            << sys.task(st.task).name << " p2=" << p2 << " p3=" << p3;
      }
    }
  }
}

}  // namespace
}  // namespace mpcp
