// JobPool — the engine's slot-indexed job store: O(1) JobId -> slot
// lookup, address stability across chunk growth, slot recycling, and
// release-order live iteration (the engine's accounting sweeps depend
// on it).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/job_pool.h"

namespace mpcp {
namespace {

JobId jid(int task, std::int64_t instance = 0) {
  return JobId{TaskId(task), instance};
}

TEST(JobPool, FindIsIdIndexed) {
  JobPool pool;
  Job& a = pool.allocate(jid(0, 0));
  Job& b = pool.allocate(jid(1, 0));
  Job& c = pool.allocate(jid(0, 1));

  EXPECT_EQ(pool.find(jid(0, 0)), &a);
  EXPECT_EQ(pool.find(jid(1, 0)), &b);
  EXPECT_EQ(pool.find(jid(0, 1)), &c);
  EXPECT_EQ(pool.find(jid(2, 0)), nullptr);
  EXPECT_EQ(pool.find(jid(1, 1)), nullptr);
  EXPECT_EQ(pool.liveCount(), 3u);
}

TEST(JobPool, FindAfterReleaseMisses) {
  JobPool pool;
  pool.allocate(jid(0));
  Job& b = pool.allocate(jid(1));
  pool.release(b);
  EXPECT_EQ(pool.find(jid(1)), nullptr);
  EXPECT_NE(pool.find(jid(0)), nullptr);
  EXPECT_EQ(pool.liveCount(), 1u);
}

TEST(JobPool, SlotIsRecycledAndRemapped) {
  JobPool pool;
  Job& a = pool.allocate(jid(0));
  const std::uint32_t slot = pool.slotOf(a);
  pool.release(a);

  // The freed slot is reused by the next allocation, and the id index
  // points the new id at it.
  Job& b = pool.allocate(jid(7, 3));
  EXPECT_EQ(pool.slotOf(b), slot);
  EXPECT_EQ(&b, &a);  // same storage
  EXPECT_EQ(b.id, jid(7, 3));
  EXPECT_EQ(pool.find(jid(7, 3)), &b);
  EXPECT_EQ(pool.find(jid(0)), nullptr);
  EXPECT_EQ(pool.capacity(), 1u);  // no new slot was created
}

TEST(JobPool, RecycledJobIsFullyReset) {
  JobPool pool;
  Job& a = pool.allocate(jid(0));
  a.op_remaining = 42;
  a.executed = 17;
  a.held.push_back(ResourceId(3));
  a.inherited = Priority(9);
  pool.release(a);

  Job& b = pool.allocate(jid(1));
  EXPECT_EQ(b.op_remaining, -1);
  EXPECT_EQ(b.executed, 0);
  EXPECT_TRUE(b.held.empty());
  EXPECT_GE(b.held.capacity(), 1u);  // capacity survives recycling
  EXPECT_EQ(b.inherited, kPriorityFloor);
}

TEST(JobPool, AddressesStableAcrossChunkGrowth) {
  JobPool pool;
  const int n = static_cast<int>(JobPool::kChunkSize) * 3 + 7;
  std::vector<Job*> ptrs;
  for (int i = 0; i < n; ++i) {
    ptrs.push_back(&pool.allocate(jid(i)));
  }
  // Growing into new chunks must not move earlier jobs.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)]->id, jid(i));
    EXPECT_EQ(pool.find(jid(i)), ptrs[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(pool.liveCount(), static_cast<std::size_t>(n));
}

TEST(JobPool, LiveIterationIsReleaseOrder) {
  JobPool pool;
  for (int i = 0; i < 6; ++i) pool.allocate(jid(i));
  pool.release(*pool.find(jid(2)));  // middle
  pool.release(*pool.find(jid(0)));  // head
  pool.release(*pool.find(jid(5)));  // tail
  pool.allocate(jid(9));             // reuses a slot, appends to the list

  std::vector<int> order;
  pool.forEachLive(
      [&](Job& j) { order.push_back(j.id.task.value()); });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4, 9}));
}

TEST(JobPool, LiveIterationSurvivesReleasingVisitedJob) {
  JobPool pool;
  for (int i = 0; i < 4; ++i) pool.allocate(jid(i));
  std::vector<int> order;
  pool.forEachLive([&](Job& j) {
    order.push_back(j.id.task.value());
    if (j.id.task.value() % 2 == 0) pool.release(j);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(pool.liveCount(), 2u);
}

TEST(JobPool, DuplicateLiveIdThrows) {
  JobPool pool;
  pool.allocate(jid(0));
  EXPECT_THROW(pool.allocate(jid(0)), InvariantError);
  // ...but the same id may live again once the first instance retired.
  // (The failed allocate above consumed a slot; the pool stays usable.)
  Job* first = pool.find(jid(0));
  ASSERT_NE(first, nullptr);
  pool.release(*first);
  EXPECT_NO_THROW(pool.allocate(jid(0)));
}

}  // namespace
}  // namespace mpcp
