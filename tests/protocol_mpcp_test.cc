// The shared-memory protocol (Section 5): every rule and every
// characteristic the paper lists at the end of Example 4.
#include <gtest/gtest.h>

#include "analysis/ceilings.h"
#include "core/mpcp_protocol.h"
#include "core/simulate.h"
#include "model/task_system.h"
#include "taskgen/paper_examples.h"
#include "test_util.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

using ::mpcp::testing::countEvents;
using ::mpcp::testing::finishOf;
using ::mpcp::testing::maxBlockedOf;

TEST(Mpcp, GcsOutprioritizesLocalHigherPriorityNormalCode) {
  // lo (P0) is inside a gcs when hi (P0) arrives: hi must NOT preempt
  // until the gcs ends (rule 3 / Theorem 2).
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 2,
                               .processor = 0, .body = Body{}.compute(3)});
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.compute(1).section(s, 4)
                                          .compute(1)});
  b.addTask({.name = "remote", .period = 80, .phase = 40, .processor = 1,
             .body = Body{}.section(s, 1).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 50});
  // lo enters the gcs at t=1 and holds the CPU through t=5 despite hi's
  // arrival at t=2; hi then runs 5..8; lo finishes its last tick at 9.
  EXPECT_EQ(finishOf(r, hi, 0), 8);
  EXPECT_EQ(finishOf(r, lo, 0), 9);
  const InvariantReport rep = checkGcsPreemptionRule(sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(Mpcp, GcsPreemptsGcsByGcsPriority) {
  // Two tasks on P0 hold different global semaphores; the gcs with the
  // higher gcs priority (higher-priority remote contender) wins (rule 4).
  TaskSystemBuilder b(2);
  const ResourceId s_hot = b.addResource("S_hot");    // remote user: hi prio
  const ResourceId s_cold = b.addResource("S_cold");  // remote user: lo prio
  // P1 remote contenders define the gcs priorities on P0.
  const TaskId rhi = b.addTask({.name = "rhi", .period = 40, .phase = 20,
                                .processor = 1,
                                .body = Body{}.section(s_hot, 1)});
  const TaskId rlo = b.addTask({.name = "rlo", .period = 90, .phase = 20,
                                .processor = 1,
                                .body = Body{}.section(s_cold, 1)});
  // On P0: cold locks first, then hot's task arrives and must preempt it
  // inside its gcs.
  const TaskId a = b.addTask({.name = "a", .period = 50, .phase = 1,
                              .processor = 0,
                              .body = Body{}.section(s_hot, 2).compute(1)});
  const TaskId c = b.addTask({.name = "c", .period = 60, .processor = 0,
                              .body = Body{}.section(s_cold, 5).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  ASSERT_GT(tables.gcsPriority(s_hot, ProcessorId(0)),
            tables.gcsPriority(s_cold, ProcessorId(0)));
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  // c enters S_cold's gcs at t=0. a arrives at t=1, locks free S_hot and
  // its higher gcs priority preempts c's gcs: a finishes gcs at 3,
  // compute at 4; c's gcs resumes at 3... (a's normal tick runs only
  // after c's gcs? No: a's normal tick is below c's gcs priority, so c
  // runs 3..7, then a's final tick, then c's.)
  EXPECT_EQ(finishOf(r, a, 0), 8);
  EXPECT_GE(countEvents(r, Ev::kPreempt, c), 1);
  (void)rhi; (void)rlo;
}

TEST(Mpcp, QueueSignalledInPriorityOrder) {
  // Three remote waiters pile up on S; grants must follow assigned
  // priority, not arrival order (rule 7).
  TaskSystemBuilder b(4);
  const ResourceId s = b.addResource("S");
  const TaskId holder = b.addTask({.name = "holder", .period = 200,
                                   .processor = 0,
                                   .body = Body{}.section(s, 10)});
  // Arrival order: low (t=2), mid (t=4), high (t=6). RM by period.
  const TaskId lo = b.addTask({.name = "lo", .period = 150, .phase = 2,
                               .processor = 1,
                               .body = Body{}.section(s, 1).compute(1)});
  const TaskId mid = b.addTask({.name = "mid", .period = 100, .phase = 4,
                                .processor = 2,
                                .body = Body{}.section(s, 1).compute(1)});
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 6,
                               .processor = 3,
                               .body = Body{}.section(s, 1).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  EXPECT_LT(finishOf(r, hi, 0), finishOf(r, mid, 0));
  EXPECT_LT(finishOf(r, mid, 0), finishOf(r, lo, 0));
  const InvariantReport rep = checkPriorityOrderedHandoff(sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
  (void)holder;
}

TEST(Mpcp, LowerPriorityJobRunsWhileHigherSuspended) {
  // When hi suspends on a global semaphore, lo gets the processor —
  // that's the whole point of suspending instead of spinning.
  TaskSystemBuilder b(2);
  const ResourceId s = b.addResource("S");
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 1,
                               .processor = 0,
                               .body = Body{}.compute(1).section(s, 2)
                                          .compute(1)});
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.compute(6)});
  const TaskId rem = b.addTask({.name = "rem", .period = 80, .processor = 1,
                                .body = Body{}.section(s, 8).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 60});
  // rem holds S during [0,8). lo runs 0..1; hi computes 1..2 and
  // suspends at 2; lo runs 2..7 (5 more ticks) and finishes at 7 — well
  // before hi, which resumes only when S is handed over at t=8.
  EXPECT_EQ(finishOf(r, lo, 0), 7);
  EXPECT_GT(finishOf(r, hi, 0), 7);
  (void)rem;
}

TEST(Mpcp, LocalSemaphoresFollowPcp) {
  // A local crossed-lock pair under MPCP must not deadlock: rule 2 uses
  // the uniprocessor PCP locally. (Needs a global resource elsewhere so
  // the system is a genuine multiprocessor one.)
  TaskSystemBuilder b(2, {.allow_nested_global = true});
  const ResourceId s1 = b.addResource("L1");
  const ResourceId s2 = b.addResource("L2");
  const ResourceId g = b.addResource("G");
  const TaskId hi = b.addTask({.name = "hi", .period = 50, .phase = 2,
                               .processor = 0,
                               .body = Body{}.compute(1).lock(s1).compute(2)
                                          .lock(s2).compute(2).unlock(s2)
                                          .unlock(s1).compute(1)});
  const TaskId lo = b.addTask({.name = "lo", .period = 100, .processor = 0,
                               .body = Body{}.compute(1).lock(s2).compute(2)
                                          .lock(s1).compute(2).unlock(s1)
                                          .unlock(s2).compute(1)});
  b.addTask({.name = "g1", .period = 60, .processor = 0,
             .body = Body{}.section(g, 1).compute(1)});
  b.addTask({.name = "g2", .period = 70, .processor = 1,
             .body = Body{}.section(g, 1).compute(1)});
  const TaskSystem sys = std::move(b).build();
  ASSERT_FALSE(sys.isGlobal(s1));
  ASSERT_FALSE(sys.isGlobal(s2));
  ASSERT_TRUE(sys.isGlobal(g));
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 300});
  EXPECT_GT(finishOf(r, hi, 0), 0);
  EXPECT_GT(finishOf(r, lo, 0), 0);
}

TEST(Mpcp, RejectsNestedGlobalSections) {
  TaskSystemBuilder b(2, {.allow_nested_global = true});
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 50, .processor = 0,
             .body = Body{}.lock(g1).compute(1).section(g2, 1).unlock(g1)});
  b.addTask({.name = "b", .period = 60, .processor = 1,
             .body = Body{}.section(g1, 1).section(g2, 1)});
  const TaskSystem sys = std::move(b).build();
  EXPECT_THROW(simulate(ProtocolKind::kMpcp, sys, {.horizon = 10}),
               ConfigError);
}

TEST(Mpcp, BuilderRejectsNestedGlobalByDefault) {
  TaskSystemBuilder b(2);
  const ResourceId g1 = b.addResource("G1");
  const ResourceId g2 = b.addResource("G2");
  b.addTask({.name = "a", .period = 50, .processor = 0,
             .body = Body{}.lock(g1).compute(1).section(g2, 1).unlock(g1)});
  b.addTask({.name = "b", .period = 60, .processor = 1,
             .body = Body{}.section(g1, 1).section(g2, 1)});
  EXPECT_THROW(std::move(b).build(), ConfigError);
}

TEST(Mpcp, ReducesToPcpOnUniprocessor) {
  // One processor => no global semaphores => MPCP and PCP must produce
  // identical schedules (the paper's reduction claim).
  TaskSystemBuilder b(1);
  const ResourceId s1 = b.addResource("S1");
  const ResourceId s2 = b.addResource("S2");
  b.addTask({.name = "a", .period = 40, .phase = 2, .processor = 0,
             .body = Body{}.compute(1).section(s1, 2).compute(1)});
  b.addTask({.name = "b", .period = 60, .phase = 1, .processor = 0,
             .body = Body{}.compute(1).section(s2, 3).compute(1)});
  b.addTask({.name = "c", .period = 90, .processor = 0,
             .body = Body{}.section(s1, 2).section(s2, 2).compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult rm = simulate(ProtocolKind::kMpcp, sys, {.horizon = 400});
  const SimResult rp = simulate(ProtocolKind::kPcp, sys, {.horizon = 400});
  ASSERT_EQ(rm.jobs.size(), rp.jobs.size());
  for (std::size_t i = 0; i < rm.jobs.size(); ++i) {
    EXPECT_EQ(rm.jobs[i].finish, rp.jobs[i].finish);
    EXPECT_EQ(rm.jobs[i].blocked, rp.jobs[i].blocked);
  }
}

TEST(Mpcp, Example3SystemRunsCleanUnderInvariants) {
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 5000});
  EXPECT_FALSE(r.any_deadline_miss);
  const InvariantReport rep = checkProtocolInvariants(ex.sys, r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(Mpcp, GcsEntriesUseTheFixedAssignedPriority) {
  // Rule 3 audit: every gcs entry in a long Example 3 run elevates to
  // exactly P_G + max(remote user) — never the full ceiling, never a
  // dynamic value.
  const paper::Example3 ex = paper::makeExample3();
  const SimResult r = simulate(ProtocolKind::kMpcp, ex.sys, {.horizon = 5000});
  const PriorityTables tables(ex.sys);
  const InvariantReport rep = checkGcsPriorityAssignment(
      ex.sys, r, tables, GcsPriorityRule::kSharedMemory);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
  // Sanity: the audit is not vacuous.
  int entries = 0;
  for (const TraceEvent& e : r.trace) entries += e.kind == Ev::kGcsEnter;
  EXPECT_GT(entries, 10);
}

TEST(Mpcp, SuspendedWaiterResumesAtGcsPriorityImmediately) {
  // When the semaphore is handed to a waiter, the waiter must preempt
  // lower-priority *gcs-band* work on its processor at once (rule 7).
  TaskSystemBuilder b(3);
  const ResourceId s = b.addResource("S");
  const ResourceId s2 = b.addResource("S2");
  const TaskId w = b.addTask({.name = "w", .period = 40, .phase = 0,
                              .processor = 0,
                              .body = Body{}.compute(1).section(s, 2)
                                         .compute(1)});
  // holder on P1 keeps S busy until t=4.
  b.addTask({.name = "holder", .period = 200, .processor = 1,
             .body = Body{}.section(s, 4).compute(1)});
  // filler occupies P0 with *normal* code while w is suspended.
  const TaskId filler = b.addTask({.name = "filler", .period = 100,
                                   .processor = 0,
                                   .body = Body{}.compute(20)});
  // remote user of S2 gives S2 a gcs priority on P0.
  b.addTask({.name = "r2", .period = 300, .phase = 100, .processor = 2,
             .body = Body{}.section(s2, 1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 60});
  // w suspends at t=1; S handed to w at t=4; w's gcs runs 4..6, then its
  // final normal tick must wait... no: w has highest base on P0 too, so
  // it finishes at 7.
  EXPECT_EQ(finishOf(r, w, 0), 7);
  (void)filler;
}

TEST(Mpcp, MeasuredBlockingBoundedByCsNotWcet) {
  // Scaling every task's non-critical compute must not change any
  // measured blocking under MPCP (the paper's primary goal).
  auto build = [](Duration stretch) {
    TaskSystemBuilder b(2);
    const ResourceId s = b.addResource("S");
    b.addTask({.name = "a", .period = 400, .phase = 2, .processor = 0,
               .body = Body{}.compute(1).section(s, 3).compute(stretch)});
    b.addTask({.name = "b", .period = 600, .processor = 1,
               .body = Body{}.compute(1).section(s, 5).compute(stretch)});
    // The stretch goes strictly *after* the sections so request times --
    // and hence the contention pattern -- are identical across stretches.
    b.addTask({.name = "c", .period = 800, .phase = 1, .processor = 1,
               .body = Body{}.compute(1).section(s, 2).compute(stretch)});
    return std::move(b).build();
  };
  const SimResult r1 = simulate(ProtocolKind::kMpcp, build(2), {.horizon = 900});
  const SimResult r2 = simulate(ProtocolKind::kMpcp, build(60), {.horizon = 900});
  const TaskSystem sys1 = build(2);
  for (const Task& t : sys1.tasks()) {
    EXPECT_EQ(maxBlockedOf(r1, t.id), maxBlockedOf(r2, t.id)) << t.name;
  }
}

}  // namespace
}  // namespace mpcp
