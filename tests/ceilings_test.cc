// Priority ceilings and gcs execution priorities (Section 4.3/4.4,
// Tables 4-1/4-2) on the Example 3 configuration.
#include <gtest/gtest.h>

#include "analysis/ceilings.h"
#include "model/task_system.h"
#include "taskgen/paper_examples.h"

namespace mpcp {
namespace {

class CeilingsExample3 : public ::testing::Test {
 protected:
  CeilingsExample3() : ex_(paper::makeExample3()), tables_(ex_.sys) {}

  Priority prio(int i) const {  // 1-based task index
    return ex_.sys.task(ex_.tau[static_cast<std::size_t>(i - 1)]).priority;
  }

  paper::Example3 ex_;
  PriorityTables tables_;
};

TEST_F(CeilingsExample3, RmPrioritiesDescendWithPeriod) {
  // tau1 has the shortest period (40) -> highest priority; with 7 tasks
  // the urgencies are 7..1.
  for (int i = 1; i < 7; ++i) {
    EXPECT_GT(prio(i), prio(i + 1)) << "tau" << i << " vs tau" << i + 1;
  }
  EXPECT_EQ(ex_.sys.maxTaskPriority(), prio(1));
  EXPECT_GT(ex_.sys.globalBase(), ex_.sys.maxTaskPriority());
}

TEST_F(CeilingsExample3, ScopesDerivedFromBindings) {
  EXPECT_FALSE(ex_.sys.isGlobal(ex_.s1));  // only tau2 (P1)
  EXPECT_FALSE(ex_.sys.isGlobal(ex_.s2));  // tau5, tau7 (both P3)
  EXPECT_FALSE(ex_.sys.isGlobal(ex_.s3));  // tau6, tau7 (both P3)
  EXPECT_TRUE(ex_.sys.isGlobal(ex_.s4));   // tau1, tau3, tau5
  EXPECT_TRUE(ex_.sys.isGlobal(ex_.s5));   // tau2, tau4, tau6
}

TEST_F(CeilingsExample3, LocalCeilingsAreHighestUserPriority) {
  // Table 4-1, local rows.
  EXPECT_EQ(tables_.ceiling(ex_.s1), prio(2));
  EXPECT_EQ(tables_.ceiling(ex_.s2), prio(5));
  EXPECT_EQ(tables_.ceiling(ex_.s3), prio(6));
}

TEST_F(CeilingsExample3, GlobalCeilingsLiveAboveEveryTaskPriority) {
  // Table 4-1, global rows: ceiling(Sg) = P_G + highest user priority.
  const Priority pg = ex_.sys.globalBase();
  EXPECT_EQ(tables_.ceiling(ex_.s4), prio(1).inGlobalBand(pg));
  EXPECT_EQ(tables_.ceiling(ex_.s5), prio(2).inGlobalBand(pg));
  EXPECT_GT(tables_.ceiling(ex_.s4), ex_.sys.maxTaskPriority());
  EXPECT_GT(tables_.ceiling(ex_.s5), ex_.sys.maxTaskPriority());
  // Ordering condition: P_{S4} > P_{S5} implies ceiling order.
  EXPECT_GT(tables_.ceiling(ex_.s4), tables_.ceiling(ex_.s5));
}

TEST_F(CeilingsExample3, GcsPrioritiesUseHighestRemoteUser) {
  // Table 4-2: a gcs of a job on processor p runs at P_G + highest
  // priority among *remote* users, not the full ceiling.
  const Priority pg = ex_.sys.globalBase();
  // S4 users: tau1 (P1), tau3 (P2), tau5 (P3).
  EXPECT_EQ(tables_.gcsPriority(ex_.s4, ProcessorId(0)),
            prio(3).inGlobalBand(pg));  // remote top for P1: tau3
  EXPECT_EQ(tables_.gcsPriority(ex_.s4, ProcessorId(1)),
            prio(1).inGlobalBand(pg));  // remote top for P2: tau1
  EXPECT_EQ(tables_.gcsPriority(ex_.s4, ProcessorId(2)),
            prio(1).inGlobalBand(pg));
  // S5 users: tau2 (P1), tau4 (P2), tau6 (P3).
  EXPECT_EQ(tables_.gcsPriority(ex_.s5, ProcessorId(0)),
            prio(4).inGlobalBand(pg));
  EXPECT_EQ(tables_.gcsPriority(ex_.s5, ProcessorId(1)),
            prio(2).inGlobalBand(pg));
  EXPECT_EQ(tables_.gcsPriority(ex_.s5, ProcessorId(2)),
            prio(2).inGlobalBand(pg));
}

TEST_F(CeilingsExample3, GcsPriorityNeverExceedsCeiling) {
  for (const ResourceId r : {ex_.s4, ex_.s5}) {
    for (int p = 0; p < 3; ++p) {
      EXPECT_LE(tables_.gcsPriority(r, ProcessorId(p)), tables_.ceiling(r));
      EXPECT_GT(tables_.gcsPriority(r, ProcessorId(p)),
                ex_.sys.maxTaskPriority());
    }
  }
}

TEST(Ceilings, GcsPriorityQueriedForLocalResourceThrows) {
  TaskSystemBuilder b(2);
  const ResourceId loc = b.addResource("L");
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.section(loc, 1).section(g, 1)});
  b.addTask({.name = "b", .period = 20, .processor = 1,
             .body = Body{}.section(g, 1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  EXPECT_THROW((void)tables.gcsPriority(loc, ProcessorId(0)),
               InvariantError);
  EXPECT_NO_THROW((void)tables.gcsPriority(g, ProcessorId(0)));
}

TEST(Ceilings, UnusedResourceHasFloorCeiling) {
  TaskSystemBuilder b(1);
  const ResourceId unused = b.addResource("unused");
  const ResourceId used = b.addResource("used");
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.section(used, 1)});
  const TaskSystem sys = std::move(b).build();
  const PriorityTables tables(sys);
  EXPECT_EQ(tables.ceiling(unused), kPriorityFloor);
  EXPECT_EQ(tables.ceiling(used), sys.task(TaskId(0)).priority);
}

}  // namespace
}  // namespace mpcp
