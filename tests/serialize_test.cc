// Text-format load/save for task systems.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/serialize.h"
#include "taskgen/generator.h"
#include "taskgen/paper_examples.h"

namespace mpcp {
namespace {

constexpr const char* kSample = R"(
# demo system
processors 2
resource GBUF
resource LLOG
task control period=100 processor=0
  compute 10
  lock GBUF
  compute 5
  unlock GBUF
  section LLOG 4
  compute 7
end
task sensor period=200 processor=1 phase=3 deadline=150
  compute 30
  suspend 5
  section GBUF 8
  compute 12
end
)";

TEST(Serialize, ParsesSampleSystem) {
  const TaskSystem sys = parseTaskSystemFromString(kSample);
  EXPECT_EQ(sys.processorCount(), 2);
  ASSERT_EQ(sys.tasks().size(), 2u);
  EXPECT_EQ(sys.tasks()[0].name, "control");
  EXPECT_EQ(sys.tasks()[0].wcet, 26);
  EXPECT_EQ(sys.tasks()[1].phase, 3);
  EXPECT_EQ(sys.tasks()[1].relative_deadline, 150);
  EXPECT_TRUE(sys.isGlobal(ResourceId(0)));   // GBUF spans P0/P1
  EXPECT_FALSE(sys.isGlobal(ResourceId(1)));  // LLOG on P0 only
}

TEST(Serialize, RoundTripPreservesEverything) {
  const paper::Example3 ex = paper::makeExample3();
  const std::string text = serializeTaskSystemToString(ex.sys);
  const TaskSystem back = parseTaskSystemFromString(text);
  ASSERT_EQ(back.tasks().size(), ex.sys.tasks().size());
  for (std::size_t i = 0; i < back.tasks().size(); ++i) {
    const Task& a = ex.sys.tasks()[i];
    const Task& b = back.tasks()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.phase, b.phase);
    EXPECT_EQ(a.relative_deadline, b.relative_deadline);
    EXPECT_EQ(a.processor, b.processor);
    EXPECT_EQ(a.priority, b.priority);  // RM re-derivation matches
    EXPECT_TRUE(a.body == b.body);
  }
  ASSERT_EQ(back.resources().size(), ex.sys.resources().size());
  for (std::size_t i = 0; i < back.resources().size(); ++i) {
    EXPECT_EQ(back.resources()[i].name, ex.sys.resources()[i].name);
    EXPECT_EQ(back.resources()[i].scope, ex.sys.resources()[i].scope);
  }
}

TEST(Serialize, RoundTripOnGeneratedWorkloads) {
  WorkloadParams p;
  p.suspension_prob = 0.4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 500 + 3);
    const TaskSystem sys = generateWorkload(p, rng);
    const TaskSystem back =
        parseTaskSystemFromString(serializeTaskSystemToString(sys));
    ASSERT_EQ(back.tasks().size(), sys.tasks().size());
    for (std::size_t i = 0; i < back.tasks().size(); ++i) {
      EXPECT_TRUE(back.tasks()[i].body == sys.tasks()[i].body) << seed;
      EXPECT_EQ(back.tasks()[i].priority, sys.tasks()[i].priority) << seed;
    }
  }
}

TEST(Serialize, SyncPinsRoundTrip) {
  TaskSystemBuilder b(3);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 10, .processor = 0,
             .body = Body{}.section(g, 1)});
  b.addTask({.name = "c", .period = 20, .processor = 1,
             .body = Body{}.section(g, 1)});
  b.assignSyncProcessor(g, ProcessorId(2));
  const TaskSystem sys = std::move(b).build();
  const TaskSystem back =
      parseTaskSystemFromString(serializeTaskSystemToString(sys));
  ASSERT_TRUE(back.resource(ResourceId(0)).sync_processor.has_value());
  EXPECT_EQ(back.resource(ResourceId(0)).sync_processor->value(), 2);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  const auto expectError = [](const char* text, const char* fragment) {
    try {
      (void)parseTaskSystemFromString(text);
      FAIL() << "expected ConfigError for: " << text;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expectError("bogus 3\n", "unknown directive");
  expectError("processors 1\ntask t period=10\ncompute 1\nend\n",
              "processor=<index>");
  expectError("processors 1\ntask t processor=0\ncompute 1\nend\n",
              "period=<ticks>");
  expectError(
      "processors 1\ntask t period=10 processor=0\n  frobnicate 3\nend\n",
      "unknown body op");
  expectError(
      "processors 1\ntask t period=10 processor=0\n  lock NOPE\nend\n",
      "unknown resource");
  expectError("processors 1\ntask t period=10 processor=0\n  compute 1\n",
              "not closed");
  expectError("processors 1\nresource A\nresource A\n", "duplicate resource");
  expectError("task t period=x processor=0\nend\n", "bad period");
}

TEST(Serialize, ExplicitPriorityAttribute) {
  const char* text = R"(
processors 1
task a period=10 processor=0 priority=7
  compute 1
end
task b period=20 processor=0 priority=9
  compute 1
end
)";
  const TaskSystem sys = parseTaskSystemFromString(text);
  // Explicit priorities override RM: b outranks a despite longer period.
  EXPECT_GT(sys.tasks()[1].priority, sys.tasks()[0].priority);
}

}  // namespace
}  // namespace mpcp
