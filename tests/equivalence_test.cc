// Cross-implementation equivalences that must hold by construction:
// pure hybrid policies equal the dedicated analyses/protocols, and a
// chaos sweep checks nothing crashes or violates mutual exclusion under
// any protocol on randomly structured bodies.
#include <gtest/gtest.h>

#include "analysis/blocking_dpcp.h"
#include "common/rng.h"
#include "core/analyzer.h"
#include "core/hybrid_blocking.h"
#include "core/simulate.h"
#include "taskgen/generator.h"
#include "trace/invariants.h"

namespace mpcp {
namespace {

TEST(Equivalence, AllMessageHybridBlockingEqualsDpcpBound) {
  WorkloadParams p;
  p.processors = 3;
  p.tasks_per_processor = 3;
  p.utilization_per_processor = 0.4;
  p.global_resources = 3;
  p.global_sharing_prob = 0.9;
  p.cs_max = 25;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 211);
    const TaskSystem sys = generateWorkload(p, rng);
    const PriorityTables tables(sys);
    const auto hybrid =
        hybridBlocking(sys, tables, HybridPolicy::allMessage(sys));
    const auto dpcp = dpcpBlocking(sys, tables);
    for (const Task& t : sys.tasks()) {
      const std::size_t i = static_cast<std::size_t>(t.id.value());
      EXPECT_EQ(hybrid[i].total(), dpcp[i].total())
          << t.name << " seed " << seed;
      EXPECT_EQ(hybrid[i].local_lower_cs, dpcp[i].local_lower_cs);
      EXPECT_EQ(hybrid[i].lower_gcs_queue, dpcp[i].lower_gcs_queue);
      EXPECT_EQ(hybrid[i].host_agent_load, dpcp[i].host_agent_load);
      // Hybrid splits DPCP's D3 into F3' (same-resource, higher-priority)
      // + D3' (other-resource agents): the sum must match.
      EXPECT_EQ(hybrid[i].higher_gcs_remote + hybrid[i].agent_interference,
                dpcp[i].agent_interference)
          << t.name << " seed " << seed;
    }
  }
}

TEST(Equivalence, AllSharedHybridAnalyzerEqualsMpcpAnalyzer) {
  WorkloadParams p;
  p.suspension_prob = 0.3;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 307);
    const TaskSystem sys = generateWorkload(p, rng);
    const ProtocolAnalysis mpcp_a = analyzeUnder(ProtocolKind::kMpcp, sys);
    const ProtocolAnalysis hyb_a =
        analyzeHybrid(sys, HybridPolicy::allShared(sys));
    ASSERT_EQ(mpcp_a.blocking.size(), hyb_a.blocking.size());
    for (std::size_t i = 0; i < mpcp_a.blocking.size(); ++i) {
      EXPECT_EQ(mpcp_a.blocking[i], hyb_a.blocking[i]) << "seed " << seed;
      EXPECT_EQ(mpcp_a.jitter[i], hyb_a.jitter[i]) << "seed " << seed;
    }
    EXPECT_EQ(mpcp_a.report.rta_all, hyb_a.report.rta_all);
  }
}

TEST(Equivalence, ChaosSweepNoCrashNoMutexViolation) {
  // Randomly structured bodies (sections, suspensions, heavy sharing)
  // through every protocol: mutual exclusion must hold and nothing may
  // throw. Protocol-specific invariants are checked where they apply.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadParams p;
    Rng knob_rng(seed);
    p.processors = 2 + static_cast<int>(knob_rng.uniformInt(0, 2));
    p.tasks_per_processor = 2 + static_cast<int>(knob_rng.uniformInt(0, 2));
    p.utilization_per_processor = knob_rng.uniformReal(0.3, 0.9);
    p.global_resources = 1 + static_cast<int>(knob_rng.uniformInt(0, 3));
    p.global_sharing_prob = knob_rng.uniformReal(0.3, 1.0);
    p.local_sharing_prob = knob_rng.uniformReal(0.0, 1.0);
    p.max_gcs_per_task = 1 + static_cast<int>(knob_rng.uniformInt(0, 3));
    p.cs_max = 1 + knob_rng.uniformInt(0, 40);
    p.suspension_prob = knob_rng.uniformReal(0.0, 0.6);
    Rng rng(seed * 997);
    const TaskSystem sys = generateWorkload(p, rng);

    for (const ProtocolKind kind :
         {ProtocolKind::kNone, ProtocolKind::kNonePrio, ProtocolKind::kPip,
          ProtocolKind::kMpcp, ProtocolKind::kDpcp}) {
      const SimResult r =
          simulate(kind, sys, {.horizon_cap = 100'000});
      const InvariantReport mutex = checkMutualExclusion(sys, r);
      EXPECT_TRUE(mutex.ok())
          << toString(kind) << " seed " << seed << ": "
          << mutex.violations.front();
      if (kind == ProtocolKind::kMpcp) {
        const InvariantReport gcs = checkGcsPreemptionRule(sys, r);
        EXPECT_TRUE(gcs.ok()) << "seed " << seed << ": "
                              << gcs.violations.front();
      }
      if (kind == ProtocolKind::kMpcp || kind == ProtocolKind::kDpcp ||
          kind == ProtocolKind::kNonePrio) {
        const InvariantReport order = checkPriorityOrderedHandoff(sys, r);
        EXPECT_TRUE(order.ok()) << toString(kind) << " seed " << seed
                                << ": " << order.violations.front();
      }
    }
  }
}

TEST(Equivalence, PipEqualsNoneWhenNoContention) {
  // A single task per processor with disjoint resources: every protocol
  // degenerates to plain scheduling.
  TaskSystemBuilder b(2);
  const ResourceId r0 = b.addResource("R0");
  const ResourceId r1 = b.addResource("R1");
  b.addTask({.name = "a", .period = 50, .processor = 0,
             .body = Body{}.compute(3).section(r0, 2).compute(3)});
  b.addTask({.name = "c", .period = 70, .processor = 1,
             .body = Body{}.compute(4).section(r1, 3).compute(2)});
  const TaskSystem sys = std::move(b).build();
  const SimResult none = simulate(ProtocolKind::kNone, sys, {.horizon = 700});
  const SimResult pip = simulate(ProtocolKind::kPip, sys, {.horizon = 700});
  const SimResult mpcp = simulate(ProtocolKind::kMpcp, sys, {.horizon = 700});
  ASSERT_EQ(none.jobs.size(), pip.jobs.size());
  ASSERT_EQ(none.jobs.size(), mpcp.jobs.size());
  for (std::size_t i = 0; i < none.jobs.size(); ++i) {
    EXPECT_EQ(none.jobs[i].finish, pip.jobs[i].finish);
    EXPECT_EQ(none.jobs[i].finish, mpcp.jobs[i].finish);
  }
}

}  // namespace
}  // namespace mpcp
