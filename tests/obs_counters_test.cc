// Runtime observability counters: bump-site semantics (contended vs
// uncontended locks, handoffs, migrations, ready-queue high-water
// marks, blocking histograms), engine-vs-reference agreement on the
// lock path, and thread-count-independent sweep aggregation.
#include <gtest/gtest.h>

#include "core/simulate.h"
#include "exp/counter_sweep.h"
#include "model/task_system.h"
#include "obs/counters.h"
#include "sim/reference_mpcp.h"

namespace mpcp {
namespace {

/// a (P0) grabs G at t=0 and holds it 5 ticks; b (P1) computes one tick
/// and requests G at t=1, waiting 4 ticks for the handoff at t=5. One
/// contended episode exactly.
TaskSystem contendedOnce() {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "a", .period = 100, .processor = 0,
             .body = Body{}.section(g, 5)});
  b.addTask({.name = "b", .period = 100, .processor = 1,
             .body = Body{}.compute(1).section(g, 1)});
  return std::move(b).build();
}

TEST(Counters, ContendedLockCountsExactlyOneWait) {
  const TaskSystem sys = contendedOnce();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  const obs::Counters& c = r.counters;
  const ResourceId g(0);
  EXPECT_EQ(c.res(g).acquisitions, 2u);     // a's grant + b's handoff grant
  EXPECT_EQ(c.res(g).contended_waits, 1u);  // b parked once
  EXPECT_EQ(c.res(g).handoffs, 1u);         // V() passed G straight to b
  EXPECT_EQ(c.jobs_released, 2u);
  EXPECT_EQ(c.jobs_finished, 2u);
  EXPECT_EQ(c.deadline_misses, 0u);
}

TEST(Counters, UncontendedLockNeverBumpsContended) {
  TaskSystemBuilder b(1);
  const ResourceId s = b.addResource("S");
  b.addTask({.name = "solo", .period = 10, .processor = 0,
             .body = Body{}.compute(1).section(s, 2)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 50});
  EXPECT_EQ(r.counters.res(ResourceId(0)).acquisitions, 5u);  // 5 jobs
  EXPECT_EQ(r.counters.res(ResourceId(0)).contended_waits, 0u);
  EXPECT_EQ(r.counters.res(ResourceId(0)).handoffs, 0u);
}

TEST(Counters, BlockingHistogramRecordsTheWaiterOnly) {
  const TaskSystem sys = contendedOnce();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  const obs::BlockingHistogram& ha = r.counters.task_blocking[0];
  const obs::BlockingHistogram& hb = r.counters.task_blocking[1];
  EXPECT_EQ(ha.samples, 1u);
  EXPECT_EQ(ha.max_blocked, 0);  // a never waits
  EXPECT_EQ(hb.samples, 1u);
  EXPECT_EQ(hb.max_blocked, 4);  // b waits t=1..5 for a's V()
  EXPECT_EQ(hb.total_blocked, 4u);
  // 4 ticks lands in bucket 3 = [4, 8).
  EXPECT_EQ(hb.buckets[3], 1u);
  EXPECT_EQ(obs::BlockingHistogram::bucketOf(4), 3);
}

TEST(Counters, HistogramBucketBoundaries) {
  using H = obs::BlockingHistogram;
  EXPECT_EQ(H::bucketOf(0), 0);
  EXPECT_EQ(H::bucketOf(1), 1);
  EXPECT_EQ(H::bucketOf(2), 2);
  EXPECT_EQ(H::bucketOf(3), 2);
  EXPECT_EQ(H::bucketOf(4), 3);
  EXPECT_EQ(H::bucketOf(Duration{1} << 40), H::kBuckets - 1);
  EXPECT_EQ(H::bucketRange(0), (std::pair<Duration, Duration>{0, 1}));
  EXPECT_EQ(H::bucketRange(3), (std::pair<Duration, Duration>{4, 8}));
  EXPECT_EQ(H::bucketRange(H::kBuckets - 1).second, -1);
}

TEST(Counters, DpcpAgentMigrationsCountEachHop) {
  TaskSystemBuilder b(2);
  const ResourceId g = b.addResource("G");
  b.addTask({.name = "user", .period = 100, .processor = 0,
             .body = Body{}.compute(1).section(g, 2).compute(1)});
  b.addTask({.name = "peer", .period = 200, .phase = 50, .processor = 1,
             .body = Body{}.section(g, 1)});
  b.assignSyncProcessor(g, ProcessorId(1));
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kDpcp, sys, {.horizon = 60});
  // user's one gcs executes on P1: one hop there, one hop back. peer
  // already lives on the sync processor, so its section never migrates.
  EXPECT_EQ(r.counters.migrations, 2u);
}

TEST(Counters, ReadyQueueHighWaterMarkSeesSimultaneousReleases) {
  TaskSystemBuilder b(2);
  b.addTask({.name = "hi", .period = 20, .processor = 0,
             .body = Body{}.compute(2)});
  b.addTask({.name = "lo", .period = 40, .processor = 0,
             .body = Body{}.compute(2)});
  b.addTask({.name = "other", .period = 40, .processor = 1,
             .body = Body{}.compute(1)});
  const TaskSystem sys = std::move(b).build();
  const SimResult r = simulate(ProtocolKind::kNone, sys, {.horizon = 40});
  // Both P0 tasks are released at t=0 and the running job stays in its
  // ready queue, so P0's depth reaches 2; P1 never exceeds 1.
  EXPECT_EQ(r.counters.ready_hwm[0], 2u);
  EXPECT_EQ(r.counters.ready_hwm[1], 1u);
}

TEST(Counters, ReferenceAgreesWithEngineOnLockPath) {
  const TaskSystem sys = contendedOnce();
  const SimResult engine = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  const ReferenceResult ref = simulateMpcpReference(sys, 40);
  const ResourceId g(0);
  EXPECT_EQ(engine.counters.res(g).acquisitions,
            ref.counters.res(g).acquisitions);
  EXPECT_EQ(engine.counters.res(g).contended_waits,
            ref.counters.res(g).contended_waits);
  EXPECT_EQ(engine.counters.res(g).handoffs, ref.counters.res(g).handoffs);
}

TEST(Counters, MergeSumsEverythingButTakesMaxOfHighWaterMarks) {
  obs::Counters a(2, 2, 1);
  obs::Counters b(2, 2, 1);
  a.res(ResourceId(0)).acquisitions = 3;
  b.res(ResourceId(0)).acquisitions = 4;
  a.ready_hwm = {5, 1};
  b.ready_hwm = {2, 7};
  a.recordBlocking(TaskId(0), 3);
  b.recordBlocking(TaskId(0), 100);
  a.preemptions = 2;
  b.preemptions = 5;
  a.merge(b);
  EXPECT_EQ(a.res(ResourceId(0)).acquisitions, 7u);
  EXPECT_EQ(a.ready_hwm[0], 5u);
  EXPECT_EQ(a.ready_hwm[1], 7u);
  EXPECT_EQ(a.task_blocking[0].samples, 2u);
  EXPECT_EQ(a.task_blocking[0].max_blocked, 100);
  EXPECT_EQ(a.preemptions, 7u);
}

TEST(Counters, MergeGrowsToTheLargerDimensions) {
  obs::Counters small(1, 1, 1);
  obs::Counters big(3, 2, 4);
  big.res(ResourceId(2)).handoffs = 9;
  small.merge(big);
  ASSERT_EQ(small.resources.size(), 3u);
  ASSERT_EQ(small.ready_hwm.size(), 2u);
  ASSERT_EQ(small.task_blocking.size(), 4u);
  EXPECT_EQ(small.res(ResourceId(2)).handoffs, 9u);
}

TEST(Counters, SweepAggregateIsIdenticalAtAnyThreadCount) {
  exp::CounterSweepOptions o;
  o.seeds = 8;
  o.seed_base = 42;
  o.horizon = 5'000;
  exp::SweepRunner serial(1);
  exp::SweepRunner wide(8);
  const obs::Counters a = exp::counterSweep(o, &serial);
  const obs::Counters b = exp::counterSweep(o, &wide);
  EXPECT_EQ(obs::renderCounters(a), obs::renderCounters(b));
  EXPECT_GT(a.jobs_released, 0u);
}

TEST(Counters, RenderMentionsEverySection) {
  const TaskSystem sys = contendedOnce();
  const SimResult r = simulate(ProtocolKind::kMpcp, sys, {.horizon = 40});
  const std::string text = obs::renderCounters(r.counters);
  EXPECT_NE(text.find("jobs: released=2"), std::string::npos);
  EXPECT_NE(text.find("locks: acquisitions=2 contended-waits=1 handoffs=1"),
            std::string::npos);
  EXPECT_NE(text.find("S0:"), std::string::npos);
  EXPECT_NE(text.find("tau1:"), std::string::npos);
}

}  // namespace
}  // namespace mpcp
