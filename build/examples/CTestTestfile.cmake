# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_example4 "/root/repo/build/examples/paper_example4")
set_tests_properties(example_paper_example4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_avionics "/root/repo/build/examples/avionics")
set_tests_properties(example_avionics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runtime_locks "/root/repo/build/examples/runtime_locks" "2" "20000")
set_tests_properties(example_runtime_locks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_explorer "/root/repo/build/examples/protocol_explorer" "5" "3" "0.4")
set_tests_properties(example_protocol_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aperiodic_server "/root/repo/build/examples/aperiodic_server" "50" "7")
set_tests_properties(example_aperiodic_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
