# Empty compiler generated dependencies file for paper_example4.
# This may be replaced when dependencies are built.
