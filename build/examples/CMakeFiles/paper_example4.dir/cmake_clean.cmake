file(REMOVE_RECURSE
  "CMakeFiles/paper_example4.dir/paper_example4.cpp.o"
  "CMakeFiles/paper_example4.dir/paper_example4.cpp.o.d"
  "paper_example4"
  "paper_example4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_example4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
