file(REMOVE_RECURSE
  "CMakeFiles/aperiodic_server.dir/aperiodic_server.cpp.o"
  "CMakeFiles/aperiodic_server.dir/aperiodic_server.cpp.o.d"
  "aperiodic_server"
  "aperiodic_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aperiodic_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
