# Empty dependencies file for aperiodic_server.
# This may be replaced when dependencies are built.
