# Empty dependencies file for runtime_locks.
# This may be replaced when dependencies are built.
