file(REMOVE_RECURSE
  "CMakeFiles/runtime_locks.dir/runtime_locks.cpp.o"
  "CMakeFiles/runtime_locks.dir/runtime_locks.cpp.o.d"
  "runtime_locks"
  "runtime_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
