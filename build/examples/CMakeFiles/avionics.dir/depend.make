# Empty dependencies file for avionics.
# This may be replaced when dependencies are built.
