file(REMOVE_RECURSE
  "CMakeFiles/hyperbolic_test.dir/hyperbolic_test.cc.o"
  "CMakeFiles/hyperbolic_test.dir/hyperbolic_test.cc.o.d"
  "hyperbolic_test"
  "hyperbolic_test.pdb"
  "hyperbolic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperbolic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
