file(REMOVE_RECURSE
  "CMakeFiles/protocol_none_pip_test.dir/protocol_none_pip_test.cc.o"
  "CMakeFiles/protocol_none_pip_test.dir/protocol_none_pip_test.cc.o.d"
  "protocol_none_pip_test"
  "protocol_none_pip_test.pdb"
  "protocol_none_pip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_none_pip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
