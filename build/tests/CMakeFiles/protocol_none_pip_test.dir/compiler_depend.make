# Empty compiler generated dependencies file for protocol_none_pip_test.
# This may be replaced when dependencies are built.
