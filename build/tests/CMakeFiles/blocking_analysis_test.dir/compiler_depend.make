# Empty compiler generated dependencies file for blocking_analysis_test.
# This may be replaced when dependencies are built.
