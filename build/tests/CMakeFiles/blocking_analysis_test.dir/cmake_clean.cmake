file(REMOVE_RECURSE
  "CMakeFiles/blocking_analysis_test.dir/blocking_analysis_test.cc.o"
  "CMakeFiles/blocking_analysis_test.dir/blocking_analysis_test.cc.o.d"
  "blocking_analysis_test"
  "blocking_analysis_test.pdb"
  "blocking_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
