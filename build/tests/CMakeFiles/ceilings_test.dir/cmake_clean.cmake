file(REMOVE_RECURSE
  "CMakeFiles/ceilings_test.dir/ceilings_test.cc.o"
  "CMakeFiles/ceilings_test.dir/ceilings_test.cc.o.d"
  "ceilings_test"
  "ceilings_test.pdb"
  "ceilings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceilings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
