# Empty compiler generated dependencies file for ceilings_test.
# This may be replaced when dependencies are built.
