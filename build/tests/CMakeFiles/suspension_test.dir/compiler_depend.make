# Empty compiler generated dependencies file for suspension_test.
# This may be replaced when dependencies are built.
