file(REMOVE_RECURSE
  "CMakeFiles/suspension_test.dir/suspension_test.cc.o"
  "CMakeFiles/suspension_test.dir/suspension_test.cc.o.d"
  "suspension_test"
  "suspension_test.pdb"
  "suspension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
