file(REMOVE_RECURSE
  "CMakeFiles/protocol_pcp_test.dir/protocol_pcp_test.cc.o"
  "CMakeFiles/protocol_pcp_test.dir/protocol_pcp_test.cc.o.d"
  "protocol_pcp_test"
  "protocol_pcp_test.pdb"
  "protocol_pcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
