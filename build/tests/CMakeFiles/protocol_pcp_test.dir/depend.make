# Empty dependencies file for protocol_pcp_test.
# This may be replaced when dependencies are built.
