file(REMOVE_RECURSE
  "CMakeFiles/overheads_test.dir/overheads_test.cc.o"
  "CMakeFiles/overheads_test.dir/overheads_test.cc.o.d"
  "overheads_test"
  "overheads_test.pdb"
  "overheads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overheads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
