# Empty dependencies file for protocol_mpcp_test.
# This may be replaced when dependencies are built.
