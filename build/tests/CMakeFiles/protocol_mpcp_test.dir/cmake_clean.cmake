file(REMOVE_RECURSE
  "CMakeFiles/protocol_mpcp_test.dir/protocol_mpcp_test.cc.o"
  "CMakeFiles/protocol_mpcp_test.dir/protocol_mpcp_test.cc.o.d"
  "protocol_mpcp_test"
  "protocol_mpcp_test.pdb"
  "protocol_mpcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_mpcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
