# Empty dependencies file for property_soundness_test.
# This may be replaced when dependencies are built.
