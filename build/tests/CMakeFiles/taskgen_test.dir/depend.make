# Empty dependencies file for taskgen_test.
# This may be replaced when dependencies are built.
