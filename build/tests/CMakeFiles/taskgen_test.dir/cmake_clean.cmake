file(REMOVE_RECURSE
  "CMakeFiles/taskgen_test.dir/taskgen_test.cc.o"
  "CMakeFiles/taskgen_test.dir/taskgen_test.cc.o.d"
  "taskgen_test"
  "taskgen_test.pdb"
  "taskgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
