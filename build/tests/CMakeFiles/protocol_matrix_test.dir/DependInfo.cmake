
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol_matrix_test.cc" "tests/CMakeFiles/protocol_matrix_test.dir/protocol_matrix_test.cc.o" "gcc" "tests/CMakeFiles/protocol_matrix_test.dir/protocol_matrix_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgen/CMakeFiles/mpcp_taskgen.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpcp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/mpcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mpcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpcp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
