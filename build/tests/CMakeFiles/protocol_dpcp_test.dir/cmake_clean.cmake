file(REMOVE_RECURSE
  "CMakeFiles/protocol_dpcp_test.dir/protocol_dpcp_test.cc.o"
  "CMakeFiles/protocol_dpcp_test.dir/protocol_dpcp_test.cc.o.d"
  "protocol_dpcp_test"
  "protocol_dpcp_test.pdb"
  "protocol_dpcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_dpcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
