# Empty dependencies file for protocol_dpcp_test.
# This may be replaced when dependencies are built.
