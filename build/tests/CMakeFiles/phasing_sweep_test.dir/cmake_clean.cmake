file(REMOVE_RECURSE
  "CMakeFiles/phasing_sweep_test.dir/phasing_sweep_test.cc.o"
  "CMakeFiles/phasing_sweep_test.dir/phasing_sweep_test.cc.o.d"
  "phasing_sweep_test"
  "phasing_sweep_test.pdb"
  "phasing_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phasing_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
