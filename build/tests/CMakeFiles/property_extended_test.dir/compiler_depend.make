# Empty compiler generated dependencies file for property_extended_test.
# This may be replaced when dependencies are built.
