file(REMOVE_RECURSE
  "CMakeFiles/property_extended_test.dir/property_extended_test.cc.o"
  "CMakeFiles/property_extended_test.dir/property_extended_test.cc.o.d"
  "property_extended_test"
  "property_extended_test.pdb"
  "property_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
