# Empty compiler generated dependencies file for report_render_test.
# This may be replaced when dependencies are built.
