file(REMOVE_RECURSE
  "CMakeFiles/report_render_test.dir/report_render_test.cc.o"
  "CMakeFiles/report_render_test.dir/report_render_test.cc.o.d"
  "report_render_test"
  "report_render_test.pdb"
  "report_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
