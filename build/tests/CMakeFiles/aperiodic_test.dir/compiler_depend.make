# Empty compiler generated dependencies file for aperiodic_test.
# This may be replaced when dependencies are built.
