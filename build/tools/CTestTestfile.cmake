# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_tables "/root/repo/build/tools/mpcp_cli" "tables" "/root/repo/examples/workloads/demo.mpcp")
set_tests_properties(cli_tables PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/mpcp_cli" "analyze" "/root/repo/examples/workloads/demo.mpcp")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/mpcp_cli" "simulate" "/root/repo/examples/workloads/demo.mpcp" "--horizon" "2000")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build/tools/mpcp_cli" "generate" "--seed" "3")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_file "/root/repo/build/tools/mpcp_cli" "analyze" "/nonexistent.mpcp")
set_tests_properties(cli_bad_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sensitivity "/root/repo/build/tools/mpcp_cli" "sensitivity" "/root/repo/examples/workloads/demo.mpcp")
set_tests_properties(cli_sensitivity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
