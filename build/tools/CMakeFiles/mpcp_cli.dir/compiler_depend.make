# Empty compiler generated dependencies file for mpcp_cli.
# This may be replaced when dependencies are built.
