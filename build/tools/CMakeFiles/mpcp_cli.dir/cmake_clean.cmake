file(REMOVE_RECURSE
  "CMakeFiles/mpcp_cli.dir/mpcp_cli.cc.o"
  "CMakeFiles/mpcp_cli.dir/mpcp_cli.cc.o.d"
  "mpcp_cli"
  "mpcp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
