file(REMOVE_RECURSE
  "libmpcp_reference.a"
)
