# Empty compiler generated dependencies file for mpcp_reference.
# This may be replaced when dependencies are built.
