file(REMOVE_RECURSE
  "CMakeFiles/mpcp_reference.dir/reference_mpcp.cc.o"
  "CMakeFiles/mpcp_reference.dir/reference_mpcp.cc.o.d"
  "libmpcp_reference.a"
  "libmpcp_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
