file(REMOVE_RECURSE
  "libmpcp_sim.a"
)
