# Empty compiler generated dependencies file for mpcp_sim.
# This may be replaced when dependencies are built.
