file(REMOVE_RECURSE
  "CMakeFiles/mpcp_sim.dir/engine.cc.o"
  "CMakeFiles/mpcp_sim.dir/engine.cc.o.d"
  "CMakeFiles/mpcp_sim.dir/trace_event.cc.o"
  "CMakeFiles/mpcp_sim.dir/trace_event.cc.o.d"
  "libmpcp_sim.a"
  "libmpcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
