file(REMOVE_RECURSE
  "CMakeFiles/mpcp_protocols.dir/dpcp.cc.o"
  "CMakeFiles/mpcp_protocols.dir/dpcp.cc.o.d"
  "CMakeFiles/mpcp_protocols.dir/local_pcp.cc.o"
  "CMakeFiles/mpcp_protocols.dir/local_pcp.cc.o.d"
  "CMakeFiles/mpcp_protocols.dir/none.cc.o"
  "CMakeFiles/mpcp_protocols.dir/none.cc.o.d"
  "CMakeFiles/mpcp_protocols.dir/pcp.cc.o"
  "CMakeFiles/mpcp_protocols.dir/pcp.cc.o.d"
  "CMakeFiles/mpcp_protocols.dir/pip.cc.o"
  "CMakeFiles/mpcp_protocols.dir/pip.cc.o.d"
  "libmpcp_protocols.a"
  "libmpcp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
