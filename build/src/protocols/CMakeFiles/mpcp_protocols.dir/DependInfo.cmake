
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/dpcp.cc" "src/protocols/CMakeFiles/mpcp_protocols.dir/dpcp.cc.o" "gcc" "src/protocols/CMakeFiles/mpcp_protocols.dir/dpcp.cc.o.d"
  "/root/repo/src/protocols/local_pcp.cc" "src/protocols/CMakeFiles/mpcp_protocols.dir/local_pcp.cc.o" "gcc" "src/protocols/CMakeFiles/mpcp_protocols.dir/local_pcp.cc.o.d"
  "/root/repo/src/protocols/none.cc" "src/protocols/CMakeFiles/mpcp_protocols.dir/none.cc.o" "gcc" "src/protocols/CMakeFiles/mpcp_protocols.dir/none.cc.o.d"
  "/root/repo/src/protocols/pcp.cc" "src/protocols/CMakeFiles/mpcp_protocols.dir/pcp.cc.o" "gcc" "src/protocols/CMakeFiles/mpcp_protocols.dir/pcp.cc.o.d"
  "/root/repo/src/protocols/pip.cc" "src/protocols/CMakeFiles/mpcp_protocols.dir/pip.cc.o" "gcc" "src/protocols/CMakeFiles/mpcp_protocols.dir/pip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mpcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mpcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgen/CMakeFiles/mpcp_taskgen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpcp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
