file(REMOVE_RECURSE
  "libmpcp_protocols.a"
)
