# Empty dependencies file for mpcp_protocols.
# This may be replaced when dependencies are built.
