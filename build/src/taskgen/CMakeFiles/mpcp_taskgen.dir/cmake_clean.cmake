file(REMOVE_RECURSE
  "CMakeFiles/mpcp_taskgen.dir/allocation.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/allocation.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/aperiodic.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/aperiodic.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/generator.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/generator.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/group_locks.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/group_locks.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/overheads.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/overheads.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/paper_examples.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/paper_examples.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/scale.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/scale.cc.o.d"
  "CMakeFiles/mpcp_taskgen.dir/uunifast.cc.o"
  "CMakeFiles/mpcp_taskgen.dir/uunifast.cc.o.d"
  "libmpcp_taskgen.a"
  "libmpcp_taskgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_taskgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
