
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskgen/allocation.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/allocation.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/allocation.cc.o.d"
  "/root/repo/src/taskgen/aperiodic.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/aperiodic.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/aperiodic.cc.o.d"
  "/root/repo/src/taskgen/generator.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/generator.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/generator.cc.o.d"
  "/root/repo/src/taskgen/group_locks.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/group_locks.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/group_locks.cc.o.d"
  "/root/repo/src/taskgen/overheads.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/overheads.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/overheads.cc.o.d"
  "/root/repo/src/taskgen/paper_examples.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/paper_examples.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/paper_examples.cc.o.d"
  "/root/repo/src/taskgen/scale.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/scale.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/scale.cc.o.d"
  "/root/repo/src/taskgen/uunifast.cc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/uunifast.cc.o" "gcc" "src/taskgen/CMakeFiles/mpcp_taskgen.dir/uunifast.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mpcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
