file(REMOVE_RECURSE
  "libmpcp_taskgen.a"
)
