# Empty dependencies file for mpcp_taskgen.
# This may be replaced when dependencies are built.
