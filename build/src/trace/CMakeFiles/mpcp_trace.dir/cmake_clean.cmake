file(REMOVE_RECURSE
  "CMakeFiles/mpcp_trace.dir/export.cc.o"
  "CMakeFiles/mpcp_trace.dir/export.cc.o.d"
  "CMakeFiles/mpcp_trace.dir/gantt.cc.o"
  "CMakeFiles/mpcp_trace.dir/gantt.cc.o.d"
  "CMakeFiles/mpcp_trace.dir/invariants.cc.o"
  "CMakeFiles/mpcp_trace.dir/invariants.cc.o.d"
  "libmpcp_trace.a"
  "libmpcp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
