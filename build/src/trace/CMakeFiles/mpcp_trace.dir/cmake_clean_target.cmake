file(REMOVE_RECURSE
  "libmpcp_trace.a"
)
