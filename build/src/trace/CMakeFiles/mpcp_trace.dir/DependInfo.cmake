
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/export.cc" "src/trace/CMakeFiles/mpcp_trace.dir/export.cc.o" "gcc" "src/trace/CMakeFiles/mpcp_trace.dir/export.cc.o.d"
  "/root/repo/src/trace/gantt.cc" "src/trace/CMakeFiles/mpcp_trace.dir/gantt.cc.o" "gcc" "src/trace/CMakeFiles/mpcp_trace.dir/gantt.cc.o.d"
  "/root/repo/src/trace/invariants.cc" "src/trace/CMakeFiles/mpcp_trace.dir/invariants.cc.o" "gcc" "src/trace/CMakeFiles/mpcp_trace.dir/invariants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mpcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mpcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgen/CMakeFiles/mpcp_taskgen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpcp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
