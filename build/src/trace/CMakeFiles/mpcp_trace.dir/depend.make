# Empty dependencies file for mpcp_trace.
# This may be replaced when dependencies are built.
