# Empty dependencies file for mpcp_core.
# This may be replaced when dependencies are built.
