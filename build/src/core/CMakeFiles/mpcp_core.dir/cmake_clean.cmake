file(REMOVE_RECURSE
  "CMakeFiles/mpcp_core.dir/analyzer.cc.o"
  "CMakeFiles/mpcp_core.dir/analyzer.cc.o.d"
  "CMakeFiles/mpcp_core.dir/blocking.cc.o"
  "CMakeFiles/mpcp_core.dir/blocking.cc.o.d"
  "CMakeFiles/mpcp_core.dir/hybrid_blocking.cc.o"
  "CMakeFiles/mpcp_core.dir/hybrid_blocking.cc.o.d"
  "CMakeFiles/mpcp_core.dir/hybrid_protocol.cc.o"
  "CMakeFiles/mpcp_core.dir/hybrid_protocol.cc.o.d"
  "CMakeFiles/mpcp_core.dir/mpcp_protocol.cc.o"
  "CMakeFiles/mpcp_core.dir/mpcp_protocol.cc.o.d"
  "CMakeFiles/mpcp_core.dir/protocol_factory.cc.o"
  "CMakeFiles/mpcp_core.dir/protocol_factory.cc.o.d"
  "CMakeFiles/mpcp_core.dir/simulate.cc.o"
  "CMakeFiles/mpcp_core.dir/simulate.cc.o.d"
  "libmpcp_core.a"
  "libmpcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
