
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cc" "src/core/CMakeFiles/mpcp_core.dir/analyzer.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/analyzer.cc.o.d"
  "/root/repo/src/core/blocking.cc" "src/core/CMakeFiles/mpcp_core.dir/blocking.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/blocking.cc.o.d"
  "/root/repo/src/core/hybrid_blocking.cc" "src/core/CMakeFiles/mpcp_core.dir/hybrid_blocking.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/hybrid_blocking.cc.o.d"
  "/root/repo/src/core/hybrid_protocol.cc" "src/core/CMakeFiles/mpcp_core.dir/hybrid_protocol.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/hybrid_protocol.cc.o.d"
  "/root/repo/src/core/mpcp_protocol.cc" "src/core/CMakeFiles/mpcp_core.dir/mpcp_protocol.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/mpcp_protocol.cc.o.d"
  "/root/repo/src/core/protocol_factory.cc" "src/core/CMakeFiles/mpcp_core.dir/protocol_factory.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/protocol_factory.cc.o.d"
  "/root/repo/src/core/simulate.cc" "src/core/CMakeFiles/mpcp_core.dir/simulate.cc.o" "gcc" "src/core/CMakeFiles/mpcp_core.dir/simulate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/mpcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mpcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgen/CMakeFiles/mpcp_taskgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpcp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
