file(REMOVE_RECURSE
  "libmpcp_core.a"
)
