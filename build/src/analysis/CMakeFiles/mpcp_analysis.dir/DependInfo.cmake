
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocking_dpcp.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/blocking_dpcp.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/blocking_dpcp.cc.o.d"
  "/root/repo/src/analysis/blocking_pcp.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/blocking_pcp.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/blocking_pcp.cc.o.d"
  "/root/repo/src/analysis/breakdown.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/breakdown.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/breakdown.cc.o.d"
  "/root/repo/src/analysis/ceilings.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/ceilings.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/ceilings.cc.o.d"
  "/root/repo/src/analysis/profiles.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/profiles.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/profiles.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/schedulability.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/schedulability.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/schedulability.cc.o.d"
  "/root/repo/src/analysis/sensitivity.cc" "src/analysis/CMakeFiles/mpcp_analysis.dir/sensitivity.cc.o" "gcc" "src/analysis/CMakeFiles/mpcp_analysis.dir/sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mpcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgen/CMakeFiles/mpcp_taskgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
