file(REMOVE_RECURSE
  "CMakeFiles/mpcp_analysis.dir/blocking_dpcp.cc.o"
  "CMakeFiles/mpcp_analysis.dir/blocking_dpcp.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/blocking_pcp.cc.o"
  "CMakeFiles/mpcp_analysis.dir/blocking_pcp.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/breakdown.cc.o"
  "CMakeFiles/mpcp_analysis.dir/breakdown.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/ceilings.cc.o"
  "CMakeFiles/mpcp_analysis.dir/ceilings.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/profiles.cc.o"
  "CMakeFiles/mpcp_analysis.dir/profiles.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/report.cc.o"
  "CMakeFiles/mpcp_analysis.dir/report.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/schedulability.cc.o"
  "CMakeFiles/mpcp_analysis.dir/schedulability.cc.o.d"
  "CMakeFiles/mpcp_analysis.dir/sensitivity.cc.o"
  "CMakeFiles/mpcp_analysis.dir/sensitivity.cc.o.d"
  "libmpcp_analysis.a"
  "libmpcp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
