file(REMOVE_RECURSE
  "libmpcp_analysis.a"
)
