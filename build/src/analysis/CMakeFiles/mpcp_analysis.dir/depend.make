# Empty dependencies file for mpcp_analysis.
# This may be replaced when dependencies are built.
