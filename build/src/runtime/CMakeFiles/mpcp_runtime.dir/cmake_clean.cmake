file(REMOVE_RECURSE
  "CMakeFiles/mpcp_runtime.dir/priority_mutex.cc.o"
  "CMakeFiles/mpcp_runtime.dir/priority_mutex.cc.o.d"
  "libmpcp_runtime.a"
  "libmpcp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
