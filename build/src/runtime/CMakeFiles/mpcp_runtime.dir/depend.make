# Empty dependencies file for mpcp_runtime.
# This may be replaced when dependencies are built.
