file(REMOVE_RECURSE
  "libmpcp_runtime.a"
)
