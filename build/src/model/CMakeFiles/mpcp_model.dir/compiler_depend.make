# Empty compiler generated dependencies file for mpcp_model.
# This may be replaced when dependencies are built.
