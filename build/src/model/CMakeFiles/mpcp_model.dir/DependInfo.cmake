
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/sections.cc" "src/model/CMakeFiles/mpcp_model.dir/sections.cc.o" "gcc" "src/model/CMakeFiles/mpcp_model.dir/sections.cc.o.d"
  "/root/repo/src/model/serialize.cc" "src/model/CMakeFiles/mpcp_model.dir/serialize.cc.o" "gcc" "src/model/CMakeFiles/mpcp_model.dir/serialize.cc.o.d"
  "/root/repo/src/model/task_system.cc" "src/model/CMakeFiles/mpcp_model.dir/task_system.cc.o" "gcc" "src/model/CMakeFiles/mpcp_model.dir/task_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
