file(REMOVE_RECURSE
  "CMakeFiles/mpcp_model.dir/sections.cc.o"
  "CMakeFiles/mpcp_model.dir/sections.cc.o.d"
  "CMakeFiles/mpcp_model.dir/serialize.cc.o"
  "CMakeFiles/mpcp_model.dir/serialize.cc.o.d"
  "CMakeFiles/mpcp_model.dir/task_system.cc.o"
  "CMakeFiles/mpcp_model.dir/task_system.cc.o.d"
  "libmpcp_model.a"
  "libmpcp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
