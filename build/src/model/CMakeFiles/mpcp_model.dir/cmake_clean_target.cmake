file(REMOVE_RECURSE
  "libmpcp_model.a"
)
