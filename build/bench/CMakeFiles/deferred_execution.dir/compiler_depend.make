# Empty compiler generated dependencies file for deferred_execution.
# This may be replaced when dependencies are built.
