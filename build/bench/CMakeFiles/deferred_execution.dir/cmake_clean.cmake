file(REMOVE_RECURSE
  "CMakeFiles/deferred_execution.dir/deferred_execution.cc.o"
  "CMakeFiles/deferred_execution.dir/deferred_execution.cc.o.d"
  "deferred_execution"
  "deferred_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
