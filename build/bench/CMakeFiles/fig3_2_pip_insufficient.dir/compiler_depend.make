# Empty compiler generated dependencies file for fig3_2_pip_insufficient.
# This may be replaced when dependencies are built.
