file(REMOVE_RECURSE
  "CMakeFiles/fig3_2_pip_insufficient.dir/fig3_2_pip_insufficient.cc.o"
  "CMakeFiles/fig3_2_pip_insufficient.dir/fig3_2_pip_insufficient.cc.o.d"
  "fig3_2_pip_insufficient"
  "fig3_2_pip_insufficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_2_pip_insufficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
