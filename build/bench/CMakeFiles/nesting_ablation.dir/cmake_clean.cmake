file(REMOVE_RECURSE
  "CMakeFiles/nesting_ablation.dir/nesting_ablation.cc.o"
  "CMakeFiles/nesting_ablation.dir/nesting_ablation.cc.o.d"
  "nesting_ablation"
  "nesting_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nesting_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
