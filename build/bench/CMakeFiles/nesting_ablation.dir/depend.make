# Empty dependencies file for nesting_ablation.
# This may be replaced when dependencies are built.
