file(REMOVE_RECURSE
  "CMakeFiles/blocking_factors.dir/blocking_factors.cc.o"
  "CMakeFiles/blocking_factors.dir/blocking_factors.cc.o.d"
  "blocking_factors"
  "blocking_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
