# Empty dependencies file for blocking_factors.
# This may be replaced when dependencies are built.
