# Empty dependencies file for allocation_study.
# This may be replaced when dependencies are built.
