file(REMOVE_RECURSE
  "CMakeFiles/allocation_study.dir/allocation_study.cc.o"
  "CMakeFiles/allocation_study.dir/allocation_study.cc.o.d"
  "allocation_study"
  "allocation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
