# Empty compiler generated dependencies file for runtime_locks_bench.
# This may be replaced when dependencies are built.
