file(REMOVE_RECURSE
  "CMakeFiles/runtime_locks_bench.dir/runtime_locks.cc.o"
  "CMakeFiles/runtime_locks_bench.dir/runtime_locks.cc.o.d"
  "runtime_locks_bench"
  "runtime_locks_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_locks_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
