# Empty dependencies file for fig3_1_remote_blocking.
# This may be replaced when dependencies are built.
