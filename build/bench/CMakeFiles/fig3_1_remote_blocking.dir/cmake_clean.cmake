file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_remote_blocking.dir/fig3_1_remote_blocking.cc.o"
  "CMakeFiles/fig3_1_remote_blocking.dir/fig3_1_remote_blocking.cc.o.d"
  "fig3_1_remote_blocking"
  "fig3_1_remote_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_remote_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
