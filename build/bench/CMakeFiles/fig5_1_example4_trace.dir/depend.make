# Empty dependencies file for fig5_1_example4_trace.
# This may be replaced when dependencies are built.
