file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_example4_trace.dir/fig5_1_example4_trace.cc.o"
  "CMakeFiles/fig5_1_example4_trace.dir/fig5_1_example4_trace.cc.o.d"
  "fig5_1_example4_trace"
  "fig5_1_example4_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_example4_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
