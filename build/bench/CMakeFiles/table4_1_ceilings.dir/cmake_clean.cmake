file(REMOVE_RECURSE
  "CMakeFiles/table4_1_ceilings.dir/table4_1_ceilings.cc.o"
  "CMakeFiles/table4_1_ceilings.dir/table4_1_ceilings.cc.o.d"
  "table4_1_ceilings"
  "table4_1_ceilings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_1_ceilings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
