# Empty compiler generated dependencies file for table4_1_ceilings.
# This may be replaced when dependencies are built.
