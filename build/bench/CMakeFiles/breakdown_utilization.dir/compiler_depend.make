# Empty compiler generated dependencies file for breakdown_utilization.
# This may be replaced when dependencies are built.
