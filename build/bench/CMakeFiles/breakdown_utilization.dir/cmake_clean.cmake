file(REMOVE_RECURSE
  "CMakeFiles/breakdown_utilization.dir/breakdown_utilization.cc.o"
  "CMakeFiles/breakdown_utilization.dir/breakdown_utilization.cc.o.d"
  "breakdown_utilization"
  "breakdown_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
