file(REMOVE_RECURSE
  "CMakeFiles/schedulability.dir/schedulability.cc.o"
  "CMakeFiles/schedulability.dir/schedulability.cc.o.d"
  "schedulability"
  "schedulability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedulability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
