# Empty compiler generated dependencies file for schedulability.
# This may be replaced when dependencies are built.
