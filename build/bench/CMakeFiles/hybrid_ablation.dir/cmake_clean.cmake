file(REMOVE_RECURSE
  "CMakeFiles/hybrid_ablation.dir/hybrid_ablation.cc.o"
  "CMakeFiles/hybrid_ablation.dir/hybrid_ablation.cc.o.d"
  "hybrid_ablation"
  "hybrid_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
