# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mpcp_vs_dpcp.
