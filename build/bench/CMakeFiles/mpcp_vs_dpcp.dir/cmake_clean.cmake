file(REMOVE_RECURSE
  "CMakeFiles/mpcp_vs_dpcp.dir/mpcp_vs_dpcp.cc.o"
  "CMakeFiles/mpcp_vs_dpcp.dir/mpcp_vs_dpcp.cc.o.d"
  "mpcp_vs_dpcp"
  "mpcp_vs_dpcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcp_vs_dpcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
