# Empty compiler generated dependencies file for mpcp_vs_dpcp.
# This may be replaced when dependencies are built.
