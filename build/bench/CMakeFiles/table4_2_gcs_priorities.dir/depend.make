# Empty dependencies file for table4_2_gcs_priorities.
# This may be replaced when dependencies are built.
