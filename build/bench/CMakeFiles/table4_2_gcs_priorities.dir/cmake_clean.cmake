file(REMOVE_RECURSE
  "CMakeFiles/table4_2_gcs_priorities.dir/table4_2_gcs_priorities.cc.o"
  "CMakeFiles/table4_2_gcs_priorities.dir/table4_2_gcs_priorities.cc.o.d"
  "table4_2_gcs_priorities"
  "table4_2_gcs_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_2_gcs_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
