// Shared command-line helpers for the tools/ binaries.
//
// Bare std::stoi/std::stoull on user input abort with an unhelpful
// "std::invalid_argument: stoi" (or worse, silently accept "12abc" as
// 12). These helpers parse the full token with std::from_chars / strtod,
// name the offending flag, and enforce caller-declared ranges; mains
// catch UsageError, print the message plus usage to stderr, and exit 2.
#pragma once

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcp::cli {

/// A malformed command line. Not a ConfigError: the input file may be
/// fine, it is the invocation that needs fixing, so the handler reprints
/// usage.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

template <typename T>
T parseIntegral(const std::string& flag, const std::string& text, T min,
                T max) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (text.empty() || ec == std::errc::invalid_argument || ptr != end) {
    throw UsageError(flag + " expects an integer, got '" + text + "'");
  }
  if (ec == std::errc::result_out_of_range || value < min || value > max) {
    throw UsageError(flag + "=" + text + " is out of range [" +
                     std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return value;
}

}  // namespace detail

/// Parses a signed integer; the whole token must be consumed.
inline std::int64_t parseInt(
    const std::string& flag, const std::string& text,
    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
  return detail::parseIntegral<std::int64_t>(flag, text, min, max);
}

/// Parses an unsigned integer (rejects "-1" outright rather than
/// wrapping it to 2^64-1 the way std::stoull does).
inline std::uint64_t parseUint(
    const std::string& flag, const std::string& text,
    std::uint64_t min = 0,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  return detail::parseIntegral<std::uint64_t>(flag, text, min, max);
}

/// Parses a double; the whole token must be consumed.
inline double parseDouble(
    const std::string& flag, const std::string& text,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max()) {
  if (text.empty()) {
    throw UsageError(flag + " expects a number, got ''");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    throw UsageError(flag + " expects a number, got '" + text + "'");
  }
  if (value < min || value > max) {
    throw UsageError(flag + "=" + text + " is out of range [" +
                     std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return value;
}

/// Fails fast when `path` cannot be written. Opens in append mode (never
/// truncates an existing file) and removes the file again if the probe
/// created it. Call BEFORE launching a sweep/campaign, so hours of work
/// never die on a typo'd output path (UsageError -> exit 2).
inline void probeWritableFile(const std::string& flag,
                              const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const bool existed = fs::exists(path, ec);
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw UsageError(flag + ": cannot write '" + path + "'");
  }
  probe.close();
  if (!existed) std::remove(path.c_str());
}

/// Accumulates one sweep CSV row ("seed,v1,...,vN") into totals[0..N).
/// Rows come back through the campaign journal — they may have crossed a
/// crash, a kill -9, or a partial flush — so every field is parsed
/// checked and the column count is enforced before anything is added. A
/// bad row throws std::runtime_error naming the row, the column, and the
/// offending text (NOT UsageError: the invocation was fine, the journal
/// data is bad, so the handler must not reprint usage).
inline void accumulateSweepTotals(const std::string& payload,
                                  std::uint64_t* totals,
                                  std::size_t columns) {
  std::istringstream row(payload);
  std::string field;
  std::vector<std::uint64_t> values;
  for (std::size_t col = 0; std::getline(row, field, ','); ++col) {
    std::uint64_t value{};
    const char* begin = field.data();
    const char* end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (field.empty() || ec != std::errc() || ptr != end) {
      throw std::runtime_error("malformed sweep row '" + payload +
                               "': column " + std::to_string(col) +
                               " is not an unsigned integer: '" + field + "'");
    }
    values.push_back(value);
  }
  if (values.size() != columns + 1) {  // +1: the leading seed column
    throw std::runtime_error("malformed sweep row '" + payload +
                             "': expected " + std::to_string(columns + 1) +
                             " comma-separated columns, got " +
                             std::to_string(values.size()));
  }
  for (std::size_t i = 0; i < columns; ++i) totals[i] += values[i + 1];
}

/// Fails fast when `dir` cannot be created or written into. Probes with
/// a throwaway file that is removed again.
inline void probeWritableDir(const std::string& flag,
                             const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; the probe decides
  const std::string probe_path = dir + "/.mpcp-write-probe";
  std::ofstream probe(probe_path);
  if (!probe) {
    throw UsageError(flag + ": cannot write into directory '" + dir + "'");
  }
  probe.close();
  std::remove(probe_path.c_str());
}

}  // namespace mpcp::cli
