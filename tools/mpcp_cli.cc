// mpcp_cli — drive the library from the shell.
//
//   mpcp_cli tables   <file>
//   mpcp_cli analyze  <file> [--protocol PROTO] [--no-deferred]
//                            [--paper-literal-f5]
//   mpcp_cli simulate <file> [--protocol PROTO]
//                            [--horizon N] [--gantt [END]] [--narrative]
//                            [--csv PREFIX] [--perfetto FILE]
//
// PROTO names come from the protocol registry
// (core/protocol_registry.h): none, none-prio, pip, pcp, mpcp, dpcp,
// hybrid, spin-fifo, spin-prio.
//   mpcp_cli stats    <file> [--protocol ...] [--horizon N] [--out FILE]
//   mpcp_cli stats    --sweep [--protocol ...] [--seeds N] [--seed N]
//                     [--horizon N] [generator knobs as for generate]
//   mpcp_cli sweep    [--protocol ...] [--seeds N] [--seed N] [--horizon N]
//                     [--out FILE.csv] [--journal FILE] [--resume]
//                     [--isolate] [--wall-limit S] [--rss-limit-mb N]
//                     [--retries N] [--retry-base-ms N] [--jitter-seed N]
//   mpcp_cli generate [--seed N] [--processors N] [--tasks-per-proc N]
//                     [--util X] [--resources N] [--cs-max N]
//                     [--suspend-prob X]
//   mpcp_cli faults   <file> [--plan SPEC | --random N [--seed S]]
//                            [--policy none|csv] [--grace X]
//                            [--watchdog-timeout N] [--protocol ...]
//                            [--horizon N] [--counters] [--perfetto FILE]
//
// Task-system files use the format documented in model/serialize.h.
// `generate` writes one to stdout, so the commands compose:
//   mpcp_cli generate --seed 7 > w.mpcp && mpcp_cli analyze w.mpcp
#include <array>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/report.h"
#include "analysis/sensitivity.h"
#include "common/rng.h"
#include "common/strf.h"
#include "core/analyzer.h"
#include "core/protocol_registry.h"
#include "core/simulate.h"
#include "exec/campaign.h"
#include "exec/fabric/fleet_campaign.h"
#include "exec/interrupt.h"
#include "exec/subprocess.h"
#include "exp/counter_sweep.h"
#include "fault/plan.h"
#include "model/serialize.h"
#include "taskgen/generator.h"
#include "cli_util.h"
#include "trace/export.h"
#include "trace/gantt.h"
#include "trace/invariants.h"
#include "trace/perfetto.h"

using namespace mpcp;

namespace {

int usage() {
  std::cerr <<
      "usage: mpcp_cli <tables|analyze|simulate|stats|sweep|generate|"
      "sensitivity|faults> [args]\n"
      "  (--protocol PROTO is one of: none|none-prio|pip|pcp|mpcp|dpcp|\n"
      "   hybrid|spin-fifo|spin-prio)\n"
      "  tables   <file>\n"
      "  analyze  <file> [--protocol PROTO] [--no-deferred]\n"
      "                  [--paper-literal-f5]\n"
      "  simulate <file> [--protocol PROTO] [--horizon N]\n"
      "                  [--gantt [END]] [--narrative] [--csv PREFIX]\n"
      "                  [--perfetto FILE]\n"
      "  stats    <file> [--protocol PROTO] [--horizon N]\n"
      "           [--out FILE]\n"
      "  stats    --sweep [--protocol ...] [--seeds N] [--seed N]\n"
      "           [--horizon N] [--out FILE]\n"
      "           [generator knobs as for generate]\n"
      "  sweep    [--protocol ...] [--seeds N] [--seed N] [--horizon N]\n"
      "           [generator knobs as for generate] [--out FILE.csv]\n"
      "           [--journal FILE] [--resume] [--isolate]\n"
      "           [--wall-limit SECONDS] [--rss-limit-mb N]\n"
      "           [--retries N] [--retry-base-ms N] [--jitter-seed N]\n"
      "           fleet mode: [--workers N] [--listen unix:PATH|HOST:PORT]\n"
      "           [--shard-dir DIR] [--worker-bin PATH] [--lease-chunk N]\n"
      "           [--heartbeat-ms N] [--lease-deadline-ms N]\n"
      "           [--fleet-grace-ms N] [--max-attempts N]\n"
      "           [--chaos SPEC] [--takeover]\n"
      "           (testing aids: [--per-run-sleep-ms N] [--crash-seed K])\n"
      "  generate [--seed N] [--processors N] [--tasks-per-proc N]\n"
      "           [--util X] [--resources N] [--cs-max N] [--suspend-prob X]\n"
      "  sensitivity <file> [--protocol PROTO]\n"
      "  faults   <file> [--plan SPEC | --random N [--seed S]]\n"
      "           [--policy none|budget-enforce,job-abort,skip-next-release,\n"
      "            watchdog] [--grace X] [--watchdog-timeout N]\n"
      "           [--protocol ...] [--horizon N] [--counters]\n"
      "           [--perfetto FILE]\n";
  return 2;
}

TaskSystem load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open '" + path + "'");
  return parseTaskSystem(in);
}

ProtocolKind protocolFromName(const std::string& name) {
  // Registry lookup: an unknown name throws ConfigError listing every
  // known protocol (main prints it and exits 2, no usage reprint — the
  // invocation shape was fine, the name was not).
  return protocolKindFromName(name);
}

/// Pull "--flag value" / "--flag" options out of argv.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // value "" = bare flag

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() || it->second.empty() ? fallback : it->second;
  }
};

Args parseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string value;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        value = argv[++i];
      }
      args.options[a.substr(2)] = value;
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int cmdTables(const Args& args) {
  if (args.positional.empty()) return usage();
  const TaskSystem sys = load(args.positional[0]);
  const PriorityTables tables(sys);
  std::cout << "=== priority ceilings ===\n"
            << renderCeilingTable(sys, tables)
            << "\n=== gcs execution priorities ===\n"
            << renderGcsPriorityTable(sys, tables);
  return 0;
}

int cmdAnalyze(const Args& args) {
  if (args.positional.empty()) return usage();
  const TaskSystem sys = load(args.positional[0]);
  const ProtocolKind kind = protocolFromName(args.get("protocol", "mpcp"));
  AnalyzerOptions options;
  options.mpcp.include_deferred_execution = !args.has("no-deferred");
  options.dpcp.include_deferred_execution = !args.has("no-deferred");
  options.mpcp.paper_literal_factor5 = args.has("paper-literal-f5");
  const ProtocolAnalysis analysis = analyzeUnder(kind, sys, options);
  std::cout << "protocol: " << toString(kind) << "\n"
            << renderScheduleReport(sys, analysis.report);
  return analysis.report.rta_all ? 0 : 1;
}

int cmdSimulate(const Args& args) {
  if (args.positional.empty()) return usage();
  const TaskSystem sys = load(args.positional[0]);
  const ProtocolKind kind = protocolFromName(args.get("protocol", "mpcp"));
  // Probe output paths before simulating, so a typo'd path fails in
  // milliseconds instead of after the run.
  const std::string csv_prefix = args.get("csv", "out");
  if (args.has("csv")) {
    for (const char* suffix : {"_jobs.csv", "_trace.csv", "_segments.csv"}) {
      cli::probeWritableFile("--csv", csv_prefix + suffix);
    }
  }
  const std::string perfetto_path = args.get("perfetto", "trace.perfetto.json");
  if (args.has("perfetto")) {
    cli::probeWritableFile("--perfetto", perfetto_path);
  }
  SimConfig config;
  config.horizon =
      cli::parseInt("--horizon", args.get("horizon", "0"), 0, kTimeInfinity);
  const SimResult r = simulate(kind, sys, config);

  std::cout << "protocol " << toString(kind) << ", horizon " << r.horizon
            << ": " << (r.any_deadline_miss ? "DEADLINE MISS" : "no misses")
            << "\n";
  for (const TaskStats& st : r.per_task) {
    const Task& t = sys.task(st.task);
    std::cout << "  " << t.name << ": jobs=" << st.jobs_finished
              << " max-response=" << st.max_response
              << " max-blocking=" << st.max_blocked
              << " misses=" << st.deadline_misses << "\n";
  }
  const InvariantReport rep = checkMutualExclusion(sys, r);
  if (!rep.ok()) {
    std::cout << "INVARIANT VIOLATION: " << rep.violations.front() << "\n";
  }

  if (args.has("gantt")) {
    GanttOptions g;
    const std::string end = args.get("gantt", "");
    if (!end.empty()) g.end = cli::parseInt("--gantt", end, 1, kTimeInfinity);
    std::cout << "\n" << renderGantt(sys, r, g);
  }
  if (args.has("narrative")) {
    std::cout << "\n" << renderNarrative(sys, r);
  }
  if (args.has("csv")) {
    std::ofstream jobs(csv_prefix + "_jobs.csv");
    writeJobsCsv(jobs, sys, r);
    std::ofstream trace(csv_prefix + "_trace.csv");
    writeTraceCsv(trace, sys, r);
    std::ofstream segs(csv_prefix + "_segments.csv");
    writeSegmentsCsv(segs, sys, r);
    std::cout << "wrote " << csv_prefix << "_{jobs,trace,segments}.csv\n";
  }
  if (args.has("perfetto")) {
    std::ofstream out(perfetto_path);
    if (!out) throw ConfigError("cannot write '" + perfetto_path + "'");
    writePerfettoTrace(out, sys, r);
    std::cout << "wrote " << perfetto_path << " (load in ui.perfetto.dev)\n";
  }
  return r.any_deadline_miss ? 1 : 0;
}

int cmdSensitivity(const Args& args) {
  if (args.positional.empty()) return usage();
  const TaskSystem sys = load(args.positional[0]);
  const ProtocolKind kind = protocolFromName(args.get("protocol", "mpcp"));
  const auto result = sensitivityPerTask(sys, [kind](const TaskSystem& s) {
    return analyzeUnder(kind, s).report.rta_all;
  });
  std::cout << "per-task demand headroom under " << toString(kind)
            << " (RTA):\n";
  for (const TaskSensitivity& s : result) {
    const Task& t = sys.task(s.task);
    std::cout << "  " << t.name << ": C=" << t.wcet << " can scale x"
              << s.max_scale << " (to C=" << s.wcet_at_max << ")";
    if (s.max_scale < 1.0) std::cout << "  <-- BOTTLENECK";
    std::cout << "\n";
  }
  return 0;
}

/// Generator knobs shared by `generate` and `stats --sweep`. Counts
/// that make no sense non-positive (processors, tasks) are rejected
/// here rather than deep inside the generator.
WorkloadParams workloadParamsFromArgs(const Args& args) {
  WorkloadParams p;
  p.processors = static_cast<int>(
      cli::parseInt("--processors", args.get("processors", "4"), 1, 4096));
  p.tasks_per_processor = static_cast<int>(cli::parseInt(
      "--tasks-per-proc", args.get("tasks-per-proc", "3"), 1, 4096));
  p.utilization_per_processor =
      cli::parseDouble("--util", args.get("util", "0.4"), 0.0, 8.0);
  p.global_resources = static_cast<int>(
      cli::parseInt("--resources", args.get("resources", "2"), 0, 4096));
  p.cs_max = cli::parseInt("--cs-max", args.get("cs-max", "20"), 1, 1'000'000);
  p.suspension_prob = cli::parseDouble("--suspend-prob",
                                       args.get("suspend-prob", "0"), 0.0, 1.0);
  return p;
}

/// Writes `text` to `path`, or stdout when `path` is empty.
void emitText(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::cout << text;
    return;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write '" + path + "'");
  out << text;
}

int cmdStats(const Args& args) {
  const ProtocolKind kind = protocolFromName(args.get("protocol", "mpcp"));
  const std::string out_path = args.get("out", "");
  if (args.has("out")) {
    if (out_path.empty()) throw cli::UsageError("--out needs a file path");
    cli::probeWritableFile("--out", out_path);
  }
  if (args.has("sweep")) {
    exp::CounterSweepOptions o;
    o.protocol = kind;
    o.params = workloadParamsFromArgs(args);
    o.seeds = static_cast<int>(
        cli::parseInt("--seeds", args.get("seeds", "16"), 1, 1'000'000));
    o.seed_base = cli::parseUint("--seed", args.get("seed", "1"));
    o.horizon =
        cli::parseInt("--horizon", args.get("horizon", "20000"), 1,
                      kTimeInfinity);
    const obs::Counters total = exp::counterSweep(o);
    emitText(out_path,
             strf("protocol ", toString(kind), ", seeds ", o.seeds, " (base ",
                  o.seed_base, "), horizon ", o.horizon, " per run:\n",
                  obs::renderCounters(total)));
    return 0;
  }
  if (args.positional.empty()) {
    throw cli::UsageError("stats needs a task-system file or --sweep");
  }
  const TaskSystem sys = load(args.positional[0]);
  SimConfig config;
  config.horizon =
      cli::parseInt("--horizon", args.get("horizon", "0"), 0, kTimeInfinity);
  config.record_trace = false;  // counters are always on; skip the trace
  const SimResult r = simulate(kind, sys, config);
  emitText(out_path, strf("protocol ", toString(kind), ", horizon ", r.horizon,
                          ":\n", renderCountersReport(sys, r.counters)));
  return 0;
}

/// The journaled, crash-isolated seed sweep (the ISSUE 5 campaign loop).
/// Each seed generates a workload under the shared per-seed RNG
/// convention, runs RTA plus a traceless simulation, and serializes one
/// CSV row; rows cross the executor boundary as strings so the body can
/// run in a forked worker under --isolate. `done` rows from a resumed
/// journal are reused verbatim, which is what makes the aggregate CSV
/// byte-identical to an uninterrupted sweep.
///
/// Testing aids --per-run-sleep-ms / --crash-seed exist for the
/// kill-and-resume and crash-isolation smoke tests; they never affect row
/// bytes, so they are excluded from the config fingerprint.
int cmdSweep(const Args& args) {
  const ProtocolKind kind = protocolFromName(args.get("protocol", "mpcp"));
  const WorkloadParams params = workloadParamsFromArgs(args);
  const int seeds = static_cast<int>(
      cli::parseInt("--seeds", args.get("seeds", "16"), 1, 1'000'000));
  const std::uint64_t seed_base =
      cli::parseUint("--seed", args.get("seed", "1"));
  const Time horizon = cli::parseInt("--horizon", args.get("horizon", "20000"),
                                     1, kTimeInfinity);

  // Fail fast on unwritable outputs: probe both files before any run.
  const std::string out_path = args.get("out", "");
  if (args.has("out")) {
    if (out_path.empty()) throw cli::UsageError("--out needs a file path");
    cli::probeWritableFile("--out", out_path);
  }

  exec::CampaignOptions copt;
  copt.journal_path = args.get("journal", "");
  copt.resume = args.has("resume");
  if (args.has("journal")) {
    if (copt.journal_path.empty()) {
      throw cli::UsageError("--journal needs a file path");
    }
    cli::probeWritableFile("--journal", copt.journal_path);
  }
  // Everything that shapes row bytes goes into the fingerprint; execution
  // strategy (journal, isolate, retries, testing aids) deliberately not.
  copt.config_fingerprint = strf(
      "sweep-v1 protocol=", toString(kind), " seeds=", seeds,
      " seed=", seed_base, " horizon=", horizon,
      " processors=", params.processors,
      " tasks-per-proc=", params.tasks_per_processor,
      " util=", params.utilization_per_processor,
      " resources=", params.global_resources, " cs-max=", params.cs_max,
      " suspend-prob=", params.suspension_prob);

  copt.retry.max_attempts =
      1 + static_cast<int>(
              cli::parseInt("--retries", args.get("retries", "0"), 0, 16));
  copt.retry.base_delay = std::chrono::milliseconds(
      cli::parseInt("--retry-base-ms", args.get("retry-base-ms", "0"), 0,
                    60'000));
  copt.retry.jitter_seed =
      cli::parseUint("--jitter-seed", args.get("jitter-seed", "1"));

  exec::SubprocessLimits limits;
  limits.wall_limit_s = cli::parseDouble(
      "--wall-limit", args.get("wall-limit", "0"), 0.0, 86'400.0);
  limits.rss_limit_mb = cli::parseUint("--rss-limit-mb",
                                       args.get("rss-limit-mb", "0"), 0,
                                       1'048'576);
  const bool isolate = args.has("isolate") || limits.wall_limit_s > 0 ||
                       limits.rss_limit_mb > 0;
  exec::SubprocessExecutor subprocess(limits);
  if (isolate) copt.executor = &subprocess;

  const int sleep_ms = static_cast<int>(cli::parseInt(
      "--per-run-sleep-ms", args.get("per-run-sleep-ms", "0"), 0, 60'000));
  const std::int64_t crash_seed = cli::parseInt(
      "--crash-seed", args.get("crash-seed", "-1"), -1, 1'000'000);

  const auto body = [=](int s, Rng& rng) -> std::string {
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    if (crash_seed >= 0 && s == crash_seed) std::raise(SIGKILL);
    const TaskSystem sys = generateWorkload(params, rng);
    const ProtocolAnalysis analysis = analyzeUnder(kind, sys);
    SimConfig config;
    config.horizon = horizon;
    config.record_trace = false;
    const SimResult r = simulate(kind, sys, config);
    const obs::Counters& c = r.counters;
    return strf(seed_base + static_cast<std::uint64_t>(s), ',',
                analysis.report.rta_all ? 1 : 0, ',', c.deadline_misses, ',',
                c.jobs_released, ',', c.jobs_finished, ',',
                c.totalAcquisitions(), ',', c.totalContendedWaits(), ',',
                c.totalHandoffs(), ',', c.preemptions, ',', c.migrations);
  };

  // Fleet mode (ISSUE 9): --workers/--listen hand the seed range to the
  // distributed coordinator instead of the local pool. Row bytes, CSV
  // assembly, and the journal fingerprint are shared with the serial
  // path, which is what the byte-identical merge contract leans on.
  const bool fleet_mode = args.has("workers") || args.has("listen");
  if (!fleet_mode && (args.has("chaos") || args.has("takeover"))) {
    throw cli::UsageError(
        "--chaos and --takeover are fleet-mode flags; add --workers or "
        "--listen");
  }
  exec::CampaignOutcome outcome;
  if (fleet_mode) {
    if (isolate) {
      throw cli::UsageError(
          "--isolate is implicit in fleet mode (workers are processes); "
          "drop it or the fleet flags");
    }
    if (crash_seed >= 0) {
      throw cli::UsageError(
          "--crash-seed is in-process only; fleet chaos uses the "
          "MPCP_FABRIC_CRASH_KEY / MPCP_FABRIC_WEDGE_KEY environment aids");
    }
    exec::fabric::FleetCampaignOptions fopt;
    fopt.journal_path = copt.journal_path;
    fopt.resume = copt.resume;
    fopt.takeover = args.has("takeover");
    fopt.config_fingerprint = copt.config_fingerprint;
    fopt.shard_dir = args.get(
        "shard-dir", copt.journal_path.empty()
                         ? std::string("mpcp-fleet-shards")
                         : copt.journal_path + ".shards");
    // Probe the shard directory up front: worker logs, shard journals,
    // and the default unix socket all land there (exit 2 on failure).
    cli::probeWritableDir("--shard-dir", fopt.shard_dir);
    fopt.fleet.listen = args.get("listen", "");
    fopt.fleet.spawn_workers = static_cast<int>(
        cli::parseInt("--workers", args.get("workers", "0"), 0, 256));
    fopt.fleet.worker_bin = args.get("worker-bin", "");
    fopt.fleet.lease_chunk = static_cast<int>(
        cli::parseInt("--lease-chunk", args.get("lease-chunk", "0"), 0, 4096));
    fopt.fleet.timing.heartbeat_ms = static_cast<int>(cli::parseInt(
        "--heartbeat-ms", args.get("heartbeat-ms", "500"), 10, 60'000));
    fopt.fleet.timing.lease_deadline_ms = static_cast<int>(
        cli::parseInt("--lease-deadline-ms",
                      args.get("lease-deadline-ms", "5000"), 100, 600'000));
    fopt.fleet.timing.degrade_after_ms = static_cast<int>(cli::parseInt(
        "--fleet-grace-ms", args.get("fleet-grace-ms", "3000"), 100,
        600'000));
    fopt.fleet.max_attempts = static_cast<int>(cli::parseInt(
        "--max-attempts", args.get("max-attempts", "3"), 1, 100));
    // --chaos SPEC: deterministic network-fault injection on every fabric
    // link (chaos.h grammar). Malformed specs exit 2 like any other flag.
    if (args.has("chaos")) {
      try {
        fopt.fleet.chaos =
            exec::fabric::parseChaosSchedule(args.get("chaos", ""));
      } catch (const ConfigError& e) {
        throw cli::UsageError(strf("--chaos: ", e.what()));
      }
    }
    fopt.fleet.body_spec = exec::fabric::makeSweepBodySpec(
        toString(kind), seed_base, horizon, params, sleep_ms);
    const exec::fabric::FleetBodyFactory* sweep_factory =
        exec::fabric::findFleetBodyKind("sweep-v1");
    fopt.fleet.local_fn = (*sweep_factory)(fopt.fleet.body_spec);
    fopt.fleet.log = &std::cerr;

    const exec::fabric::FleetCampaignOutcome fo =
        exec::fabric::runFleetCampaign(seeds, seed_base, fopt);
    outcome.payloads = fo.payloads;
    outcome.failures = fo.failures;
    outcome.exec = fo.exec;
    outcome.interrupted = fo.interrupted;
    std::cerr << obs::renderFleetCounters(fo.fleet) << "\n";
  } else {
    outcome = exec::runCampaign(exp::SweepRunner::global(), seeds, seed_base,
                                copt, body);
  }

  // Assemble the CSV in seed order. On interrupt the completed rows are
  // still flushed (the journal has them too), but the totals row is held
  // back so a partial file is never mistaken for a finished sweep.
  std::ostringstream csv;
  csv << "seed,rta_ok,deadline_misses,jobs_released,jobs_finished,"
         "acquisitions,contended_waits,handoffs,preemptions,migrations\n";
  std::array<std::uint64_t, 9> totals{};
  for (const std::optional<std::string>& payload : outcome.payloads) {
    if (!payload.has_value()) continue;
    csv << *payload << "\n";
    // Resumed journal payloads are untrusted bytes (a truncated flush or
    // a corrupted journal reaches here); checked parsing turns them into
    // a diagnosis instead of a bare std::stoull abort.
    cli::accumulateSweepTotals(*payload, totals.data(), totals.size());
  }
  if (!outcome.interrupted) {
    csv << "total";
    for (const std::uint64_t t : totals) csv << ',' << t;
    csv << "\n";
  }
  emitText(out_path, csv.str());

  for (const exp::RunFailure& f : outcome.failures) {
    std::cerr << "run failed: seed=" << seed_base + static_cast<std::uint64_t>(f.seed)
              << " attempts=" << f.attempts;
    if (f.signal != 0) std::cerr << " signal=" << f.signal;
    if (f.exit_code != 0) std::cerr << " exit=" << f.exit_code;
    if (f.timed_out) std::cerr << " timed-out";
    std::cerr << ": " << f.error << "\n";
    if (!f.stderr_tail.empty()) {
      std::cerr << "  stderr tail: " << f.stderr_tail << "\n";
    }
  }
  std::cerr << obs::renderExecutorCounters(outcome.exec) << "\n";

  if (outcome.interrupted) return exec::interruptExitCode();
  return outcome.failures.empty() ? 0 : 1;
}

// Run one system under an injected fault plan and a containment policy.
// `--plan` takes the fault/plan.h grammar; `--random N` draws N specs
// from `--seed`. `--policy` is "none" or a comma list (budget-enforce,
// job-abort, skip-next-release, watchdog).
int cmdFaults(const Args& args) {
  if (args.positional.empty()) return usage();
  const TaskSystem sys = load(args.positional[0]);
  const ProtocolKind kind = protocolFromName(args.get("protocol", "mpcp"));
  if (args.has("plan") && args.has("random")) {
    throw cli::UsageError("--plan and --random are mutually exclusive");
  }
  const std::string perfetto_path = args.get("perfetto", "trace.perfetto.json");
  if (args.has("perfetto")) {
    cli::probeWritableFile("--perfetto", perfetto_path);
  }

  fault::FaultPlan plan;
  if (args.has("plan")) {
    plan = fault::parsePlan(args.get("plan", ""), sys);
  } else if (args.has("random")) {
    const int count = static_cast<int>(
        cli::parseInt("--random", args.get("random", "2"), 1, 64));
    Rng rng(cli::parseUint("--seed", args.get("seed", "1")));
    plan = fault::FaultPlan::random(rng, sys, count);
  }
  const double grace =
      cli::parseDouble("--grace", args.get("grace", "1"), 1.0, 100.0);
  const Duration watchdog =
      cli::parseInt("--watchdog-timeout", args.get("watchdog-timeout", "500"),
                    1, kTimeInfinity);
  const std::string policy = args.get("policy", "none");
  const fault::ContainmentConfig containment =
      fault::containmentFromNames(policy, grace, watchdog);

  SimConfig config;
  config.horizon =
      cli::parseInt("--horizon", args.get("horizon", "0"), 0, kTimeInfinity);
  config.fault_plan = plan.empty() ? nullptr : &plan;
  config.containment = containment;
  const SimResult r = simulate(kind, sys, config);

  std::cout << "protocol " << toString(kind) << ", horizon " << r.horizon
            << ", policy " << policy << "\n";
  std::cout << "plan: " << (plan.empty() ? "(none)" : fault::formatPlan(plan, sys))
            << "\n";
  std::cout << (r.any_deadline_miss ? "DEADLINE MISS" : "no misses") << "\n";
  for (const TaskStats& st : r.per_task) {
    const Task& t = sys.task(st.task);
    std::cout << "  " << t.name << ": jobs=" << st.jobs_finished
              << " max-response=" << st.max_response
              << " max-blocking=" << st.max_blocked
              << " misses=" << st.deadline_misses << "\n";
  }
  const InvariantReport rep = checkMutualExclusion(sys, r);
  if (!rep.ok()) {
    std::cout << "INVARIANT VIOLATION: " << rep.violations.front() << "\n";
  }
  if (args.has("counters")) {
    std::cout << "\n" << renderCountersReport(sys, r.counters);
  }
  if (args.has("perfetto")) {
    std::ofstream out(perfetto_path);
    if (!out) throw ConfigError("cannot write '" + perfetto_path + "'");
    writePerfettoTrace(out, sys, r);
    std::cout << "wrote " << perfetto_path << " (load in ui.perfetto.dev)\n";
  }
  return r.any_deadline_miss ? 1 : 0;
}

int cmdGenerate(const Args& args) {
  const WorkloadParams p = workloadParamsFromArgs(args);
  Rng rng(cli::parseUint("--seed", args.get("seed", "1")));
  const TaskSystem sys = generateWorkload(p, rng);
  serializeTaskSystem(std::cout, sys);
  return 0;
}

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "tables") return cmdTables(args);
  if (cmd == "analyze") return cmdAnalyze(args);
  if (cmd == "simulate") return cmdSimulate(args);
  if (cmd == "stats") return cmdStats(args);
  if (cmd == "sweep") return cmdSweep(args);
  if (cmd == "generate") return cmdGenerate(args);
  if (cmd == "sensitivity") return cmdSensitivity(args);
  if (cmd == "faults") return cmdFaults(args);
  std::cerr << "error: unknown command '" << cmd << "'\n";
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Ctrl-C / SIGTERM raise a flag the sweep loop polls (and SIGKILL any
  // live workers); commands finish flushing and exit 128+signo.
  exec::installInterruptHandlers();
  exec::fabric::registerSweepFleetBody();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parseArgs(argc, argv, 2);
  try {
    const int rc = dispatch(cmd, args);
    return exec::interrupted() ? exec::interruptExitCode() : rc;
  } catch (const cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
