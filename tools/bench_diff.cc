// bench_diff — compare a candidate BENCH_*.json against a checked-in
// baseline and gate on throughput regressions.
//
// Throughput keys (ending in `_per_sec`) are higher-is-better; every
// such key present in both files is compared. A drop beyond the fail
// threshold exits 1; a drop beyond the warn threshold prints a warning
// but exits 0. Hard failures are downgraded to warnings when the two
// files were measured on different CPU models (schema v2 provenance):
// cross-machine numbers can only ever be advisory.
//
//   bench_diff BASELINE.json CANDIDATE.json
//       [--fail-pct 25] [--warn-pct 10] [--markdown FILE]
//
// --markdown writes a GitHub-flavored delta table (use
// `--markdown /dev/stdout` or append to $GITHUB_STEP_SUMMARY in CI).
// Exit codes: 0 ok/warn, 1 regression, 2 usage/parse error.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.h"

namespace {

using mpcp::cli::UsageError;

void usage(std::ostream& os) {
  os << "usage: bench_diff BASELINE.json CANDIDATE.json\n"
        "         [--fail-pct P]   hard-fail when a *_per_sec key drops\n"
        "                          more than P percent (default 25)\n"
        "         [--warn-pct P]   warn when it drops more than P percent\n"
        "                          (default 10)\n"
        "         [--markdown F]   also write a GitHub-flavored delta\n"
        "                          table to file F\n";
}

/// One parsed BENCH_*.json: flat key -> raw value, with numeric values
/// also decoded. Only the flat `{ "key": value, ... }` shape emitted by
/// bench::BenchJson is supported; anything else is a parse error.
struct BenchFile {
  std::map<std::string, std::string> raw;
  std::map<std::string, double> numbers;

  [[nodiscard]] std::string stringOr(const std::string& key,
                                     const std::string& fallback) const {
    const auto it = raw.find(key);
    if (it == raw.end()) return fallback;
    std::string v = it->second;
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
      v = v.substr(1, v.size() - 2);
    }
    return v;
  }
};

BenchFile parseBenchJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot read '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  BenchFile out;
  std::size_t pos = 0;
  while (true) {
    // Next quoted key.
    const std::size_t kq = text.find('"', pos);
    if (kq == std::string::npos) break;
    const std::size_t kend = text.find('"', kq + 1);
    if (kend == std::string::npos) {
      throw UsageError(path + ": unterminated key");
    }
    const std::string key = text.substr(kq + 1, kend - kq - 1);
    const std::size_t colon = text.find(':', kend + 1);
    if (colon == std::string::npos) {
      throw UsageError(path + ": missing ':' after \"" + key + "\"");
    }
    // Value runs to the next top-level ',' or '}'; strings may contain
    // escaped quotes.
    std::size_t v = text.find_first_not_of(" \t\n\r", colon + 1);
    if (v == std::string::npos) {
      throw UsageError(path + ": missing value for \"" + key + "\"");
    }
    std::size_t vend = v;
    if (text[v] == '"') {
      vend = v + 1;
      while (vend < text.size() &&
             (text[vend] != '"' || text[vend - 1] == '\\')) {
        ++vend;
      }
      if (vend == text.size()) {
        throw UsageError(path + ": unterminated string for \"" + key + "\"");
      }
      ++vend;
    } else {
      while (vend < text.size() && text[vend] != ',' && text[vend] != '}' &&
             text[vend] != '\n') {
        ++vend;
      }
    }
    std::string value = text.substr(v, vend - v);
    while (!value.empty() &&
           (value.back() == ' ' || value.back() == '\r')) {
      value.pop_back();
    }
    out.raw[key] = value;
    if (!value.empty() && value.front() != '"') {
      char* end = nullptr;
      const double num = std::strtod(value.c_str(), &end);
      if (end != value.c_str() && *end == '\0') out.numbers[key] = num;
    }
    pos = vend;
  }
  if (out.raw.empty()) throw UsageError(path + ": no fields parsed");
  return out;
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct Row {
  std::string key;
  double base = 0;
  double cand = 0;
  double delta_pct = 0;  // positive = faster
  std::string status;    // "ok" | "warn" | "FAIL" | "fail->warn"
};

std::string fmt(double v) {
  std::ostringstream os;
  if (std::fabs(v) >= 1000) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::setprecision(4) << v;
  }
  return os.str();
}

std::string fmtPct(double v) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(1) << v << "%";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path, markdown_path;
  double fail_pct = 25.0;
  double warn_pct = 10.0;
  try {
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          throw UsageError(std::string(flag) + " expects a value");
        }
        return argv[++i];
      };
      if (arg == "--fail-pct") {
        fail_pct = mpcp::cli::parseDouble("--fail-pct", next("--fail-pct"));
      } else if (arg == "--warn-pct") {
        warn_pct = mpcp::cli::parseDouble("--warn-pct", next("--warn-pct"));
      } else if (arg == "--markdown") {
        markdown_path = next("--markdown");
        mpcp::cli::probeWritableFile("--markdown", markdown_path);
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw UsageError("unknown flag '" + arg + "'");
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() != 2) {
      throw UsageError("expected exactly BASELINE.json and CANDIDATE.json");
    }
    baseline_path = positional[0];
    candidate_path = positional[1];
    if (fail_pct <= 0 || warn_pct <= 0 || warn_pct > fail_pct) {
      throw UsageError("thresholds must satisfy 0 < warn-pct <= fail-pct");
    }

    const BenchFile base = parseBenchJson(baseline_path);
    const BenchFile cand = parseBenchJson(candidate_path);

    const std::string base_cpu = base.stringOr("cpu_model", "unknown");
    const std::string cand_cpu = cand.stringOr("cpu_model", "unknown");
    const bool cross_machine =
        base_cpu != cand_cpu || base_cpu == "unknown";

    std::vector<Row> rows;
    bool any_fail = false;
    bool any_warn = false;
    for (const auto& [key, base_v] : base.numbers) {
      if (!endsWith(key, "_per_sec")) continue;
      const auto it = cand.numbers.find(key);
      if (it == cand.numbers.end()) {
        std::cerr << "bench_diff: warning: candidate is missing \"" << key
                  << "\"\n";
        any_warn = true;
        continue;
      }
      Row row;
      row.key = key;
      row.base = base_v;
      row.cand = it->second;
      row.delta_pct =
          base_v > 0 ? (it->second - base_v) / base_v * 100.0 : 0.0;
      if (row.delta_pct < -fail_pct) {
        if (cross_machine) {
          row.status = "fail->warn";
          any_warn = true;
        } else {
          row.status = "FAIL";
          any_fail = true;
        }
      } else if (row.delta_pct < -warn_pct) {
        row.status = "warn";
        any_warn = true;
      } else {
        row.status = "ok";
      }
      rows.push_back(row);
    }
    if (rows.empty()) {
      throw UsageError("no *_per_sec keys found in both files");
    }

    std::cout << "bench_diff: " << baseline_path << " -> " << candidate_path
              << "\n  baseline: sha " << base.stringOr("git_sha", "unknown")
              << ", " << base.stringOr("date", "?") << ", cpu " << base_cpu
              << "\n  candidate: sha " << cand.stringOr("git_sha", "unknown")
              << ", " << cand.stringOr("date", "?") << ", cpu " << cand_cpu
              << "\n";
    if (cross_machine) {
      std::cout << "  cpu models differ or are unknown: hard failures "
                   "downgraded to warnings\n";
    }
    for (const Row& row : rows) {
      std::cout << "  " << std::left << std::setw(26) << row.key
                << std::right << std::setw(12) << fmt(row.base)
                << std::setw(12) << fmt(row.cand) << std::setw(9)
                << fmtPct(row.delta_pct) << "  " << row.status << "\n";
    }

    if (!markdown_path.empty()) {
      std::ofstream md(markdown_path, std::ios::app);
      md << "### Bench delta: " << cand.stringOr("bench", "?") << "\n\n"
         << "Baseline `" << base.stringOr("git_sha", "unknown") << "` ("
         << base.stringOr("date", "?") << ") vs candidate `"
         << cand.stringOr("git_sha", "unknown") << "`"
         << (cross_machine ? " — **cross-machine, warn-only**" : "")
         << "\n\n"
         << "| metric | baseline | candidate | delta | status |\n"
         << "|---|---:|---:|---:|---|\n";
      for (const Row& row : rows) {
        md << "| `" << row.key << "` | " << fmt(row.base) << " | "
           << fmt(row.cand) << " | " << fmtPct(row.delta_pct) << " | "
           << row.status << " |\n";
      }
      md << "\nThresholds: warn >" << warn_pct << "% drop, fail >"
         << fail_pct << "% drop.\n\n";
      if (!md) {
        std::cerr << "bench_diff: warning: could not write " << markdown_path
                  << "\n";
      }
    }

    if (any_fail) {
      std::cerr << "bench_diff: FAIL: throughput regression beyond "
                << fail_pct << "%\n";
      return 1;
    }
    if (any_warn) {
      std::cerr << "bench_diff: warnings only (no hard regression)\n";
    }
    return 0;
  } catch (const UsageError& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: error: " << e.what() << "\n";
    return 2;
  }
}
