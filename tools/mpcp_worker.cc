// mpcp_worker — fleet worker for distributed campaigns (ISSUE 9).
//
//   mpcp_worker --connect unix:PATH|HOST:PORT [--name NAME]
//               [--heartbeat-ms N] [--max-reconnect-attempts N]
//               [--chaos SPEC]
//
// Connects to an mpcp_cli sweep / mpcp_fuzz coordinator, receives the
// campaign body spec in the WELCOME handshake, and executes leased run
// keys until the coordinator says BYE. Stateless by design: kill -9 a
// worker at any instant and the campaign loses at most the key it was
// running (the coordinator requeues it).
//
// A worker whose coordinator is permanently gone gives up cleanly after
// --max-reconnect-attempts capped-backoff tries (exit 1) rather than
// spinning forever; --reconnect-attempts is the older spelling, kept as
// an alias.
//
// Exit codes: 0 BYE (campaign finished with us), 1 reconnect attempts
// exhausted, 2 usage, 3 handshake/config rejection, 128+signo on
// SIGINT/SIGTERM.
#include <cstring>
#include <iostream>
#include <string>

#include "common/check.h"
#include "exec/fabric/chaos.h"
#include "exec/fabric/work.h"
#include "exec/fabric/worker.h"
#include "exec/interrupt.h"
#include "fuzz/fleet.h"
#include "cli_util.h"

namespace {

int usage() {
  std::cerr << "usage: mpcp_worker --connect unix:PATH|HOST:PORT "
               "[--name NAME]\n"
               "                   [--heartbeat-ms N] "
               "[--max-reconnect-attempts N]\n"
               "                   [--chaos SPEC]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mpcp::exec::installInterruptHandlers();
  mpcp::exec::fabric::registerSweepFleetBody();
  mpcp::fuzz::registerFuzzFleetBody();

  mpcp::exec::fabric::WorkerConfig config;
  config.log = &std::cerr;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw mpcp::cli::UsageError(a + " needs a value");
        }
        return argv[++i];
      };
      if (a == "--connect") {
        config.connect = value();
      } else if (a == "--name") {
        config.name = value();
      } else if (a == "--heartbeat-ms") {
        config.heartbeat_ms = static_cast<int>(
            mpcp::cli::parseInt("--heartbeat-ms", value(), 10, 60'000));
      } else if (a == "--max-reconnect-attempts" ||
                 a == "--reconnect-attempts") {
        config.reconnect.max_attempts = static_cast<int>(
            mpcp::cli::parseInt(a.c_str(), value(), 1, 1000));
      } else if (a == "--chaos") {
        try {
          config.chaos = mpcp::exec::fabric::parseChaosSchedule(value());
        } catch (const mpcp::ConfigError& e) {
          throw mpcp::cli::UsageError(std::string("--chaos: ") + e.what());
        }
      } else {
        throw mpcp::cli::UsageError("unknown option '" + a + "'");
      }
    }
    if (config.connect.empty()) {
      throw mpcp::cli::UsageError("--connect is required");
    }
    return mpcp::exec::fabric::runWorker(config);
  } catch (const mpcp::cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
