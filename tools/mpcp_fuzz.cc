// mpcp_fuzz — differential protocol fuzzer with deterministic replay.
//
//   mpcp_fuzz [--runs N] [--seed N] [--time-budget 120s|2m]
//             [--protocols name,name,...] [--mutate NAME]
//             [--corpus-dir DIR] [--no-shrink] [--expect-findings]
//             [--horizon-cap N] [--differential-horizon N]
//             [--max-findings N]
//   mpcp_fuzz --replay FILE [--no-mutation] [--expect-findings]
//   mpcp_fuzz --list-mutations
//
// Fuzz mode draws random task systems (seed s runs with Rng(seed + s), the
// SweepRunner convention, so results are thread-count independent), runs
// every protocol in the registry, and checks the oracle families in
// src/fuzz/oracles.h. Failures are shrunk and written as self-contained
// repro files; `--replay` re-executes one bit-exactly.
//
// Exit codes: 0 = clean (or findings present under --expect-findings),
// 1 = violations found (or none found when expected), 2 = usage error.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cli_util.h"
#include "exec/fabric/chaos.h"
#include "exec/interrupt.h"
#include "obs/counters.h"
#include "fuzz/fuzzer.h"
#include "fuzz/protocols.h"
#include "fuzz/repro.h"

using namespace mpcp;

namespace {

int usage() {
  std::cerr <<
      "usage: mpcp_fuzz [--runs N] [--seed N] [--time-budget Ns|Nm]\n"
      "                 [--protocols name,name,...] [--mutate NAME]\n"
      "                 [--corpus-dir DIR] [--no-shrink]\n"
      "                 [--expect-findings] [--horizon-cap N]\n"
      "                 [--differential-horizon N] [--max-findings N]\n"
      "                 [--faults] [--fault-count N] [--fault-grace X]\n"
      "                 [--fault-watchdog N]\n"
      "                 [--campaign FILE [--resume]]\n"
      "                 fleet mode (needs --campaign): [--workers N]\n"
      "                 [--listen unix:PATH|HOST:PORT] [--shard-dir DIR]\n"
      "                 [--worker-bin PATH] [--heartbeat-ms N]\n"
      "                 [--lease-deadline-ms N] [--fleet-grace-ms N]\n"
      "                 [--chaos SPEC]\n"
      "       mpcp_fuzz --replay FILE [--no-mutation] [--expect-findings]\n"
      "       mpcp_fuzz --list-mutations\n"
      "\n"
      "--campaign journals every run to FILE; a killed campaign resumes\n"
      "with --resume, skipping completed run indices, and findings dedupe\n"
      "by crash signature (oracle + shrunk-system hash) across the whole\n"
      "campaign. Ctrl-C flushes the journal and exits 130.\n"
      "\n"
      "--faults switches to fault-injection mode: each run draws a random\n"
      "FaultPlan (--fault-count specs) and checks the fault:* containment\n"
      "oracles (crash, mutual exclusion, priority handoff, neutral\n"
      "containment, engine-vs-reference under the plan) across all\n"
      "containment policies. Shrinking is disabled; repro files record\n"
      "the plan and replay through the same oracle suite.\n";
  return 2;
}

/// Pull "--flag value" / "--flag" options out of argv.
struct Args {
  std::map<std::string, std::string> options;  // value "" = bare flag

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() || it->second.empty() ? fallback : it->second;
  }
};

bool parseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) return false;
    std::string value;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[a.substr(2)] = value;
  }
  return true;
}

/// "120" or "120s" -> 120 seconds, "2m" -> 120 seconds. -1 on parse error.
double parseBudget(const std::string& text) {
  if (text.empty()) return -1;
  double scale = 1;
  std::string digits = text;
  const char suffix = text.back();
  if (suffix == 's' || suffix == 'm') {
    scale = suffix == 'm' ? 60 : 1;
    digits = text.substr(0, text.size() - 1);
  }
  try {
    return std::stod(digits) * scale;
  } catch (const std::exception&) {
    return -1;
  }
}

std::vector<std::string> splitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int listMutations() {
  for (const fuzz::Mutation m : fuzz::allMutations()) {
    if (m == fuzz::Mutation::kNone) continue;
    std::cout << toString(m) << "\n";
  }
  return 0;
}

int replayMode(const Args& args) {
  const fuzz::ReproCase repro = fuzz::loadReproFile(args.get("replay", ""));
  const bool with_mutation = !args.has("no-mutation");
  const fuzz::ReplayOutcome outcome = fuzz::replay(repro, with_mutation);
  std::cout << outcome.report;
  if (args.has("expect-findings")) {
    return outcome.reproducesRecordedOracle(repro) ? 0 : 1;
  }
  return outcome.clean() ? 0 : 1;
}

int fuzzMode(const Args& args) {
  fuzz::FuzzOptions options;
  options.runs = static_cast<int>(
      cli::parseInt("--runs", args.get("runs", "200"), 1, 100'000'000));
  options.seed = cli::parseUint("--seed", args.get("seed", "1"));
  options.shrink = !args.has("no-shrink");
  options.corpus_dir = args.get("corpus-dir", "");
  options.horizon_cap = cli::parseInt(
      "--horizon-cap", args.get("horizon-cap", "200000"), 1, kTimeInfinity);
  options.differential_horizon =
      cli::parseInt("--differential-horizon",
                    args.get("differential-horizon", "1200"), 1,
                    kTimeInfinity);
  options.max_findings = static_cast<int>(
      cli::parseInt("--max-findings", args.get("max-findings", "8"), 1,
                    1'000'000));
  if (args.has("time-budget")) {
    options.time_budget_s = parseBudget(args.get("time-budget", ""));
    if (options.time_budget_s < 0) {
      std::cerr << "bad --time-budget '" << args.get("time-budget", "")
                << "' (want e.g. 120s or 2m)\n";
      return 2;
    }
  }
  if (args.has("protocols")) {
    options.protocols = splitCommas(args.get("protocols", ""));
    for (const std::string& p : options.protocols) {
      if (!fuzz::protocolKnown(p)) {
        std::cerr << "unknown protocol '" << p << "'\n";
        return 2;
      }
    }
  }
  if (args.has("mutate")) {
    const auto m = fuzz::mutationFromName(args.get("mutate", ""));
    if (!m.has_value()) {
      std::cerr << "unknown mutation '" << args.get("mutate", "")
                << "' (see --list-mutations)\n";
      return 2;
    }
    options.mutation = *m;
  }
  options.faults = args.has("faults");
  options.fault_count = static_cast<int>(
      cli::parseInt("--fault-count", args.get("fault-count", "2"), 1, 64));
  options.fault_grace =
      cli::parseDouble("--fault-grace", args.get("fault-grace", "1"), 1.0, 100.0);
  options.fault_watchdog = cli::parseInt(
      "--fault-watchdog", args.get("fault-watchdog", "500"), 1, kTimeInfinity);
  if (options.faults && options.mutation != fuzz::Mutation::kNone) {
    std::cerr << "--faults and --mutate are mutually exclusive (fault mode "
                 "runs the protocols unmutated)\n";
    return 2;
  }
  if (args.has("campaign")) {
    options.campaign_path = args.get("campaign", "");
    if (options.campaign_path.empty()) {
      throw cli::UsageError("--campaign needs a file path");
    }
  }
  options.resume = args.has("resume");
  if (options.resume && options.campaign_path.empty()) {
    throw cli::UsageError("--resume needs --campaign FILE");
  }

  // Fleet mode (ISSUE 9): distribute run indices across mpcp_worker
  // processes. Campaign-only — the journal is what makes a worker or
  // coordinator death recoverable.
  const bool fleet = args.has("workers") || args.has("listen");
  if (fleet) {
    if (options.campaign_path.empty()) {
      throw cli::UsageError("fleet mode needs --campaign FILE");
    }
    if (args.has("time-budget")) {
      throw cli::UsageError(
          "--time-budget is unsupported in fleet mode; bound the campaign "
          "with --runs and resume it instead");
    }
    options.fleet_workers = static_cast<int>(
        cli::parseInt("--workers", args.get("workers", "0"), 0, 256));
    options.fleet_listen = args.get("listen", "");
    options.fleet_worker_bin = args.get("worker-bin", "");
    options.fleet_shard_dir =
        args.get("shard-dir", options.campaign_path + ".shards");
    options.fleet_heartbeat_ms = static_cast<int>(cli::parseInt(
        "--heartbeat-ms", args.get("heartbeat-ms", "500"), 10, 60'000));
    // A worker cannot heartbeat mid-run (single-threaded session), so
    // the deadline must exceed the slowest single fuzz run — seconds of
    // simulation plus the differential — not the sweep-style default.
    options.fleet_lease_deadline_ms = static_cast<int>(
        cli::parseInt("--lease-deadline-ms",
                      args.get("lease-deadline-ms", "60000"), 100, 600'000));
    options.fleet_grace_ms = static_cast<int>(cli::parseInt(
        "--fleet-grace-ms", args.get("fleet-grace-ms", "3000"), 100,
        600'000));
    if (args.has("chaos")) {
      // Parse eagerly so a malformed spec exits 2 here instead of deep in
      // the campaign; the validated text rides in options.
      try {
        options.fleet_chaos = mpcp::exec::fabric::formatChaosSchedule(
            mpcp::exec::fabric::parseChaosSchedule(args.get("chaos", "")));
      } catch (const mpcp::ConfigError& e) {
        throw cli::UsageError(std::string("--chaos: ") + e.what());
      }
    }
  } else if (args.has("chaos")) {
    throw cli::UsageError(
        "--chaos is a fleet-mode flag; add --workers or --listen");
  }

  // Fail fast on unwritable outputs before any run: the repro corpus
  // directory (probed first — the campaign journal may live inside it),
  // the campaign journal, the fleet shard directory (worker logs and the
  // default unix socket land there), and the bench JSON sink if one is
  // set.
  if (!options.corpus_dir.empty()) {
    cli::probeWritableDir("--corpus-dir", options.corpus_dir);
  }
  if (!options.campaign_path.empty()) {
    cli::probeWritableFile("--campaign", options.campaign_path);
  }
  if (fleet) {
    cli::probeWritableDir("--shard-dir", options.fleet_shard_dir);
  }
  if (std::getenv("MPCP_BENCH_DIR") != nullptr) {
    cli::probeWritableFile("MPCP_BENCH_DIR", bench::BenchJson("fuzz").path());
  }

  const fuzz::FuzzReport report = fuzz::runFuzz(options, std::cout);
  std::cout << "fuzz: " << report.runs_executed << "/" << options.runs
            << " runs, " << report.systems_with_findings
            << " systems with findings, " << report.findings.size()
            << " repros, " << report.elapsed_s << "s"
            << (report.budget_exhausted ? " (time budget exhausted)" : "")
            << (report.interrupted ? " (interrupted)" : "") << "\n";
  if (!options.campaign_path.empty()) {
    std::cout << "campaign: " << report.resumed_skips << " resumed skips, "
              << report.previous_findings << " previous findings, "
              << report.duplicate_findings << " duplicates";
    if (report.journal_corrupt_lines > 0) {
      std::cout << ", " << report.journal_corrupt_lines
                << " corrupt journal lines skipped";
    }
    std::cout << "\n";
  }
  if (fleet) {
    std::cerr << obs::renderFleetCounters(report.fleet) << "\n";
  }

  bench::BenchJson json("fuzz");
  json.set("runs_requested", options.runs);
  json.set("runs_executed", report.runs_executed);
  json.set("systems_with_findings", report.systems_with_findings);
  json.set("repros_written", static_cast<int>(report.findings.size()));
  json.set("mutation", toString(options.mutation));
  json.set("faults", options.faults);
  json.set("seed", static_cast<std::int64_t>(options.seed));
  json.set("elapsed_s", report.elapsed_s);
  json.set("budget_exhausted", report.budget_exhausted);
  json.set("campaign", !options.campaign_path.empty());
  json.set("resumed_skips", report.resumed_skips);
  json.set("duplicate_findings", report.duplicate_findings);
  json.set("interrupted", report.interrupted);
  json.write();

  if (report.interrupted) return exec::interruptExitCode();
  if (args.has("expect-findings")) {
    if (report.systems_with_findings == 0) {
      std::cerr << "expected findings, found none in "
                << report.runs_executed << " runs\n";
      return 1;
    }
    return 0;
  }
  return report.systems_with_findings == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Ctrl-C / SIGTERM raise a flag the fuzz loop polls between runs; the
  // campaign journal stays valid for --resume and the exit code is
  // 128+signo (130 for SIGINT).
  mpcp::exec::installInterruptHandlers();
  Args args;
  if (!parseArgs(argc, argv, args)) return usage();
  if (args.has("help")) return usage();
  try {
    if (args.has("list-mutations")) return listMutations();
    if (args.has("replay")) return replayMode(args);
    return fuzzMode(args);
  } catch (const cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
