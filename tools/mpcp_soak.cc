// mpcp_soak — randomized chaos soak driver for the campaign fabric
// (ISSUE 10 tentpole). Each round:
//
//   1. draws a fresh ChaosSchedule from the round's derived seed and
//      writes it to <out-dir>/r<k>/round.chaos — the replay artifact; any
//      failing round reproduces with `mpcp_soak --replay <that file>`;
//   2. forks a child coordinator that runs a real-socket fleet campaign
//      (spawned mpcp_worker processes) under that schedule; on kill
//      rounds the parent SIGKILLs the child mid-campaign, exactly like a
//      machine loss;
//   3. finishes the campaign in the parent with --takeover semantics
//      (checkpoint adopted, journals resumed) and no chaos, so every
//      round terminates;
//   4. checks the standing invariants: every seed produced a payload, no
//      permanent failures, and the merged journal is byte-identical to
//      the canonical serial stream computed in-process.
//
//   mpcp_soak [--rounds N] [--seed N] [--seeds N] [--workers N]
//             [--out-dir DIR] [--per-run-sleep-ms N] [--no-kill]
//   mpcp_soak --replay FILE [--seed N] [--seeds N] [--workers N]
//             [--out-dir DIR] [--per-run-sleep-ms N] [--no-kill]
//
// Exit codes: 0 all rounds green, 1 invariant violation (diagnostics on
// stderr), 2 usage.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/strf.h"
#include "exec/campaign.h"
#include "exec/fabric/chaos.h"
#include "exec/fabric/fleet_campaign.h"
#include "exec/fabric/work.h"
#include "exec/interrupt.h"
#include "exec/journal.h"
#include "obs/counters.h"

using namespace mpcp;
namespace fs = std::filesystem;

namespace {

int usage() {
  std::cerr
      << "usage: mpcp_soak [--rounds N] [--seed N] [--seeds N] [--workers N]\n"
         "                 [--out-dir DIR] [--per-run-sleep-ms N] [--no-kill]\n"
         "       mpcp_soak --replay FILE [same knobs]\n";
  return 2;
}

struct SoakOptions {
  int rounds = 3;
  std::uint64_t seed = 1;
  int seeds = 12;        ///< keys per round
  int workers = 2;
  int sleep_ms = 40;     ///< per-run sleep: stretches rounds into chaos windows
  bool kill = true;      ///< SIGKILL the child coordinator on odd rounds
  std::string out_dir = "mpcp-soak";
  std::string replay;    ///< chaos schedule file; one round, no randomness
};

// One fixed small workload per round; chaos, not the workload, is the
// variable under test. The sweep-v1 body makes rows deterministic in
// (spec, key), which is what the byte-identity invariant leans on.
struct RoundSetup {
  std::string spec;
  std::string fingerprint;
  std::uint64_t seed_base = 0;
};

RoundSetup makeRound(const SoakOptions& opt, int round) {
  WorkloadParams params;
  params.processors = 2;
  params.tasks_per_processor = 3;
  const Time horizon = 4000;
  RoundSetup setup;
  setup.seed_base = opt.seed * 100'000 + static_cast<std::uint64_t>(round);
  setup.spec = exec::fabric::makeSweepBodySpec(
      "mpcp", setup.seed_base, horizon, params, opt.sleep_ms);
  setup.fingerprint = strf("soak-v1 seed-base=", setup.seed_base,
                           " seeds=", opt.seeds, " horizon=", horizon);
  return setup;
}

/// The canonical journal a serial run would produce: meta, then
/// start/done per key in seed order with locally computed payloads.
std::string serialReference(const RoundSetup& setup, int seeds) {
  const exec::fabric::FleetBodyFactory* factory =
      exec::fabric::findFleetBodyKind("sweep-v1");
  MPCP_CHECK(factory != nullptr, "sweep-v1 body not registered");
  const exec::fabric::FleetBodyFn body = (*factory)(setup.spec);
  std::string canonical =
      exec::formatRecord(exec::RecordKind::kMeta, "config", setup.fingerprint);
  for (int s = 0; s < seeds; ++s) {
    const std::string key = exec::runKey(setup.seed_base, s);
    const exec::fabric::FleetResult r = body(key);
    MPCP_CHECK(r.ok, "reference body failed for " << key);
    canonical += exec::formatRecord(exec::RecordKind::kStart, key, "");
    canonical += exec::formatRecord(exec::RecordKind::kDone, key, r.payload);
  }
  return canonical;
}

exec::fabric::FleetCampaignOptions campaignOptions(const RoundSetup& setup,
                                                   const SoakOptions& opt,
                                                   const std::string& dir) {
  exec::fabric::FleetCampaignOptions fopt;
  fopt.journal_path = dir + "/soak.journal";
  fopt.config_fingerprint = setup.fingerprint;
  fopt.shard_dir = dir + "/shards";
  fopt.fleet.spawn_workers = opt.workers;
  fopt.fleet.body_spec = setup.spec;
  // Chaos attempts are charged liberally (truncated frames kill
  // connections); a generous budget keeps a hostile-but-honest round from
  // permanently failing keys that a quiet link would finish.
  fopt.fleet.max_attempts = 10;
  fopt.fleet.timing.heartbeat_ms = 100;
  fopt.fleet.timing.lease_deadline_ms = 2000;
  fopt.fleet.timing.degrade_after_ms = 60'000;  // fleets only, no local drain
  fopt.fleet.timing.poll_ms = 20;
  return fopt;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs one round. Returns true when every invariant holds.
bool runRound(const SoakOptions& opt, int round, std::ostream& log) {
  const std::string dir = strf(opt.out_dir, "/r", round);
  fs::remove_all(dir);
  fs::create_directories(dir + "/shards");

  const RoundSetup setup = makeRound(opt, round);

  // Draw (or replay) the round's chaos schedule and persist the artifact.
  exec::fabric::ChaosSchedule chaos;
  if (!opt.replay.empty()) {
    chaos = exec::fabric::parseChaosSchedule(slurp(opt.replay));
  } else {
    Rng rng(opt.seed ^ (0x9e3779b97f4a7c15ULL *
                        static_cast<std::uint64_t>(round + 1)));
    chaos = exec::fabric::ChaosSchedule::random(rng);
  }
  const std::string chaos_text = exec::fabric::formatChaosSchedule(chaos);
  {
    std::ofstream artifact(dir + "/round.chaos", std::ios::binary);
    artifact << chaos_text << "\n";
  }
  const bool kill_this_round = opt.kill && (round % 2 == 1);
  log << "soak: round " << round << (kill_this_round ? " (kill)" : "")
      << " chaos " << chaos_text << "\n";

  // Phase 1: the chaotic fleet, in a forked child so a kill round can
  // SIGKILL the whole coordinator (checkpoint + journals are its legacy).
  const pid_t child = ::fork();
  if (child < 0) {
    log << "soak: fork failed: " << std::strerror(errno) << "\n";
    return false;
  }
  if (child == 0) {
    std::ofstream child_log(dir + "/coordinator.log");
    try {
      exec::fabric::FleetCampaignOptions fopt =
          campaignOptions(setup, opt, dir);
      fopt.fleet.chaos = chaos;
      fopt.fleet.log = &child_log;
      const exec::fabric::FleetCampaignOutcome fo =
          exec::fabric::runFleetCampaign(opt.seeds, setup.seed_base, fopt);
      ::_exit(fo.complete() && fo.failures.empty() ? 0 : 1);
    } catch (const std::exception& e) {
      child_log << "fatal: " << e.what() << "\n";
      ::_exit(1);
    }
  }
  if (kill_this_round) {
    // Mid-campaign: long enough for leases and shard records to exist,
    // short enough that work remains for the takeover.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        300 + 100 * (round % 4)));
    ::kill(child, SIGKILL);
  }
  int status = 0;
  ::waitpid(child, &status, 0);
  log << "soak: phase-1 coordinator "
      << (WIFSIGNALED(status)
              ? strf("killed by signal ", WTERMSIG(status))
              : strf("exited ", WEXITSTATUS(status)))
      << "\n";

  // Phase 2: takeover in this process, chaos off, same journal + shards.
  exec::fabric::FleetCampaignOptions fopt = campaignOptions(setup, opt, dir);
  fopt.takeover = true;
  fopt.fleet.log = &log;
  exec::fabric::FleetCampaignOutcome fo;
  try {
    fo = exec::fabric::runFleetCampaign(opt.seeds, setup.seed_base, fopt);
  } catch (const std::exception& e) {
    log << "soak: takeover run threw: " << e.what() << "\n";
    return false;
  }
  log << obs::renderFleetCounters(fo.fleet) << "\n"
      << obs::renderExecutorCounters(fo.exec) << "\n";

  // Invariants.
  bool ok = true;
  if (!fo.complete()) {
    log << "soak: FAIL round " << round << ": missing payloads\n";
    ok = false;
  }
  if (!fo.failures.empty()) {
    log << "soak: FAIL round " << round << ": " << fo.failures.size()
        << " permanent failure(s); first: " << fo.failures[0].error << "\n";
    ok = false;
  }
  if (ok) {
    const std::string reference = serialReference(setup, opt.seeds);
    const std::string merged = slurp(fopt.journal_path);
    if (merged != reference) {
      log << "soak: FAIL round " << round
          << ": merged journal differs from the serial reference ("
          << merged.size() << " vs " << reference.size() << " bytes)\n";
      ok = false;
    }
  }
  if (ok) {
    log << "soak: round " << round << " ok\n";
  } else {
    log << "soak: replay with: mpcp_soak --replay " << dir
        << "/round.chaos --seed " << opt.seed << " --seeds " << opt.seeds
        << " --workers " << opt.workers << "\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  exec::installInterruptHandlers();
  exec::fabric::registerSweepFleetBody();

  SoakOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw cli::UsageError(a + " needs a value");
        return argv[++i];
      };
      if (a == "--rounds") {
        opt.rounds =
            static_cast<int>(cli::parseInt("--rounds", value(), 1, 10'000));
      } else if (a == "--seed") {
        opt.seed = cli::parseUint("--seed", value());
      } else if (a == "--seeds") {
        opt.seeds =
            static_cast<int>(cli::parseInt("--seeds", value(), 1, 100'000));
      } else if (a == "--workers") {
        opt.workers =
            static_cast<int>(cli::parseInt("--workers", value(), 1, 64));
      } else if (a == "--per-run-sleep-ms") {
        opt.sleep_ms = static_cast<int>(
            cli::parseInt("--per-run-sleep-ms", value(), 0, 60'000));
      } else if (a == "--out-dir") {
        opt.out_dir = value();
        if (opt.out_dir.empty()) {
          throw cli::UsageError("--out-dir needs a path");
        }
      } else if (a == "--no-kill") {
        opt.kill = false;
      } else if (a == "--replay") {
        opt.replay = value();
        opt.rounds = 1;
      } else {
        throw cli::UsageError("unknown option '" + a + "'");
      }
    }
    fs::create_directories(opt.out_dir);

    int failed = 0;
    for (int r = 0; r < opt.rounds; ++r) {
      if (exec::interrupted()) return exec::interruptExitCode();
      if (!runRound(opt, r, std::cerr)) ++failed;
    }
    if (failed > 0) {
      std::cerr << "soak: " << failed << "/" << opt.rounds
                << " round(s) FAILED\n";
      return 1;
    }
    std::cerr << "soak: all " << opt.rounds << " round(s) green\n";
    return 0;
  } catch (const cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
