#include "analysis/schedulability.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace mpcp {

double liuLaylandBound(int n) {
  MPCP_CHECK(n >= 1, "liuLaylandBound: n must be >= 1");
  return n * (std::pow(2.0, 1.0 / n) - 1.0);
}

namespace {

/// RTA fixpoint for one task given its local higher-priority interferers.
/// Returns the response time, or D_i + 1 if the iteration diverges past
/// the deadline (unschedulable sentinel).
Duration responseTime(const TaskSystem& sys, const Task& ti, Duration bi,
                      std::span<const Duration> jitter,
                      std::span<const Duration> inflation) {
  std::vector<const Task*> hp;
  for (TaskId tid : sys.tasksOn(ti.processor)) {
    const Task& tj = sys.task(tid);
    if (tj.priority > ti.priority) hp.push_back(&tj);
  }

  const Duration limit = ti.relative_deadline;
  Duration r = ti.wcet + bi;
  while (true) {
    Duration next = ti.wcet + bi;
    for (const Task* tj : hp) {
      const Duration jj =
          jitter.empty() ? 0
                         : jitter[static_cast<std::size_t>(tj->id.value())];
      const Duration fj =
          inflation.empty()
              ? 0
              : inflation[static_cast<std::size_t>(tj->id.value())];
      next += ceilDiv(r + jj, tj->period) * (tj->wcet + fj);
    }
    if (next == r) return r;
    if (next > limit) return limit + 1;  // diverged: miss certified
    r = next;
  }
}

}  // namespace

SchedulabilityReport analyzeSchedulability(const TaskSystem& system,
                                           std::span<const Duration> blocking,
                                           std::span<const Duration> jitter,
                                           std::span<const Duration> inflation) {
  MPCP_CHECK(blocking.size() == system.tasks().size(),
             "blocking span must cover every task");
  MPCP_CHECK(jitter.empty() || jitter.size() == system.tasks().size(),
             "jitter span must be empty or cover every task");
  MPCP_CHECK(inflation.empty() || inflation.size() == system.tasks().size(),
             "inflation span must be empty or cover every task");

  SchedulabilityReport report;
  report.tasks.resize(system.tasks().size());
  report.ll_all = true;
  report.rta_all = true;

  for (int p = 0; p < system.processorCount(); ++p) {
    const auto& local = system.tasksOn(ProcessorId(p));  // priority desc
    double hp_util = 0.0;
    // Inflation of strictly higher-priority local tasks, as utilization:
    // their spin occupancy steals the processor like extra computation,
    // but a task's own inflation is already inside its B_i.
    double hp_infl = 0.0;
    for (std::size_t rank = 0; rank < local.size(); ++rank) {
      const Task& ti = system.task(local[rank]);
      const Duration bi = blocking[static_cast<std::size_t>(ti.id.value())];
      TaskVerdict& v =
          report.tasks[static_cast<std::size_t>(ti.id.value())];
      v.task = ti.id;
      v.blocking = bi;

      hp_util += ti.utilization();
      v.utilization_lhs =
          hp_util + hp_infl +
          static_cast<double>(bi) / static_cast<double>(ti.period);
      v.utilization_bound = liuLaylandBound(static_cast<int>(rank) + 1);
      v.ll_ok = v.utilization_lhs <= v.utilization_bound + 1e-12;

      v.response_time = responseTime(system, ti, bi, jitter, inflation);
      v.rta_ok = v.response_time <= ti.relative_deadline;

      report.ll_all &= v.ll_ok;
      report.rta_all &= v.rta_ok;

      if (!inflation.empty()) {
        hp_infl +=
            static_cast<double>(
                inflation[static_cast<std::size_t>(ti.id.value())]) /
            static_cast<double>(ti.period);
      }
    }
  }
  return report;
}

std::vector<bool> hyperbolicTest(const TaskSystem& system,
                                 std::span<const Duration> blocking) {
  MPCP_CHECK(blocking.size() == system.tasks().size(),
             "blocking span must cover every task");
  std::vector<bool> ok(system.tasks().size(), false);
  for (int p = 0; p < system.processorCount(); ++p) {
    double product = 1.0;  // prod over higher-priority local tasks
    for (TaskId tid : system.tasksOn(ProcessorId(p))) {  // priority desc
      const Task& ti = system.task(tid);
      const double self =
          ti.utilization() +
          static_cast<double>(blocking[static_cast<std::size_t>(
              ti.id.value())]) /
              static_cast<double>(ti.period);
      ok[static_cast<std::size_t>(ti.id.value())] =
          product * (self + 1.0) <= 2.0 + 1e-12;
      product *= ti.utilization() + 1.0;
    }
  }
  return ok;
}

bool hyperbolicAll(const TaskSystem& system,
                   std::span<const Duration> blocking) {
  const auto verdicts = hyperbolicTest(system, blocking);
  return std::all_of(verdicts.begin(), verdicts.end(),
                     [](bool b) { return b; });
}

}  // namespace mpcp
