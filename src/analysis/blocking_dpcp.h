// Worst-case blocking bounds for the message-based (distributed) priority
// ceiling protocol — the paper's [8] baseline, reconstructed in our
// framework for the Section 5.2 comparison. The reconstruction is
// deliberately structured to mirror the MPCP factors so the two bounds are
// comparable term by term:
//
//  D1  Local blocking — identical to MPCP F1: each suspension opportunity
//      (global access or voluntary SuspendOp) plus job start admits one
//      lower-priority local critical section with ceiling >= P_i.
//
//  D2  Queue-head wait — per global access on S, at most one gcs of a
//      lower-priority task already holds S (priority-ordered queues).
//
//  D3  Agent interference — all gcs's execute on sync processors at their
//      resources' global ceilings. Two components, ceil(T_i/T_j)-scaled:
//      (a) same-resource re-entries by *higher-priority* tasks (the
//      analogue of MPCP's F3; lower-priority same-resource holders are
//      D2's one-per-access charge), and (b) gcs's on *other* resources
//      hosted on a sync processor J_i visits whose ceiling reaches the
//      lowest ceiling J_i uses there (lower-ceiling agents are simply
//      preempted by J_i's agent). Component (b) is the DPCP's cost of
//      funnelling gcs's through dedicated processors, and it shrinks when
//      resources are spread across more sync processors — the knob
//      Section 5.2 discusses.
//
//  D4  Remote-agent load on the host — gcs's of *other* tasks whose sync
//      processor is J_i's own host processor execute there in the ceiling
//      band and preempt J_i's normal execution: ceil(T_i/T_j) * dur per
//      such gcs (gcs's of local higher-priority tasks are inside their C_j
//      and excluded). Zero when sync processors host no application tasks.
//
//  Deferred-execution penalty — same form as MPCP: suspending
//  higher-priority local tasks each charge one extra C_j.
//
// This is an upper bound: D3 charges the full window rather than only the
// accesses, matching the conservative flavour of Section 5.1.
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

struct DpcpBlockingBreakdown {
  Duration local_lower_cs = 0;      ///< D1
  Duration lower_gcs_queue = 0;     ///< D2
  Duration agent_interference = 0;  ///< D3
  Duration host_agent_load = 0;     ///< D4
  Duration deferred_execution = 0;

  [[nodiscard]] Duration total() const {
    return local_lower_cs + lower_gcs_queue + agent_interference +
           host_agent_load + deferred_execution;
  }
  [[nodiscard]] Duration remoteSuspension() const {
    return lower_gcs_queue + agent_interference;
  }
};

struct DpcpBlockingOptions {
  bool include_deferred_execution = true;
};

/// Bounds for every task under DPCP (uses ResourceInfo::sync_processor).
[[nodiscard]] std::vector<DpcpBlockingBreakdown> dpcpBlocking(
    const TaskSystem& system, const PriorityTables& tables,
    DpcpBlockingOptions options = {});

}  // namespace mpcp
