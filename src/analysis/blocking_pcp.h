// Uniprocessor PCP blocking bound [10]: a non-suspending job is blocked
// for at most ONE critical section of ONE lower-priority local job, and
// only by sections whose semaphore ceiling reaches its priority:
//   B_i = max{ dur(z) : z cs of tau_l, P_l < P_i, same processor,
//              ceiling(z) >= P_i }.
// Used standalone for uniprocessor systems and as the no-global baseline
// in the comparison benches.
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

/// B_i for every task under per-processor PCP. Only valid when the system
/// has no global resources (throws ConfigError otherwise).
[[nodiscard]] std::vector<Duration> pcpBlocking(const TaskSystem& system,
                                                const PriorityTables& tables);

}  // namespace mpcp
