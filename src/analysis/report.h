// Text rendering of analysis results: ceiling tables (Table 4-1/4-2
// style), blocking breakdowns, and schedulability verdicts.
#pragma once

#include <string>

#include "analysis/ceilings.h"
#include "analysis/schedulability.h"
#include "model/task_system.h"
#include "obs/counters.h"

namespace mpcp {

/// Table 4-1: per-semaphore scope and priority ceiling.
[[nodiscard]] std::string renderCeilingTable(const TaskSystem& system,
                                             const PriorityTables& tables);

/// Table 4-2: per-(task, global semaphore) gcs execution priority next to
/// the semaphore's full ceiling.
[[nodiscard]] std::string renderGcsPriorityTable(const TaskSystem& system,
                                                 const PriorityTables& tables);

/// Per-task schedulability verdict table (Theorem 3 + RTA).
[[nodiscard]] std::string renderScheduleReport(
    const TaskSystem& system, const SchedulabilityReport& report);

/// Runtime counters report with names resolved against `system` (semaphore
/// and task names instead of the plain S#/tau# ids obs::renderCounters
/// falls back to when no TaskSystem is available).
[[nodiscard]] std::string renderCountersReport(const TaskSystem& system,
                                               const obs::Counters& counters);

}  // namespace mpcp
