#include "analysis/breakdown.h"

#include "taskgen/scale.h"

namespace mpcp {

namespace {

double totalUtilization(const TaskSystem& sys) {
  double u = 0;
  for (const Task& t : sys.tasks()) u += t.utilization();
  return u;
}

}  // namespace

BreakdownResult breakdownUtilization(const TaskSystem& system,
                                     const ScheduleTest& test, double lo,
                                     double hi, double tolerance) {
  if (!test(scaleWorkload(system, lo))) {
    return {0.0, 0.0};
  }
  // Grow hi until rejected (or give up at the provided ceiling).
  double good = lo, bad = hi;
  if (test(scaleWorkload(system, hi))) {
    const TaskSystem at_hi = scaleWorkload(system, hi);
    return {hi, totalUtilization(at_hi)};
  }
  while (bad - good > tolerance) {
    const double mid = (good + bad) / 2;
    if (test(scaleWorkload(system, mid))) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  const TaskSystem at_best = scaleWorkload(system, good);
  return {good, totalUtilization(at_best)};
}

}  // namespace mpcp
