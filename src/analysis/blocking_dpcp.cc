#include "analysis/blocking_dpcp.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "analysis/profiles.h"
#include "common/check.h"
#include "common/math_util.h"

namespace mpcp {

std::vector<DpcpBlockingBreakdown> dpcpBlocking(const TaskSystem& system,
                                                const PriorityTables& tables,
                                                DpcpBlockingOptions options) {
  const std::vector<TaskProfile> profiles = buildProfiles(system);
  std::vector<DpcpBlockingBreakdown> out(system.tasks().size());

  const auto profile = [&](const Task& t) -> const TaskProfile& {
    return profiles[static_cast<std::size_t>(t.id.value())];
  };
  const auto sync_of = [&](ResourceId r) -> ProcessorId {
    const auto& sp = system.resource(r).sync_processor;
    MPCP_CHECK(sp.has_value(), "resource " << r << " has no sync processor");
    return *sp;
  };

  for (const Task& ti : system.tasks()) {
    const TaskProfile& pi = profile(ti);
    DpcpBlockingBreakdown& b =
        out[static_cast<std::size_t>(ti.id.value())];

    // ---- D1: local blocking (same structure as MPCP F1).
    Duration max_local_cs = 0;
    for (const Task& tl : system.tasks()) {
      if (tl.processor != ti.processor || tl.priority >= ti.priority) {
        continue;
      }
      for (const SectionUse& z : profile(tl).local_sections) {
        if (tables.ceiling(z.resource) >= ti.priority) {
          max_local_cs = std::max(max_local_cs, z.duration);
        }
      }
    }
    if (max_local_cs > 0) {
      b.local_lower_cs =
          static_cast<Duration>(pi.suspensionOpportunities() + 1) *
          max_local_cs;
    }

    // ---- D2: one lower-priority gcs ahead per access.
    for (const SectionUse& access : pi.global_sections) {
      Duration worst = 0;
      for (const Task& tl : system.tasks()) {
        if (tl.id == ti.id || tl.priority >= ti.priority) continue;
        for (const SectionUse& z : profile(tl).global_sections) {
          if (z.resource == access.resource) {
            worst = std::max(worst, z.duration);
          }
        }
      }
      b.lower_gcs_queue += worst;
    }

    // ---- D3: agent interference per sync processor J_i visits.
    // Ceilings of the resources J_i uses, grouped by sync processor.
    std::map<std::int32_t, std::vector<std::pair<ResourceId, Priority>>>
        used_on;  // proc -> (resource, ceiling) J_i accesses there
    for (const SectionUse& access : pi.global_sections) {
      const ProcessorId sp = sync_of(access.resource);
      used_on[sp.value()].emplace_back(access.resource,
                                       tables.ceiling(access.resource));
    }
    // Lowest ceiling J_i uses on proc, optionally excluding one resource.
    const auto min_ceiling = [&](std::int32_t proc,
                                 ResourceId excluded) -> std::optional<Priority> {
      const auto it = used_on.find(proc);
      if (it == used_on.end()) return std::nullopt;
      std::optional<Priority> m;
      for (const auto& [r, c] : it->second) {
        if (r == excluded) continue;
        if (!m.has_value() || c < *m) m = c;
      }
      return m;
    };
    for (const Task& tj : system.tasks()) {
      if (tj.id == ti.id) continue;
      Duration interfering = 0;
      for (const SectionUse& z : profile(tj).global_sections) {
        const bool same_resource =
            pi.global_resources.count(z.resource.value()) != 0;
        const std::int32_t sp = sync_of(z.resource).value();
        if (same_resource) {
          // Same-resource contention: the priority-ordered queue admits
          // one lower-priority holder per access (charged by D2) plus
          // re-entries of *higher-priority* tasks — the analogue of
          // MPCP's F3.
          if (tj.priority > ti.priority) {
            interfering += z.duration;
            continue;
          }
          // A lower-priority task's section on a shared resource is
          // charged once per access by D2 for the queue on that resource
          // — but on the sync CPU it also delays J_i's agents for the
          // *other* resources J_i uses there (equal-or-higher ceiling
          // agents are not preemptable), a channel D2 does not cover.
          const auto m = min_ceiling(sp, z.resource);
          if (!m.has_value()) continue;  // J_i uses nothing else there
          if (tables.ceiling(z.resource) < *m) continue;  // preempted
          interfering += z.duration;
          continue;
        }
        // Other resources' agents competing for a sync processor J_i
        // visits, at a ceiling J_i's agents cannot preempt.
        const auto m = min_ceiling(sp, ResourceId());
        if (!m.has_value()) continue;  // not a proc J_i visits
        if (tables.ceiling(z.resource) < *m) continue;  // preempted
        interfering += z.duration;
      }
      if (interfering > 0) {
        b.agent_interference += ceilDiv(ti.period, tj.period) * interfering;
      }
    }

    // ---- D4: remote-agent load on J_i's host processor.
    for (const Task& tj : system.tasks()) {
      if (tj.id == ti.id) continue;
      const bool local_higher =
          tj.processor == ti.processor && tj.priority > ti.priority;
      if (local_higher) continue;  // already in the preemption term
      Duration load = 0;
      for (const SectionUse& z : profile(tj).global_sections) {
        if (sync_of(z.resource) == ti.processor) load += z.duration;
      }
      if (load > 0) {
        b.host_agent_load += ceilDiv(ti.period, tj.period) * load;
      }
    }

    // ---- Deferred-execution penalty.
    if (options.include_deferred_execution) {
      for (const Task& tj : system.tasks()) {
        if (tj.processor != ti.processor || tj.priority <= ti.priority) {
          continue;
        }
        if (profile(tj).suspensionOpportunities() > 0) {
          b.deferred_execution += tj.wcet;
        }
      }
    }
  }
  return out;
}

}  // namespace mpcp
