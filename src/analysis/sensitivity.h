// Sensitivity analysis: how much headroom each task has under a given
// protocol's schedulability test.
//
// For each task independently, binary-search the largest factor its OWN
// execution demand (compute and sections) can be scaled by before the
// system-wide test rejects — the per-task analogue of breakdown
// utilization, and the designer's "which task is the bottleneck" view.
#pragma once

#include <functional>
#include <vector>

#include "analysis/breakdown.h"
#include "model/task_system.h"

namespace mpcp {

struct TaskSensitivity {
  TaskId task;
  /// Largest accepted scaling of this task's demand (>= 1 means slack;
  /// < 1 means the task must shrink for the system to be schedulable;
  /// capped at `hi` of the search).
  double max_scale = 0.0;
  /// The task's WCET at that scale.
  Duration wcet_at_max = 0;
};

/// Runs the sensitivity search for every task. `test` is the acceptance
/// predicate (e.g. MPCP RTA via analyzeUnder).
[[nodiscard]] std::vector<TaskSensitivity> sensitivityPerTask(
    const TaskSystem& system, const ScheduleTest& test, double lo = 0.05,
    double hi = 8.0, double tolerance = 0.02);

/// Rebuilds `system` with ONLY `task`'s compute durations scaled.
[[nodiscard]] TaskSystem scaleOneTask(const TaskSystem& system, TaskId task,
                                      double factor);

}  // namespace mpcp
