// Per-task critical-section profiles — the raw quantities the blocking
// analyses consume: outermost global sections (the paper's NG_i counter
// and gcs durations), outermost local sections, and the set GS_i of
// global semaphores a task uses.
#pragma once

#include <set>
#include <vector>

#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

/// One outermost critical section: which semaphore and how long the job
/// computes while holding it (nested inner sections included).
struct SectionUse {
  ResourceId resource;
  Duration duration = 0;
};

struct TaskProfile {
  std::vector<SectionUse> global_sections;  ///< outermost gcs's, in body order
  std::vector<SectionUse> local_sections;   ///< outermost local cs's
  std::set<std::int32_t> global_resources;  ///< GS_i: ids of globals used
  int voluntary_suspensions = 0;            ///< number of SuspendOps
  Duration total_suspension = 0;            ///< sum of SuspendOp durations

  /// NG_i: number of global critical sections the job enters.
  [[nodiscard]] int ng() const {
    return static_cast<int>(global_sections.size());
  }
  /// Suspension opportunities for Theorem 1: global accesses plus
  /// voluntary suspensions.
  [[nodiscard]] int suspensionOpportunities() const {
    return ng() + voluntary_suspensions;
  }
  /// Longest gcs duration, 0 if none.
  [[nodiscard]] Duration maxGcs() const {
    Duration m = 0;
    for (const SectionUse& s : global_sections) m = std::max(m, s.duration);
    return m;
  }
};

/// Profiles for all tasks, indexed by TaskId.
[[nodiscard]] std::vector<TaskProfile> buildProfiles(const TaskSystem& system);

}  // namespace mpcp
