#include "analysis/blocking_pcp.h"

#include <algorithm>

#include "analysis/profiles.h"
#include "common/check.h"

namespace mpcp {

std::vector<Duration> pcpBlocking(const TaskSystem& system,
                                  const PriorityTables& tables) {
  if (system.hasGlobalResources()) {
    throw ConfigError(
        "pcpBlocking: PCP is a uniprocessor protocol; the system has global "
        "resources");
  }
  const std::vector<TaskProfile> profiles = buildProfiles(system);
  std::vector<Duration> blocking(system.tasks().size(), 0);

  for (const Task& ti : system.tasks()) {
    Duration worst = 0;
    for (const Task& tl : system.tasks()) {
      if (tl.processor != ti.processor || tl.priority >= ti.priority) {
        continue;
      }
      for (const SectionUse& z :
           profiles[static_cast<std::size_t>(tl.id.value())].local_sections) {
        if (tables.ceiling(z.resource) >= ti.priority) {
          worst = std::max(worst, z.duration);
        }
      }
    }
    blocking[static_cast<std::size_t>(ti.id.value())] = worst;
  }
  return blocking;
}

}  // namespace mpcp
