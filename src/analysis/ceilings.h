// Priority ceilings and gcs execution priorities (Section 4.3/4.4).
//
// Local semaphore S:   ceiling(S)  = max{ P_i : tau_i uses S }          (≤ P_H)
// Global semaphore Sg: ceiling(Sg) = P_G + max{ P_i : tau_i uses Sg }   (> P_H)
// gcs execution priority for a job of tau_i (bound to processor p) on Sg:
//   gcsPriority(Sg, p) = P_G + max{ P_j : tau_j uses Sg, tau_j not on p }
// — static inheritance to the highest priority that could ever be
// inherited from a *remote* waiter (Section 4.4's key refinement over the
// message-based protocol, which always runs gcs's at the full ceiling).
#pragma once

#include <vector>

#include "common/priority.h"
#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

/// Precomputed priority tables for one task system. Valid for the
/// TaskSystem they were computed from; protocols take a const reference.
class PriorityTables {
 public:
  explicit PriorityTables(const TaskSystem& system);

  /// ceiling(S) as defined above. Local ceilings live in the task band,
  /// global ceilings in the global band (> P_H).
  [[nodiscard]] Priority ceiling(ResourceId r) const;

  /// Fixed execution priority of a gcs on `r` entered by a job bound to
  /// processor `p` (Section 4.4). Only meaningful for global resources
  /// and processors hosting at least one user of `r`; returns the global
  /// band floor P_G for a processor with no remote contenders.
  [[nodiscard]] Priority gcsPriority(ResourceId r, ProcessorId p) const;

  /// P_G: base of the global band (> P_H).
  [[nodiscard]] Priority globalBase() const { return global_base_; }

 private:
  const TaskSystem* system_;
  Priority global_base_;
  std::vector<Priority> ceiling_;                 // [resource]
  std::vector<std::vector<Priority>> gcs_prio_;   // [resource][processor]
};

}  // namespace mpcp
