#include "analysis/report.h"

#include <iomanip>
#include <sstream>

#include "analysis/profiles.h"
#include "common/strf.h"

namespace mpcp {

namespace {

std::string prioStr(const TaskSystem& system, Priority p) {
  if (p == kPriorityFloor) return "-";
  const Priority pg = system.globalBase();
  if (p >= pg) {
    return strf("P_G+", p.urgency() - pg.urgency());
  }
  return strf(p.urgency());
}

}  // namespace

std::string renderCeilingTable(const TaskSystem& system,
                               const PriorityTables& tables) {
  std::ostringstream os;
  os << padRight("semaphore", 14) << padRight("scope", 8)
     << padRight("users", 26) << "priority ceiling\n";
  os << std::string(64, '-') << "\n";
  for (const ResourceInfo& r : system.resources()) {
    std::string users;
    for (TaskId t : r.users) {
      if (!users.empty()) users += ",";
      users += system.task(t).name;
    }
    os << padRight(r.name, 14) << padRight(toString(r.scope), 8)
       << padRight(users, 26) << prioStr(system, tables.ceiling(r.id))
       << "\n";
  }
  return os.str();
}

std::string renderGcsPriorityTable(const TaskSystem& system,
                                   const PriorityTables& tables) {
  std::ostringstream os;
  os << padRight("task", 10) << padRight("semaphore", 12)
     << padRight("gcs exec priority", 20) << "semaphore ceiling\n";
  os << std::string(60, '-') << "\n";
  const auto profiles = buildProfiles(system);
  for (const Task& t : system.tasks()) {
    const TaskProfile& p = profiles[static_cast<std::size_t>(t.id.value())];
    std::set<std::int32_t> seen;
    for (const SectionUse& s : p.global_sections) {
      if (!seen.insert(s.resource.value()).second) continue;
      os << padRight(t.name, 10)
         << padRight(system.resource(s.resource).name, 12)
         << padRight(
                prioStr(system, tables.gcsPriority(s.resource, t.processor)),
                20)
         << prioStr(system, tables.ceiling(s.resource)) << "\n";
    }
  }
  return os.str();
}

std::string renderScheduleReport(const TaskSystem& system,
                                 const SchedulabilityReport& report) {
  std::ostringstream os;
  os << padRight("task", 10) << padRight("proc", 6) << padRight("C", 7)
     << padRight("T", 8) << padRight("B", 8) << padRight("U-lhs", 9)
     << padRight("LL-bound", 10) << padRight("LL", 5) << padRight("R", 8)
     << "RTA\n";
  os << std::string(76, '-') << "\n";
  for (const TaskVerdict& v : report.tasks) {
    const Task& t = system.task(v.task);
    os << padRight(t.name, 10) << padRight(strf(t.processor), 6)
       << padRight(strf(t.wcet), 7) << padRight(strf(t.period), 8)
       << padRight(strf(v.blocking), 8)
       << padRight(strf(std::fixed, std::setprecision(3), v.utilization_lhs),
                   9)
       << padRight(
              strf(std::fixed, std::setprecision(3), v.utilization_bound), 10)
       << padRight(v.ll_ok ? "ok" : "NO", 5)
       << padRight(strf(v.response_time), 8) << (v.rta_ok ? "ok" : "NO")
       << "\n";
  }
  os << "overall: Theorem-3 " << (report.ll_all ? "SCHEDULABLE" : "rejected")
     << " | RTA " << (report.rta_all ? "SCHEDULABLE" : "rejected") << "\n";
  return os.str();
}

std::string renderCountersReport(const TaskSystem& system,
                                 const obs::Counters& c) {
  std::ostringstream os;
  os << "jobs: released=" << c.jobs_released
     << " finished=" << c.jobs_finished
     << " deadline-misses=" << c.deadline_misses << "\n";
  os << "scheduling: preemptions=" << c.preemptions
     << " gcs-preemptions=" << c.gcs_preemptions
     << " migrations=" << c.migrations
     << " inheritance-updates=" << c.inheritance_updates << "\n";
  os << "faults: injected=" << c.faults_injected
     << " contained=" << c.faults_contained
     << " forced-releases=" << c.forced_releases
     << " budget-kills=" << c.budget_kills
     << " jobs-aborted=" << c.jobs_aborted
     << " releases-skipped=" << c.releases_skipped
     << " misses-while-degraded=" << c.misses_while_degraded << "\n";
  os << "ready-queue high-water marks:";
  for (std::size_t p = 0; p < c.ready_hwm.size(); ++p) {
    os << " P" << p << "=" << c.ready_hwm[p];
  }
  os << "\n";
  os << padRight("semaphore", 14) << padRight("acquisitions", 14)
     << padRight("contended", 11) << "handoffs\n";
  os << std::string(47, '-') << "\n";
  for (const ResourceInfo& r : system.resources()) {
    const obs::ResourceCounters& rc = c.res(r.id);
    os << padRight(r.name, 14) << padRight(strf(rc.acquisitions), 14)
       << padRight(strf(rc.contended_waits), 11) << rc.handoffs << "\n";
  }
  os << "blocking time per task (ticks, log2 buckets):\n";
  for (const Task& t : system.tasks()) {
    os << "  " << padRight(t.name, 8)
       << obs::renderHistogram(
              c.task_blocking[static_cast<std::size_t>(t.id.value())])
       << "\n";
  }
  return os.str();
}

}  // namespace mpcp
