// Schedulability tests (Section 5.3).
//
// Theorem 3 (Liu–Layland with blocking): on each processor, with local
// tasks indexed by descending priority i = 1..n_p,
//     forall i:  sum_{j<=i} C_j/T_j + B_i/T_i  <=  i (2^{1/i} - 1).
//
// We also provide the standard response-time analysis (RTA), which is
// exact for synchronous uniprocessor task sets without blocking and far
// less pessimistic than the utilization bound:
//     R_i = C_i + B_i + sum_{j in hp_local(i)} ceil((R_i + J_j)/T_j) C_j,
// iterated to fixpoint; schedulable iff R_i <= D_i. The jitter J_j
// accounts for the deferred-execution anomaly of suspending tasks
// (Section 5.1's closing remark): a higher-priority task that suspends on
// global semaphores releases its remaining computation "compressed", which
// is safely modelled as release jitter bounded by its worst-case remote
// suspension. Pass jitter = 0 to recover the classical test.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

struct TaskVerdict {
  TaskId task;
  Duration blocking = 0;         ///< B_i used by both tests
  double utilization_lhs = 0.0;  ///< sum_{j<=i} C_j/T_j + B_i/T_i
  double utilization_bound = 0;  ///< i (2^{1/i} - 1)
  bool ll_ok = false;
  Duration response_time = 0;    ///< RTA fixpoint (or > D_i sentinel)
  bool rta_ok = false;
};

struct SchedulabilityReport {
  std::vector<TaskVerdict> tasks;  ///< indexed by TaskId
  bool ll_all = false;             ///< every task passes Theorem 3
  bool rta_all = false;            ///< every task passes the RTA
};

/// Runs both tests. `blocking[i]` is B_i for task i; `jitter[i]` is the
/// release jitter charged when task i appears as a higher-priority
/// interferer in the RTA (empty span = all zero). `inflation[i]` is extra
/// processor demand task i imposes per job *beyond* its C_i when it
/// interferes with lower-priority tasks — the spin protocols charge their
/// busy-wait here, since a spinning job occupies its processor. It is
/// added to C_i in the RTA interference term and to U_i in the
/// utilization test's higher-priority sum (never to a task's own terms:
/// its own inflation is already inside its B_i). Empty span = all zero,
/// bit-identical to the classical tests.
[[nodiscard]] SchedulabilityReport analyzeSchedulability(
    const TaskSystem& system, std::span<const Duration> blocking,
    std::span<const Duration> jitter = {},
    std::span<const Duration> inflation = {});

/// The Liu–Layland bound n (2^{1/n} - 1).
[[nodiscard]] double liuLaylandBound(int n);

/// Hyperbolic bound (Bini & Buttazzo) with the blocking term folded into
/// each task's own utilization — an EXTENSION beyond the paper that
/// strictly dominates Theorem 3's utilization test (by AM-GM, any task
/// passing  sum_{j<=i} U_j + B_i/T_i <= i(2^{1/i}-1)  also passes
///   prod_{j<i,local} (U_j + 1) * (U_i + B_i/T_i + 1) <= 2 ).
/// Returns the per-task verdicts, indexed by TaskId.
[[nodiscard]] std::vector<bool> hyperbolicTest(
    const TaskSystem& system, std::span<const Duration> blocking);

/// True iff hyperbolicTest accepts every task.
[[nodiscard]] bool hyperbolicAll(const TaskSystem& system,
                                 std::span<const Duration> blocking);

}  // namespace mpcp
