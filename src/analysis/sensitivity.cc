#include "analysis/sensitivity.h"

#include <cmath>

#include "common/check.h"

namespace mpcp {

TaskSystem scaleOneTask(const TaskSystem& system, TaskId task,
                        double factor) {
  MPCP_CHECK(factor > 0, "scaleOneTask: factor must be positive");
  TaskSystemBuilder b(system.processorCount(), system.options());
  for (const ResourceInfo& r : system.resources()) {
    const ResourceId nr = b.addResource(r.name);
    if (r.sync_processor.has_value()) {
      b.assignSyncProcessor(nr, *r.sync_processor);
    }
  }
  for (const Task& t : system.tasks()) {
    Body body;
    if (t.id != task) {
      body = t.body;
    } else {
      for (const Op& op : t.body.ops()) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) {
          body.compute(std::max<Duration>(
              1, static_cast<Duration>(std::llround(
                     static_cast<double>(c->duration) * factor))));
        } else if (const auto* l = std::get_if<LockOp>(&op)) {
          body.lock(l->resource);
        } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
          body.unlock(u->resource);
        } else if (const auto* susp = std::get_if<SuspendOp>(&op)) {
          body.suspend(susp->duration);
        }
      }
    }
    TaskSpec spec;
    spec.name = t.name;
    spec.period = t.period;
    spec.phase = t.phase;
    spec.relative_deadline = t.relative_deadline;
    spec.processor = t.processor.value();
    spec.body = std::move(body);
    b.addTask(std::move(spec));
  }
  return std::move(b).build();
}

std::vector<TaskSensitivity> sensitivityPerTask(const TaskSystem& system,
                                                const ScheduleTest& test,
                                                double lo, double hi,
                                                double tolerance) {
  std::vector<TaskSensitivity> out;
  out.reserve(system.tasks().size());
  for (const Task& t : system.tasks()) {
    TaskSensitivity s;
    s.task = t.id;
    if (!test(scaleOneTask(system, t.id, lo))) {
      s.max_scale = 0.0;
      s.wcet_at_max = 0;
      out.push_back(s);
      continue;
    }
    double good = lo, bad = hi;
    if (test(scaleOneTask(system, t.id, hi))) {
      good = hi;
      bad = hi;
    }
    while (bad - good > tolerance) {
      const double mid = (good + bad) / 2;
      if (test(scaleOneTask(system, t.id, mid))) {
        good = mid;
      } else {
        bad = mid;
      }
    }
    s.max_scale = good;
    s.wcet_at_max =
        scaleOneTask(system, t.id, good).task(t.id).wcet;
    out.push_back(s);
  }
  return out;
}

}  // namespace mpcp
