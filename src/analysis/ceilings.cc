#include "analysis/ceilings.h"

#include <algorithm>

#include "common/check.h"

namespace mpcp {

PriorityTables::PriorityTables(const TaskSystem& system)
    : system_(&system), global_base_(system.globalBase()) {
  const auto& resources = system.resources();
  const std::size_t procs = static_cast<std::size_t>(system.processorCount());

  ceiling_.assign(resources.size(), kPriorityFloor);
  gcs_prio_.assign(resources.size(),
                   std::vector<Priority>(procs, kPriorityFloor));

  for (std::size_t r = 0; r < resources.size(); ++r) {
    const ResourceInfo& info = resources[r];
    if (info.users.empty()) continue;

    Priority top = kPriorityFloor;
    for (TaskId t : info.users) {
      top = std::max(top, system.task(t).priority);
    }

    if (info.scope == ResourceScope::kLocal) {
      ceiling_[r] = top;
      continue;
    }

    ceiling_[r] = top.inGlobalBand(global_base_);
    // gcs priority per hosting processor: P_G + highest *remote* user.
    for (std::size_t p = 0; p < procs; ++p) {
      Priority remote_top = kPriorityFloor;
      for (TaskId t : info.users) {
        const Task& task = system.task(t);
        if (task.processor.value() != static_cast<std::int32_t>(p)) {
          remote_top = std::max(remote_top, task.priority);
        }
      }
      // A global resource has users on >= 2 processors, so every hosting
      // processor has a remote contender; other processors keep P_G.
      gcs_prio_[r][p] = (remote_top == kPriorityFloor)
                            ? global_base_
                            : remote_top.inGlobalBand(global_base_);
    }
  }
}

Priority PriorityTables::ceiling(ResourceId r) const {
  MPCP_CHECK(r.valid() && static_cast<std::size_t>(r.value()) < ceiling_.size(),
             "ceiling(): unknown resource " << r);
  return ceiling_[static_cast<std::size_t>(r.value())];
}

Priority PriorityTables::gcsPriority(ResourceId r, ProcessorId p) const {
  MPCP_CHECK(
      r.valid() && static_cast<std::size_t>(r.value()) < gcs_prio_.size(),
      "gcsPriority(): unknown resource " << r);
  MPCP_CHECK(system_->isGlobal(r),
             "gcsPriority() queried for local resource " << r);
  const auto& row = gcs_prio_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(p.valid() && static_cast<std::size_t>(p.value()) < row.size(),
             "gcsPriority(): unknown processor " << p);
  return row[static_cast<std::size_t>(p.value())];
}

}  // namespace mpcp
