#include "analysis/blocking_spin.h"

#include <algorithm>

#include "analysis/profiles.h"
#include "common/math_util.h"

namespace mpcp {
namespace {

/// maxCs / Nreq for one task on one semaphore, over outermost sections
/// (profiles fold nested inners into the outermost duration — exactly the
/// group-lock collapse spin analysis assumes).
struct ResourceUse {
  Duration max_cs = 0;
  std::int64_t requests = 0;
};

ResourceUse useOf(const TaskProfile& p, ResourceId r) {
  ResourceUse u;
  for (const std::vector<SectionUse>* v : {&p.global_sections,
                                           &p.local_sections}) {
    for (const SectionUse& s : *v) {
      if (s.resource != r) continue;
      u.max_cs = std::max(u.max_cs, s.duration);
      u.requests++;
    }
  }
  return u;
}

/// Per-request spin wait of task `i` on semaphore `r`.
Duration perRequestWait(const TaskSystem& system,
                        const std::vector<TaskProfile>& profiles, TaskId i,
                        ResourceId r, bool priority_ordered,
                        const SpinBlockingOptions& options) {
  const Task& ti = system.task(i);
  const std::vector<Task>& tasks = system.tasks();

  if (!priority_ordered) {
    // FIFO (MSRP): one earlier request per remote processor hosting users
    // of r — requests are non-preemptive, so at most one is in flight per
    // processor, and FIFO admits no later overtakers.
    std::vector<Duration> per_proc(
        static_cast<std::size_t>(system.processorCount()), 0);
    for (const Task& tj : tasks) {
      if (tj.processor == ti.processor) continue;
      const ResourceUse u = useOf(profiles[tj.id.value()], r);
      if (u.requests == 0) continue;
      auto& slot = per_proc[static_cast<std::size_t>(tj.processor.value())];
      slot = std::max(slot, u.max_cs);
    }
    Duration w = 0;
    for (Duration d : per_proc) w += d;
    return w;
  }

  // Priority-ordered: one in-service request of arbitrary priority, plus
  // every higher-or-equal-priority remote request issued while we wait —
  // a fixpoint in the wait itself. ceil+1 instances per interferer cover
  // the carried-in job. Divergence (low-priority starvation) saturates.
  Duration max_any = 0;
  bool any_remote = false;
  for (const Task& tj : tasks) {
    if (tj.processor == ti.processor) continue;
    const ResourceUse u = useOf(profiles[tj.id.value()], r);
    if (u.requests == 0) continue;
    any_remote = true;
    max_any = std::max(max_any, u.max_cs);
  }
  if (!any_remote) return 0;

  Duration w = max_any;
  for (int it = 0; it < options.fixpoint_iteration_cap; ++it) {
    // Accumulate wide: a near-saturation wait times a request count can
    // overflow Duration before the clamp fires.
    __int128 next = max_any;
    for (const Task& tj : tasks) {
      if (tj.processor == ti.processor) continue;
      if (tj.priority < ti.priority) continue;
      if (tj.id == i) continue;
      const ResourceUse u = useOf(profiles[tj.id.value()], r);
      if (u.requests == 0) continue;
      next += static_cast<__int128>(ceilDiv(w, tj.period) + 1) * u.requests *
              u.max_cs;
    }
    if (next > static_cast<__int128>(kSpinBoundSaturated)) {
      return kSpinBoundSaturated;
    }
    const auto next_d = static_cast<Duration>(next);
    if (next_d == w) return w;
    w = next_d;
  }
  return kSpinBoundSaturated;
}

}  // namespace

std::vector<SpinBlockingBreakdown> spinBlocking(const TaskSystem& system,
                                                bool priority_ordered,
                                                SpinBlockingOptions options) {
  const std::vector<TaskProfile> profiles = buildProfiles(system);
  const std::vector<Task>& tasks = system.tasks();
  std::vector<SpinBlockingBreakdown> out(tasks.size());

  // S: every request busy-waits at most its per-request bound.
  for (const Task& ti : tasks) {
    const TaskProfile& p = profiles[ti.id.value()];
    Duration spin = 0;
    for (const std::vector<SectionUse>* v : {&p.global_sections,
                                             &p.local_sections}) {
      for (const SectionUse& s : *v) {
        spin += perRequestWait(system, profiles, ti.id, s.resource,
                               priority_ordered, options);
      }
    }
    out[ti.id.value()].spin_wait = spin;
  }

  for (const Task& ti : tasks) {
    SpinBlockingBreakdown& b = out[ti.id.value()];

    // A: at each of the (1 + voluntary suspensions) points where the job
    // becomes ready, at most one lower-priority local task can occupy the
    // processor non-preemptively — for its own spin plus its section.
    // Preemption by a higher task opens no new window: once that task
    // finishes, we are dispatched before any lower task can start one.
    Duration window = 0;
    for (const Task& tl : tasks) {
      if (tl.processor != ti.processor || tl.id == ti.id) continue;
      if (tl.priority > ti.priority) continue;
      const TaskProfile& pl = profiles[tl.id.value()];
      for (const std::vector<SectionUse>* v : {&pl.global_sections,
                                               &pl.local_sections}) {
        for (const SectionUse& s : *v) {
          window = std::max(
              window, perRequestWait(system, profiles, tl.id, s.resource,
                                     priority_ordered, options) +
                          s.duration);
        }
      }
    }
    const int points =
        1 + profiles[ti.id.value()].voluntary_suspensions;
    b.arrival_blocking = points * window;

    // Deferred execution: a suspending higher-priority local task can
    // compress one extra burst — its computation plus its spin occupancy
    // — into our busy period (same charge the MPCP/DPCP analyses make).
    if (options.include_deferred_execution) {
      for (const Task& th : tasks) {
        if (th.processor != ti.processor || th.id == ti.id) continue;
        if (!(th.priority > ti.priority)) continue;
        if (profiles[th.id.value()].voluntary_suspensions == 0) continue;
        b.deferred_execution += th.wcet + out[th.id.value()].spin_wait;
      }
    }
  }
  return out;
}

std::vector<Duration> spinInflation(
    const std::vector<SpinBlockingBreakdown>& breakdowns) {
  std::vector<Duration> out;
  out.reserve(breakdowns.size());
  for (const SpinBlockingBreakdown& b : breakdowns) {
    out.push_back(b.spin_wait);
  }
  return out;
}

}  // namespace mpcp
