// Worst-case blocking bounds for the non-preemptive spin protocols
// (spin-fifo / spin-prio), structured to mirror the MPCP/DPCP factor
// style so the shoot-out experiment can compare term by term:
//
//  S   Spin wait — per request on semaphore S, the busy-wait until the
//      grant. FIFO (MSRP): at most one earlier request per *remote*
//      processor hosting users of S (requests are non-preemptive, so a
//      processor has at most one in flight), giving the classic sum of
//      per-processor maxima. Priority-ordered: one in-service request of
//      any priority plus every higher-or-equal-priority remote request
//      issued while we wait — a fixpoint that can diverge (low-priority
//      starvation); divergence saturates the bound, which then simply
//      fails the schedulability tests.
//      Same-processor users never contribute: a local user inside its
//      non-preemptive section implies we are not running, hence not yet
//      requesting.
//
//  A   Arrival blocking — when a job starts or resumes from a voluntary
//      suspension, at most one lower-priority local task can sit in a
//      non-preemptive spin+section window; spin jobs never suspend on a
//      lock, so these are the ONLY resume points: (1 + voluntary
//      suspensions) windows of max_l(spin_l + cs_l). This is where spin
//      beats suspension-based MPCP, whose F1 charges every global access.
//
//  Deferred-execution penalty — as for MPCP/DPCP: suspending
//      higher-priority local tasks each charge one extra burst (their
//      C_j plus their own spin, which also occupies the processor).
//
// The spin wait also *inflates* every interfering job's processor
// occupancy (a spinning job holds its CPU), so the schedulability tests
// must charge higher-priority interference as C_j + spin_j — returned
// as spinInflation() and passed to analyzeSchedulability's inflation
// span.
#pragma once

#include <vector>

#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

struct SpinBlockingBreakdown {
  Duration spin_wait = 0;         ///< S: total busy-wait over all requests
  Duration arrival_blocking = 0;  ///< A: non-preemptive arrival windows
  Duration deferred_execution = 0;

  [[nodiscard]] Duration total() const {
    return spin_wait + arrival_blocking + deferred_execution;
  }
  /// Spin jobs never suspend on a lock — no remote-suspension jitter.
  [[nodiscard]] Duration remoteSuspension() const { return 0; }
};

struct SpinBlockingOptions {
  bool include_deferred_execution = true;
  /// Iterations before the priority-ordered fixpoint is declared
  /// divergent and saturated.
  int fixpoint_iteration_cap = 64;
};

/// The saturated per-request bound a divergent priority-ordered fixpoint
/// collapses to. Large enough to fail every test, small enough that
/// summing per-task terms cannot overflow Duration.
inline constexpr Duration kSpinBoundSaturated = Duration{1} << 40;

/// Bounds for every task, indexed by TaskId. `priority_ordered` selects
/// spin-prio's grant order (false = FIFO / MSRP).
[[nodiscard]] std::vector<SpinBlockingBreakdown> spinBlocking(
    const TaskSystem& system, bool priority_ordered,
    SpinBlockingOptions options = {});

/// Per-task interference inflation (== spin_wait) for
/// analyzeSchedulability's inflation span.
[[nodiscard]] std::vector<Duration> spinInflation(
    const std::vector<SpinBlockingBreakdown>& breakdowns);

}  // namespace mpcp
