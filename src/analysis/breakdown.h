// Breakdown utilization: the largest scaling of a workload's execution
// demand that a schedulability test still accepts. The standard way to
// compare protocols on equal footing (Section 5.2's comparison, made
// quantitative): higher breakdown = less schedulability lost to blocking.
#pragma once

#include <functional>

#include "model/task_system.h"

namespace mpcp {

/// Verdict callback: true if the (scaled) system is schedulable.
using ScheduleTest = std::function<bool(const TaskSystem&)>;

struct BreakdownResult {
  double factor = 0.0;       ///< largest accepted scaling factor
  double utilization = 0.0;  ///< total utilization at that factor
};

/// Binary-searches the scaling factor in [lo, hi] to `tolerance`.
/// Requires test(scale(lo)) == true (returns factor 0 otherwise).
[[nodiscard]] BreakdownResult breakdownUtilization(const TaskSystem& system,
                                                   const ScheduleTest& test,
                                                   double lo = 0.05,
                                                   double hi = 4.0,
                                                   double tolerance = 0.01);

}  // namespace mpcp
