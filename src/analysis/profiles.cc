#include "analysis/profiles.h"

namespace mpcp {

std::vector<TaskProfile> buildProfiles(const TaskSystem& system) {
  std::vector<TaskProfile> profiles(system.tasks().size());
  for (const Task& t : system.tasks()) {
    TaskProfile& p = profiles[static_cast<std::size_t>(t.id.value())];
    for (const CriticalSection& cs : t.sections) {
      const bool global = system.isGlobal(cs.resource);
      if (global) p.global_resources.insert(cs.resource.value());
      if (cs.parent >= 0) continue;  // only outermost sections are counted
      (global ? p.global_sections : p.local_sections)
          .push_back({cs.resource, cs.duration});
    }
    for (const Op& op : t.body.ops()) {
      if (const auto* susp = std::get_if<SuspendOp>(&op)) {
        p.voluntary_suspensions++;
        p.total_suspension += susp->duration;
      }
    }
  }
  return profiles;
}

}  // namespace mpcp
