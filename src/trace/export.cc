#include "trace/export.h"

#include <algorithm>

namespace mpcp {

namespace {

std::string safeName(const TaskSystem& system, TaskId id) {
  std::string name = system.task(id).name;
  std::replace(name.begin(), name.end(), ',', ';');
  return name;
}

}  // namespace

void writeJobsCsv(std::ostream& os, const TaskSystem& system,
                  const SimResult& result) {
  os << "task,instance,release,deadline,finish,response,executed,blocked,"
        "preempted,suspended,missed\n";
  for (const JobRecord& jr : result.jobs) {
    os << safeName(system, jr.id.task) << ',' << jr.id.instance << ','
       << jr.release << ',' << jr.abs_deadline << ',' << jr.finish << ','
       << jr.responseTime() << ',' << jr.executed << ',' << jr.blocked << ','
       << jr.preempted << ',' << jr.suspended << ','
       << (jr.missed ? 1 : 0) << '\n';
  }
}

void writeTraceCsv(std::ostream& os, const TaskSystem& system,
                   const SimResult& result) {
  os << "t,event,task,instance,processor,resource,priority,other_task,"
        "other_instance\n";
  for (const TraceEvent& e : result.trace) {
    os << e.t << ',' << toString(e.kind) << ','
       << safeName(system, e.job.task) << ',' << e.job.instance << ','
       << (e.processor.valid() ? e.processor.value() : -1) << ','
       << (e.resource.valid()
               ? system.resource(e.resource).name
               : std::string{})
       << ','
       << (e.priority == kPriorityFloor ? std::string{}
                                        : std::to_string(e.priority.urgency()))
       << ','
       << (e.other.task.valid() ? safeName(system, e.other.task)
                                : std::string{})
       << ',' << (e.other.task.valid() ? e.other.instance : -1) << '\n';
  }
}

void writeSegmentsCsv(std::ostream& os, const TaskSystem& system,
                      const SimResult& result) {
  os << "processor,task,instance,begin,end,mode\n";
  for (const ExecSegment& s : result.segments) {
    os << s.processor.value() << ',' << safeName(system, s.job.task) << ','
       << s.job.instance << ',' << s.begin << ',' << s.end << ','
       << toString(s.mode) << '\n';
  }
}

}  // namespace mpcp
