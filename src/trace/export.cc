#include "trace/export.h"

namespace mpcp {

namespace {

// RFC 4180 field escaping: quote when the value contains a comma, a
// double quote, or a line break, doubling embedded quotes. Workload
// names are user input (config files, generators), so every string
// field goes through here rather than being assumed clean.
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string taskField(const TaskSystem& system, TaskId id) {
  return csvField(system.task(id).name);
}

}  // namespace

void writeJobsCsv(std::ostream& os, const TaskSystem& system,
                  const SimResult& result) {
  os << "task,instance,release,deadline,finish,response,executed,blocked,"
        "preempted,suspended,missed\n";
  for (const JobRecord& jr : result.jobs) {
    os << taskField(system, jr.id.task) << ',' << jr.id.instance << ','
       << jr.release << ',' << jr.abs_deadline << ',' << jr.finish << ','
       << jr.responseTime() << ',' << jr.executed << ',' << jr.blocked << ','
       << jr.preempted << ',' << jr.suspended << ','
       << (jr.missed ? 1 : 0) << '\n';
  }
}

void writeTraceCsv(std::ostream& os, const TaskSystem& system,
                   const SimResult& result) {
  os << "t,event,task,instance,processor,resource,priority,other_task,"
        "other_instance\n";
  for (const TraceEvent& e : result.trace) {
    os << e.t << ',' << csvField(toString(e.kind)) << ','
       << taskField(system, e.job.task) << ',' << e.job.instance << ','
       << (e.processor.valid() ? e.processor.value() : -1) << ','
       << (e.resource.valid()
               ? csvField(system.resource(e.resource).name)
               : std::string{})
       << ','
       << (e.priority == kPriorityFloor ? std::string{}
                                        : std::to_string(e.priority.urgency()))
       << ','
       << (e.other.task.valid() ? taskField(system, e.other.task)
                                : std::string{})
       << ',' << (e.other.task.valid() ? e.other.instance : -1) << '\n';
  }
}

void writeSegmentsCsv(std::ostream& os, const TaskSystem& system,
                      const SimResult& result) {
  os << "processor,task,instance,begin,end,mode\n";
  for (const ExecSegment& s : result.segments) {
    os << s.processor.value() << ',' << taskField(system, s.job.task) << ','
       << s.job.instance << ',' << s.begin << ',' << s.end << ','
       << csvField(toString(s.mode)) << '\n';
  }
}

}  // namespace mpcp
