// Chrome trace-event JSON export of a recorded simulation, loadable in
// ui.perfetto.dev (or chrome://tracing) for interactive timeline
// inspection next to the ASCII Gantt renderer.
//
// Mapping (1 tick = 1 microsecond of trace time):
//   * one track ("process") per processor, named P<n>;
//   * one thread per (processor, task) pair that ever ran there, so
//     DPCP agent execution shows up on the synchronization processor;
//   * execution segments -> "X" complete events (cat = exec mode);
//   * blocking episodes  -> async "b"/"e" spans (kLockWait .. matching
//     kLockGrant; PCP wake-retry re-waits extend the open span);
//   * voluntary suspensions -> async spans (kSelfSuspend .. kSelfResume);
//   * deadline misses -> "i" instant events.
// Spans still open at the horizon are closed there.
//
// Requires SimConfig::record_trace (the exporter reads result.trace and
// result.segments; both are empty otherwise).
#pragma once

#include <ostream>

#include "model/task_system.h"
#include "sim/result.h"

namespace mpcp {

/// Writes the whole trace as one JSON object {"traceEvents": [...]}.
/// Output is deterministic: byte-identical for identical results.
void writePerfettoTrace(std::ostream& os, const TaskSystem& system,
                        const SimResult& result);

}  // namespace mpcp
