#include "trace/invariants.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/strf.h"

namespace mpcp {

namespace {

struct HolderMap {
  std::map<std::int32_t, JobId> holder;  // resource -> job

  std::optional<JobId> get(ResourceId r) const {
    auto it = holder.find(r.value());
    if (it == holder.end()) return std::nullopt;
    return it->second;
  }
};

}  // namespace

InvariantReport checkMutualExclusion(const TaskSystem& system,
                                     const SimResult& result) {
  InvariantReport report;
  HolderMap h;
  for (const TraceEvent& e : result.trace) {
    switch (e.kind) {
      case Ev::kLockGrant: {
        const auto cur = h.get(e.resource);
        if (cur.has_value() && !(*cur == e.job)) {
          report.violations.push_back(
              strf("t=", e.t, ": ", system.resource(e.resource).name,
                   " granted to ", e.job, " while held by ", *cur));
        }
        h.holder[e.resource.value()] = e.job;
        break;
      }
      case Ev::kUnlock: {
        const auto cur = h.get(e.resource);
        if (!cur.has_value() || !(*cur == e.job)) {
          report.violations.push_back(
              strf("t=", e.t, ": ", system.resource(e.resource).name,
                   " released by non-holder ", e.job));
        }
        h.holder.erase(e.resource.value());
        break;
      }
      case Ev::kHandoff: {
        const auto cur = h.get(e.resource);
        if (!cur.has_value() || !(*cur == e.job)) {
          report.violations.push_back(
              strf("t=", e.t, ": ", system.resource(e.resource).name,
                   " handed off by non-holder ", e.job));
        }
        h.holder[e.resource.value()] = e.other;
        break;
      }
      default:
        break;
    }
  }
  return report;
}

InvariantReport checkPriorityOrderedHandoff(const TaskSystem& system,
                                            const SimResult& result) {
  InvariantReport report;
  std::map<std::int32_t, std::set<std::pair<std::int32_t, std::int64_t>>>
      waiting;  // resource -> set of (task, instance)
  const auto prio = [&](const JobId& j) {
    return system.task(j.task).priority;
  };

  for (const TraceEvent& e : result.trace) {
    switch (e.kind) {
      case Ev::kLockWait:
        waiting[e.resource.value()].insert(
            {e.job.task.value(), e.job.instance});
        break;
      case Ev::kLockGrant:
        waiting[e.resource.value()].erase(
            {e.job.task.value(), e.job.instance});
        break;
      case Ev::kHandoff: {
        auto& ws = waiting[e.resource.value()];
        ws.erase({e.other.task.value(), e.other.instance});
        for (const auto& [task_raw, instance] : ws) {
          const JobId w{TaskId(task_raw), instance};
          if (prio(w) > prio(e.other)) {
            report.violations.push_back(strf(
                "t=", e.t, ": ", system.resource(e.resource).name,
                " handed to ", e.other, " while higher-priority ", w,
                " was waiting"));
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return report;
}

InvariantReport checkGcsPreemptionRule(const TaskSystem& system,
                                       const SimResult& result) {
  InvariantReport report;

  // Collect gcs residence intervals: (processor, begin, end, job).
  struct GcsInterval {
    std::int32_t proc;
    Time begin;
    Time end;
    JobId job;
  };
  std::vector<GcsInterval> intervals;
  std::map<std::pair<std::int32_t, std::int64_t>, GcsInterval> open;
  for (const TraceEvent& e : result.trace) {
    const auto key = std::make_pair(e.job.task.value(), e.job.instance);
    if (e.kind == Ev::kGcsEnter) {
      open[key] = {e.processor.value(), e.t, -1, e.job};
    } else if (e.kind == Ev::kGcsExit) {
      auto it = open.find(key);
      if (it != open.end()) {
        it->second.end = e.t;
        intervals.push_back(it->second);
        open.erase(it);
      }
    }
  }
  for (auto& [key, iv] : open) {  // still inside gcs at horizon
    iv.end = result.horizon;
    intervals.push_back(iv);
  }

  // Any non-gcs execution segment overlapping a *different* job's gcs
  // interval on the same processor violates Theorem 2. A per-processor
  // time sweep keeps this near-linear (the naive all-pairs scan is
  // quadratic, which the fuzzer's ~10^5-event traces cannot afford): walk
  // items in begin order and compare each against only the currently
  // active items of the other kind — at most one running job plus its
  // preempters, not the whole trace.
  struct SweepItem {
    Time begin;
    Time end;
    JobId job;
    bool is_gcs;
    ExecMode mode;  // only meaningful for segments
  };
  std::map<std::int32_t, std::vector<SweepItem>> by_proc;
  for (const GcsInterval& iv : intervals) {
    by_proc[iv.proc].push_back(
        {iv.begin, iv.end, iv.job, true, ExecMode::kGcs});
  }
  for (const ExecSegment& s : result.segments) {
    if (s.mode == ExecMode::kGcs) continue;
    by_proc[s.processor.value()].push_back(
        {s.begin, s.end, s.job, false, s.mode});
  }
  for (auto& [proc, items] : by_proc) {
    std::sort(items.begin(), items.end(),
              [](const SweepItem& a, const SweepItem& b) {
                return a.begin != b.begin ? a.begin < b.begin
                                          : a.is_gcs < b.is_gcs;
              });
    std::vector<const SweepItem*> active_gcs;
    std::vector<const SweepItem*> active_seg;
    for (const SweepItem& item : items) {
      const auto expire = [&](std::vector<const SweepItem*>& v) {
        v.erase(std::remove_if(v.begin(), v.end(),
                               [&](const SweepItem* a) {
                                 return a->end <= item.begin;
                               }),
                v.end());
      };
      expire(active_gcs);
      expire(active_seg);
      for (const SweepItem* other : item.is_gcs ? active_seg : active_gcs) {
        const SweepItem& seg = item.is_gcs ? *other : item;
        const SweepItem& gcs = item.is_gcs ? item : *other;
        if (gcs.job == seg.job) continue;
        const Time lo = std::max(seg.begin, gcs.begin);
        const Time hi = std::min(seg.end, gcs.end);
        if (lo < hi) {
          report.violations.push_back(strf(
              "t=[", lo, ",", hi, "): ", seg.job, " ran ",
              toString(seg.mode), " code on P", proc, " while ", gcs.job,
              " was inside a gcs there (",
              system.task(gcs.job.task).name, ")"));
        }
      }
      (item.is_gcs ? active_gcs : active_seg).push_back(&item);
    }
  }
  return report;
}

InvariantReport checkGcsPriorityAssignment(const TaskSystem& system,
                                            const SimResult& result,
                                            const PriorityTables& tables,
                                            GcsPriorityRule rule) {
  InvariantReport report;
  for (const TraceEvent& e : result.trace) {
    if (e.kind != Ev::kGcsEnter) continue;
    const Task& task = system.task(e.job.task);
    const Priority expected =
        rule == GcsPriorityRule::kSharedMemory
            ? tables.gcsPriority(e.resource, task.processor)
            : tables.ceiling(e.resource);
    if (e.priority != expected) {
      report.violations.push_back(strf(
          "t=", e.t, ": ", task.name, " entered gcs on ",
          system.resource(e.resource).name, " at ", e.priority,
          " but the protocol assigns ", expected));
    }
  }
  return report;
}

InvariantReport checkProtocolInvariants(const TaskSystem& system,
                                        const SimResult& result,
                                        bool priority_ordered_queues) {
  InvariantReport all = checkMutualExclusion(system, result);
  if (priority_ordered_queues) {
    InvariantReport r = checkPriorityOrderedHandoff(system, result);
    all.violations.insert(all.violations.end(), r.violations.begin(),
                          r.violations.end());
  }
  InvariantReport g = checkGcsPreemptionRule(system, result);
  all.violations.insert(all.violations.end(), g.violations.begin(),
                        g.violations.end());
  return all;
}

}  // namespace mpcp
