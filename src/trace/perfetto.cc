#include "trace/perfetto.h"

#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strf.h"

namespace mpcp {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jobName(const TaskSystem& system, JobId id) {
  return strf(system.task(id.task).name, '#', id.instance);
}

/// An async span opened by a kLockWait / kSelfSuspend event and closed
/// by its matching grant/resume (or the horizon). Chrome matches the
/// "b"/"e" pair on (cat, id, pid), so those are pinned at open time.
struct OpenSpan {
  JobId job;
  ResourceId resource;  ///< invalid for suspension spans
  int id = 0;
  int pid = 0;
  int tid = 0;
};

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void emit(const std::string& body) {
    os_ << (first_ ? "\n    {" : ",\n    {") << body << "}";
    first_ = false;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void writePerfettoTrace(std::ostream& os, const TaskSystem& system,
                        const SimResult& result) {
  // Home processor fallback for events whose processor field is unset
  // (e.g. a deadline miss recorded at the horizon).
  const auto pidOf = [&](const TraceEvent& e) {
    return e.processor.valid()
               ? e.processor.value()
               : system.task(e.job.task).processor.value();
  };

  // Pass 1: every (processor, task) pair that appears, so each gets a
  // thread_name metadata record (a task can show up on several
  // processors under DPCP).
  std::set<std::pair<int, int>> threads;
  for (const ExecSegment& s : result.segments) {
    threads.emplace(s.processor.value(), s.job.task.value());
  }
  for (const TraceEvent& e : result.trace) {
    if (e.kind == Ev::kLockWait || e.kind == Ev::kSelfSuspend ||
        e.kind == Ev::kDeadlineMiss) {
      threads.emplace(pidOf(e), e.job.task.value());
    }
    // Fault/containment instants carry a job except for processor
    // stalls, which are process-scoped (no thread row needed).
    if ((e.kind == Ev::kFaultInjected || e.kind == Ev::kForcedRelease ||
         e.kind == Ev::kBudgetKill || e.kind == Ev::kJobAbort ||
         e.kind == Ev::kReleaseSkipped) &&
        e.job.task.valid()) {
      threads.emplace(pidOf(e), e.job.task.value());
    }
  }

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  EventWriter w(os);

  for (int p = 0; p < system.processorCount(); ++p) {
    w.emit(strf("\"ph\":\"M\",\"pid\":", p,
                ",\"name\":\"process_name\",\"args\":{\"name\":\"P", p,
                "\"}"));
    w.emit(strf("\"ph\":\"M\",\"pid\":", p,
                ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":",
                p, "}"));
  }
  for (const auto& [pid, tid] : threads) {
    w.emit(strf("\"ph\":\"M\",\"pid\":", pid, ",\"tid\":", tid,
                ",\"name\":\"thread_name\",\"args\":{\"name\":\"",
                jsonEscape(system.task(TaskId(tid)).name), "\"}"));
  }

  // Execution segments as complete events, one per contiguous run.
  for (const ExecSegment& s : result.segments) {
    w.emit(strf("\"ph\":\"X\",\"pid\":", s.processor.value(),
                ",\"tid\":", s.job.task.value(), ",\"ts\":", s.begin,
                ",\"dur\":", s.end - s.begin, ",\"cat\":\"",
                toString(s.mode), "\",\"name\":\"",
                jsonEscape(jobName(system, s.job)), "\""));
  }

  // Async spans for blocking and suspension, in trace order.
  int next_id = 1;
  std::vector<OpenSpan> open_blocking;
  std::vector<OpenSpan> open_susp;

  const auto findOpen = [](std::vector<OpenSpan>& v, JobId job,
                           ResourceId r) -> std::vector<OpenSpan>::iterator {
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (it->job == job && it->resource == r) return it;
    }
    return v.end();
  };
  const auto emitBegin = [&](const OpenSpan& sp, Time t, const char* cat,
                             const std::string& name) {
    w.emit(strf("\"ph\":\"b\",\"cat\":\"", cat, "\",\"id\":", sp.id,
                ",\"pid\":", sp.pid, ",\"tid\":", sp.tid, ",\"ts\":", t,
                ",\"name\":\"", jsonEscape(name), "\""));
  };
  const auto emitEnd = [&](const OpenSpan& sp, Time t, const char* cat) {
    w.emit(strf("\"ph\":\"e\",\"cat\":\"", cat, "\",\"id\":", sp.id,
                ",\"pid\":", sp.pid, ",\"tid\":", sp.tid, ",\"ts\":", t));
  };

  for (const TraceEvent& e : result.trace) {
    switch (e.kind) {
      case Ev::kLockWait: {
        // A PCP wake-retry that loses again re-emits kLockWait while the
        // original span is still open; keep the one span per episode.
        if (findOpen(open_blocking, e.job, e.resource) !=
            open_blocking.end()) {
          break;
        }
        OpenSpan sp{e.job, e.resource, next_id++, pidOf(e),
                    e.job.task.value()};
        emitBegin(sp, e.t, "blocking",
                  strf("wait ", system.resource(e.resource).name));
        open_blocking.push_back(sp);
        break;
      }
      case Ev::kLockGrant: {
        auto it = findOpen(open_blocking, e.job, e.resource);
        if (it != open_blocking.end()) {
          emitEnd(*it, e.t, "blocking");
          open_blocking.erase(it);
        }
        break;
      }
      case Ev::kSelfSuspend: {
        OpenSpan sp{e.job, ResourceId{}, next_id++, pidOf(e),
                    e.job.task.value()};
        emitBegin(sp, e.t, "suspension", "suspended");
        open_susp.push_back(sp);
        break;
      }
      case Ev::kSelfResume: {
        auto it = findOpen(open_susp, e.job, ResourceId{});
        if (it != open_susp.end()) {
          emitEnd(*it, e.t, "suspension");
          open_susp.erase(it);
        }
        break;
      }
      case Ev::kDeadlineMiss: {
        w.emit(strf("\"ph\":\"i\",\"pid\":", pidOf(e),
                    ",\"tid\":", e.job.task.value(), ",\"ts\":", e.t,
                    ",\"s\":\"t\",\"name\":\"deadline miss ",
                    jsonEscape(jobName(system, e.job)), "\""));
        break;
      }
      case Ev::kFaultInjected:
      case Ev::kForcedRelease:
      case Ev::kBudgetKill:
      case Ev::kJobAbort:
      case Ev::kReleaseSkipped: {
        static const auto nameOf = [](Ev k) {
          switch (k) {
            case Ev::kFaultInjected: return "fault injected";
            case Ev::kForcedRelease: return "forced release";
            case Ev::kBudgetKill: return "budget kill";
            case Ev::kJobAbort: return "job abort";
            default: return "release skipped";
          }
        };
        std::string name = nameOf(e.kind);
        if (e.resource.valid()) {
          name += strf(" ", system.resource(e.resource).name);
        }
        if (!e.job.task.valid()) {
          // Processor stall window: no job to attach to — process scope.
          w.emit(strf("\"ph\":\"i\",\"pid\":",
                      e.processor.valid() ? e.processor.value() : 0,
                      ",\"ts\":", e.t, ",\"s\":\"p\",\"name\":\"",
                      jsonEscape(name + " (stall)"), "\""));
          break;
        }
        name += strf(" ", jobName(system, e.job));
        w.emit(strf("\"ph\":\"i\",\"pid\":", pidOf(e),
                    ",\"tid\":", e.job.task.value(), ",\"ts\":", e.t,
                    ",\"s\":\"t\",\"name\":\"", jsonEscape(name), "\""));
        break;
      }
      default:
        break;
    }
  }

  // Anything still blocked/suspended at the horizon: close there so the
  // viewer renders a bounded span instead of dropping the event.
  for (const OpenSpan& sp : open_blocking) {
    emitEnd(sp, result.horizon, "blocking");
  }
  for (const OpenSpan& sp : open_susp) {
    emitEnd(sp, result.horizon, "suspension");
  }

  os << "\n  ]\n}\n";
}

}  // namespace mpcp
