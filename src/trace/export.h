// CSV export of simulation results, for spreadsheets / plotting scripts.
// Three flat tables: job records, trace events, execution segments.
// All writers escape nothing — every field is numeric or a known-safe
// identifier (task names come from the user; commas in names are
// replaced with ';').
#pragma once

#include <ostream>
#include <string>

#include "model/task_system.h"
#include "sim/result.h"

namespace mpcp {

/// Columns: task,instance,release,deadline,finish,response,executed,
///          blocked,preempted,suspended,missed
void writeJobsCsv(std::ostream& os, const TaskSystem& system,
                  const SimResult& result);

/// Columns: t,event,task,instance,processor,resource,priority,
///          other_task,other_instance
void writeTraceCsv(std::ostream& os, const TaskSystem& system,
                   const SimResult& result);

/// Columns: processor,task,instance,begin,end,mode
void writeSegmentsCsv(std::ostream& os, const TaskSystem& system,
                      const SimResult& result);

}  // namespace mpcp
