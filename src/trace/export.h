// CSV export of simulation results, for spreadsheets / plotting scripts.
// Three flat tables: job records, trace events, execution segments.
// String fields (task/semaphore names, event kinds, segment modes) are
// escaped per RFC 4180: quoted when they contain a comma, quote, or line
// break, with embedded quotes doubled — names are user input and pass
// through verbatim otherwise.
#pragma once

#include <ostream>
#include <string>

#include "model/task_system.h"
#include "sim/result.h"

namespace mpcp {

/// Columns: task,instance,release,deadline,finish,response,executed,
///          blocked,preempted,suspended,missed
void writeJobsCsv(std::ostream& os, const TaskSystem& system,
                  const SimResult& result);

/// Columns: t,event,task,instance,processor,resource,priority,
///          other_task,other_instance
void writeTraceCsv(std::ostream& os, const TaskSystem& system,
                   const SimResult& result);

/// Columns: processor,task,instance,begin,end,mode
void writeSegmentsCsv(std::ostream& os, const TaskSystem& system,
                      const SimResult& result);

}  // namespace mpcp
