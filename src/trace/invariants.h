// Post-hoc invariant checkers over simulation traces.
//
// These audit the protocol implementations against the paper's claims:
//   * mutual exclusion — a binary semaphore never has two holders;
//   * priority-ordered handoff — V(S) always signals the highest-priority
//     waiter (protocol rule 7 / Section 3.3's secondary goal);
//   * Theorem 2 — a job inside a gcs is never preempted by a job running
//     non-critical-section (or local-cs) code on the same processor.
//
// Checkers return violation descriptions rather than asserting, so tests
// can report all failures at once and benches can audit long runs cheaply.
#pragma once

#include <string>
#include <vector>

#include "analysis/ceilings.h"
#include "model/task_system.h"
#include "sim/result.h"

namespace mpcp {

struct InvariantReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// A binary semaphore is held by at most one job at a time, releases come
/// from the holder, and handoffs originate from the holder.
[[nodiscard]] InvariantReport checkMutualExclusion(const TaskSystem& system,
                                                   const SimResult& result);

/// Every handoff goes to the highest-assigned-priority waiter at that
/// moment. Only meaningful for priority-queued protocols (not kNone/FIFO).
[[nodiscard]] InvariantReport checkPriorityOrderedHandoff(
    const TaskSystem& system, const SimResult& result);

/// Theorem 2: while some job is inside a gcs on processor p, p never runs
/// another job's non-gcs code. Valid for non-nested global sections
/// (a nested-waiting gcs holder would be a false positive).
[[nodiscard]] InvariantReport checkGcsPreemptionRule(const TaskSystem& system,
                                                     const SimResult& result);

/// Audits rule 3 / Section 4.4: every gcs entry's elevation equals the
/// statically assigned value — gcsPriority(S, host) under the
/// shared-memory protocol, ceiling(S) under the message-based one.
/// Requires flat (non-nested) global sections.
enum class GcsPriorityRule { kSharedMemory, kMessageBased };
[[nodiscard]] InvariantReport checkGcsPriorityAssignment(
    const TaskSystem& system, const SimResult& result,
    const PriorityTables& tables, GcsPriorityRule rule);

/// Runs all checkers applicable to `system` and concatenates reports.
[[nodiscard]] InvariantReport checkProtocolInvariants(
    const TaskSystem& system, const SimResult& result,
    bool priority_ordered_queues = true);

}  // namespace mpcp
