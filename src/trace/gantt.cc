#include "trace/gantt.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/strf.h"

namespace mpcp {

namespace {

char modeChar(ExecMode m) {
  switch (m) {
    case ExecMode::kNormal: return '=';
    case ExecMode::kLocalCs: return 'L';
    case ExecMode::kGcs: return 'G';
  }
  return '?';
}

Time lastActivity(const SimResult& result) {
  Time last = 0;
  for (const ExecSegment& s : result.segments) last = std::max(last, s.end);
  for (const TraceEvent& e : result.trace) last = std::max(last, e.t);
  return last;
}

}  // namespace

std::string renderGantt(const TaskSystem& system, const SimResult& result,
                        GanttOptions options) {
  const Time begin = options.begin;
  Time end = options.end >= 0 ? options.end
                              : std::min(result.horizon, lastActivity(result));
  end = std::max(end, begin + 1);
  const std::size_t width = static_cast<std::size_t>(end - begin);

  const std::size_t n = system.tasks().size();
  std::vector<std::string> rows(n, std::string(width, ' '));
  std::vector<std::string> release_marks(n, std::string(width, ' '));

  // Live windows: release -> finish (or horizon) become '.' background.
  for (const JobRecord& jr : result.jobs) {
    const Time from = std::max(jr.release, begin);
    const Time to = std::min(jr.finish < 0 ? end : jr.finish, end);
    auto& row = rows[static_cast<std::size_t>(jr.id.task.value())];
    for (Time t = from; t < to; ++t) {
      row[static_cast<std::size_t>(t - begin)] = '.';
    }
    if (jr.release >= begin && jr.release < end) {
      release_marks[static_cast<std::size_t>(jr.id.task.value())]
                   [static_cast<std::size_t>(jr.release - begin)] = '^';
    }
  }
  // Execution segments overwrite the background.
  for (const ExecSegment& s : result.segments) {
    const Time from = std::max(s.begin, begin);
    const Time to = std::min(s.end, end);
    auto& row = rows[static_cast<std::size_t>(s.job.task.value())];
    for (Time t = from; t < to; ++t) {
      row[static_cast<std::size_t>(t - begin)] = modeChar(s.mode);
    }
  }

  // Row order: group tasks by processor (priority order within).
  std::vector<TaskId> order;
  if (options.group_by_processor) {
    for (int p = 0; p < system.processorCount(); ++p) {
      for (TaskId t : system.tasksOn(ProcessorId(p))) order.push_back(t);
    }
  } else {
    for (const Task& t : system.tasks()) order.push_back(t.id);
  }

  std::size_t label_w = 4;
  for (const Task& t : system.tasks()) {
    label_w = std::max(label_w, t.name.size() + strf(" [P]", 0).size());
  }
  label_w = std::max(label_w, std::size_t{12});

  std::ostringstream os;
  // Time ruler (mark every 5 ticks).
  std::string ruler(width, ' ');
  for (Time t = begin; t < end; ++t) {
    if (t % 5 == 0) {
      const std::string label = strf(t);
      for (std::size_t k = 0;
           k < label.size() && (t - begin) + static_cast<Time>(k) <
                                   static_cast<Time>(width);
           ++k) {
        ruler[static_cast<std::size_t>(t - begin) + k] = label[k];
      }
    }
  }
  os << padRight("t:", label_w) << ruler << "\n";

  int last_proc = -1;
  for (TaskId tid : order) {
    const Task& task = system.task(tid);
    if (options.group_by_processor && task.processor.value() != last_proc) {
      last_proc = task.processor.value();
      os << "--- " << task.processor << " ---\n";
    }
    const std::string label = strf(task.name, " [", task.processor, "]");
    os << padRight(label, label_w)
       << rows[static_cast<std::size_t>(tid.value())] << "\n";
    if (options.show_releases) {
      const auto& marks = release_marks[static_cast<std::size_t>(tid.value())];
      if (marks.find('^') != std::string::npos) {
        os << std::string(label_w, ' ') << marks << "\n";
      }
    }
  }
  os << "legend: '=' normal  'L' local cs  'G' global cs  '.' waiting  "
        "'^' release\n";
  return os.str();
}

std::string renderNarrative(const TaskSystem& system, const SimResult& result,
                            Time begin, Time end) {
  if (end < 0) end = result.horizon;
  std::ostringstream os;
  Time last_t = -1;
  for (const TraceEvent& e : result.trace) {
    if (e.t < begin || e.t >= end) continue;
    if (e.t != last_t) {
      os << "t=" << e.t << ":\n";
      last_t = e.t;
    }
    const Task& task = system.task(e.job.task);
    os << "  " << toString(e.kind) << " " << task.name << "(#"
       << e.job.instance << ")";
    if (e.processor.valid()) os << " on " << e.processor;
    if (e.resource.valid()) {
      os << " [" << system.resource(e.resource).name << "]";
    }
    if (e.priority != kPriorityFloor) os << " at " << e.priority;
    if (e.other.task.valid()) {
      os << " <-> " << system.task(e.other.task).name << "(#"
         << e.other.instance << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mpcp
