// ASCII Gantt rendering of simulation results — the tool that reproduces
// Figure 5-1-style timelines.
//
// One row per task; one column per tick:
//   '='  executing outside any critical section
//   'L'  executing inside a local critical section
//   'G'  executing inside a global critical section (elevated band)
//   '.'  released but waiting (preempted, blocked or suspended)
//   ' '  no live job
//   '^'  marks a release instant on the ruler row under each task
#pragma once

#include <string>

#include "model/task_system.h"
#include "sim/result.h"

namespace mpcp {

struct GanttOptions {
  Time begin = 0;
  Time end = -1;          ///< -1: min(horizon, last activity)
  bool show_releases = true;
  bool group_by_processor = true;  ///< order rows by processor binding
};

/// Renders the execution segments of `result` for `system`.
[[nodiscard]] std::string renderGantt(const TaskSystem& system,
                                      const SimResult& result,
                                      GanttOptions options = {});

/// Renders the event trace as a human-readable narrative with task names
/// (the textual counterpart of Example 4's event list).
[[nodiscard]] std::string renderNarrative(const TaskSystem& system,
                                          const SimResult& result,
                                          Time begin = 0, Time end = -1);

}  // namespace mpcp
