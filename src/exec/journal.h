// CampaignJournal — the durable ledger behind resumable sweeps and fuzz
// campaigns (ISSUE 5).
//
// An append-only text file, one CRC-framed record per line:
//
//   <crc32-hex8> <kind> <key> <escaped-payload>\n
//
// where <kind> is meta|start|done|fail, <key> is the canonical run key
// (whitespace-free), and the payload is backslash-escaped so arbitrary
// bytes (CSV rows, error text) fit on one line. The CRC covers
// "<kind> <key> <escaped-payload>".
//
// Durability contract:
//   * every append is a single write(2) followed by fsync(2), so a record
//     either lands whole or not at all from the journal's point of view —
//     a driver killed with SIGKILL mid-append leaves at most one torn
//     line at the tail;
//   * the loader is torn-tail tolerant: a final line without a newline
//     (any truncation offset inside the last record) is dropped silently
//     and reported via JournalLoad::torn_tail;
//   * an interior line that fails its CRC or does not parse is skipped
//     and counted in JournalLoad::corrupt_lines — one bad sector never
//     poisons the rest of the campaign.
//
// Record semantics (enforced by the campaign runner, not the journal):
//   meta  — config fingerprint; resuming under different options is an
//           error, caught by comparing this record;
//   start — the run was dispatched (crash forensics: a start with no
//           done/fail means the driver died mid-run);
//   done  — the run completed; payload is its serialized result row,
//           reused verbatim on resume so aggregates are byte-identical;
//   fail  — the run failed permanently (retries exhausted); re-run on
//           resume, since the failure may have been environmental.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mpcp::exec {

/// CRC-32 (IEEE 802.3, reflected) of `bytes`. Exposed for tests.
[[nodiscard]] std::uint32_t crc32(const std::string& bytes);

/// Escapes backslash / newline / carriage return so any payload is a
/// single journal line; unescapeLine inverts it exactly.
[[nodiscard]] std::string escapeLine(const std::string& raw);
[[nodiscard]] std::string unescapeLine(const std::string& escaped);

enum class RecordKind { kMeta, kStart, kDone, kFail };

[[nodiscard]] const char* toString(RecordKind kind);

struct JournalRecord {
  RecordKind kind = RecordKind::kStart;
  std::string key;
  std::string payload;  ///< unescaped
};

/// Result of parsing a journal. Missing file == empty journal.
struct JournalLoad {
  std::vector<JournalRecord> records;  ///< valid records, file order
  std::uint64_t corrupt_lines = 0;     ///< CRC/format failures (interior)
  bool torn_tail = false;              ///< final record was truncated
  std::string meta;                    ///< payload of the first meta record

  [[nodiscard]] bool empty() const {
    return records.empty() && corrupt_lines == 0 && !torn_tail;
  }

  /// Final state per key: payload of the last `done` record. Keys whose
  /// last record is `start` or `fail` are absent — they must be re-run.
  [[nodiscard]] std::map<std::string, std::string> completed() const;
};

[[nodiscard]] JournalLoad parseJournal(const std::string& text);
[[nodiscard]] JournalLoad loadJournalFile(const std::string& path);

/// The exact line CampaignJournal::append writes for (kind, key,
/// payload) — CRC prefix, escaped payload, trailing newline. Exposed so
/// the fleet shard merge (exec/fabric/) can rebuild a journal
/// byte-identical to a serial run. Requires a whitespace-free key.
[[nodiscard]] std::string formatRecord(RecordKind kind, const std::string& key,
                                       const std::string& payload);

/// Injectable disk seam (ISSUE 10): every byte the journal layer puts on
/// disk goes through one of these, so tests and the soak harness can
/// simulate a hostile disk — ENOSPC, short writes, failing fsync, torn
/// renames — deterministically and without filling a real filesystem.
/// The base class is the real syscalls; errors are reported errno-style
/// (negative return, errno set) so call sites keep their existing
/// strerror diagnostics.
class JournalIo {
 public:
  virtual ~JournalIo();

  [[nodiscard]] virtual int open(const std::string& path, int flags,
                                 int mode);
  [[nodiscard]] virtual long write(int fd, const void* data,
                                   std::size_t n);
  [[nodiscard]] virtual int fsync(int fd);
  [[nodiscard]] virtual int rename(const std::string& from,
                                   const std::string& to);
  virtual int close(int fd);

  /// The shared real-syscall instance.
  [[nodiscard]] static JournalIo& real();
};

/// A deterministic hostile disk. `budget_bytes` caps the total bytes it
/// will ever write (across all fds): with `short_writes`, a write that
/// crosses the cap is cut at the boundary (a torn record lands) and the
/// NEXT write fails ENOSPC; without it, the crossing write fails whole.
/// Negative budget = unlimited. fsync failures (EIO) start after
/// `fsync_failures_after` successful calls (negative = never fail), and
/// `fail_renames` makes every rename fail EIO — the torn-rename case,
/// where the tmp file exists but never replaces the target.
class FaultyJournalIo : public JournalIo {
 public:
  std::int64_t budget_bytes = -1;
  bool short_writes = false;
  int fsync_failures_after = -1;
  bool fail_renames = false;
  /// Faults apply only to paths containing this substring ("" = all) —
  /// lets a test break shard journals while the main journal stays
  /// healthy. Matched at open/rename; fds from non-matching opens pass
  /// straight through.
  std::string path_filter;

  // Observability for assertions.
  std::int64_t bytes_written = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t fsync_errors = 0;
  std::uint64_t rename_errors = 0;

  [[nodiscard]] int open(const std::string& path, int flags,
                         int mode) override;
  [[nodiscard]] long write(int fd, const void* data, std::size_t n) override;
  [[nodiscard]] int fsync(int fd) override;
  [[nodiscard]] int rename(const std::string& from,
                           const std::string& to) override;
  int close(int fd) override;

 private:
  [[nodiscard]] bool faulted(int fd) const;
  std::vector<int> faulted_fds_;
  int fsync_calls_ = 0;
};

/// Writes `bytes` to `path` atomically: tmp sibling + write + fsync +
/// rename, all through `io`. Throws ConfigError on any step failing —
/// the target file is untouched in every failure mode (a torn rename
/// leaves only the tmp sibling behind). Used by the fleet journal merge
/// and the coordinator checkpoint.
void writeFileAtomic(const std::string& path, const std::string& bytes,
                     JournalIo* io = nullptr);

/// Append handle. Thread-safe: concurrent appends from pool workers are
/// serialized internally; each record is written + fsync'd before
/// append() returns, so a completed run survives any subsequent crash.
class CampaignJournal {
 public:
  /// Opens `path` for append, creating it. Throws ConfigError on failure.
  /// `io` is the disk seam (null = the real one); it must outlive the
  /// journal.
  explicit CampaignJournal(const std::string& path, JournalIo* io = nullptr);
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  void append(RecordKind kind, const std::string& key,
              const std::string& payload);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  JournalIo* io_ = nullptr;
  std::mutex mu_;
};

}  // namespace mpcp::exec
