// RetryPolicy — capped exponential backoff with deterministic jitter.
//
// Failed runs (worker crash, timeout, transient I/O) are retried up to
// max_attempts before being recorded as permanently failed. The delay
// before attempt k+1 is
//
//   min(base_delay * 2^(k-1), max_delay) * u,   u in [0.5, 1.0)
//
// where u is drawn from Rng(jitter_seed + k) — *seed-derived*, so a
// given policy produces the same delay sequence on every machine and
// every rerun (no wall-clock or global-RNG dependence; retryDelay() is a
// pure function and the unit tests pin it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "exp/run_executor.h"

namespace mpcp::exec {

struct RetryPolicy {
  int max_attempts = 1;  ///< total attempts (1 = no retry)
  std::chrono::milliseconds base_delay{0};   ///< 0 = retry immediately
  std::chrono::milliseconds max_delay{2000};  ///< backoff cap pre-jitter
  std::uint64_t jitter_seed = 0;
};

/// Delay before attempt `attempt + 1`, given that attempt `attempt`
/// (1-based) just failed. Deterministic in (policy, attempt).
[[nodiscard]] std::chrono::milliseconds retryDelay(const RetryPolicy& policy,
                                                   int attempt);

/// Decorator: executes through `inner`, retrying failures per `policy`.
/// Gives up early (no sleep, no further attempts) once exec::interrupted()
/// is raised, so Ctrl-C never waits out a backoff.
class RetryingExecutor final : public exp::RunExecutor {
 public:
  RetryingExecutor(exp::RunExecutor& inner, const RetryPolicy& policy)
      : inner_(inner), policy_(policy) {}

  [[nodiscard]] exp::ExecResult execute(
      const std::function<std::string()>& body) override;

  /// Total retries performed across all execute() calls (for counters).
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  exp::RunExecutor& inner_;
  RetryPolicy policy_;
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace mpcp::exec
