#include "exec/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <string>

#include "common/strf.h"
#include "exec/interrupt.h"

namespace mpcp::exec {

namespace {

/// Writes all of `data` to `fd`, retrying on EINTR/partial writes.
/// Async-usable in the child (no allocation, no locks).
bool writeAll(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Child side: run the body, frame the result, _exit. Never returns.
[[noreturn]] void childMain(int result_fd, int stderr_fd,
                            const SubprocessLimits& limits,
                            const std::function<std::string()>& body) {
  // The child must never run the driver's signal handler or outlive an
  // interrupt sweep accidentally re-registered: reset to defaults.
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  // Worker stderr (engine diagnostics, CHECK messages printed by
  // libraries, sanitizer reports) goes to the capture pipe.
  if (stderr_fd >= 0) dup2(stderr_fd, STDERR_FILENO);

  if (limits.rss_limit_mb > 0) {
    struct rlimit rl;
    rl.rlim_cur = rl.rlim_max = limits.rss_limit_mb * 1024 * 1024;
    setrlimit(RLIMIT_DATA, &rl);
  }

  std::uint8_t status = 0;
  std::string payload;
  try {
    payload = body();
  } catch (const std::exception& e) {
    status = 1;
    payload = e.what();
  } catch (...) {
    status = 1;
    payload = "unknown exception in worker";
  }

  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t header[5] = {
      status, static_cast<std::uint8_t>(len & 0xff),
      static_cast<std::uint8_t>((len >> 8) & 0xff),
      static_cast<std::uint8_t>((len >> 16) & 0xff),
      static_cast<std::uint8_t>((len >> 24) & 0xff)};
  bool ok = writeAll(result_fd, reinterpret_cast<const char*>(header), 5);
  ok = ok && writeAll(result_fd, payload.data(), payload.size());
  // _exit, not exit: the child shares the driver's atexit list and stdio
  // buffers; flushing them here would duplicate driver output.
  _exit(ok ? (status == 0 ? 0 : 1) : 2);
}

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Drains whatever is currently readable. Returns false on EOF.
bool drainInto(int fd, std::string& buf) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF
    return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR
               ? false
               : true;
  }
}

/// Decodes a complete frame out of `raw` if present.
bool parseFrame(const std::string& raw, std::uint8_t& status,
                std::string& payload) {
  if (raw.size() < 5) return false;
  status = static_cast<std::uint8_t>(raw[0]);
  const std::uint32_t len =
      static_cast<std::uint8_t>(raw[1]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(raw[2])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(raw[3])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(raw[4])) << 24);
  if (raw.size() < 5 + static_cast<std::size_t>(len)) return false;
  payload = raw.substr(5, len);
  return true;
}

}  // namespace

exp::ExecResult SubprocessExecutor::execute(
    const std::function<std::string()>& body) {
  exp::ExecResult result;

  int res_pipe[2];
  int err_pipe[2];
  if (pipe(res_pipe) != 0) {
    result.error = strf("pipe() failed: ", std::strerror(errno));
    return result;
  }
  if (pipe(err_pipe) != 0) {
    result.error = strf("pipe() failed: ", std::strerror(errno));
    ::close(res_pipe[0]);
    ::close(res_pipe[1]);
    return result;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    result.error = strf("fork() failed: ", std::strerror(errno));
    for (const int fd : {res_pipe[0], res_pipe[1], err_pipe[0], err_pipe[1]}) {
      ::close(fd);
    }
    return result;
  }

  if (pid == 0) {
    ::close(res_pipe[0]);
    ::close(err_pipe[0]);
    childMain(res_pipe[1], err_pipe[1], limits_, body);  // never returns
  }

  ::close(res_pipe[1]);
  ::close(err_pipe[1]);
  setNonBlocking(res_pipe[0]);
  setNonBlocking(err_pipe[0]);
  registerWorkerPid(pid);

  const auto start = std::chrono::steady_clock::now();
  const auto wallExceeded = [&] {
    if (limits_.wall_limit_s <= 0) return false;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return elapsed >= limits_.wall_limit_s;
  };

  std::string raw;
  std::string err_tail;
  int wstatus = 0;
  bool reaped = false;

  const auto drainBoth = [&] {
    drainInto(res_pipe[0], raw);
    drainInto(err_pipe[0], err_tail);
    if (limits_.stderr_tail_bytes > 0 &&
        err_tail.size() > limits_.stderr_tail_bytes) {
      err_tail.erase(0, err_tail.size() - limits_.stderr_tail_bytes);
    }
  };

  while (!reaped) {
    struct pollfd fds[2] = {{res_pipe[0], POLLIN, 0}, {err_pipe[0], POLLIN, 0}};
    poll(fds, 2, 50);  // short tick: bounds waitpid/timeout latency
    drainBoth();

    const pid_t w = waitpid(pid, &wstatus, WNOHANG);
    if (w == pid) {
      reaped = true;
      break;
    }
    if (w < 0 && errno != EINTR) {
      // ECHILD: someone reaped it behind our back; treat as lost.
      result.error = strf("waitpid failed: ", std::strerror(errno));
      break;
    }
    if (wallExceeded()) {
      kill(pid, SIGKILL);
      result.timed_out = true;
      while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
      reaped = true;
      break;
    }
  }
  // The child is gone: pick up anything still buffered in the pipes.
  drainBoth();
  unregisterWorkerPid(pid);
  ::close(res_pipe[0]);
  ::close(err_pipe[0]);

  result.stderr_tail = err_tail;
  if (result.timed_out) {
    result.signal = SIGKILL;
    result.error = strf("worker exceeded wall limit (", limits_.wall_limit_s,
                        "s), killed");
    return result;
  }
  if (!reaped) return result;  // waitpid error, already described

  if (WIFSIGNALED(wstatus)) {
    result.signal = WTERMSIG(wstatus);
    result.error = strf("worker killed by signal ", result.signal, " (",
                        strsignal(result.signal), ")");
    return result;
  }
  result.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;

  std::uint8_t status = 0;
  std::string payload;
  if (parseFrame(raw, status, payload)) {
    if (status == 0) {
      result.ok = true;
      result.payload = std::move(payload);
    } else {
      result.error = payload.empty() ? "worker reported failure" : payload;
    }
    return result;
  }
  result.error = strf("worker exited (code ", result.exit_code,
                      ") without a complete result frame");
  return result;
}

}  // namespace mpcp::exec
