#include "exec/fabric/worker.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <ostream>
#include <thread>

#include "common/check.h"
#include "common/strf.h"
#include "exec/fabric/clock.h"
#include "exec/fabric/socket.h"
#include "exec/fabric/wire.h"
#include "exec/interrupt.h"

namespace mpcp::exec::fabric {

namespace {

std::int64_t nowMs() { return steadyNowMs(); }

void note(const WorkerConfig& config, const std::string& message) {
  if (config.log != nullptr) {
    *config.log << "worker " << config.name << ": " << message << "\n";
  }
}

enum class SessionEnd {
  kBye,          ///< coordinator finished with us — clean exit
  kLost,         ///< connection died — reconnect with backoff
  kInterrupted,  ///< SIGINT/SIGTERM — exit 128+signo
  kConfig,       ///< REJECT / unknown kind / fingerprint flip — exit 3
};

/// Drains readable bytes into the decoder. False = connection dead.
bool drainSocket(int fd, FrameDecoder& decoder) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return true;
    }
    return false;
  }
}

/// Blocks (via poll) until one complete frame arrives or `deadline_ms`
/// passes. False = dead/poisoned/timeout. `sink` (nullable) is ticked
/// every pass — without this, a chaos-delayed HELLO would sit in the
/// link's queue for the whole handshake wait and never reach the
/// coordinator, livelocking the worker (same verdict on every retry).
bool awaitFrame(int fd, FrameDecoder& decoder, std::int64_t deadline_ms,
                Frame& out, FrameSink* sink = nullptr) {
  for (;;) {
    if (sink != nullptr) sink->tick(nowMs());
    const FrameDecoder::Result r = decoder.next();
    if (r.status == FrameDecoder::Status::kFrame) {
      out = r.frame;
      return true;
    }
    if (r.status == FrameDecoder::Status::kError) return false;
    const std::int64_t left = deadline_ms - nowMs();
    if (left <= 0 || interrupted()) return false;
    pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(left, 50)));
    if (!drainSocket(fd, decoder)) {
      // A REJECT (or WELCOME) right before the peer's close still counts.
      const FrameDecoder::Result last = decoder.next();
      if (last.status == FrameDecoder::Status::kFrame) {
        out = last.frame;
        return true;
      }
      return false;
    }
  }
}

void splitKeys(const std::string& payload, std::deque<std::string>& out) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t sp = payload.find(' ', pos);
    if (sp == std::string::npos) sp = payload.size();
    if (sp > pos) out.push_back(payload.substr(pos, sp - pos));
    pos = sp + 1;
  }
}

/// One connected session: handshake already done, `body` built. Runs
/// leased keys and heartbeats until the connection ends. Outbound frames
/// go through `sink` (a ChaosLink when --chaos is set).
SessionEnd runSession(const WorkerConfig& config, int fd,
                      FrameDecoder& decoder, const FleetBodyFn& body,
                      FrameSink& sink) {
  std::deque<std::string> queue;
  std::int64_t last_send = nowMs();
  for (;;) {
    if (interrupted()) {
      // Farewell bypasses chaos: the coordinator should learn of a
      // voluntary exit even on a hostile link when possible.
      (void)sendFrame(fd, FrameType::kBye, "");
      return SessionEnd::kInterrupted;
    }
    sink.tick(nowMs());

    // Wait for traffic only when idle; with leased work, poll(0) just
    // picks up new frames (a STEAL must cancel queued keys promptly).
    pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, queue.empty() ? config.heartbeat_ms : 0);
    // Decode what arrived even when the peer has already closed: a BYE
    // followed immediately by the coordinator's close must still read as
    // a BYE, not as a lost connection.
    const bool alive = drainSocket(fd, decoder);
    for (;;) {
      const FrameDecoder::Result r = decoder.next();
      if (r.status == FrameDecoder::Status::kNeedMore) break;
      if (r.status == FrameDecoder::Status::kError) {
        note(config, strf("dropping torn connection: ", r.error));
        return SessionEnd::kLost;
      }
      switch (r.frame.type) {
        case FrameType::kLease:
          splitKeys(r.frame.payload, queue);
          break;
        case FrameType::kSteal: {
          std::deque<std::string> stolen;
          splitKeys(r.frame.payload, stolen);
          for (const std::string& key : stolen) {
            for (auto it = queue.begin(); it != queue.end(); ++it) {
              if (*it == key) {
                queue.erase(it);
                break;
              }
            }
          }
          break;
        }
        case FrameType::kBye:
          return SessionEnd::kBye;
        case FrameType::kHeartbeat:
          break;
        default:
          // The coordinator never sends anything else mid-session;
          // treat it as a torn stream.
          note(config, strf("unexpected ", toString(r.frame.type),
                            " frame mid-session"));
          return SessionEnd::kLost;
      }
    }
    if (!alive) return SessionEnd::kLost;

    if (!queue.empty()) {
      const std::string key = queue.front();
      queue.pop_front();
      applyChaosAids(key);
      FleetResult result;
      try {
        result = body(key);
      } catch (const std::exception& e) {
        result.key = key;
        result.ok = false;
        result.payload = e.what();
      }
      const std::string header = key + (result.ok ? " ok\n" : " fail\n");
      if (!sink.send(FrameType::kResult, header + result.payload)) {
        return SessionEnd::kLost;
      }
      last_send = nowMs();
      continue;  // prefer draining the queue over sleeping in poll
    }

    if (nowMs() - last_send >= config.heartbeat_ms) {
      if (!sink.send(FrameType::kHeartbeat, "")) {
        return SessionEnd::kLost;
      }
      last_send = nowMs();
    }
  }
}

}  // namespace

int runWorker(const WorkerConfig& config_in) {
  WorkerConfig config = config_in;
  if (config.name.empty()) config.name = strf("w", ::getpid());
  ignoreSigpipe();

  Address addr;
  std::string error;
  if (!parseAddress(config.connect, addr, error)) {
    note(config, strf("bad --connect address: ", error));
    return 3;
  }

  std::string kinds;
  for (const std::string& kind : fleetBodyKinds()) {
    if (!kinds.empty()) kinds += ',';
    kinds += kind;
  }
  const std::string hello = strf("fabric ", int{kWireVersion},
                                 "\nname=", config.name, "\nkinds=", kinds);

  std::string pinned_fingerprint;  // set on first handshake, checked after
  const std::int64_t armed_at_ms = nowMs();  // chaos partition-window clock
  std::uint64_t chaos_generation = 0;  // fresh verdicts per reconnect
  int attempt = 1;
  for (;;) {
    if (interrupted()) return interruptExitCode();

    const int fd = connectTo(addr, error);
    SessionEnd end = SessionEnd::kLost;
    if (fd >= 0) {
      std::unique_ptr<FrameSink> sink;
      ChaosLink* chaos = nullptr;
      if (config.chaos.empty()) {
        sink = std::make_unique<FrameSink>(fd);
      } else {
        auto link = std::make_unique<ChaosLink>(&config.chaos, fd, "coord",
                                                armed_at_ms,
                                                ++chaos_generation);
        chaos = link.get();
        sink = std::move(link);
      }
      FrameDecoder decoder;
      Frame reply;
      if (sink->send(FrameType::kHello, hello) &&
          awaitFrame(fd, decoder, nowMs() + 5000, reply, sink.get())) {
        if (reply.type == FrameType::kReject) {
          note(config, strf("coordinator rejected us: ", reply.payload));
          end = SessionEnd::kConfig;
        } else if (reply.type == FrameType::kWelcome) {
          const std::size_t nl = reply.payload.find('\n');
          const std::string fingerprint =
              nl == std::string::npos ? reply.payload
                                      : reply.payload.substr(0, nl);
          const std::string spec =
              nl == std::string::npos ? "" : reply.payload.substr(nl + 1);
          if (!pinned_fingerprint.empty() &&
              fingerprint != pinned_fingerprint) {
            note(config,
                 strf("reconnected to a different campaign\n  pinned:  ",
                      pinned_fingerprint, "\n  offered: ", fingerprint));
            end = SessionEnd::kConfig;
          } else {
            const FleetBodyFactory* factory =
                findFleetBodyKind(fleetBodyKind(spec));
            if (factory == nullptr) {
              note(config, strf("no body registered for spec kind '",
                                fleetBodyKind(spec), "'"));
              end = SessionEnd::kConfig;
            } else {
              try {
                const FleetBodyFn body = (*factory)(spec);
                pinned_fingerprint = fingerprint;
                attempt = 1;  // handshake succeeded: reset the backoff
                note(config, strf("joined campaign ", fingerprint));
                end = runSession(config, fd, decoder, body, *sink);
              } catch (const ConfigError& e) {
                note(config, strf("cannot build body from spec: ", e.what()));
                end = SessionEnd::kConfig;
              }
            }
          }
        } else {
          note(config, strf("expected WELCOME, got ", toString(reply.type)));
        }
      } else if (!error.empty()) {
        note(config, strf("handshake failed: ", error));
      }
      if (chaos != nullptr && chaos->stats().total() > 0) {
        const ChaosStats& s = chaos->stats();
        note(config, strf("chaos injected: dropped=", s.dropped,
                          " delayed=", s.delayed, " duplicated=",
                          s.duplicated, " reordered=", s.reordered,
                          " truncated=", s.truncated));
      }
      sink.reset();  // before close: the sink borrows the fd
      ::close(fd);
    }

    switch (end) {
      case SessionEnd::kBye:
        note(config, "coordinator said BYE; exiting");
        return 0;
      case SessionEnd::kInterrupted:
        return interruptExitCode();
      case SessionEnd::kConfig:
        return 3;
      case SessionEnd::kLost:
        break;
    }

    if (attempt >= config.reconnect.max_attempts) {
      note(config, strf("giving up after ", attempt, " connection attempt",
                        attempt == 1 ? "" : "s"));
      return 1;
    }
    const auto delay = retryDelay(config.reconnect, attempt);
    note(config, strf("reconnecting in ", delay.count(), "ms (attempt ",
                      attempt + 1, "/", config.reconnect.max_attempts, ")"));
    std::this_thread::sleep_for(delay);
    ++attempt;
  }
}

}  // namespace mpcp::exec::fabric
