#include "exec/fabric/fleet_campaign.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>

#include "common/check.h"
#include "common/strf.h"
#include "exec/campaign.h"
#include "exec/journal.h"

namespace mpcp::exec::fabric {

namespace {

namespace fs = std::filesystem;

bool isShardJournal(const fs::path& p) {
  return p.extension() == ".journal";
}

/// Writes `bytes` to `path` atomically: tmp sibling + fsync + rename.
void writeFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw ConfigError("cannot open '" + tmp +
                      "' for the journal merge: " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw ConfigError("journal merge write to '" + tmp +
                        "' failed: " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    const int err = errno;
    ::close(fd);
    throw ConfigError("journal merge fsync on '" + tmp +
                      "' failed: " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw ConfigError("cannot rename '" + tmp + "' over '" + path +
                      "': " + std::strerror(errno));
  }
}

}  // namespace

std::string sanitizeWorkerName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "worker" : out;
}

FleetCampaignOutcome runFleetCampaign(int seeds, std::uint64_t seed_base,
                                      const FleetCampaignOptions& options) {
  MPCP_CHECK(!options.fleet.body_spec.empty(),
             "runFleetCampaign needs a body spec");
  const auto n = static_cast<std::size_t>(std::max(0, seeds));
  FleetCampaignOutcome out;
  out.payloads.resize(n);

  // Main journal: identical validation rules to runCampaign.
  std::unique_ptr<CampaignJournal> journal;
  std::map<std::string, std::string> completed;
  std::string loaded_meta;
  if (!options.journal_path.empty()) {
    const JournalLoad load = loadJournalFile(options.journal_path);
    if (!load.empty() && !options.resume) {
      throw ConfigError("journal '" + options.journal_path +
                        "' already has records; pass --resume to continue "
                        "it or remove the file to start over");
    }
    if (options.resume && !load.meta.empty() &&
        !options.config_fingerprint.empty() &&
        load.meta != options.config_fingerprint) {
      throw ConfigError(
          "journal '" + options.journal_path +
          "' was recorded under a different configuration\n  journal: " +
          load.meta + "\n  current: " + options.config_fingerprint);
    }
    out.exec.journal_corrupt_lines = load.corrupt_lines;
    completed = load.completed();
    loaded_meta = load.meta;
  }

  // Shard overlay (resume) or cleanup (fresh start). Shards carry no
  // meta record — the main journal's fingerprint governs — so a fresh
  // campaign must clear stale shards rather than inherit them.
  if (!options.shard_dir.empty() && fs::is_directory(options.shard_dir)) {
    for (const auto& entry : fs::directory_iterator(options.shard_dir)) {
      if (!entry.is_regular_file() || !isShardJournal(entry.path())) {
        continue;
      }
      if (!options.resume) {
        std::error_code ec;
        fs::remove(entry.path(), ec);
        continue;
      }
      const JournalLoad shard = loadJournalFile(entry.path().string());
      out.exec.journal_corrupt_lines += shard.corrupt_lines;
      for (const JournalRecord& rec : shard.records) {
        if (rec.kind == RecordKind::kDone) completed[rec.key] = rec.payload;
      }
    }
  }

  if (!options.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(options.journal_path);
    if (loaded_meta.empty() && !options.config_fingerprint.empty()) {
      journal->append(RecordKind::kMeta, "config",
                      options.config_fingerprint);
    }
  }

  // Satisfy already-completed seeds; collect the rest as fleet keys.
  std::vector<std::string> keys;
  std::map<std::string, int> seed_of;
  for (int s = 0; s < seeds; ++s) {
    const std::string key = runKey(seed_base, s);
    seed_of[key] = s;
    const auto it = completed.find(key);
    if (it != completed.end()) {
      out.payloads[static_cast<std::size_t>(s)] = it->second;
      ++out.exec.resumed_skips;
    } else {
      keys.push_back(key);
    }
  }

  if (!keys.empty()) {
    std::map<std::string, std::unique_ptr<CampaignJournal>> shards;
    const auto shardFor =
        [&](const std::string& worker) -> CampaignJournal* {
      if (options.shard_dir.empty()) return nullptr;
      auto& slot = shards[worker];
      if (!slot) {
        slot = std::make_unique<CampaignJournal>(
            options.shard_dir + "/" + sanitizeWorkerName(worker) +
            ".journal");
      }
      return slot.get();
    };

    FleetConfig fleet = options.fleet;
    fleet.fingerprint = options.config_fingerprint;
    fleet.shard_dir = options.shard_dir;
    fleet.on_grant = [&](const std::string& key) {
      if (journal) journal->append(RecordKind::kStart, key, "");
      ++out.exec.dispatched;
    };
    fleet.on_result = [&](const FleetResult& r) {
      if (CampaignJournal* shard = shardFor(r.worker)) {
        shard->append(RecordKind::kDone, r.key, r.payload);
      }
      const auto it = seed_of.find(r.key);
      MPCP_CHECK(it != seed_of.end(),
                 "fleet returned unknown key '" << r.key << "'");
      out.payloads[static_cast<std::size_t>(it->second)] = r.payload;
      ++out.exec.completed;
    };
    fleet.on_fail = [&](const std::string& key, const std::string& error) {
      if (journal) journal->append(RecordKind::kFail, key, error);
      const auto it = seed_of.find(key);
      MPCP_CHECK(it != seed_of.end(),
                 "fleet failed unknown key '" << key << "'");
      exp::RunFailure failure;
      failure.seed = it->second;
      failure.error = error;
      out.failures.push_back(std::move(failure));
      ++out.exec.failed;
    };

    const FleetOutcome fo = runFleet(keys, fleet);
    out.fleet = fo.counters;
    out.interrupted = fo.interrupted;
  }

  std::sort(out.failures.begin(), out.failures.end(),
            [](const exp::RunFailure& a, const exp::RunFailure& b) {
              return a.seed < b.seed;
            });

  // Canonical merge: with every key done, rewrite the main journal as
  // the exact byte stream a serial journaled run would have produced.
  if (journal && !out.interrupted && out.failures.empty() &&
      out.complete()) {
    std::string canonical;
    if (!options.config_fingerprint.empty()) {
      canonical += formatRecord(RecordKind::kMeta, "config",
                                options.config_fingerprint);
    }
    for (int s = 0; s < seeds; ++s) {
      const std::string key = runKey(seed_base, s);
      canonical += formatRecord(RecordKind::kStart, key, "");
      canonical += formatRecord(
          RecordKind::kDone, key,
          *out.payloads[static_cast<std::size_t>(s)]);
    }
    journal.reset();  // close the append fd before replacing the file
    writeFileAtomic(options.journal_path, canonical);
  }

  return out;
}

}  // namespace mpcp::exec::fabric
