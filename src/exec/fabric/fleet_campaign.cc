#include "exec/fabric/fleet_campaign.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <ostream>

#include "common/check.h"
#include "common/strf.h"
#include "exec/campaign.h"
#include "exec/fabric/checkpoint.h"
#include "exec/journal.h"

namespace mpcp::exec::fabric {

namespace {

namespace fs = std::filesystem;

bool isShardJournal(const fs::path& p) {
  return p.extension() == ".journal";
}

}  // namespace

std::string sanitizeWorkerName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "worker" : out;
}

FleetCampaignOutcome runFleetCampaign(int seeds, std::uint64_t seed_base,
                                      const FleetCampaignOptions& options) {
  MPCP_CHECK(!options.fleet.body_spec.empty(),
             "runFleetCampaign needs a body spec");
  const auto n = static_cast<std::size_t>(std::max(0, seeds));
  const bool resume = options.resume || options.takeover;
  FleetCampaignOutcome out;
  out.payloads.resize(n);

  std::ostream* log = options.fleet.log;
  const auto note = [log](const std::string& message) {
    if (log != nullptr) *log << "fleet: " << message << "\n";
  };
  // Disk faults are contained, never fatal: a refused append costs
  // durability (the in-memory result survives and the final merge
  // rewrites everything), not the campaign.
  const auto safeAppend = [&](CampaignJournal* j, RecordKind kind,
                              const std::string& key,
                              const std::string& payload) {
    if (j == nullptr) return;
    try {
      j->append(kind, key, payload);
    } catch (const ConfigError& e) {
      ++out.exec.journal_write_errors;
      note(strf("journal append refused (continuing): ", e.what()));
    }
  };

  const std::string checkpoint_path =
      options.shard_dir.empty() ? ""
                                : options.shard_dir + "/coordinator.ckpt";

  // Main journal: identical validation rules to runCampaign.
  std::unique_ptr<CampaignJournal> journal;
  std::map<std::string, std::string> completed;
  std::string loaded_meta;
  if (!options.journal_path.empty()) {
    const JournalLoad load = loadJournalFile(options.journal_path);
    if (!load.empty() && !resume) {
      throw ConfigError("journal '" + options.journal_path +
                        "' already has records; pass --resume to continue "
                        "it or remove the file to start over");
    }
    if (resume && !load.meta.empty() &&
        !options.config_fingerprint.empty() &&
        load.meta != options.config_fingerprint) {
      throw ConfigError(
          "journal '" + options.journal_path +
          "' was recorded under a different configuration\n  journal: " +
          load.meta + "\n  current: " + options.config_fingerprint);
    }
    out.exec.journal_corrupt_lines = load.corrupt_lines;
    completed = load.completed();
    loaded_meta = load.meta;
  }

  // Shard overlay (resume) or cleanup (fresh start). Shards carry no
  // meta record — the main journal's fingerprint governs — so a fresh
  // campaign must clear stale shards rather than inherit them.
  if (!options.shard_dir.empty() && fs::is_directory(options.shard_dir)) {
    for (const auto& entry : fs::directory_iterator(options.shard_dir)) {
      if (!entry.is_regular_file() || !isShardJournal(entry.path())) {
        continue;
      }
      if (!resume) {
        std::error_code ec;
        fs::remove(entry.path(), ec);
        continue;
      }
      const JournalLoad shard = loadJournalFile(entry.path().string());
      out.exec.journal_corrupt_lines += shard.corrupt_lines;
      for (const JournalRecord& rec : shard.records) {
        if (rec.kind == RecordKind::kDone) completed[rec.key] = rec.payload;
      }
    }
  }

  // Takeover: adopt the dead coordinator's attempt bookkeeping. The
  // shards above already gave us its completed work; the checkpoint gives
  // us what it *charged*, so a poison key cannot restart from zero after
  // every coordinator death.
  std::map<std::string, int> initial_attempts;
  if (options.takeover && !checkpoint_path.empty()) {
    CoordinatorCheckpoint ckpt;
    if (loadCheckpoint(checkpoint_path, ckpt)) {
      if (!options.config_fingerprint.empty() && !ckpt.fingerprint.empty() &&
          ckpt.fingerprint != options.config_fingerprint) {
        throw ConfigError(
            "checkpoint '" + checkpoint_path +
            "' was written under a different configuration\n  checkpoint: " +
            ckpt.fingerprint + "\n  current: " + options.config_fingerprint);
      }
      initial_attempts = ckpt.attempts;
      note(strf("takeover: adopted checkpoint with ", ckpt.attempts.size(),
                " attempt record(s), ", ckpt.in_flight.size(),
                " key(s) in flight at the old coordinator's death"));
    } else {
      note(strf("takeover: no usable checkpoint at ", checkpoint_path,
                "; resuming from journals alone"));
    }
  } else if (options.takeover) {
    note("takeover: no shard dir, so no checkpoint; resuming from journals");
  }

  if (!options.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(options.journal_path,
                                                options.journal_io);
    if (loaded_meta.empty() && !options.config_fingerprint.empty()) {
      safeAppend(journal.get(), RecordKind::kMeta, "config",
                 options.config_fingerprint);
    }
  }

  // Satisfy already-completed seeds; collect the rest as fleet keys.
  std::vector<std::string> keys;
  std::map<std::string, int> seed_of;
  for (int s = 0; s < seeds; ++s) {
    const std::string key = runKey(seed_base, s);
    seed_of[key] = s;
    const auto it = completed.find(key);
    if (it != completed.end()) {
      out.payloads[static_cast<std::size_t>(s)] = it->second;
      ++out.exec.resumed_skips;
    } else {
      keys.push_back(key);
    }
  }

  if (!keys.empty()) {
    std::map<std::string, std::unique_ptr<CampaignJournal>> shards;
    const auto shardFor =
        [&](const std::string& worker) -> CampaignJournal* {
      if (options.shard_dir.empty()) return nullptr;
      auto& slot = shards[worker];
      if (!slot) {
        try {
          slot = std::make_unique<CampaignJournal>(
              options.shard_dir + "/" + sanitizeWorkerName(worker) +
                  ".journal",
              options.journal_io);
        } catch (const ConfigError& e) {
          ++out.exec.journal_write_errors;
          note(strf("cannot open shard journal (continuing): ", e.what()));
          return nullptr;
        }
      }
      return slot.get();
    };

    FleetConfig fleet = options.fleet;
    fleet.fingerprint = options.config_fingerprint;
    fleet.shard_dir = options.shard_dir;
    fleet.checkpoint_path = checkpoint_path;
    fleet.initial_attempts = initial_attempts;
    fleet.on_grant = [&](const std::string& key) {
      safeAppend(journal.get(), RecordKind::kStart, key, "");
      ++out.exec.dispatched;
    };
    fleet.on_result = [&](const FleetResult& r) {
      safeAppend(shardFor(r.worker), RecordKind::kDone, r.key, r.payload);
      const auto it = seed_of.find(r.key);
      MPCP_CHECK(it != seed_of.end(),
                 "fleet returned unknown key '" << r.key << "'");
      out.payloads[static_cast<std::size_t>(it->second)] = r.payload;
      ++out.exec.completed;
    };
    fleet.on_fail = [&](const std::string& key, const std::string& error) {
      safeAppend(journal.get(), RecordKind::kFail, key, error);
      const auto it = seed_of.find(key);
      MPCP_CHECK(it != seed_of.end(),
                 "fleet failed unknown key '" << key << "'");
      exp::RunFailure failure;
      failure.seed = it->second;
      failure.error = error;
      out.failures.push_back(std::move(failure));
      ++out.exec.failed;
    };

    const FleetOutcome fo = runFleet(keys, fleet);
    out.fleet = fo.counters;
    out.interrupted = fo.interrupted;
  }

  std::sort(out.failures.begin(), out.failures.end(),
            [](const exp::RunFailure& a, const exp::RunFailure& b) {
              return a.seed < b.seed;
            });

  // Canonical merge: with every key done, rewrite the main journal as
  // the exact byte stream a serial journaled run would have produced.
  if (journal && !out.interrupted && out.failures.empty() &&
      out.complete()) {
    std::string canonical;
    if (!options.config_fingerprint.empty()) {
      canonical += formatRecord(RecordKind::kMeta, "config",
                                options.config_fingerprint);
    }
    for (int s = 0; s < seeds; ++s) {
      const std::string key = runKey(seed_base, s);
      canonical += formatRecord(RecordKind::kStart, key, "");
      canonical += formatRecord(
          RecordKind::kDone, key,
          *out.payloads[static_cast<std::size_t>(s)]);
    }
    journal.reset();  // close the append fd before replacing the file
    try {
      writeFileAtomic(options.journal_path, canonical, options.journal_io);
    } catch (const ConfigError& e) {
      // Contained like any other disk fault: the append-order journal
      // (plus shards) still resumes correctly; only canonical byte
      // identity is lost until a later run merges successfully.
      ++out.exec.journal_write_errors;
      note(strf("canonical journal merge failed (continuing): ", e.what()));
    }
  }

  return out;
}

}  // namespace mpcp::exec::fabric
