// Deadline arithmetic for the campaign fabric, in one place.
//
// Heartbeat, lease, handshake, and chaos-partition deadlines all reason
// about "milliseconds since some earlier observation". That arithmetic
// MUST run on a monotonic clock: a wall-clock (system_clock) step — NTP
// slew, a VM snapshot restore, a manual `date` — would instantly expire
// every lease and reap a perfectly healthy fleet, or freeze reaping
// entirely when the clock steps backward. The static_assert below pins
// the choice so a refactor cannot quietly reintroduce wall time; the
// helpers are what coordinator.cc / worker.cc / chaos.cc actually call
// (tests cover them in fabric_chaos_test.cc).
#pragma once

#include <chrono>
#include <cstdint>

namespace mpcp::exec::fabric {

static_assert(std::chrono::steady_clock::is_steady,
              "fabric deadlines require a monotonic clock");

/// Milliseconds on the monotonic clock. Only differences are meaningful;
/// the epoch is unspecified (on Linux, boot time).
[[nodiscard]] inline std::int64_t steadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True when more than `budget_ms` elapsed between `since_ms` and
/// `now_ms`. A non-positive budget never expires (callers use 0/-1 to
/// disable a deadline), and a `since_ms` ahead of `now_ms` — impossible
/// on one monotonic clock, but cheap to defend — reads as "no time
/// elapsed yet" instead of as an underflowed huge age.
[[nodiscard]] inline bool deadlineExpired(std::int64_t now_ms,
                                          std::int64_t since_ms,
                                          std::int64_t budget_ms) {
  if (budget_ms <= 0) return false;
  if (now_ms <= since_ms) return false;
  return now_ms - since_ms > budget_ms;
}

}  // namespace mpcp::exec::fabric
