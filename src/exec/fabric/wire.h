// The fleet wire protocol (ISSUE 9): versioned, CRC-framed messages
// between the campaign coordinator and its workers.
//
// This generalizes the single-machine pipe frame in exec/subprocess.h
// ([status][len][bytes]) into something that survives a hostile
// transport: every frame carries a magic number, a protocol version, a
// length bounded by kMaxFramePayload, and a CRC-32 over the payload, so
// a truncated write, a garbage connection, or a version-skewed worker is
// *rejected structurally* — the decoder reports an error and poisons
// itself, the owner drops the connection and bumps a counter, and the
// coordinator never crashes or mis-parses.
//
// Frame layout (all integers little-endian):
//
//   u32 magic        "MPCF"
//   u8  version      kWireVersion
//   u8  type         FrameType
//   u16 reserved     must be 0
//   u32 payload_len  <= kMaxFramePayload
//   u32 payload_crc  exec::crc32 of the payload bytes
//   [payload_len bytes]
//
// Conversation (the MPI librarians' request/approve/release shape from
// SNIPPETS.md §1, adapted to leases):
//
//   worker      -> HELLO      "fabric 1\nname=<w>\nkinds=<k1,k2>"
//   coordinator -> WELCOME    "<config-fingerprint>\n<body-spec>"
//                | REJECT     "<reason>"            (then drops)
//   coordinator -> LEASE      "<key> <key> ..."     (grant work)
//   worker      -> RESULT     "<key> ok|fail\n<bytes>"
//   worker      -> HEARTBEAT  ""                    (liveness between runs)
//   coordinator -> STEAL      "<key> <key> ..."     (revoke unstarted keys)
//   either      -> BYE        ""                    (graceful leave)
#pragma once

#include <cstdint>
#include <string>

namespace mpcp::exec::fabric {

inline constexpr std::uint32_t kWireMagic = 0x4643504du;  // "MPCF" on the wire
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB
inline constexpr std::size_t kFrameHeaderSize = 16;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kLease = 4,
  kResult = 5,
  kHeartbeat = 6,
  kSteal = 7,
  kBye = 8,
};

[[nodiscard]] const char* toString(FrameType type);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Serializes one frame (header + payload), ready for sendAll().
[[nodiscard]] std::string encodeFrame(FrameType type,
                                      const std::string& payload);

/// Incremental decoder for one connection's byte stream. feed() raw
/// bytes as they arrive, then pull frames with next() until it returns
/// kNeedMore. The first malformed header or CRC mismatch *poisons* the
/// decoder — every subsequent next() repeats the error, because once
/// framing is lost there is no way to resynchronize safely; the owner
/// must drop the connection.
class FrameDecoder {
 public:
  enum class Status { kNeedMore, kFrame, kError };

  struct Result {
    Status status = Status::kNeedMore;
    Frame frame;        ///< valid when status == kFrame
    std::string error;  ///< human-readable when status == kError
  };

  void feed(const char* data, std::size_t n);

  [[nodiscard]] Result next();

  /// True when buffered bytes form an incomplete frame — at EOF this
  /// means the peer died mid-write (a torn frame).
  [[nodiscard]] bool midFrame() const { return pos_ < buf_.size(); }

  [[nodiscard]] bool poisoned() const { return poisoned_; }

 private:
  Result poison(std::string why);

  std::string buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace mpcp::exec::fabric
