// Minimal socket plumbing for the campaign fabric: Unix-domain and TCP
// stream sockets behind one Address type, plus write helpers that never
// raise SIGPIPE (MSG_NOSIGNAL on every send, EINTR retried) — a worker
// dying mid-write surfaces as a false return, not a dead coordinator.
//
// Address grammar:
//   "unix:<path>"   Unix-domain stream socket at <path>
//   "<host>:<port>" TCP (host may be empty to listen on all interfaces,
//                   e.g. ":9000")
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "exec/fabric/wire.h"

namespace mpcp::exec::fabric {

struct Address {
  bool is_unix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host ("" = wildcard for listen, loopback for connect)
  std::string port;  ///< tcp port
  std::string text;  ///< original spelling, for messages
};

/// Parses the address grammar above. False (with `error` set) on
/// malformed input; never throws.
[[nodiscard]] bool parseAddress(const std::string& text, Address& out,
                                std::string& error);

/// Binds + listens. Unix sockets unlink a stale path first (a coordinator
/// killed with SIGKILL leaves one behind). Returns the listening fd
/// (CLOEXEC, nonblocking accepts) or -1 with `error` set.
[[nodiscard]] int listenOn(const Address& address, std::string& error);

/// Connects (blocking). Returns the fd (CLOEXEC) or -1 with `error` set.
[[nodiscard]] int connectTo(const Address& address, std::string& error);

/// Writes all of `data`, retrying EINTR and short writes, with
/// MSG_NOSIGNAL so a closed peer yields EPIPE instead of SIGPIPE.
/// False on any unrecoverable error (the connection is unusable).
[[nodiscard]] bool sendAll(int fd, const void* data, std::size_t n);

/// encodeFrame + sendAll in one step.
[[nodiscard]] bool sendFrame(int fd, FrameType type,
                             const std::string& payload);

/// Sets O_NONBLOCK (used on listening fds so accept never wedges the
/// coordinator loop).
void setNonBlocking(int fd);

/// Injectable outbound-frame seam (ISSUE 10). The coordinator and the
/// worker route every frame they transmit through one of these per
/// connection; the base class is a plain sendFrame, and the chaos layer
/// (exec/fabric/chaos.h) substitutes a ChaosLink that drops, delays,
/// duplicates, reorders, or truncates frames deterministically from a
/// seed. The sink borrows the fd — it never closes it.
class FrameSink {
 public:
  explicit FrameSink(int fd) : fd_(fd) {}
  virtual ~FrameSink();

  /// Transmits (or chaotically mishandles) one frame. False only on a
  /// genuine socket error — injected losses still return true, exactly
  /// like a network that ate the packet after send(2) succeeded.
  [[nodiscard]] virtual bool send(FrameType type, const std::string& payload);

  /// Periodic pump for sinks that hold frames (delay/reorder). The base
  /// sink holds nothing; owners call this once per poll-loop pass.
  virtual void tick(std::int64_t now_ms);

  [[nodiscard]] int fd() const { return fd_; }

 protected:
  int fd_;
};

}  // namespace mpcp::exec::fabric
