// Minimal socket plumbing for the campaign fabric: Unix-domain and TCP
// stream sockets behind one Address type, plus write helpers that never
// raise SIGPIPE (MSG_NOSIGNAL on every send, EINTR retried) — a worker
// dying mid-write surfaces as a false return, not a dead coordinator.
//
// Address grammar:
//   "unix:<path>"   Unix-domain stream socket at <path>
//   "<host>:<port>" TCP (host may be empty to listen on all interfaces,
//                   e.g. ":9000")
#pragma once

#include <cstddef>
#include <string>

#include "exec/fabric/wire.h"

namespace mpcp::exec::fabric {

struct Address {
  bool is_unix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host ("" = wildcard for listen, loopback for connect)
  std::string port;  ///< tcp port
  std::string text;  ///< original spelling, for messages
};

/// Parses the address grammar above. False (with `error` set) on
/// malformed input; never throws.
[[nodiscard]] bool parseAddress(const std::string& text, Address& out,
                                std::string& error);

/// Binds + listens. Unix sockets unlink a stale path first (a coordinator
/// killed with SIGKILL leaves one behind). Returns the listening fd
/// (CLOEXEC, nonblocking accepts) or -1 with `error` set.
[[nodiscard]] int listenOn(const Address& address, std::string& error);

/// Connects (blocking). Returns the fd (CLOEXEC) or -1 with `error` set.
[[nodiscard]] int connectTo(const Address& address, std::string& error);

/// Writes all of `data`, retrying EINTR and short writes, with
/// MSG_NOSIGNAL so a closed peer yields EPIPE instead of SIGPIPE.
/// False on any unrecoverable error (the connection is unusable).
[[nodiscard]] bool sendAll(int fd, const void* data, std::size_t n);

/// encodeFrame + sendAll in one step.
[[nodiscard]] bool sendFrame(int fd, FrameType type,
                             const std::string& payload);

/// Sets O_NONBLOCK (used on listening fds so accept never wedges the
/// coordinator loop).
void setNonBlocking(int fd);

}  // namespace mpcp::exec::fabric
