#include "exec/fabric/work.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "common/strf.h"
#include "core/analyzer.h"
#include "core/protocol_registry.h"
#include "core/simulate.h"

namespace mpcp::exec::fabric {

namespace {

std::mutex g_registry_mu;
std::map<std::string, FleetBodyFactory>& registry() {
  static std::map<std::string, FleetBodyFactory> r;
  return r;
}

}  // namespace

void registerFleetBodyKind(const std::string& kind, FleetBodyFactory factory) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  registry()[kind] = std::move(factory);
}

const FleetBodyFactory* findFleetBodyKind(const std::string& kind) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  const auto it = registry().find(kind);
  return it == registry().end() ? nullptr : &it->second;
}

std::vector<std::string> fleetBodyKinds() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  std::vector<std::string> kinds;
  for (const auto& [name, factory] : registry()) kinds.push_back(name);
  return kinds;
}

std::string fleetBodyKind(const std::string& spec) {
  const std::size_t sp = spec.find(' ');
  return sp == std::string::npos ? spec : spec.substr(0, sp);
}

std::string specValue(const std::string& spec, const std::string& key) {
  // Tokens are space-separated "k=v"; values never contain spaces.
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(' ', pos);
    if (end == std::string::npos) end = spec.size();
    if (spec.compare(pos, needle.size(), needle) == 0) {
      return spec.substr(pos + needle.size(), end - pos - needle.size());
    }
    pos = end + 1;
  }
  throw ConfigError("body spec is missing '" + key + "': " + spec);
}

std::string formatSpecDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::int64_t specInt(const std::string& spec, const std::string& key) {
  const std::string text = specValue(spec, key);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ConfigError("body spec '" + key + "' is not an integer: '" + text +
                      "'");
  }
  return value;
}

double specDouble(const std::string& spec, const std::string& key) {
  const std::string text = specValue(spec, key);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    throw ConfigError("body spec '" + key + "' is not a number: '" + text +
                      "'");
  }
  return value;
}

std::string makeSweepBodySpec(const std::string& protocol,
                              std::uint64_t seed_base, Time horizon,
                              const WorkloadParams& params, int sleep_ms) {
  return strf("sweep-v1 protocol=", protocol, " seed-base=", seed_base,
              " horizon=", horizon, " processors=", params.processors,
              " tasks-per-proc=", params.tasks_per_processor,
              " util=", formatSpecDouble(params.utilization_per_processor),
              " resources=", params.global_resources,
              " cs-max=", params.cs_max, " suspend-prob=",
              formatSpecDouble(params.suspension_prob),
              " sleep-ms=", sleep_ms);
}

void registerSweepFleetBody() {
  registerFleetBodyKind(
      "sweep-v1", [](const std::string& spec) -> FleetBodyFn {
        const ProtocolKind kind =
            protocolKindFromName(specValue(spec, "protocol"));
        const auto seed_base =
            static_cast<std::uint64_t>(specInt(spec, "seed-base"));
        const Time horizon = specInt(spec, "horizon");
        WorkloadParams params;
        params.processors = static_cast<int>(specInt(spec, "processors"));
        params.tasks_per_processor =
            static_cast<int>(specInt(spec, "tasks-per-proc"));
        params.utilization_per_processor = specDouble(spec, "util");
        params.global_resources =
            static_cast<int>(specInt(spec, "resources"));
        params.cs_max = specInt(spec, "cs-max");
        params.suspension_prob = specDouble(spec, "suspend-prob");
        const int sleep_ms = static_cast<int>(specInt(spec, "sleep-ms"));
        (void)seed_base;  // keys carry the derived seed directly

        return [=](const std::string& key) {
          FleetResult out;
          out.key = key;
          std::uint64_t derived = 0;
          bool key_ok = key.size() > 1 && key[0] == 's';
          if (key_ok) {
            const char* begin = key.data() + 1;
            const char* end = key.data() + key.size();
            const auto [ptr, ec] = std::from_chars(begin, end, derived);
            key_ok = ec == std::errc() && ptr == end;
          }
          if (!key_ok) {
            out.payload = "malformed sweep key '" + key + "'";
            return out;
          }
          if (sleep_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
          }
          // Rng(derived) == SweepRunner::rngFor(seed_base, s): identical
          // bytes to the in-process sweep body for the same key.
          Rng rng(derived);
          const TaskSystem sys = generateWorkload(params, rng);
          const ProtocolAnalysis analysis = analyzeUnder(kind, sys);
          SimConfig config;
          config.horizon = horizon;
          config.record_trace = false;
          const SimResult r = simulate(kind, sys, config);
          const obs::Counters& c = r.counters;
          out.ok = true;
          out.payload =
              strf(derived, ',', analysis.report.rta_all ? 1 : 0, ',',
                   c.deadline_misses, ',', c.jobs_released, ',',
                   c.jobs_finished, ',', c.totalAcquisitions(), ',',
                   c.totalContendedWaits(), ',', c.totalHandoffs(), ',',
                   c.preemptions, ',', c.migrations);
          return out;
        };
      });
}

void applyChaosAids(const std::string& key) {
  const auto markOnce = [](const char* mark_env) {
    const char* mark = std::getenv(mark_env);
    if (mark == nullptr) return true;  // no mark file: fire every time
    const int fd = ::open(mark, O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0) return false;  // someone already fired
    ::close(fd);
    return true;
  };
  const char* crash_key = std::getenv("MPCP_FABRIC_CRASH_KEY");
  if (crash_key != nullptr && key == crash_key &&
      markOnce("MPCP_FABRIC_CRASH_MARK")) {
    ::kill(::getpid(), SIGKILL);
  }
  const char* wedge_key = std::getenv("MPCP_FABRIC_WEDGE_KEY");
  if (wedge_key != nullptr && key == wedge_key &&
      markOnce("MPCP_FABRIC_WEDGE_MARK")) {
    const char* ms_text = std::getenv("MPCP_FABRIC_WEDGE_MS");
    const long ms = ms_text != nullptr ? std::atol(ms_text) : 3000;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

}  // namespace mpcp::exec::fabric
