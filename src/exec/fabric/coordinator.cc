#include "exec/fabric/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/strf.h"
#include "exec/fabric/checkpoint.h"
#include "exec/fabric/clock.h"
#include "exec/fabric/socket.h"
#include "exec/interrupt.h"

namespace mpcp::exec::fabric {

namespace {

std::int64_t nowMs() { return steadyNowMs(); }

struct Conn {
  int fd = -1;
  FrameDecoder decoder;
  std::string name;
  bool handshaken = false;
  std::deque<std::string> leased;  ///< grant order; front = likely running
  std::int64_t last_seen_ms = 0;
  std::int64_t connected_ms = 0;
  std::int64_t last_progress_ms = 0;  ///< last grant or RESULT
  std::unique_ptr<FrameSink> sink;    ///< outbound seam (chaos injects here)
  ChaosLink* chaos = nullptr;         ///< sink downcast when chaos is on

  [[nodiscard]] bool send(FrameType type, const std::string& payload) {
    return sink->send(type, payload);
  }
};

struct SpawnedWorker {
  pid_t pid = -1;
  int log_fd = -1;  // already closed in parent; kept for bookkeeping only
};

/// All coordinator state; confined to the runFleet thread.
struct Coordinator {
  const FleetConfig& config;
  FleetOutcome out;
  std::deque<std::string> pending;
  std::set<std::string> done;
  std::map<std::string, int> attempts;
  std::vector<std::unique_ptr<Conn>> conns;
  std::set<std::string> seen_names;
  std::vector<pid_t> spawned;
  std::size_t total_keys = 0;
  int listen_fd = -1;
  std::string unix_path;  ///< unlink on shutdown when non-empty
  std::int64_t last_live_ms = 0;
  std::int64_t armed_at_ms = 0;   ///< campaign start; chaos window clock
  std::uint64_t chaos_generation = 0;  ///< fresh verdicts per accepted conn
  std::int64_t last_ckpt_ms = 0;
  bool ckpt_dirty = false;
  bool ckpt_urgent = false;       ///< attempt charged since the last save

  explicit Coordinator(const FleetConfig& c) : config(c) {}

  /// Folds a dying link's injection stats into the fleet counters.
  void foldChaos(const Conn& conn) {
    if (conn.chaos == nullptr) return;
    const ChaosStats& s = conn.chaos->stats();
    out.counters.chaos_dropped += s.dropped;
    out.counters.chaos_delayed += s.delayed;
    out.counters.chaos_duplicated += s.duplicated;
    out.counters.chaos_reordered += s.reordered;
    out.counters.chaos_truncated += s.truncated;
  }

  void maybeCheckpoint(std::int64_t now, bool force) {
    if (config.checkpoint_path.empty()) return;
    if (!ckpt_dirty && !ckpt_urgent) return;
    if (!force && !ckpt_urgent &&
        now - last_ckpt_ms < config.checkpoint_interval_ms) {
      return;
    }
    CoordinatorCheckpoint ckpt;
    ckpt.fingerprint = config.fingerprint;
    ckpt.attempts = attempts;
    for (const auto& cp : conns) {
      for (const std::string& key : cp->leased) {
        if (done.count(key) == 0) ckpt.in_flight.insert(key);
      }
    }
    try {
      saveCheckpoint(config.checkpoint_path, ckpt);
      ++out.counters.checkpoints_written;
      last_ckpt_ms = now;
      ckpt_dirty = ckpt_urgent = false;
    } catch (const std::exception& e) {
      // A failed checkpoint degrades takeover quality, never the run.
      note(strf("checkpoint write failed: ", e.what()));
      last_ckpt_ms = now;  // don't hammer a broken disk every pass
      ckpt_urgent = false;
    }
  }

  void note(const std::string& message) {
    if (config.log != nullptr) *config.log << "fleet: " << message << "\n";
  }

  [[nodiscard]] std::size_t liveWorkers() const {
    std::size_t n = 0;
    for (const auto& c : conns) {
      if (c->handshaken) ++n;
    }
    return n;
  }

  void finishOk(const FleetResult& result) {
    done.insert(result.key);
    ++out.completed;
    config.on_result(result);
  }

  void finishFailed(const std::string& key, const std::string& error) {
    done.insert(key);
    ++out.failed;
    if (config.on_fail) config.on_fail(key, error);
  }

  /// Requeues a dying connection's leases. The head key — the one the
  /// worker was most likely executing — is charged an attempt so a
  /// poison key cannot reap the fleet forever.
  void requeueLeases(Conn& conn, bool charge_head) {
    bool head = true;
    std::vector<std::string> back;
    for (const std::string& key : conn.leased) {
      if (done.count(key) != 0) {
        head = false;
        continue;
      }
      if (head && charge_head) {
        const int n = ++attempts[key];
        ckpt_urgent = true;
        if (n >= config.max_attempts) {
          note(strf("key ", key, " failed ", n,
                    " workers; failing it permanently"));
          finishFailed(key, strf("worker died ", n,
                                 " times while running this key"));
          head = false;
          continue;
        }
      }
      head = false;
      ++out.counters.leases_expired;
      back.push_back(key);
    }
    // Requeue at the front, preserving order: interrupted work finishes
    // before fresh grants so the tail stays short.
    for (auto it = back.rbegin(); it != back.rend(); ++it) {
      pending.push_front(*it);
    }
    conn.leased.clear();
  }

  void dropConn(std::size_t i, bool charge_head, const std::string& why) {
    Conn& conn = *conns[i];
    if (!why.empty()) {
      note(strf("dropping ", conn.name.empty() ? strf("fd", conn.fd)
                                               : conn.name,
                ": ", why));
    }
    requeueLeases(conn, charge_head);
    foldChaos(conn);
    ::close(conn.fd);
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
  }

  void grantLeases() {
    const std::size_t live = liveWorkers();
    if (live == 0) return;
    for (auto& cp : conns) {
      Conn& conn = *cp;
      if (!conn.handshaken || !conn.leased.empty() || pending.empty()) {
        continue;
      }
      std::size_t chunk;
      if (config.lease_chunk > 0) {
        chunk = static_cast<std::size_t>(config.lease_chunk);
      } else {
        chunk = std::clamp<std::size_t>(pending.size() / (2 * live), 1, 64);
      }
      chunk = std::min(chunk, pending.size());
      std::string payload;
      for (std::size_t k = 0; k < chunk; ++k) {
        const std::string key = pending.front();
        pending.pop_front();
        conn.leased.push_back(key);
        if (!payload.empty()) payload += ' ';
        payload += key;
        ++out.counters.leases_granted;
        if (config.on_grant) config.on_grant(key);
      }
      conn.last_progress_ms = nowMs();
      ckpt_dirty = true;
      if (!conn.send(FrameType::kLease, payload)) {
        // The connection died under us; the usual drop path reclaims the
        // keys on the next loop pass (recv will see EOF/error).
        note(strf("LEASE send to ", conn.name, " failed"));
      }
    }
  }

  /// With the pending queue dry and a worker idle, revoke the tail half
  /// of the slowest straggler's unstarted leases.
  void stealFromStragglers() {
    if (!pending.empty()) return;
    bool idle = false;
    for (const auto& c : conns) {
      if (c->handshaken && c->leased.empty()) idle = true;
    }
    if (!idle) return;
    Conn* victim = nullptr;
    for (const auto& c : conns) {
      if (c->handshaken && c->leased.size() >= 2 &&
          (victim == nullptr || c->leased.size() > victim->leased.size())) {
        victim = c.get();
      }
    }
    if (victim == nullptr) return;
    const std::size_t take = victim->leased.size() / 2;
    std::string payload;
    std::vector<std::string> stolen;
    for (std::size_t k = 0; k < take; ++k) {
      stolen.push_back(victim->leased.back());
      victim->leased.pop_back();
    }
    // Stolen from the tail, requeued in original order.
    for (auto it = stolen.rbegin(); it != stolen.rend(); ++it) {
      if (!payload.empty()) payload += ' ';
      payload += *it;
      pending.push_back(*it);
      ++out.counters.leases_stolen;
    }
    if (!victim->send(FrameType::kSteal, payload)) {
      note(strf("STEAL send to ", victim->name, " failed"));
    }
    note(strf("stole ", take, " lease(s) from straggler ", victim->name));
  }

  /// Returns false when the connection must be dropped (caller handles).
  bool handleFrame(Conn& conn, const Frame& frame) {
    conn.last_seen_ms = nowMs();
    switch (frame.type) {
      case FrameType::kHello: {
        if (conn.handshaken) {
          ++out.counters.frames_rejected;
          note(strf("unexpected second HELLO from ", conn.name));
          return false;
        }
        // "fabric 1\nname=<w>\nkinds=<k1,k2>"
        std::string name;
        std::string kinds;
        bool version_ok = false;
        std::size_t pos = 0;
        while (pos <= frame.payload.size()) {
          std::size_t nl = frame.payload.find('\n', pos);
          if (nl == std::string::npos) nl = frame.payload.size();
          const std::string line = frame.payload.substr(pos, nl - pos);
          if (line == strf("fabric ", int{kWireVersion})) version_ok = true;
          if (line.rfind("name=", 0) == 0) name = line.substr(5);
          if (line.rfind("kinds=", 0) == 0) kinds = line.substr(6);
          pos = nl + 1;
        }
        const std::string want = fleetBodyKind(config.body_spec);
        const bool kind_ok =
            ("," + kinds + ",").find("," + want + ",") != std::string::npos;
        if (!version_ok || !kind_ok) {
          ++out.counters.handshake_rejects;
          const std::string reason =
              !version_ok ? "unrecognized HELLO"
                          : strf("worker lacks body kind '", want,
                                 "' (has: ", kinds, ")");
          note(strf("rejecting handshake: ", reason));
          (void)conn.send(FrameType::kReject, reason);
          return false;
        }
        conn.name = name.empty() ? strf("w-fd", conn.fd) : name;
        conn.handshaken = true;
        conn.last_progress_ms = nowMs();
        if (conn.chaos != nullptr) conn.chaos->setPeer(conn.name);
        ++out.counters.workers_connected;
        if (!seen_names.insert(conn.name).second) {
          ++out.counters.worker_reconnects;
          note(strf("worker ", conn.name, " reconnected"));
        } else {
          note(strf("worker ", conn.name, " joined"));
        }
        return conn.send(FrameType::kWelcome,
                         config.fingerprint + "\n" + config.body_spec);
      }
      case FrameType::kResult: {
        if (!conn.handshaken) {
          ++out.counters.frames_rejected;
          return false;
        }
        // "<key> ok|fail\n<bytes>"
        const std::size_t nl = frame.payload.find('\n');
        const std::string header =
            nl == std::string::npos ? frame.payload
                                    : frame.payload.substr(0, nl);
        const std::size_t sp = header.find(' ');
        const std::string key =
            sp == std::string::npos ? header : header.substr(0, sp);
        const std::string status =
            sp == std::string::npos ? "" : header.substr(sp + 1);
        const std::string bytes =
            nl == std::string::npos ? "" : frame.payload.substr(nl + 1);
        if (key.empty() || (status != "ok" && status != "fail")) {
          ++out.counters.frames_rejected;
          note(strf("malformed RESULT header from ", conn.name));
          return false;
        }
        conn.last_progress_ms = nowMs();
        ckpt_dirty = true;
        const auto it =
            std::find(conn.leased.begin(), conn.leased.end(), key);
        if (it != conn.leased.end()) conn.leased.erase(it);
        if (done.count(key) != 0) {
          ++out.counters.duplicate_results;
          return true;  // a steal/reap raced the result; bytes identical
        }
        if (status == "ok") {
          FleetResult r;
          r.key = key;
          r.ok = true;
          r.payload = bytes;
          r.worker = conn.name;
          finishOk(r);
          return true;
        }
        // Body-level failure: charge an attempt and regrant, so a
        // transient failure heals and a deterministic one caps out.
        const int n = ++attempts[key];
        ckpt_urgent = true;
        if (n >= config.max_attempts) {
          finishFailed(key, bytes.empty() ? "run body failed" : bytes);
        } else {
          pending.push_back(key);
        }
        return true;
      }
      case FrameType::kHeartbeat:
        return true;  // last_seen already refreshed
      case FrameType::kBye:
        note(strf("worker ", conn.name, " left"));
        requeueLeases(conn, /*charge_head=*/false);
        return false;  // drop without charging
      case FrameType::kWelcome:
      case FrameType::kReject:
      case FrameType::kLease:
      case FrameType::kSteal:
        ++out.counters.frames_rejected;
        note(strf("unexpected ", toString(frame.type), " frame from worker ",
                  conn.name));
        return false;
    }
    return true;
  }

  void drainLocal() {
    while (!pending.empty() && !interrupted()) {
      const std::string key = pending.front();
      pending.pop_front();
      ++out.counters.degraded_local_runs;
      if (config.on_grant) config.on_grant(key);
      FleetResult r;
      try {
        r = config.local_fn(key);
      } catch (const std::exception& e) {
        r.key = key;
        r.ok = false;
        r.payload = e.what();
      }
      r.key = key;
      r.worker = "local";
      if (r.ok) {
        finishOk(r);
      } else {
        finishFailed(key, r.payload);
      }
    }
  }

  void spawnWorker(int index, const Address& addr) {
    std::string bin = config.worker_bin;
    if (bin.empty()) bin = defaultWorkerBin();
    const std::string name = strf("w", index);
    const std::string log_path =
        config.shard_dir.empty() ? "" : config.shard_dir + "/" + name + ".log";
    const std::string hb = strf(config.timing.heartbeat_ms);
    const std::string chaos_spec =
        config.chaos.empty() ? "" : formatChaosSchedule(config.chaos);

    const pid_t pid = ::fork();
    if (pid < 0) {
      note(strf("fork for worker ", name, " failed: ", std::strerror(errno)));
      return;
    }
    if (pid == 0) {
      if (!log_path.empty()) {
        const int log_fd = ::open(log_path.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (log_fd >= 0) {
          ::dup2(log_fd, 1);
          ::dup2(log_fd, 2);
          if (log_fd > 2) ::close(log_fd);
        }
      }
      if (chaos_spec.empty()) {
        ::execl(bin.c_str(), bin.c_str(), "--connect", addr.text.c_str(),
                "--name", name.c_str(), "--heartbeat-ms", hb.c_str(),
                static_cast<char*>(nullptr));
      } else {
        ::execl(bin.c_str(), bin.c_str(), "--connect", addr.text.c_str(),
                "--name", name.c_str(), "--heartbeat-ms", hb.c_str(),
                "--chaos", chaos_spec.c_str(),
                static_cast<char*>(nullptr));
      }
      // exec failed: exit without touching the parent's stdio/atexit.
      ::_exit(127);
    }
    registerWorkerPid(pid);
    spawned.push_back(pid);
    note(strf("spawned worker ", name, " (pid ", pid, ") -> ", addr.text));
  }

  void reapSpawned() {
    for (pid_t& pid : spawned) {
      if (pid <= 0) continue;
      int st = 0;
      if (::waitpid(pid, &st, WNOHANG) == pid) {
        unregisterWorkerPid(pid);
        pid = -1;  // socket EOF/reap handles its leases
      }
    }
  }

  void shutdown() {
    for (auto& cp : conns) {
      // The farewell goes straight to the socket: a BYE eaten by chaos
      // would leave real workers waiting out their reconnect budget.
      (void)sendFrame(cp->fd, FrameType::kBye, "");
      foldChaos(*cp);
      ::close(cp->fd);
    }
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
    // Give spawned workers a moment to exit on the BYE/EOF, then SIGKILL
    // whatever is left (a wedged worker never reads the BYE).
    for (int i = 0; i < 40; ++i) {
      reapSpawned();
      bool any = false;
      for (const pid_t pid : spawned) {
        if (pid > 0) any = true;
      }
      if (!any) return;
      ::poll(nullptr, 0, 10);
    }
    for (pid_t& pid : spawned) {
      if (pid <= 0) continue;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      unregisterWorkerPid(pid);
      pid = -1;
    }
  }
};

}  // namespace

std::string defaultWorkerBin() {
  const char* env = std::getenv("MPCP_WORKER_BIN");
  if (env != nullptr && env[0] != '\0') return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "mpcp_worker";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "mpcp_worker";
  return path.substr(0, slash) + "/mpcp_worker";
}

FleetOutcome runFleet(const std::vector<std::string>& keys,
                      const FleetConfig& config) {
  MPCP_CHECK(static_cast<bool>(config.on_result),
             "runFleet requires an on_result callback");
  ignoreSigpipe();

  Coordinator co(config);
  co.total_keys = keys.size();
  co.attempts = config.initial_attempts;
  for (const std::string& key : keys) {
    // Takeover fail-fast: a key that already burned its attempt budget
    // under the previous coordinator fails now instead of re-reaping the
    // new fleet from zero.
    const auto it = co.attempts.find(key);
    if (it != co.attempts.end() && it->second >= config.max_attempts) {
      co.note(strf("key ", key, " already failed ", it->second,
                   " attempt(s) before takeover; failing it permanently"));
      co.finishFailed(key, strf("attempt budget exhausted (", it->second,
                                ") before coordinator takeover"));
      continue;
    }
    co.pending.push_back(key);
  }
  if (keys.empty()) return co.out;

  // Bind the listening socket up front; a bad address is a setup error,
  // not a mid-flight condition.
  std::string listen_text = config.listen;
  if (listen_text.empty()) {
    listen_text = "unix:" +
                  (config.shard_dir.empty() ? std::string("mpcp-fleet.sock")
                                            : config.shard_dir + "/fleet.sock");
  }
  Address addr;
  std::string error;
  if (!parseAddress(listen_text, addr, error)) {
    throw ConfigError("fleet listen address: " + error);
  }
  co.listen_fd = listenOn(addr, error);
  if (co.listen_fd < 0) throw ConfigError("fleet: " + error);
  if (addr.is_unix) co.unix_path = addr.path;
  co.note(strf("listening on ", addr.text, " for ", keys.size(), " key(s)"));

  for (int i = 0; i < config.spawn_workers; ++i) co.spawnWorker(i, addr);

  co.last_live_ms = co.armed_at_ms = co.last_ckpt_ms = nowMs();
  if (!config.chaos.empty()) {
    co.note(strf("chaos armed: ", formatChaosSchedule(config.chaos)));
  }
  char buf[65536];

  while (co.done.size() < co.total_keys) {
    if (interrupted()) {
      co.out.interrupted = true;
      break;
    }

    // Tick: wait for sockets (or the timeout) before each pass.
    std::vector<pollfd> fds;
    fds.push_back({co.listen_fd, POLLIN, 0});
    for (const auto& cp : co.conns) fds.push_back({cp->fd, POLLIN, 0});
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
           config.timing.poll_ms);

    // Accept new connections (listen fd is nonblocking).
    for (;;) {
      const int cfd = ::accept(co.listen_fd, nullptr, nullptr);
      if (cfd < 0) break;
      ::fcntl(cfd, F_SETFD, FD_CLOEXEC);
      auto conn = std::make_unique<Conn>();
      conn->fd = cfd;
      conn->connected_ms = conn->last_seen_ms = nowMs();
      if (config.chaos.empty()) {
        conn->sink = std::make_unique<FrameSink>(cfd);
      } else {
        auto link = std::make_unique<ChaosLink>(&config.chaos, cfd,
                                                strf("fd", cfd),
                                                co.armed_at_ms,
                                                ++co.chaos_generation);
        conn->chaos = link.get();
        conn->sink = std::move(link);
      }
      co.conns.push_back(std::move(conn));
    }

    // Drain every connection and process its frames. A read error, torn
    // stream, or poisoned decoder drops the connection and requeues its
    // leases (charging the head key — the worker died on the job).
    for (std::size_t i = 0; i < co.conns.size();) {
      Conn& conn = *co.conns[i];
      bool dead = false;
      bool eof = false;
      std::string why;
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0) {
          conn.decoder.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        dead = true;
        why = strf("read error: ", std::strerror(errno));
        break;
      }
      if (!dead) {
        // Frames buffered ahead of an EOF still count: a worker that
        // sends its final RESULT or BYE and closes in the same instant
        // must not lose that frame to the close.
        for (;;) {
          const FrameDecoder::Result r = conn.decoder.next();
          if (r.status == FrameDecoder::Status::kNeedMore) break;
          if (r.status == FrameDecoder::Status::kError) {
            ++co.out.counters.frames_rejected;
            dead = true;
            why = r.error;
            break;
          }
          if (!co.handleFrame(conn, r.frame)) {
            dead = true;
            why.clear();  // handleFrame already logged + requeued (BYE)
            break;
          }
        }
      }
      if (!dead && eof) {
        dead = true;
        why = conn.decoder.midFrame() ? "connection closed mid-frame"
                                      : "connection closed";
        if (conn.decoder.midFrame()) ++co.out.counters.frames_rejected;
      }
      if (dead) {
        co.dropConn(i, /*charge_head=*/true, why);
      } else {
        ++i;
      }
    }

    const std::int64_t now = nowMs();

    // Pump chaos delay/reorder queues; held frames come due here.
    for (const auto& cp : co.conns) cp->sink->tick(now);

    // Handshake timeout: a connection that never says a valid HELLO is
    // dropped (it holds no leases, so nothing to requeue).
    for (std::size_t i = 0; i < co.conns.size();) {
      Conn& conn = *co.conns[i];
      if (!conn.handshaken &&
          now - conn.connected_ms > config.timing.handshake_timeout_ms) {
        co.dropConn(i, false, "no HELLO before the handshake timeout");
      } else {
        ++i;
      }
    }

    // Reap: a handshaken worker silent past the lease deadline is dead
    // or wedged; either way its keys go back to the queue.
    for (std::size_t i = 0; i < co.conns.size();) {
      Conn& conn = *co.conns[i];
      if (conn.handshaken &&
          deadlineExpired(now, conn.last_seen_ms,
                          config.timing.lease_deadline_ms)) {
        ++co.out.counters.workers_reaped;
        co.dropConn(i, /*charge_head=*/true,
                    strf("silent for ", now - conn.last_seen_ms,
                         "ms (deadline ", config.timing.lease_deadline_ms,
                         "ms); reaping"));
      } else {
        ++i;
      }
    }

    // No-progress reap: a worker that heartbeats but never RESULTs while
    // holding leases lost its LEASE frame (or is wedged mid-body past any
    // reasonable budget). Heartbeats alone must not keep it alive, or a
    // single dropped LEASE deadlocks the campaign. Workers are silent
    // while executing a key anyway, so this fires no earlier than the
    // silence reap would for a genuinely busy worker.
    for (std::size_t i = 0; i < co.conns.size();) {
      Conn& conn = *co.conns[i];
      if (conn.handshaken && !conn.leased.empty() &&
          deadlineExpired(now, conn.last_progress_ms,
                          config.timing.lease_deadline_ms)) {
        ++co.out.counters.workers_reaped;
        ++co.out.counters.no_progress_reaps;
        co.dropConn(i, /*charge_head=*/true,
                    strf("no result for ", now - conn.last_progress_ms,
                         "ms with ", conn.leased.size(),
                         " lease(s) held; reaping"));
      } else {
        ++i;
      }
    }

    co.reapSpawned();
    co.grantLeases();
    co.stealFromStragglers();
    co.maybeCheckpoint(now, /*force=*/false);

    // Graceful degradation: no live worker for degrade_after_ms and a
    // local fallback available -> drain the remaining keys in-process.
    if (co.liveWorkers() > 0) {
      co.last_live_ms = now;
    } else if (config.local_fn &&
               now - co.last_live_ms >= config.timing.degrade_after_ms &&
               !co.pending.empty()) {
      co.note(strf("no live workers for ", now - co.last_live_ms,
                   "ms; running ", co.pending.size(), " key(s) locally"));
      co.drainLocal();
    }
  }

  if (interrupted()) co.out.interrupted = true;
  if (!config.checkpoint_path.empty()) {
    if (co.out.interrupted) {
      // A last snapshot so a takeover after Ctrl-C is as informed as one
      // after SIGKILL-between-checkpoints at worst.
      co.ckpt_dirty = true;
      co.maybeCheckpoint(nowMs(), /*force=*/true);
    } else {
      ::unlink(config.checkpoint_path.c_str());
    }
  }
  co.shutdown();
  return co.out;
}

}  // namespace mpcp::exec::fabric
