// runFleetCampaign — the distributed sibling of exec::runCampaign
// (ISSUE 9): shards a seed range across a worker fleet and merges the
// per-worker journal shards into one stream byte-identical to a serial
// journaled run.
//
// Journal layout during a fleet campaign:
//   * the *main* journal gets the `meta` fingerprint plus `start`
//     records on every lease grant (crash forensics: which keys were in
//     flight when the coordinator died) and `fail` records for
//     permanent failures;
//   * each worker gets its own shard journal
//     `<shard_dir>/<worker>.journal` holding only its `done` records —
//     workers never contend on one fd, and a torn shard tail costs at
//     most that worker's last record.
//
// Merge contract: when every key completes, the main journal is
// atomically rewritten (tmp + fsync + rename) as the canonical stream —
// meta, then start/done per key in seed order, using the exact
// formatRecord bytes CampaignJournal::append would have written. The
// result is byte-identical to `mpcp_cli sweep` run serially with
// MPCP_THREADS=1 and a journal, regardless of worker count, steals,
// reaps, crashes, or resume history.
//
// Resume contract: completed keys are the union of the main journal's
// `done` records and every shard's — a coordinator killed -9 mid-merge
// or mid-campaign resumes from the shards without re-running anything
// that finished.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/fabric/coordinator.h"
#include "exec/journal.h"
#include "exp/sweep_runner.h"
#include "obs/counters.h"

namespace mpcp::exec::fabric {

struct FleetCampaignOptions {
  /// Main journal; empty = no journal (results still flow, no resume).
  std::string journal_path;
  bool resume = false;
  /// Coordinator takeover (ISSUE 10): implies resume, and additionally
  /// loads `<shard_dir>/coordinator.ckpt` — the attempt counts the dead
  /// coordinator had charged — so in-flight keys are not re-run from a
  /// clean slate and exhausted keys fail immediately instead of reaping
  /// the new fleet. A missing/corrupt checkpoint degrades to a plain
  /// resume; a checkpoint from a different fingerprint is a ConfigError.
  bool takeover = false;
  std::string config_fingerprint;
  /// Shard directory: worker journals, worker logs, and (for a unix
  /// listen address) the default socket live here. Must be writable.
  /// Non-empty also enables periodic coordinator checkpoints there.
  std::string shard_dir;
  /// Disk seam for every journal/checkpoint/merge byte (ISSUE 10); null =
  /// real syscalls. Injected faults are contained: failed appends bump
  /// exec.journal_write_errors and the campaign carries on — results stay
  /// in memory and the final merge still writes the canonical stream.
  JournalIo* journal_io = nullptr;
  /// Fleet topology + timing. body_spec must be set; fingerprint and
  /// shard_dir are filled in from the fields above.
  FleetConfig fleet;
};

struct FleetCampaignOutcome {
  /// payloads[s] is empty exactly when seed s failed permanently or was
  /// never finished (interrupt / degraded abort).
  std::vector<std::optional<std::string>> payloads;
  std::vector<exp::RunFailure> failures;  ///< sorted by seed
  obs::ExecutorCounters exec;
  obs::FleetCounters fleet;
  bool interrupted = false;

  [[nodiscard]] bool complete() const {
    for (const auto& p : payloads) {
      if (!p.has_value()) return false;
    }
    return true;
  }
};

/// Runs keys s<seed_base>..s<seed_base+seeds-1> through the fleet.
/// Throws ConfigError on journal misuse (same rules as runCampaign).
[[nodiscard]] FleetCampaignOutcome runFleetCampaign(
    int seeds, std::uint64_t seed_base, const FleetCampaignOptions& options);

/// File-name-safe form of a worker name (shard + log paths).
[[nodiscard]] std::string sanitizeWorkerName(const std::string& name);

}  // namespace mpcp::exec::fabric
