// Deterministic network-fault injection for the campaign fabric
// (ISSUE 10 tentpole). The same philosophy as src/fault/ one layer up:
// the fabric's robustness claims (reaping, requeue, attempt charging,
// byte-identical merge) assume frames arrive whole, once, and in order —
// a ChaosSchedule violates those assumptions on purpose, from a seed, so
// every fleet test can replay a hostile network:
//   * drop      — a frame silently never arrives;
//   * delay     — a frame is held for a fixed latency (permille 1000 on
//                 a named peer == a per-peer slow-link throttle);
//   * dup       — a frame is transmitted twice;
//   * reorder   — a frame is held briefly while later frames pass it;
//   * trunc     — only a prefix of a frame's bytes is sent, tearing the
//                 stream (the receiver's decoder poisons and the
//                 connection dies, exactly like a mid-write crash);
//   * partition — a time window during which every frame to a peer (or
//                 all peers) is dropped.
//
// Injection is send-side only and sits behind the FrameSink seam in
// socket.h: a ChaosLink wraps one connection's outbound frames, decides
// each frame's fate from (seed, peer, frame index) — stateless hashing,
// so a decision never depends on wall time — and pumps its delay queue
// from the owner's poll loop via tick().
//
// Schedule text grammar (whitespace-free, comma-separated, mirroring
// fault/plan.h; round-trips through formatChaosSchedule):
//   seed:<n>                          decision seed (default 1)
//   drop:<peer|*>:<permille>
//   delay:<peer|*>:<ms>[:<permille>]  permille defaults to 1000 (all)
//   dup:<peer|*>:<permille>
//   reorder:<peer|*>:<permille>
//   trunc:<peer|*>:<permille>
//   partition:<start-ms>:<len-ms>[:<peer|*>]
// <peer> matches the worker name on coordinator links and "coord" on
// worker links; "*" matches every peer.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/fabric/socket.h"
#include "exec/fabric/wire.h"

namespace mpcp::exec::fabric {

enum class ChaosKind { kDrop, kDelay, kDup, kReorder, kTrunc, kPartition };

[[nodiscard]] const char* toString(ChaosKind k);

struct ChaosRule {
  ChaosKind kind = ChaosKind::kDrop;
  std::string peer = "*";        ///< worker name / "coord" / "*"
  int permille = 0;              ///< firing probability, 0..1000
  int delay_ms = 0;              ///< kDelay hold time
  std::int64_t start_ms = 0;     ///< kPartition window start (link time)
  std::int64_t length_ms = 0;    ///< kPartition window length

  [[nodiscard]] bool matches(const std::string& p) const {
    return peer == "*" || peer == p;
  }
};

struct ChaosSchedule {
  std::uint64_t seed = 1;
  std::vector<ChaosRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Draws a plausible hostile-but-survivable schedule (modest permilles,
  /// short partitions) for the soak harness. Deterministic in `rng`.
  [[nodiscard]] static ChaosSchedule random(Rng& rng);
};

/// Parses the grammar above. Throws ConfigError naming the bad token
/// (CLI mains surface it as exit 2). Empty text = empty schedule.
[[nodiscard]] ChaosSchedule parseChaosSchedule(const std::string& text);
[[nodiscard]] std::string formatChaosSchedule(const ChaosSchedule& schedule);

/// What a link did to the frames it was asked to send. Sums; folded into
/// obs::FleetCounters by the coordinator (worker links log them).
struct ChaosStats {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;

  [[nodiscard]] std::uint64_t total() const {
    return dropped + delayed + duplicated + reordered + truncated;
  }
};

/// Per-frame verdict, exposed so tests can pin decision determinism
/// without a socket. `delay_ms` > 0 only when a delay rule fired.
struct ChaosVerdict {
  bool drop = false;
  bool dup = false;
  bool reorder = false;
  bool trunc = false;
  int delay_ms = 0;
};

/// The stateless decision function: same (schedule, peer, index,
/// now-since-arm) always yields the same verdict.
[[nodiscard]] ChaosVerdict chaosVerdict(const ChaosSchedule& schedule,
                                        const std::string& peer,
                                        std::uint64_t frame_index,
                                        std::int64_t link_age_ms);

/// One connection's chaotic outbound side. With a null/empty schedule it
/// degenerates to plain sendFrame (no queue, no hashing).
class ChaosLink final : public FrameSink {
 public:
  /// `armed_at_ms` anchors partition windows (steadyNowMs() of the
  /// campaign start, so all links share one window clock). `schedule`
  /// must outlive the link; may be null. `generation` salts the frame
  /// index (index starts at generation<<32): successive links to the
  /// same peer MUST pass an increasing generation, or a verdict that
  /// eats frame 0 (a dropped HELLO or WELCOME) recurs identically on
  /// every reconnect and livelocks the handshake forever.
  ChaosLink(const ChaosSchedule* schedule, int fd, std::string peer,
            std::int64_t armed_at_ms, std::uint64_t generation = 0);
  ~ChaosLink() override;

  /// Re-binds per-peer rules once the peer's name is known (the
  /// coordinator learns it from HELLO, after the link exists).
  void setPeer(const std::string& peer) { peer_ = peer; }

  bool send(FrameType type, const std::string& payload) override;
  /// Flushes delay-queue entries that have come due. Call from the
  /// owner's poll loop; cadence bounds extra latency, not correctness.
  void tick(std::int64_t now_ms) override;

  [[nodiscard]] const ChaosStats& stats() const { return stats_; }
  [[nodiscard]] bool queueEmpty() const { return queue_.empty(); }

 private:
  struct Held {
    std::string bytes;
    std::int64_t release_ms = 0;
    bool fifo = false;  ///< delay entries keep FIFO; reorder holds do not
  };

  const ChaosSchedule* schedule_;
  std::string peer_;
  std::int64_t armed_at_ms_;
  std::uint64_t next_index_ = 0;
  std::deque<Held> queue_;
  ChaosStats stats_;
};

}  // namespace mpcp::exec::fabric
