#include "exec/fabric/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mpcp::exec::fabric {

namespace {

int makeSocket(int family) {
  return ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

bool fillUnixAddr(const std::string& path, sockaddr_un& sa,
                  std::string& error) {
  std::memset(&sa, 0, sizeof sa);
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof sa.sun_path) {
    error = "unix socket path too long (" + std::to_string(path.size()) +
            " bytes, max " + std::to_string(sizeof sa.sun_path - 1) + "): '" +
            path + "'";
    return false;
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool parseAddress(const std::string& text, Address& out, std::string& error) {
  out = {};
  out.text = text;
  if (text.empty()) {
    error = "empty address";
    return false;
  }
  if (text.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = text.substr(5);
    if (out.path.empty()) {
      error = "unix address needs a path: '" + text + "'";
      return false;
    }
    return true;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 == text.size()) {
    error = "address must be unix:PATH or HOST:PORT, got '" + text + "'";
    return false;
  }
  out.host = text.substr(0, colon);
  out.port = text.substr(colon + 1);
  for (const char c : out.port) {
    if (c < '0' || c > '9') {
      error = "bad port in address '" + text + "'";
      return false;
    }
  }
  return true;
}

int listenOn(const Address& address, std::string& error) {
  if (address.is_unix) {
    const int fd = makeSocket(AF_UNIX);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un sa;
    if (!fillUnixAddr(address.path, sa, error)) {
      ::close(fd);
      return -1;
    }
    ::unlink(address.path.c_str());  // stale socket from a killed run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(fd, 64) != 0) {
      error = "cannot listen on '" + address.text +
              "': " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    setNonBlocking(fd);
    return fd;
  }

  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(address.host.empty() ? nullptr
                                                    : address.host.c_str(),
                               address.port.c_str(), &hints, &res);
  if (rc != 0) {
    error = "cannot resolve '" + address.text + "': " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = makeSocket(ai->ai_family);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    error = "cannot listen on '" + address.text +
            "': " + std::strerror(errno);
    return -1;
  }
  setNonBlocking(fd);
  return fd;
}

int connectTo(const Address& address, std::string& error) {
  if (address.is_unix) {
    const int fd = makeSocket(AF_UNIX);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un sa;
    if (!fillUnixAddr(address.path, sa, error)) {
      ::close(fd);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      error = "cannot connect to '" + address.text +
              "': " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }

  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(address.host.empty() ? "127.0.0.1"
                                                    : address.host.c_str(),
                               address.port.c_str(), &hints, &res);
  if (rc != 0) {
    error = "cannot resolve '" + address.text + "': " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = makeSocket(ai->ai_family);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    error = "cannot connect to '" + address.text +
            "': " + std::strerror(errno);
  }
  return fd;
}

bool sendAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET/...: the connection is gone
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool sendFrame(int fd, FrameType type, const std::string& payload) {
  const std::string bytes = encodeFrame(type, payload);
  return sendAll(fd, bytes.data(), bytes.size());
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

FrameSink::~FrameSink() = default;

bool FrameSink::send(FrameType type, const std::string& payload) {
  return sendFrame(fd_, type, payload);
}

void FrameSink::tick(std::int64_t) {}

}  // namespace mpcp::exec::fabric
