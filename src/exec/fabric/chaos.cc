#include "exec/fabric/chaos.h"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <limits>

#include "common/check.h"
#include "common/strf.h"
#include "exec/fabric/clock.h"

namespace mpcp::exec::fabric {

namespace {

/// How long a reorder hold keeps a frame parked while later frames pass
/// it. Short enough that a reordered HEARTBEAT cannot trip a lease
/// deadline on its own; long enough that the next frame usually wins.
constexpr int kReorderHoldMs = 25;

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hashPeer(const std::string& peer) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : peer) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One permille draw per (frame hash, rule index) — independent across
/// rules so a drop rule and a dup rule never correlate.
bool fires(std::uint64_t frame_hash, std::size_t rule_index, int permille) {
  if (permille <= 0) return false;
  if (permille >= 1000) return true;
  const std::uint64_t draw =
      splitmix(frame_hash ^ (0x51ed2701a9b4d7e3ULL * (rule_index + 1)));
  return static_cast<int>(draw % 1000) < permille;
}

std::vector<std::string> splitOn(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t next = text.find(sep, pos);
    if (next == std::string::npos) next = text.size();
    out.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

std::int64_t chaosInt(const std::string& token, const std::string& field,
                      std::int64_t min, std::int64_t max) {
  std::int64_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (field.empty() || ec != std::errc() || ptr != end) {
    throw ConfigError("chaos spec '" + token + "': '" + field +
                      "' is not an integer");
  }
  if (value < min || value > max) {
    throw ConfigError("chaos spec '" + token + "': " + field +
                      " is out of range [" + std::to_string(min) + ", " +
                      std::to_string(max) + "]");
  }
  return value;
}

std::string chaosPeer(const std::string& token, const std::string& field) {
  if (field.empty() || field.find_first_of(" \t,:") != std::string::npos) {
    throw ConfigError("chaos spec '" + token + "': bad peer '" + field +
                      "' (worker name or *)");
  }
  return field;
}

}  // namespace

const char* toString(ChaosKind k) {
  switch (k) {
    case ChaosKind::kDrop: return "drop";
    case ChaosKind::kDelay: return "delay";
    case ChaosKind::kDup: return "dup";
    case ChaosKind::kReorder: return "reorder";
    case ChaosKind::kTrunc: return "trunc";
    case ChaosKind::kPartition: return "partition";
  }
  return "?";
}

ChaosSchedule parseChaosSchedule(const std::string& text) {
  ChaosSchedule schedule;
  if (text.empty()) return schedule;
  for (const std::string& token : splitOn(text, ',')) {
    if (token.empty()) {
      throw ConfigError("chaos spec has an empty token (doubled comma?)");
    }
    const std::vector<std::string> f = splitOn(token, ':');
    const std::string& kind = f[0];
    ChaosRule rule;
    if (kind == "seed" && f.size() == 2) {
      // Full uint64 range: random() draws raw 64-bit seeds, and its
      // format must round-trip through this parser (soak replay files).
      std::uint64_t seed = 0;
      const char* begin = f[1].data();
      const char* end = begin + f[1].size();
      const auto [ptr, ec] = std::from_chars(begin, end, seed);
      if (f[1].empty() || ec != std::errc() || ptr != end) {
        throw ConfigError("chaos spec '" + token + "': '" + f[1] +
                          "' is not a seed (unsigned integer)");
      }
      schedule.seed = seed;
      continue;
    }
    if ((kind == "drop" || kind == "dup" || kind == "reorder" ||
         kind == "trunc") &&
        f.size() == 3) {
      rule.kind = kind == "drop"      ? ChaosKind::kDrop
                  : kind == "dup"     ? ChaosKind::kDup
                  : kind == "reorder" ? ChaosKind::kReorder
                                      : ChaosKind::kTrunc;
      rule.peer = chaosPeer(token, f[1]);
      rule.permille = static_cast<int>(chaosInt(token, f[2], 1, 1000));
    } else if (kind == "delay" && (f.size() == 3 || f.size() == 4)) {
      rule.kind = ChaosKind::kDelay;
      rule.peer = chaosPeer(token, f[1]);
      rule.delay_ms = static_cast<int>(chaosInt(token, f[2], 1, 60'000));
      rule.permille =
          f.size() == 4 ? static_cast<int>(chaosInt(token, f[3], 1, 1000))
                        : 1000;
    } else if (kind == "partition" && (f.size() == 3 || f.size() == 4)) {
      rule.kind = ChaosKind::kPartition;
      rule.start_ms = chaosInt(token, f[1], 0, 86'400'000);
      rule.length_ms = chaosInt(token, f[2], 1, 86'400'000);
      rule.peer = f.size() == 4 ? chaosPeer(token, f[3]) : "*";
    } else {
      throw ConfigError(
          "chaos spec: unrecognized token '" + token +
          "' (grammar: seed:<n>, drop:<peer|*>:<permille>, "
          "delay:<peer|*>:<ms>[:<permille>], dup:<peer|*>:<permille>, "
          "reorder:<peer|*>:<permille>, trunc:<peer|*>:<permille>, "
          "partition:<start-ms>:<len-ms>[:<peer|*>])");
    }
    schedule.rules.push_back(rule);
  }
  return schedule;
}

std::string formatChaosSchedule(const ChaosSchedule& schedule) {
  std::string out = strf("seed:", schedule.seed);
  for (const ChaosRule& r : schedule.rules) {
    out += ',';
    switch (r.kind) {
      case ChaosKind::kDrop:
      case ChaosKind::kDup:
      case ChaosKind::kReorder:
      case ChaosKind::kTrunc:
        out += strf(toString(r.kind), ':', r.peer, ':', r.permille);
        break;
      case ChaosKind::kDelay:
        out += strf("delay:", r.peer, ':', r.delay_ms, ':', r.permille);
        break;
      case ChaosKind::kPartition:
        out += strf("partition:", r.start_ms, ':', r.length_ms, ':', r.peer);
        break;
    }
  }
  return out;
}

ChaosSchedule ChaosSchedule::random(Rng& rng) {
  ChaosSchedule s;
  s.seed = rng.next();
  const auto add = [&](ChaosRule r) { s.rules.push_back(r); };
  // Always some reordering and duplication — they are invariant-
  // preserving stressors (dedupe and determinism absorb them), so they
  // can run hot without threatening liveness.
  ChaosRule dup;
  dup.kind = ChaosKind::kDup;
  dup.permille = static_cast<int>(rng.uniformInt(50, 400));
  add(dup);
  ChaosRule reorder;
  reorder.kind = ChaosKind::kReorder;
  reorder.permille = static_cast<int>(rng.uniformInt(50, 400));
  add(reorder);
  if (rng.chance(0.7)) {
    ChaosRule delay;
    delay.kind = ChaosKind::kDelay;
    delay.delay_ms = static_cast<int>(rng.uniformInt(5, 40));
    delay.permille = static_cast<int>(rng.uniformInt(100, 1000));
    add(delay);
  }
  // Loss-class faults stay modest: each drop/trunc costs a reap or a
  // torn connection, and attempt budgets are finite.
  if (rng.chance(0.6)) {
    ChaosRule drop;
    drop.kind = ChaosKind::kDrop;
    drop.permille = static_cast<int>(rng.uniformInt(10, 80));
    add(drop);
  }
  if (rng.chance(0.4)) {
    ChaosRule trunc;
    trunc.kind = ChaosKind::kTrunc;
    trunc.permille = static_cast<int>(rng.uniformInt(5, 40));
    add(trunc);
  }
  if (rng.chance(0.5)) {
    ChaosRule part;
    part.kind = ChaosKind::kPartition;
    part.start_ms = rng.uniformInt(100, 1500);
    part.length_ms = rng.uniformInt(100, 600);
    add(part);
  }
  return s;
}

ChaosVerdict chaosVerdict(const ChaosSchedule& schedule,
                          const std::string& peer,
                          std::uint64_t frame_index,
                          std::int64_t link_age_ms) {
  ChaosVerdict v;
  const std::uint64_t h =
      splitmix(schedule.seed ^ hashPeer(peer) ^
               (frame_index * 0x9e3779b97f4a7c15ULL));
  for (std::size_t i = 0; i < schedule.rules.size(); ++i) {
    const ChaosRule& r = schedule.rules[i];
    if (!r.matches(peer)) continue;
    switch (r.kind) {
      case ChaosKind::kPartition:
        if (link_age_ms >= r.start_ms &&
            link_age_ms < r.start_ms + r.length_ms) {
          v.drop = true;
        }
        break;
      case ChaosKind::kDrop:
        if (fires(h, i, r.permille)) v.drop = true;
        break;
      case ChaosKind::kDelay:
        if (fires(h, i, r.permille)) {
          v.delay_ms = std::max(v.delay_ms, r.delay_ms);
        }
        break;
      case ChaosKind::kDup:
        if (fires(h, i, r.permille)) v.dup = true;
        break;
      case ChaosKind::kReorder:
        if (fires(h, i, r.permille)) v.reorder = true;
        break;
      case ChaosKind::kTrunc:
        if (fires(h, i, r.permille)) v.trunc = true;
        break;
    }
  }
  return v;
}

ChaosLink::ChaosLink(const ChaosSchedule* schedule, int fd, std::string peer,
                     std::int64_t armed_at_ms, std::uint64_t generation)
    : FrameSink(fd),
      schedule_(schedule),
      peer_(std::move(peer)),
      armed_at_ms_(armed_at_ms),
      next_index_(generation << 32) {}

ChaosLink::~ChaosLink() = default;

bool ChaosLink::send(FrameType type, const std::string& payload) {
  if (schedule_ == nullptr || schedule_->empty()) {
    return sendFrame(fd_, type, payload);
  }
  const std::int64_t now = steadyNowMs();
  const ChaosVerdict v =
      chaosVerdict(*schedule_, peer_, next_index_++, now - armed_at_ms_);

  if (v.drop) {
    // The network ate it after send() succeeded — the caller must not
    // learn anything a real lossy link would not tell it.
    ++stats_.dropped;
    return true;
  }

  std::string bytes = encodeFrame(type, payload);
  if (v.trunc) {
    // A prefix lands, then silence: the receiver's decoder poisons on
    // the next bytes and the connection dies like a mid-write crash.
    ++stats_.truncated;
    return sendAll(fd_, bytes.data(), std::max<std::size_t>(bytes.size() / 2,
                                                            1));
  }

  const int copies = v.dup ? 2 : 1;
  if (v.dup) ++stats_.duplicated;

  if (v.delay_ms > 0 || v.reorder) {
    Held held;
    held.bytes = std::move(bytes);
    held.fifo = v.delay_ms > 0;
    held.release_ms = now + (v.delay_ms > 0 ? v.delay_ms : kReorderHoldMs);
    if (held.fifo) {
      // Delay preserves per-link FIFO: never release before an earlier
      // delayed frame.
      for (const Held& earlier : queue_) {
        if (earlier.fifo) {
          held.release_ms = std::max(held.release_ms, earlier.release_ms);
        }
      }
      ++stats_.delayed;
    } else {
      ++stats_.reordered;
    }
    for (int c = 0; c < copies; ++c) queue_.push_back(held);
    return true;
  }

  // No verdict of its own — but if delayed frames are queued, FIFO says
  // this frame lines up behind them (reorder holds are bypassed; that
  // bypass IS the reordering).
  bool behind_fifo = false;
  std::int64_t fifo_release = now;
  for (const Held& earlier : queue_) {
    if (earlier.fifo) {
      behind_fifo = true;
      fifo_release = std::max(fifo_release, earlier.release_ms);
    }
  }
  if (behind_fifo) {
    Held held;
    held.bytes = std::move(bytes);
    held.fifo = true;
    held.release_ms = fifo_release;
    for (int c = 0; c < copies; ++c) queue_.push_back(held);
    return true;
  }

  for (int c = 0; c < copies; ++c) {
    if (!sendAll(fd_, bytes.data(), bytes.size())) return false;
  }
  return true;
}

void ChaosLink::tick(std::int64_t now_ms) {
  while (!queue_.empty() && queue_.front().release_ms <= now_ms) {
    const Held held = std::move(queue_.front());
    queue_.pop_front();
    if (!sendAll(fd_, held.bytes.data(), held.bytes.size())) {
      // Connection is gone; the owner will notice on its read side.
      queue_.clear();
      return;
    }
  }
}

}  // namespace mpcp::exec::fabric
