// Fleet work bodies: how a worker turns a run key into result bytes.
//
// The coordinator ships a *body spec* string in its WELCOME frame — a
// one-line, space-separated "kind k=v k=v ..." description of the
// campaign's workload (everything that shapes row bytes, nothing about
// execution strategy). The worker looks the kind up in a name-keyed
// registry (mirroring core/protocol_registry.h), builds the body once
// per session, and then maps each leased key to a payload.
//
// Registration is explicit and side-effect free at link time: binaries
// call registerSweepFleetBody() (and fuzz::registerFuzzFleetBody(), which
// lives in src/fuzz/ so the fabric never links the fuzzer) from main().
// This keeps the dependency arrow fuzz -> fabric, never the reverse.
//
// Determinism contract: a body must derive everything from the spec and
// the key alone — the sweep body re-derives Rng(seed_base + s) from the
// key "s<seed_base+s>", the SweepRunner convention — so any worker, on
// any machine, at any retry, produces byte-identical payloads. That is
// what makes duplicate execution after a steal or a reap harmless and
// the merged journal byte-identical to a serial run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "taskgen/generator.h"

namespace mpcp::exec::fabric {

/// Outcome of one unit of fleet work, tagged with the worker that ran it.
struct FleetResult {
  std::string key;
  bool ok = false;
  std::string payload;  ///< result bytes when ok, error text when not
  std::string worker;   ///< filled by the coordinator on receipt
};

using FleetBodyFn = std::function<FleetResult(const std::string& key)>;

/// Builds a body from a spec string; throws ConfigError on a spec the
/// kind cannot parse (the worker refuses the campaign).
using FleetBodyFactory = std::function<FleetBodyFn(const std::string& spec)>;

void registerFleetBodyKind(const std::string& kind, FleetBodyFactory factory);

/// nullptr when the kind is unknown.
[[nodiscard]] const FleetBodyFactory* findFleetBodyKind(
    const std::string& kind);

/// Registered kind names, sorted (advertised in HELLO).
[[nodiscard]] std::vector<std::string> fleetBodyKinds();

/// First space-separated token of a spec — its kind.
[[nodiscard]] std::string fleetBodyKind(const std::string& spec);

/// Spec-string helpers shared by the body kinds: "k=v" token access with
/// checked parses. Doubles are formatted with %.17g so they round-trip
/// bit-exactly through the spec.
[[nodiscard]] std::string specValue(const std::string& spec,
                                    const std::string& key);
[[nodiscard]] std::string formatSpecDouble(double v);
[[nodiscard]] std::int64_t specInt(const std::string& spec,
                                   const std::string& key);
[[nodiscard]] double specDouble(const std::string& spec,
                                const std::string& key);

/// The "sweep-v1" body: mirrors mpcp_cli sweep's per-seed run (generate
/// -> RTA -> traceless simulate -> CSV row) exactly.
void registerSweepFleetBody();
[[nodiscard]] std::string makeSweepBodySpec(const std::string& protocol,
                                            std::uint64_t seed_base,
                                            Time horizon,
                                            const WorkloadParams& params,
                                            int sleep_ms);

/// Applies the chaos test aids before running `key` (used by the worker
/// loop; exposed for the docs' sake):
///   MPCP_FABRIC_CRASH_KEY + MPCP_FABRIC_CRASH_MARK — SIGKILL self on
///     this key, once across the fleet (the mark file is O_EXCL);
///   MPCP_FABRIC_WEDGE_KEY + MPCP_FABRIC_WEDGE_MS + MPCP_FABRIC_WEDGE_MARK
///     — sleep silently past the heartbeat deadline, once.
void applyChaosAids(const std::string& key);

}  // namespace mpcp::exec::fabric
