// Fleet worker loop (ISSUE 9) — the other half of the campaign fabric.
//
// A worker is a thin, stateless shell around the body registry
// (exec/fabric/work.h): it connects to a coordinator, introduces itself
// with HELLO, receives the body spec in WELCOME, builds the run body
// from the registry, and then executes leased keys one at a time,
// streaming RESULT frames back. All campaign state (journals, retries,
// dedupe) lives on the coordinator; a worker can be killed -9 at any
// instant and the campaign loses at most the key it was running.
//
// Robustness contract:
//   * reconnect with capped exponential backoff (exec/retry.h) when the
//     coordinator drops or is not up yet; the attempt counter resets on
//     every successful handshake;
//   * the WELCOME fingerprint is pinned on first handshake — a later
//     reconnect that lands on a *different* campaign (fingerprint
//     mismatch) exits with a config error instead of corrupting it;
//   * leased-but-unfinished keys are forgotten on disconnect — the
//     coordinator requeues them, and re-execution is harmless because
//     run bodies are deterministic functions of (spec, key);
//   * a REJECT from the coordinator (version/kind mismatch) is terminal:
//     retrying cannot help, so the worker exits with a distinct code;
//   * run-body exceptions become `fail` RESULTs, never worker deaths.
#pragma once

#include <ostream>
#include <string>

#include "exec/fabric/chaos.h"
#include "exec/fabric/work.h"
#include "exec/retry.h"

namespace mpcp::exec::fabric {

struct WorkerConfig {
  std::string connect;           ///< coordinator address (socket.h grammar)
  std::string name;              ///< reported in HELLO; default "w<pid>"
  int heartbeat_ms = 500;        ///< HEARTBEAT cadence while connected
  RetryPolicy reconnect{8, std::chrono::milliseconds(100),
                        std::chrono::milliseconds(2000), 0};
  /// Network-fault injection on this worker's outbound frames (peer name
  /// "coord"); spawned workers receive the coordinator's schedule via
  /// --chaos. Empty = plain sends.
  ChaosSchedule chaos;
  std::ostream* log = nullptr;   ///< progress/diagnostic lines (nullable)
};

/// Runs the worker loop until the coordinator says BYE (returns 0), the
/// process is interrupted (returns 128+signo), reconnect attempts are
/// exhausted (returns 1), or the coordinator rejects the handshake or
/// ships a spec this binary cannot build (returns 3).
[[nodiscard]] int runWorker(const WorkerConfig& config);

}  // namespace mpcp::exec::fabric
