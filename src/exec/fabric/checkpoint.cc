#include "exec/fabric/checkpoint.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "exec/journal.h"

namespace mpcp::exec::fabric {

namespace {

std::string crcHex8(std::uint32_t crc) {
  static const char* kHex = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[crc & 0xf];
    crc >>= 4;
  }
  return out;
}

}  // namespace

std::string encodeCheckpoint(const CoordinatorCheckpoint& ckpt) {
  std::string body = "mpcp-ckpt 1\n";
  body += "fingerprint " + escapeLine(ckpt.fingerprint) + "\n";
  for (const auto& [key, count] : ckpt.attempts) {
    body += "attempt " + key + " " + std::to_string(count) + "\n";
  }
  for (const std::string& key : ckpt.in_flight) {
    body += "inflight " + key + "\n";
  }
  return body + "crc " + crcHex8(crc32(body)) + "\n";
}

bool decodeCheckpoint(const std::string& text, CoordinatorCheckpoint& out) {
  // Split off the CRC footer: it covers everything before its own line.
  const std::string footer_tag = "crc ";
  const std::size_t last_nl = text.rfind('\n');
  if (last_nl == std::string::npos || last_nl + 1 != text.size()) return false;
  const std::size_t footer_at = text.rfind('\n', last_nl - 1);
  const std::size_t body_end = footer_at == std::string::npos ? 0
                                                              : footer_at + 1;
  const std::string footer = text.substr(body_end, last_nl - body_end);
  if (footer.rfind(footer_tag, 0) != 0) return false;
  const std::string body = text.substr(0, body_end);
  if (footer.substr(footer_tag.size()) != crcHex8(crc32(body))) return false;

  CoordinatorCheckpoint ckpt;
  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != "mpcp-ckpt 1") return false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    // Fingerprints contain spaces, so that tag takes the rest of the
    // line verbatim; the others are whitespace-free fields.
    if (line.rfind("fingerprint ", 0) == 0) {
      ckpt.fingerprint = unescapeLine(line.substr(12));
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "attempt") {
      std::string key;
      int count = 0;
      if (!(fields >> key >> count) || count < 0) return false;
      ckpt.attempts[key] = count;
    } else if (tag == "inflight") {
      std::string key;
      if (!(fields >> key)) return false;
      ckpt.in_flight.insert(key);
    } else {
      return false;
    }
  }
  out = std::move(ckpt);
  return true;
}

void saveCheckpoint(const std::string& path,
                    const CoordinatorCheckpoint& ckpt) {
  writeFileAtomic(path, encodeCheckpoint(ckpt));
}

bool loadCheckpoint(const std::string& path, CoordinatorCheckpoint& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return decodeCheckpoint(buf.str(), out);
}

}  // namespace mpcp::exec::fabric
