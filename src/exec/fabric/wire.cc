#include "exec/fabric/wire.h"

#include "common/strf.h"
#include "exec/journal.h"  // exec::crc32

namespace mpcp::exec::fabric {

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
  out += static_cast<char>((v >> 16) & 0xff);
  out += static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t getU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

}  // namespace

const char* toString(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kWelcome: return "WELCOME";
    case FrameType::kReject: return "REJECT";
    case FrameType::kLease: return "LEASE";
    case FrameType::kResult: return "RESULT";
    case FrameType::kHeartbeat: return "HEARTBEAT";
    case FrameType::kSteal: return "STEAL";
    case FrameType::kBye: return "BYE";
  }
  return "?";
}

std::string encodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  putU32(out, kWireMagic);
  out += static_cast<char>(kWireVersion);
  out += static_cast<char>(type);
  out += '\0';
  out += '\0';  // reserved
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  putU32(out, crc32(payload));
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::poison(std::string why) {
  poisoned_ = true;
  error_ = std::move(why);
  Result r;
  r.status = Status::kError;
  r.error = error_;
  return r;
}

FrameDecoder::Result FrameDecoder::next() {
  if (poisoned_) {
    Result r;
    r.status = Status::kError;
    r.error = error_;
    return r;
  }
  // Compact consumed bytes occasionally so the buffer never grows
  // unbounded across a long session.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ > (1u << 16))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) {
    return {};  // kNeedMore
  }
  const char* h = buf_.data() + pos_;
  const std::uint32_t magic = getU32(h);
  if (magic != kWireMagic) {
    return poison(strf("bad frame magic ", magic));
  }
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != kWireVersion) {
    return poison(strf("unsupported wire version ", int{version},
                       " (want ", int{kWireVersion}, ")"));
  }
  const auto raw_type = static_cast<std::uint8_t>(h[5]);
  if (raw_type < static_cast<std::uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kBye)) {
    return poison(strf("unknown frame type ", int{raw_type}));
  }
  if (h[6] != 0 || h[7] != 0) {
    return poison("nonzero reserved header bytes");
  }
  const std::uint32_t len = getU32(h + 8);
  if (len > kMaxFramePayload) {
    return poison(strf("oversized frame payload: ", len, " bytes (cap ",
                       kMaxFramePayload, ")"));
  }
  const std::uint32_t recorded_crc = getU32(h + 12);
  if (avail < kFrameHeaderSize + len) {
    return {};  // kNeedMore: payload still in flight
  }
  const std::string payload = buf_.substr(pos_ + kFrameHeaderSize, len);
  if (crc32(payload) != recorded_crc) {
    return poison(strf(toString(static_cast<FrameType>(raw_type)),
                       " frame failed its payload CRC"));
  }
  pos_ += kFrameHeaderSize + len;
  Result r;
  r.status = Status::kFrame;
  r.frame.type = static_cast<FrameType>(raw_type);
  r.frame.payload = payload;
  return r;
}

}  // namespace mpcp::exec::fabric
