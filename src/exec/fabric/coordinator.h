// runFleet — the fault-tolerant campaign coordinator (ISSUE 9 tentpole).
//
// Shards a run keyset across N workers over Unix/TCP stream sockets.
// Single-threaded poll(2) loop; all state lives on the coordinator
// thread, results are delivered through callbacks on that thread.
//
// The lease/heartbeat state machine per connection:
//
//   accepted --HELLO ok--> handshaken --(silent past deadline)--> reaped
//       |  \-HELLO bad kind-> REJECT + drop          (leases requeued)
//       |  \-(no HELLO in time)-> drop
//   handshaken --LEASE--> working --RESULT/HEARTBEAT--> (last_seen reset)
//   handshaken --EOF/torn frame/bad frame--> dropped (leases requeued)
//   handshaken --BYE--> left gracefully              (leases requeued)
//
// Robustness invariants:
//   * a key is only finished once — duplicate RESULTs after a steal or a
//     reap are counted and discarded (bodies are deterministic, so the
//     duplicate bytes are identical anyway);
//   * any involuntary disconnect charges one "attempt" to the key at the
//     head of the dead worker's lease queue (the key it was most likely
//     running). A key whose workers keep dying — a poison workload —
//     permanently fails after max_attempts instead of reaping the fleet
//     forever;
//   * malformed/truncated frames never crash the loop: the decoder
//     poisons itself, frames_rejected is bumped, the connection drops,
//     and the leases are requeued;
//   * a handshaken worker that holds leases but produces no RESULT for a
//     full lease deadline is reaped even if it keeps heartbeating — a
//     dropped LEASE frame (chaos, or a real lossy link) otherwise leaves
//     both sides waiting forever, each believing the other is working;
//   * when the pending queue drains, idle workers steal the tail half of
//     the slowest straggler's unstarted leases;
//   * when no handshaken worker exists for degrade_after_ms and a
//     local_fn is provided, remaining keys drain in-process — a fleet
//     that never materializes degrades to the PR-5 path instead of
//     hanging;
//   * exec::interrupted() ends the loop between frames: BYE to everyone,
//     spawned children reaped, partial outcome returned.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "exec/fabric/chaos.h"
#include "exec/fabric/work.h"
#include "obs/counters.h"

namespace mpcp::exec::fabric {

struct FleetTiming {
  int heartbeat_ms = 500;        ///< expected worker cadence (informational)
  int lease_deadline_ms = 5000;  ///< reap a worker silent this long
  int handshake_timeout_ms = 5000;
  int degrade_after_ms = 3000;   ///< no live workers this long -> local drain
  int poll_ms = 50;              ///< coordinator loop tick
};

struct FleetConfig {
  /// Where to listen: "unix:PATH" or "HOST:PORT". Empty = a unix socket
  /// under shard_dir (or the working directory).
  std::string listen;
  /// Local workers to fork+exec (0 = external workers only).
  int spawn_workers = 0;
  /// Worker binary; empty = MPCP_WORKER_BIN, else the mpcp_worker next
  /// to the running executable.
  std::string worker_bin;
  /// Directory for worker stderr logs (w<k>.log) and the default unix
  /// socket; empty = current directory for the socket, no log redirect.
  std::string shard_dir;
  /// Shipped in WELCOME: the campaign body ("sweep-v1 ..." / "fuzz-v1 ...")
  /// and the config fingerprint workers pin across reconnects.
  std::string body_spec;
  std::string fingerprint;
  /// Keys granted per LEASE; 0 = auto (pending / 2*live, clamped [1,64]).
  int lease_chunk = 0;
  /// Worker deaths a single key may cause before it permanently fails.
  int max_attempts = 3;
  FleetTiming timing;

  /// Network-fault injection (ISSUE 10). Non-empty = every outbound frame
  /// on every coordinator link goes through a ChaosLink, and spawned
  /// workers receive the same schedule via --chaos so their side injects
  /// too. Empty = plain sendFrame, zero overhead.
  ChaosSchedule chaos;
  /// Coordinator checkpoint file; empty = no checkpointing. Written
  /// atomically every checkpoint_interval_ms while state is dirty and
  /// immediately after an attempt charge; removed when the campaign
  /// completes cleanly.
  std::string checkpoint_path;
  int checkpoint_interval_ms = 1000;
  /// Attempt counts carried over from a --takeover (checkpoint load).
  /// Keys already at max_attempts fail permanently at startup instead of
  /// being re-charged from zero.
  std::map<std::string, int> initial_attempts;

  /// Called once per key when it is first granted (and again on regrant
  /// after a worker death). May be null.
  std::function<void(const std::string& key)> on_grant;
  /// Called exactly once per finished key with ok == true. Required.
  std::function<void(const FleetResult& result)> on_result;
  /// Called exactly once per permanently failed key. May be null.
  std::function<void(const std::string& key, const std::string& error)>
      on_fail;
  /// In-process fallback body for graceful degradation. May be null
  /// (then an unreachable fleet simply leaves keys pending).
  FleetBodyFn local_fn;
  std::ostream* log = nullptr;  ///< progress/diagnostics; may be null
};

struct FleetOutcome {
  obs::FleetCounters counters;
  std::uint64_t completed = 0;  ///< keys finished ok
  std::uint64_t failed = 0;     ///< keys permanently failed
  bool interrupted = false;
};

/// Runs the coordinator loop until every key is finished (ok or failed)
/// or an interrupt arrives. Throws ConfigError only for setup failures
/// (bad listen address); everything mid-flight is absorbed.
[[nodiscard]] FleetOutcome runFleet(const std::vector<std::string>& keys,
                                    const FleetConfig& config);

/// The mpcp_worker binary next to /proc/self/exe, or MPCP_WORKER_BIN.
[[nodiscard]] std::string defaultWorkerBin();

}  // namespace mpcp::exec::fabric
