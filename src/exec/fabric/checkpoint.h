// Coordinator checkpoint (ISSUE 10 tentpole): a small atomic snapshot of
// the fleet scheduler's volatile state — attempt counts and in-flight
// keys — written periodically to `<shard_dir>/coordinator.ckpt`. Shard
// journals already make *results* durable; the checkpoint makes the
// *bookkeeping* durable, so a coordinator killed with SIGKILL can be
// restarted with `--takeover` and (a) keys that had exhausted their
// attempt budget fail immediately instead of being re-charged from zero,
// and (b) forensics know which keys were leased out at the moment of
// death.
//
// File format (versioned, CRC-footed, whitespace-separated):
//   mpcp-ckpt 1
//   fingerprint <escaped>
//   attempt <key> <count>        (0+ lines)
//   inflight <key>               (0+ lines)
//   crc <crc32-hex8>             (covers every preceding byte)
//
// The file is written via writeFileAtomic (tmp + fsync + rename), so a
// torn write leaves the previous checkpoint intact. decode() rejects any
// corruption (bad CRC, unknown version) by returning false — takeover
// then proceeds from the journals alone, which is safe, just less
// informed.
#pragma once

#include <map>
#include <set>
#include <string>

namespace mpcp::exec::fabric {

struct CoordinatorCheckpoint {
  std::string fingerprint;             ///< campaign config fingerprint
  std::map<std::string, int> attempts; ///< key -> attempts charged so far
  std::set<std::string> in_flight;     ///< keys leased out when written
};

[[nodiscard]] std::string encodeCheckpoint(const CoordinatorCheckpoint& ckpt);

/// False on any malformed input (wrong magic/version, bad CRC, garbled
/// line); `out` is untouched then.
[[nodiscard]] bool decodeCheckpoint(const std::string& text,
                                    CoordinatorCheckpoint& out);

/// Atomic save via exec::writeFileAtomic. Throws ConfigError on I/O
/// failure (callers contain it — a failed checkpoint never kills a run).
void saveCheckpoint(const std::string& path,
                    const CoordinatorCheckpoint& ckpt);

/// Missing file or corrupt contents -> false.
[[nodiscard]] bool loadCheckpoint(const std::string& path,
                                  CoordinatorCheckpoint& out);

}  // namespace mpcp::exec::fabric
