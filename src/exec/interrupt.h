// Cooperative SIGINT/SIGTERM handling for the long-running drivers
// (mpcp_cli sweep, mpcp_fuzz) plus the async-signal-safe worker-pid
// registry the subprocess executor feeds.
//
// Contract (ISSUE 5 satellite): Ctrl-C mid-sweep must not lose completed
// work or leak child processes. The handler
//   * records the signal and raises a flag the dispatch loops poll
//     between runs (runs in flight finish; no new runs start),
//   * SIGKILLs every registered worker pid (kill(2) is async-signal-safe),
//   * on a *second* signal _exits immediately with 128+signo — the
//     escape hatch when a worker wedges the graceful path.
// The drivers then flush partial CSV/journal output and exit 130 (SIGINT)
// or 143 (SIGTERM) via interruptExitCode().
#pragma once

#include <sys/types.h>

namespace mpcp::exec {

/// Installs the SIGINT/SIGTERM handler (idempotent). Also ignores
/// SIGPIPE (see ignoreSigpipe below) — the fleet drivers do socket I/O.
void installInterruptHandlers();

/// Ignores SIGPIPE process-wide (idempotent). Without this, a worker
/// dying between a poll and a write would kill the coordinator with the
/// default SIGPIPE disposition; with it, the write fails with EPIPE and
/// the fabric treats the connection as dead. Called by
/// installInterruptHandlers and again by the fabric entry points, so
/// socket I/O is safe even in binaries (gtest) that never install the
/// interrupt handlers. The fabric also passes MSG_NOSIGNAL on every
/// send as a second layer.
void ignoreSigpipe();

/// True once a handled signal arrived; dispatch loops poll this.
[[nodiscard]] bool interrupted();

/// Conventional exit code for the received signal: 128 + signo
/// (130 for SIGINT), or 0 if no signal arrived.
[[nodiscard]] int interruptExitCode();

/// Worker-pid registry. The subprocess executor registers each forked
/// child so the signal handler can reap-proof the tree; slots are plain
/// atomics, safe to scan from the handler.
void registerWorkerPid(pid_t pid);
void unregisterWorkerPid(pid_t pid);

/// Sends `sig` to every registered worker (also called by the handler
/// with SIGKILL). Safe from signal context.
void killRegisteredWorkers(int sig);

}  // namespace mpcp::exec
