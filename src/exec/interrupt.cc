#include "exec/interrupt.h"

#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <csignal>

namespace mpcp::exec {

namespace {

// Everything the handler touches is lock-free and async-signal-safe:
// sig_atomic_t flags plus an atomic pid table scanned with kill(2).
volatile std::sig_atomic_t g_signal = 0;
std::atomic<int> g_signal_count{0};

constexpr std::size_t kMaxWorkers = 512;
std::array<std::atomic<pid_t>, kMaxWorkers> g_workers{};

void handleSignal(int sig) {
  g_signal = sig;
  killRegisteredWorkers(SIGKILL);
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    // Second Ctrl-C: the graceful path is stuck — bail out now.
    _exit(128 + sig);
  }
}

}  // namespace

void installInterruptHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = handleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads/polls
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  ignoreSigpipe();
}

void ignoreSigpipe() {
  struct sigaction sa = {};
  sa.sa_handler = SIG_IGN;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGPIPE, &sa, nullptr);
}

bool interrupted() { return g_signal != 0; }

int interruptExitCode() {
  const int sig = g_signal;
  return sig == 0 ? 0 : 128 + sig;
}

void registerWorkerPid(pid_t pid) {
  for (auto& slot : g_workers) {
    pid_t expected = 0;
    if (slot.compare_exchange_strong(expected, pid,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
  // Table full (>kMaxWorkers concurrent children — far beyond any pool
  // size here): the child simply is not covered by the kill sweep.
}

void unregisterWorkerPid(pid_t pid) {
  for (auto& slot : g_workers) {
    pid_t expected = pid;
    if (slot.compare_exchange_strong(expected, 0,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

void killRegisteredWorkers(int sig) {
  for (auto& slot : g_workers) {
    const pid_t pid = slot.load(std::memory_order_acquire);
    if (pid > 0) kill(pid, sig);
  }
}

}  // namespace mpcp::exec
