#include "exec/journal.h"

#include <fcntl.h>
#include <stdio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace mpcp::exec {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string crcHex(std::uint32_t crc) {
  static const char* kHex = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[crc & 0xf];
    crc >>= 4;
  }
  return out;
}

bool parseCrcHex(const std::string& text, std::uint32_t& out) {
  if (text.size() != 8) return false;
  std::uint32_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

bool kindFromString(const std::string& word, RecordKind& out) {
  if (word == "meta") {
    out = RecordKind::kMeta;
  } else if (word == "start") {
    out = RecordKind::kStart;
  } else if (word == "done") {
    out = RecordKind::kDone;
  } else if (word == "fail") {
    out = RecordKind::kFail;
  } else {
    return false;
  }
  return true;
}

/// Parses one complete line (no trailing newline). False = corrupt.
bool parseLine(const std::string& line, JournalRecord& out) {
  // "<crc8> <kind> <key>[ <payload>]" — split on the first three spaces.
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  std::uint32_t recorded = 0;
  if (!parseCrcHex(line.substr(0, sp1), recorded)) return false;
  const std::string body = line.substr(sp1 + 1);
  if (crc32(body) != recorded) return false;
  const std::size_t sp2 = body.find(' ');
  if (sp2 == std::string::npos) return false;
  if (!kindFromString(body.substr(0, sp2), out.kind)) return false;
  const std::size_t sp3 = body.find(' ', sp2 + 1);
  if (sp3 == std::string::npos) {
    out.key = body.substr(sp2 + 1);
    out.payload.clear();
  } else {
    out.key = body.substr(sp2 + 1, sp3 - sp2 - 1);
    out.payload = unescapeLine(body.substr(sp3 + 1));
  }
  return !out.key.empty();
}

}  // namespace

std::uint32_t crc32(const std::string& bytes) {
  static const std::array<std::uint32_t, 256> kTable = makeCrcTable();
  std::uint32_t c = 0xffffffffu;
  for (const char ch : bytes) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string escapeLine(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescapeLine(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out += escaped[i];
      continue;
    }
    const char next = escaped[++i];
    switch (next) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += next;  // unknown escape: keep the raw character
    }
  }
  return out;
}

const char* toString(RecordKind kind) {
  switch (kind) {
    case RecordKind::kMeta: return "meta";
    case RecordKind::kStart: return "start";
    case RecordKind::kDone: return "done";
    case RecordKind::kFail: return "fail";
  }
  return "?";
}

std::map<std::string, std::string> JournalLoad::completed() const {
  std::map<std::string, std::string> out;
  for (const JournalRecord& r : records) {
    if (r.kind == RecordKind::kDone) {
      out[r.key] = r.payload;
    } else if (r.kind == RecordKind::kFail || r.kind == RecordKind::kStart) {
      // A later fail/start supersedes an earlier done only for fail (the
      // runner never re-dispatches a done key, so a start after done is
      // stale noise from a crashed resume — keep the done payload).
      if (r.kind == RecordKind::kFail) out.erase(r.key);
    }
  }
  return out;
}

JournalLoad parseJournal(const std::string& text) {
  JournalLoad load;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // No terminating newline: the final record was torn mid-write.
      load.torn_tail = true;
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    JournalRecord rec;
    if (!parseLine(line, rec)) {
      ++load.corrupt_lines;
      continue;
    }
    if (rec.kind == RecordKind::kMeta && load.meta.empty()) {
      load.meta = rec.payload;
    }
    load.records.push_back(std::move(rec));
  }
  return load;
}

JournalLoad loadJournalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // missing file == empty journal
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseJournal(buf.str());
}

JournalIo::~JournalIo() = default;

int JournalIo::open(const std::string& path, int flags, int mode) {
  return ::open(path.c_str(), flags, mode);
}

long JournalIo::write(int fd, const void* data, std::size_t n) {
  return static_cast<long>(::write(fd, data, n));
}

int JournalIo::fsync(int fd) { return ::fsync(fd); }

int JournalIo::rename(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str());
}

int JournalIo::close(int fd) { return ::close(fd); }

JournalIo& JournalIo::real() {
  static JournalIo io;
  return io;
}

int FaultyJournalIo::open(const std::string& path, int flags, int mode) {
  const int fd = JournalIo::open(path, flags, mode);
  if (fd >= 0 &&
      (path_filter.empty() || path.find(path_filter) != std::string::npos)) {
    faulted_fds_.push_back(fd);
  }
  return fd;
}

bool FaultyJournalIo::faulted(int fd) const {
  return std::find(faulted_fds_.begin(), faulted_fds_.end(), fd) !=
         faulted_fds_.end();
}

long FaultyJournalIo::write(int fd, const void* data, std::size_t n) {
  if (!faulted(fd) || budget_bytes < 0) {
    const long w = JournalIo::write(fd, data, n);
    if (w > 0) bytes_written += w;
    return w;
  }
  const std::int64_t room = budget_bytes - bytes_written;
  if (room <= 0 ||
      (!short_writes && static_cast<std::int64_t>(n) > room)) {
    ++write_errors;
    errno = ENOSPC;
    return -1;
  }
  const std::size_t allowed =
      std::min(n, static_cast<std::size_t>(room));
  const long w = JournalIo::write(fd, data, allowed);
  if (w > 0) bytes_written += w;
  return w;
}

int FaultyJournalIo::fsync(int fd) {
  if (faulted(fd) && fsync_failures_after >= 0 &&
      fsync_calls_++ >= fsync_failures_after) {
    ++fsync_errors;
    errno = EIO;
    return -1;
  }
  return JournalIo::fsync(fd);
}

int FaultyJournalIo::rename(const std::string& from, const std::string& to) {
  if (fail_renames &&
      (path_filter.empty() || to.find(path_filter) != std::string::npos)) {
    ++rename_errors;
    errno = EIO;
    return -1;
  }
  return JournalIo::rename(from, to);
}

int FaultyJournalIo::close(int fd) {
  faulted_fds_.erase(
      std::remove(faulted_fds_.begin(), faulted_fds_.end(), fd),
      faulted_fds_.end());
  return JournalIo::close(fd);
}

void writeFileAtomic(const std::string& path, const std::string& bytes,
                     JournalIo* io) {
  if (io == nullptr) io = &JournalIo::real();
  const std::string tmp = path + ".tmp";
  const int fd = io->open(tmp, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw ConfigError("cannot open '" + tmp + "': " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const long n = io->write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      io->close(fd);
      throw ConfigError("write to '" + tmp + "' failed: " + detail);
    }
    off += static_cast<std::size_t>(n);
  }
  if (io->fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    const std::string detail = std::strerror(errno);
    io->close(fd);
    throw ConfigError("fsync on '" + tmp + "' failed: " + detail);
  }
  io->close(fd);
  if (io->rename(tmp, path) != 0) {
    throw ConfigError("rename '" + tmp + "' -> '" + path +
                      "' failed: " + std::strerror(errno));
  }
}

CampaignJournal::CampaignJournal(const std::string& path, JournalIo* io)
    : path_(path), io_(io != nullptr ? io : &JournalIo::real()) {
  fd_ = io_->open(path, O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw ConfigError("cannot open journal '" + path +
                      "' for append: " + std::strerror(errno));
  }
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) io_->close(fd_);
}

std::string formatRecord(RecordKind kind, const std::string& key,
                         const std::string& payload) {
  MPCP_CHECK(key.find_first_of(" \n\r") == std::string::npos,
             "journal key must be whitespace-free: '" << key << "'");
  std::string body = std::string(toString(kind)) + " " + key;
  const std::string escaped = escapeLine(payload);
  if (!escaped.empty()) body += " " + escaped;
  return crcHex(crc32(body)) + " " + body + "\n";
}

void CampaignJournal::append(RecordKind kind, const std::string& key,
                             const std::string& payload) {
  const std::string line = formatRecord(kind, key, payload);

  std::lock_guard<std::mutex> lock(mu_);
  std::size_t off = 0;
  while (off < line.size()) {
    const long n = io_->write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConfigError("journal write to '" + path_ +
                        "' failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (io_->fsync(fd_) != 0 && errno != EINVAL && errno != EROFS) {
    throw ConfigError("journal fsync on '" + path_ +
                      "' failed: " + std::strerror(errno));
  }
}

}  // namespace mpcp::exec
