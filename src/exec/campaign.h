// runCampaign — the journaled, crash-isolated sweep loop (ISSUE 5).
//
// Layers the exec/ pieces under exp::SweepRunner:
//
//   SweepRunner (thread fan-out, seed-derived RNG streams)
//     └─ runCampaign: per-seed canonical key "s<derived-seed>"
//          ├─ CampaignJournal  start/done/fail records, fsync'd
//          ├─ RetryingExecutor capped backoff, deterministic jitter
//          └─ RunExecutor      in-thread, or SubprocessExecutor for
//                              crash isolation / wall+RSS ceilings
//
// Resume contract: payloads recorded as `done` are reused *verbatim* —
// the run body is not re-executed — so any aggregate assembled from
// CampaignOutcome::payloads in seed order is byte-identical to an
// uninterrupted sweep. A `start` without `done`/`fail` (driver died
// mid-run) and a `fail` (possibly environmental) are both re-run.
// Resuming under a different configuration is caught by comparing the
// caller's fingerprint against the journal's `meta` record.
//
// Interruption contract: once exec::interrupted() is raised, no new run
// starts; runs in flight finish (or their workers are SIGKILLed by the
// handler) and the journal stays valid for --resume.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/retry.h"
#include "exp/run_executor.h"
#include "exp/sweep_runner.h"
#include "obs/counters.h"

namespace mpcp::exec {

struct CampaignOptions {
  /// Journal file; empty = no journal (plain guarded sweep).
  std::string journal_path;
  /// Reuse an existing journal. Without it, a non-empty journal file is
  /// a ConfigError (never silently double-append two campaigns).
  bool resume = false;
  /// Caller's config fingerprint, stored as the journal `meta` record
  /// and compared on resume.
  std::string config_fingerprint;
  /// Execution strategy; nullptr = in-thread on the pool workers.
  exp::RunExecutor* executor = nullptr;
  RetryPolicy retry;
};

struct CampaignOutcome {
  /// payloads[s] is empty exactly when seed s failed permanently, was
  /// never started (interrupt), or is still pending.
  std::vector<std::optional<std::string>> payloads;
  std::vector<exp::RunFailure> failures;  ///< sorted by seed
  obs::ExecutorCounters exec;
  bool interrupted = false;

  [[nodiscard]] bool complete() const {
    for (const auto& p : payloads) {
      if (!p.has_value()) return false;
    }
    return true;
  }
};

/// Canonical run key for seed index `s` under `seed_base`.
[[nodiscard]] std::string runKey(std::uint64_t seed_base, int s);

/// Runs fn(s, rng) for every seed in [0, seeds) through the executor,
/// journaling and resuming as configured. fn must serialize its row to a
/// string (see exp/run_executor.h for why); with a subprocess executor it
/// runs in the forked child.
[[nodiscard]] CampaignOutcome runCampaign(
    exp::SweepRunner& runner, int seeds, std::uint64_t seed_base,
    const CampaignOptions& options,
    const std::function<std::string(int, Rng&)>& fn);

}  // namespace mpcp::exec
