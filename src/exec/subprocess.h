// SubprocessExecutor — crash-isolated execution of one run body per
// forked worker process.
//
// execute() forks; the child runs the body and writes the payload back
// over a pipe as one length-prefixed frame
//
//   [status: 1 byte (0 = ok, 1 = body threw)] [len: 4 bytes LE] [bytes]
//
// then _exit()s (never returning into the driver's stack, atexit
// handlers, or stdio buffers). The parent polls the result and stderr
// pipes, reaps the child with waitpid, and decodes the status:
//
//   * frame status 0        -> ExecResult{ok, payload}
//   * frame status 1        -> the body threw; error = exception text
//     relayed through the frame (a CHECK failure in the engine surfaces
//     here with its full message)
//   * WIFSIGNALED           -> crash (segfault, abort, OOM-kill…):
//     error names the signal, ExecResult::signal carries it
//   * nonzero exit, no frame-> error names the exit code
//   * wall limit exceeded   -> child is SIGKILLed; timed_out = true
//
// In every case the driver stays alive and keeps the last
// `stderr_tail_bytes` of the worker's stderr for forensics.
//
// Concurrency: the executor is stateless per call; SweepRunner pool
// threads fork independently, so the subprocess pool is bounded by the
// pool's thread count. Forked pids are registered with exec/interrupt.h
// while alive, so a Ctrl-C on the driver SIGKILLs the whole crew instead
// of leaking orphans. Because sibling children can inherit each other's
// pipe write-ends (forks race), the parent never relies on pipe EOF: it
// reaps via waitpid and then drains whatever is buffered.
//
// The memory ceiling uses RLIMIT_DATA (brk + private anonymous mmaps,
// i.e. the heap) rather than RLIMIT_AS, so sanitizer shadow mappings
// don't trip it; an allocation beyond the limit fails inside the child as
// std::bad_alloc (relayed as a status-1 frame) or kills it outright.
#pragma once

#include <cstdint>

#include "exp/run_executor.h"

namespace mpcp::exec {

struct SubprocessLimits {
  /// Wall-clock ceiling per run in seconds; 0 disables it.
  double wall_limit_s = 0;
  /// Heap ceiling (RLIMIT_DATA) in MiB; 0 disables it.
  std::uint64_t rss_limit_mb = 0;
  /// How much worker stderr to keep for crash forensics.
  std::size_t stderr_tail_bytes = 4096;
};

class SubprocessExecutor final : public exp::RunExecutor {
 public:
  explicit SubprocessExecutor(SubprocessLimits limits = {})
      : limits_(limits) {}

  [[nodiscard]] exp::ExecResult execute(
      const std::function<std::string()>& body) override;

 private:
  SubprocessLimits limits_;
};

}  // namespace mpcp::exec
