#include "exec/retry.h"

#include <algorithm>
#include <thread>

#include "common/rng.h"
#include "exec/interrupt.h"

namespace mpcp::exec {

std::chrono::milliseconds retryDelay(const RetryPolicy& policy, int attempt) {
  if (policy.base_delay.count() <= 0) return std::chrono::milliseconds{0};
  const int shift = std::clamp(attempt - 1, 0, 20);
  const auto uncapped = policy.base_delay * (std::int64_t{1} << shift);
  const auto capped = std::min(uncapped, policy.max_delay);
  Rng rng(policy.jitter_seed + static_cast<std::uint64_t>(attempt));
  const double u = rng.uniformReal(0.5, 1.0);
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(capped.count()) * u));
}

exp::ExecResult RetryingExecutor::execute(
    const std::function<std::string()>& body) {
  const int attempts = std::max(1, policy_.max_attempts);
  exp::ExecResult last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = inner_.execute(body);
    last.attempts = attempt;
    if (last.ok) return last;
    if (attempt == attempts || interrupted()) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    const auto delay = retryDelay(policy_, attempt);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  return last;
}

}  // namespace mpcp::exec
