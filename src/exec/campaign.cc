#include "exec/campaign.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/strf.h"
#include "exec/interrupt.h"
#include "exec/journal.h"

namespace mpcp::exec {

std::string runKey(std::uint64_t seed_base, int s) {
  return strf("s", seed_base + static_cast<std::uint64_t>(s));
}

CampaignOutcome runCampaign(
    exp::SweepRunner& runner, int seeds, std::uint64_t seed_base,
    const CampaignOptions& options,
    const std::function<std::string(int, Rng&)>& fn) {
  const auto n = static_cast<std::size_t>(std::max(0, seeds));
  CampaignOutcome out;
  out.payloads.resize(n);

  // Journal setup: load + validate before dispatching anything.
  std::unique_ptr<CampaignJournal> journal;
  std::map<std::string, std::string> completed;
  if (!options.journal_path.empty()) {
    const JournalLoad load = loadJournalFile(options.journal_path);
    if (!load.empty() && !options.resume) {
      throw ConfigError("journal '" + options.journal_path +
                        "' already has records; pass --resume to continue "
                        "it or remove the file to start over");
    }
    if (options.resume && !load.meta.empty() &&
        !options.config_fingerprint.empty() &&
        load.meta != options.config_fingerprint) {
      throw ConfigError(
          "journal '" + options.journal_path +
          "' was recorded under a different configuration\n  journal: " +
          load.meta + "\n  current: " + options.config_fingerprint);
    }
    out.exec.journal_corrupt_lines = load.corrupt_lines;
    completed = load.completed();
    journal = std::make_unique<CampaignJournal>(options.journal_path);
    if (load.meta.empty() && !options.config_fingerprint.empty()) {
      journal->append(RecordKind::kMeta, "config",
                      options.config_fingerprint);
    }
  }

  // Satisfy already-completed seeds from the journal; collect the rest.
  std::vector<int> pending;
  pending.reserve(n);
  for (int s = 0; s < seeds; ++s) {
    const auto it = completed.find(runKey(seed_base, s));
    if (it != completed.end()) {
      out.payloads[static_cast<std::size_t>(s)] = it->second;
      ++out.exec.resumed_skips;
    } else {
      pending.push_back(s);
    }
  }

  exp::InThreadExecutor in_thread;
  exp::RunExecutor& base =
      options.executor != nullptr ? *options.executor : in_thread;
  RetryingExecutor retrying(base, options.retry);

  std::mutex fold_mu;  // guards failures + counters (journal locks itself)
  std::atomic<bool> saw_interrupt{false};

  runner.forEach(static_cast<std::int64_t>(pending.size()),
                 [&](std::int64_t i) {
    const int s = pending[static_cast<std::size_t>(i)];
    if (interrupted()) {
      saw_interrupt.store(true, std::memory_order_relaxed);
      return;  // no new dispatches; the key stays pending for --resume
    }
    const std::string key = runKey(seed_base, s);
    if (journal) journal->append(RecordKind::kStart, key, "");
    {
      std::lock_guard<std::mutex> lock(fold_mu);
      ++out.exec.dispatched;
    }

    const exp::ExecResult r = retrying.execute([&, s] {
      Rng rng = exp::SweepRunner::rngFor(seed_base, s);
      return fn(s, rng);
    });

    if (r.ok) {
      if (journal) journal->append(RecordKind::kDone, key, r.payload);
      out.payloads[static_cast<std::size_t>(s)] = r.payload;
      std::lock_guard<std::mutex> lock(fold_mu);
      ++out.exec.completed;
      return;
    }
    if (journal) journal->append(RecordKind::kFail, key, r.error);
    exp::RunFailure failure;
    failure.seed = s;
    failure.error = r.error;
    failure.timed_out = r.timed_out;
    failure.signal = r.signal;
    failure.exit_code = r.exit_code;
    failure.stderr_tail = r.stderr_tail;
    failure.attempts = r.attempts;
    std::lock_guard<std::mutex> lock(fold_mu);
    ++out.exec.failed;
    if (r.signal != 0 && !r.timed_out) ++out.exec.crashes;
    if (r.timed_out) ++out.exec.timeouts;
    out.failures.push_back(std::move(failure));
  });

  out.exec.retries = retrying.retries();
  out.interrupted = saw_interrupt.load() || interrupted();
  std::sort(out.failures.begin(), out.failures.end(),
            [](const exp::RunFailure& a, const exp::RunFailure& b) {
              return a.seed < b.seed;
            });
  return out;
}

}  // namespace mpcp::exec
