#include "obs/counters.h"

#include <algorithm>
#include <sstream>

namespace mpcp::obs {

int BlockingHistogram::bucketOf(Duration d) {
  if (d <= 0) return 0;
  int b = 1;
  while (b < kBuckets - 1 && d >= (Duration{1} << b)) ++b;
  return b;
}

std::pair<Duration, Duration> BlockingHistogram::bucketRange(int b) {
  if (b <= 0) return {0, 1};
  const Duration lo = Duration{1} << (b - 1);
  if (b >= kBuckets - 1) return {lo, -1};
  return {lo, Duration{1} << b};
}

void BlockingHistogram::record(Duration d) {
  buckets[static_cast<std::size_t>(bucketOf(d))]++;
  samples++;
  max_blocked = std::max(max_blocked, d);
  total_blocked += static_cast<std::uint64_t>(d);
}

void BlockingHistogram::merge(const BlockingHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
  }
  samples += other.samples;
  max_blocked = std::max(max_blocked, other.max_blocked);
  total_blocked += other.total_blocked;
}

void ResourceCounters::merge(const ResourceCounters& other) {
  acquisitions += other.acquisitions;
  contended_waits += other.contended_waits;
  handoffs += other.handoffs;
}

void Counters::init(std::size_t n_resources, std::size_t n_processors,
                    std::size_t n_tasks) {
  resources.assign(n_resources, {});
  ready_hwm.assign(n_processors, 0);
  task_blocking.assign(n_tasks, {});
  jobs_released = jobs_finished = deadline_misses = 0;
  preemptions = gcs_preemptions = migrations = inheritance_updates = 0;
  faults_injected = faults_contained = forced_releases = budget_kills = 0;
  jobs_aborted = releases_skipped = misses_while_degraded = 0;
}

std::uint64_t Counters::totalAcquisitions() const {
  std::uint64_t n = 0;
  for (const ResourceCounters& r : resources) n += r.acquisitions;
  return n;
}

std::uint64_t Counters::totalContendedWaits() const {
  std::uint64_t n = 0;
  for (const ResourceCounters& r : resources) n += r.contended_waits;
  return n;
}

std::uint64_t Counters::totalHandoffs() const {
  std::uint64_t n = 0;
  for (const ResourceCounters& r : resources) n += r.handoffs;
  return n;
}

void Counters::merge(const Counters& other) {
  if (other.resources.size() > resources.size()) {
    resources.resize(other.resources.size());
  }
  for (std::size_t i = 0; i < other.resources.size(); ++i) {
    resources[i].merge(other.resources[i]);
  }
  if (other.ready_hwm.size() > ready_hwm.size()) {
    ready_hwm.resize(other.ready_hwm.size(), 0);
  }
  for (std::size_t i = 0; i < other.ready_hwm.size(); ++i) {
    ready_hwm[i] = std::max(ready_hwm[i], other.ready_hwm[i]);
  }
  if (other.task_blocking.size() > task_blocking.size()) {
    task_blocking.resize(other.task_blocking.size());
  }
  for (std::size_t i = 0; i < other.task_blocking.size(); ++i) {
    task_blocking[i].merge(other.task_blocking[i]);
  }
  jobs_released += other.jobs_released;
  jobs_finished += other.jobs_finished;
  deadline_misses += other.deadline_misses;
  preemptions += other.preemptions;
  gcs_preemptions += other.gcs_preemptions;
  migrations += other.migrations;
  inheritance_updates += other.inheritance_updates;
  faults_injected += other.faults_injected;
  faults_contained += other.faults_contained;
  forced_releases += other.forced_releases;
  budget_kills += other.budget_kills;
  jobs_aborted += other.jobs_aborted;
  releases_skipped += other.releases_skipped;
  misses_while_degraded += other.misses_while_degraded;
}

void ExecutorCounters::merge(const ExecutorCounters& other) {
  dispatched += other.dispatched;
  completed += other.completed;
  retries += other.retries;
  crashes += other.crashes;
  timeouts += other.timeouts;
  failed += other.failed;
  resumed_skips += other.resumed_skips;
  journal_corrupt_lines += other.journal_corrupt_lines;
  duplicate_findings += other.duplicate_findings;
  journal_write_errors += other.journal_write_errors;
}

std::string renderExecutorCounters(const ExecutorCounters& c) {
  std::ostringstream os;
  os << "executor: dispatched=" << c.dispatched
     << " completed=" << c.completed << " retries=" << c.retries
     << " crashes=" << c.crashes << " timeouts=" << c.timeouts
     << " failed=" << c.failed << " resumed-skips=" << c.resumed_skips
     << " journal-corrupt-lines=" << c.journal_corrupt_lines
     << " duplicate-findings=" << c.duplicate_findings
     << " journal-write-errors=" << c.journal_write_errors;
  return os.str();
}

void FleetCounters::merge(const FleetCounters& other) {
  workers_connected += other.workers_connected;
  worker_reconnects += other.worker_reconnects;
  workers_reaped += other.workers_reaped;
  leases_granted += other.leases_granted;
  leases_stolen += other.leases_stolen;
  leases_expired += other.leases_expired;
  frames_rejected += other.frames_rejected;
  handshake_rejects += other.handshake_rejects;
  duplicate_results += other.duplicate_results;
  degraded_local_runs += other.degraded_local_runs;
  chaos_dropped += other.chaos_dropped;
  chaos_delayed += other.chaos_delayed;
  chaos_duplicated += other.chaos_duplicated;
  chaos_reordered += other.chaos_reordered;
  chaos_truncated += other.chaos_truncated;
  no_progress_reaps += other.no_progress_reaps;
  checkpoints_written += other.checkpoints_written;
}

std::string renderFleetCounters(const FleetCounters& c) {
  std::ostringstream os;
  os << "fleet: workers=" << c.workers_connected
     << " reconnects=" << c.worker_reconnects
     << " reaped=" << c.workers_reaped
     << " leases-granted=" << c.leases_granted
     << " leases-stolen=" << c.leases_stolen
     << " leases-expired=" << c.leases_expired
     << " frames-rejected=" << c.frames_rejected
     << " handshake-rejects=" << c.handshake_rejects
     << " duplicate-results=" << c.duplicate_results
     << " degraded-local-runs=" << c.degraded_local_runs
     << " no-progress-reaps=" << c.no_progress_reaps
     << " checkpoints=" << c.checkpoints_written;
  const std::uint64_t chaos_total = c.chaos_dropped + c.chaos_delayed +
                                    c.chaos_duplicated + c.chaos_reordered +
                                    c.chaos_truncated;
  if (chaos_total > 0) {
    os << " chaos-dropped=" << c.chaos_dropped
       << " chaos-delayed=" << c.chaos_delayed
       << " chaos-duplicated=" << c.chaos_duplicated
       << " chaos-reordered=" << c.chaos_reordered
       << " chaos-truncated=" << c.chaos_truncated;
  }
  return os.str();
}

std::string renderHistogram(const BlockingHistogram& h) {
  std::ostringstream os;
  os << "samples=" << h.samples << " max=" << h.max_blocked
     << " total=" << h.total_blocked;
  for (int b = 0; b < BlockingHistogram::kBuckets; ++b) {
    const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    const auto [lo, hi] = BlockingHistogram::bucketRange(b);
    os << "  [" << lo << ",";
    if (hi < 0) {
      os << "inf";
    } else {
      os << hi;
    }
    os << "):" << n;
  }
  return os.str();
}

std::string renderCounters(const Counters& c) {
  std::ostringstream os;
  os << "jobs: released=" << c.jobs_released
     << " finished=" << c.jobs_finished
     << " deadline-misses=" << c.deadline_misses << "\n";
  os << "scheduling: preemptions=" << c.preemptions
     << " gcs-preemptions=" << c.gcs_preemptions
     << " migrations=" << c.migrations
     << " inheritance-updates=" << c.inheritance_updates << "\n";
  os << "locks: acquisitions=" << c.totalAcquisitions()
     << " contended-waits=" << c.totalContendedWaits()
     << " handoffs=" << c.totalHandoffs() << "\n";
  os << "faults: injected=" << c.faults_injected
     << " contained=" << c.faults_contained
     << " forced-releases=" << c.forced_releases
     << " budget-kills=" << c.budget_kills
     << " jobs-aborted=" << c.jobs_aborted
     << " releases-skipped=" << c.releases_skipped
     << " misses-while-degraded=" << c.misses_while_degraded << "\n";
  os << "ready-queue high-water marks:";
  for (std::size_t p = 0; p < c.ready_hwm.size(); ++p) {
    os << " P" << p << "=" << c.ready_hwm[p];
  }
  os << "\n";
  os << "per-resource:\n";
  for (std::size_t r = 0; r < c.resources.size(); ++r) {
    const ResourceCounters& rc = c.resources[r];
    os << "  S" << r << ": acq=" << rc.acquisitions
       << " contended=" << rc.contended_waits
       << " handoffs=" << rc.handoffs << "\n";
  }
  os << "blocking-time histograms (ticks, log2 buckets):\n";
  for (std::size_t t = 0; t < c.task_blocking.size(); ++t) {
    os << "  tau" << t << ": " << renderHistogram(c.task_blocking[t]) << "\n";
  }
  return os.str();
}

}  // namespace mpcp::obs
