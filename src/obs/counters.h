// Runtime observability counters for the simulation engine.
//
// A Counters registry travels inside every SimResult: plain uint64_t
// bumps on paths the engine already takes (no atomics — each run is
// single-threaded internally; cross-run aggregation merges finished
// registries). Counting never perturbs scheduling: the engine-vs-
// reference bit-parity oracle in src/fuzz/ is the regression gate.
//
// What is counted, and where the bump lives:
//   * per-resource lock acquisitions        — Engine grant path / handoff
//   * per-resource contended waits          — Engine::parkWaiting episodes
//     (a PCP wake-retry that re-parks counts again: each episode is one
//     observable wait)
//   * per-resource handoffs                 — the protocols' V()-to-waiter
//     grant sites (MPCP rule 7, DPCP, hybrid, PIP, none)
//   * preemptions / gcs preemptions         — Engine::settle dispatch
//     changes where the loser stays ready; "gcs" when the winner runs at
//     an elevated (global-band) priority
//   * agent migrations                      — Engine::migrate (DPCP/hybrid
//     critical sections moving to and from a synchronization processor)
//   * inheritance updates                   — PIP / local-PCP kInherit
//     emission sites
//   * ready-queue depth high-water marks    — per processor, sampled on
//     every push (release / wake / migrate)
//   * per-task blocking-time histograms     — log2-spaced buckets over
//     each finished job's measured priority-inversion time
//
// Merging is associative and commutative (sums, or max for high-water
// marks), so any fold order yields the same aggregate; SweepRunner folds
// rows in seed order anyway, making aggregates byte-identical at any
// MPCP_THREADS.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mpcp::obs {

/// Histogram of per-job blocking durations with fixed log2-spaced
/// buckets: bucket 0 holds exactly 0; bucket k (1 <= k < kBuckets-1)
/// holds [2^(k-1), 2^k); the last bucket is open-ended.
struct BlockingHistogram {
  static constexpr int kBuckets = 20;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t samples = 0;
  Duration max_blocked = 0;
  std::uint64_t total_blocked = 0;

  [[nodiscard]] static int bucketOf(Duration d);
  /// [lo, hi) of bucket b; hi = -1 for the open-ended last bucket.
  [[nodiscard]] static std::pair<Duration, Duration> bucketRange(int b);

  void record(Duration d);
  void merge(const BlockingHistogram& other);
};

/// Per-semaphore lock-path counters.
struct ResourceCounters {
  std::uint64_t acquisitions = 0;     ///< every successful P(), incl. handoff
  std::uint64_t contended_waits = 0;  ///< park episodes behind this semaphore
  std::uint64_t handoffs = 0;         ///< direct V()-to-head-waiter grants

  void merge(const ResourceCounters& other);
};

/// The registry. Sized once per run (init), bumped inline, merged across
/// runs for aggregate reports.
struct Counters {
  // Indexed by ResourceId / ProcessorId / TaskId value.
  std::vector<ResourceCounters> resources;
  std::vector<std::uint64_t> ready_hwm;       ///< merge takes the max
  std::vector<BlockingHistogram> task_blocking;

  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_finished = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t gcs_preemptions = 0;  ///< preemptor ran in the global band
  std::uint64_t migrations = 0;       ///< DPCP/hybrid agent moves (each hop)
  std::uint64_t inheritance_updates = 0;

  // Fault-injection / containment path (src/fault). Zero in any run
  // without a FaultPlan or containment policy.
  std::uint64_t faults_injected = 0;   ///< plan specs that took effect
  std::uint64_t faults_contained = 0;  ///< containment actions, total
  std::uint64_t forced_releases = 0;   ///< watchdog semaphore revocations
  std::uint64_t budget_kills = 0;      ///< gcs budget-enforce aborts
  std::uint64_t jobs_aborted = 0;      ///< job-abort retirements
  std::uint64_t releases_skipped = 0;  ///< skip-next-release suppressions
  std::uint64_t misses_while_degraded = 0;  ///< misses after any injection

  Counters() = default;
  Counters(std::size_t n_resources, std::size_t n_processors,
           std::size_t n_tasks) {
    init(n_resources, n_processors, n_tasks);
  }

  void init(std::size_t n_resources, std::size_t n_processors,
            std::size_t n_tasks);

  [[nodiscard]] ResourceCounters& res(ResourceId r) {
    return resources[static_cast<std::size_t>(r.value())];
  }
  [[nodiscard]] const ResourceCounters& res(ResourceId r) const {
    return resources[static_cast<std::size_t>(r.value())];
  }

  /// Updates the per-processor ready-queue high-water mark.
  void noteReadyDepth(ProcessorId p, std::size_t depth) {
    auto& hwm = ready_hwm[static_cast<std::size_t>(p.value())];
    if (depth > hwm) hwm = depth;
  }

  /// Folds one finished job's blocking time into its task's histogram.
  void recordBlocking(TaskId t, Duration blocked) {
    task_blocking[static_cast<std::size_t>(t.value())].record(blocked);
  }

  [[nodiscard]] std::uint64_t totalAcquisitions() const;
  [[nodiscard]] std::uint64_t totalContendedWaits() const;
  [[nodiscard]] std::uint64_t totalHandoffs() const;

  /// Folds `other` in. Dimensions may differ (e.g. sweeps over generated
  /// workloads); vectors grow to the larger size. Sums everywhere except
  /// ready_hwm (max), so merge order never changes the aggregate.
  void merge(const Counters& other);
};

/// Driver-side run-execution counters (filled by the src/exec campaign
/// runner and the fuzz campaign loop, never by a simulation): how many
/// runs were dispatched/completed, how many worker crashes and wall-limit
/// kills the subprocess executor absorbed, how many retries the
/// RetryPolicy spent, and how much work a --resume skipped. Sums
/// throughout, so merge order never matters.
struct ExecutorCounters {
  std::uint64_t dispatched = 0;     ///< runs handed to an executor
  std::uint64_t completed = 0;      ///< runs that produced a payload
  std::uint64_t retries = 0;        ///< extra attempts after a failure
  std::uint64_t crashes = 0;        ///< workers that died on a signal
  std::uint64_t timeouts = 0;       ///< wall-limit SIGKILLs
  std::uint64_t failed = 0;         ///< permanent RunFailure records
  std::uint64_t resumed_skips = 0;  ///< keys satisfied from the journal
  std::uint64_t journal_corrupt_lines = 0;  ///< CRC-bad lines skipped
  std::uint64_t duplicate_findings = 0;  ///< fuzz crash-signature dedupes
  std::uint64_t journal_write_errors = 0;  ///< appends the disk refused

  void merge(const ExecutorCounters& other);
};

/// One-line "executor: dispatched=.. completed=.. ..." summary.
[[nodiscard]] std::string renderExecutorCounters(const ExecutorCounters& c);

/// Coordinator-side fleet counters (filled by exec/fabric/, never by a
/// simulation): how many workers handshook/reconnected/were reaped, how
/// leases moved (granted, stolen by idle workers, expired back to the
/// pending queue when their worker died), and how much hostile input the
/// wire layer rejected. Sums throughout, so merge order never matters.
struct FleetCounters {
  std::uint64_t workers_connected = 0;   ///< successful handshakes
  std::uint64_t worker_reconnects = 0;   ///< handshakes by a returning name
  std::uint64_t workers_reaped = 0;      ///< heartbeat deadline expiries
  std::uint64_t leases_granted = 0;      ///< keys sent in LEASE frames
  std::uint64_t leases_stolen = 0;       ///< keys revoked from stragglers
  std::uint64_t leases_expired = 0;      ///< keys requeued from dead workers
  std::uint64_t frames_rejected = 0;     ///< malformed/torn/unexpected frames
  std::uint64_t handshake_rejects = 0;   ///< HELLOs refused (kind mismatch)
  std::uint64_t duplicate_results = 0;   ///< re-delivered keys discarded
  std::uint64_t degraded_local_runs = 0; ///< keys drained in-process

  // Chaos layer (ISSUE 10). Frame counts are what the coordinator's own
  // ChaosLinks injected; zero without --chaos.
  std::uint64_t chaos_dropped = 0;
  std::uint64_t chaos_delayed = 0;
  std::uint64_t chaos_duplicated = 0;
  std::uint64_t chaos_reordered = 0;
  std::uint64_t chaos_truncated = 0;
  std::uint64_t no_progress_reaps = 0;   ///< leased but silent past deadline
  std::uint64_t checkpoints_written = 0; ///< coordinator.ckpt snapshots

  void merge(const FleetCounters& other);
};

/// One-line "fleet: workers=.. ..." summary.
[[nodiscard]] std::string renderFleetCounters(const FleetCounters& c);

/// One-line histogram summary: "samples=.. max=.. total=..  [lo,hi):n ...".
[[nodiscard]] std::string renderHistogram(const BlockingHistogram& h);

/// Deterministic plain-text stats table keyed by raw ids (S0, P0, tau0).
/// For a table with workload names, see renderCountersReport() in
/// analysis/report.h.
[[nodiscard]] std::string renderCounters(const Counters& c);

}  // namespace mpcp::obs
