// Calendar queue ("timing wheel") for the engine's pending releases and
// timed suspensions.
//
// Both event sets were binary min-heaps: O(log n) per push/pop with
// pointer-hopping comparisons on the hot path, popped one entry at a
// time even when a whole batch shares the same tick. The wheel replaces
// them with a power-of-two ring of buckets over the near window
// [base, base + kSlots): scheduling is an O(1) list prepend, the next
// event time is a two-level bitmap scan, and a drain hands the caller
// *every* entry of the current tick in one call. Events beyond the
// window sit in a small overflow min-heap and migrate into the ring as
// the window advances past them — far-future events (periods larger
// than the window) cost two heap ops, exactly what they cost before.
//
// Determinism contract: entries within one bucket are kept in LIFO
// insertion order, which is deterministic but not the heap's pop order —
// callers that care (the engine does) must impose a total order on the
// drained batch (releases sort by task index, suspensions by sequence
// number) before processing. drainAt() may only be called with
// monotonically non-decreasing times, mirroring simulation time.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace mpcp {

template <typename Payload>
class TimingWheel {
 public:
  static constexpr std::uint32_t kSlotBits = 12;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;  // window ticks
  static constexpr std::uint32_t kMask = kSlots - 1;

  TimingWheel() {
    bucket_head_.assign(kSlots, -1);
    words_.assign(kSlots / 64, 0);
  }

  /// Preallocates node and overflow storage so steady-state schedule()
  /// calls perform no heap allocation.
  void reserve(std::size_t n) {
    nodes_.reserve(n);
    overflow_.reserve(n);
  }

  /// Inserts an entry at absolute time `t` (must be >= base(), i.e. not
  /// in the past).
  void schedule(Time t, Payload p) {
    MPCP_DCHECK(t >= base_, "TimingWheel: scheduling into the past");
    ++size_;
    if (t < earliest_) earliest_ = t;
    if (t - base_ >= static_cast<Time>(kSlots)) {
      overflow_.push_back({t, std::move(p)});
      std::push_heap(overflow_.begin(), overflow_.end(), After{});
      return;
    }
    ringInsert(t, std::move(p));
  }

  /// Earliest pending time across ring and overflow; kTimeInfinity when
  /// empty. O(1): cached, kept exact by schedule/drainAt/cancel (the
  /// engine polls this every loop iteration).
  [[nodiscard]] Time earliest() const { return earliest_; }

  /// Advances the window to `t` (>= every previous drain time), migrates
  /// overflow entries that fell inside it, and appends every entry
  /// scheduled at exactly `t` to `out` (cleared first) in LIFO insertion
  /// order. Entries at later times are untouched.
  void drainAt(Time t, std::vector<Payload>& out) {
    MPCP_DCHECK(t >= base_, "TimingWheel: drainAt moved backwards");
    base_ = t;
    while (!overflow_.empty() &&
           overflow_.front().t - base_ < static_cast<Time>(kSlots)) {
      std::pop_heap(overflow_.begin(), overflow_.end(), After{});
      OverflowEntry e = std::move(overflow_.back());
      overflow_.pop_back();
      ringInsert(e.t, std::move(e.payload));
    }
    out.clear();
    const std::uint32_t s = static_cast<std::uint32_t>(t) & kMask;
    std::int32_t n = bucket_head_[s];
    if (n < 0) return;
    while (n >= 0) {
      Node& node = nodes_[static_cast<std::size_t>(n)];
      MPCP_DCHECK(node.t == t, "TimingWheel: bucket/time mismatch");
      out.push_back(std::move(node.payload));
      const std::int32_t next = node.next;
      node.next = free_head_;
      free_head_ = n;
      n = next;
      --size_;
    }
    bucket_head_[s] = -1;
    clearBit(s);
    recomputeEarliest();
  }

  /// Removes the first entry at time `t` whose payload satisfies `match`;
  /// returns false if none. (The engine invalidates lazily instead, but
  /// explicit cancellation keeps the structure honest and testable.)
  template <typename Pred>
  bool cancel(Time t, Pred match) {
    if (t >= base_ && t - base_ < static_cast<Time>(kSlots)) {
      const std::uint32_t s = static_cast<std::uint32_t>(t) & kMask;
      std::int32_t* link = &bucket_head_[s];
      while (*link >= 0) {
        Node& node = nodes_[static_cast<std::size_t>(*link)];
        if (node.t == t && match(node.payload)) {
          const std::int32_t idx = *link;
          *link = node.next;
          node.next = free_head_;
          free_head_ = idx;
          --size_;
          if (bucket_head_[s] < 0) clearBit(s);
          recomputeEarliest();
          return true;
        }
        link = &node.next;
      }
      return false;
    }
    for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
      if (it->t == t && match(it->payload)) {
        overflow_.erase(it);
        std::make_heap(overflow_.begin(), overflow_.end(), After{});
        --size_;
        recomputeEarliest();
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] Time base() const { return base_; }

 private:
  struct Node {
    Time t = 0;
    Payload payload;
    std::int32_t next = -1;
  };
  struct OverflowEntry {
    Time t = 0;
    Payload payload;
  };
  struct After {  // min-heap on time; ties resolved by the caller's sort
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      return a.t > b.t;
    }
  };

  void ringInsert(Time t, Payload p) {
    std::int32_t idx;
    if (free_head_ >= 0) {
      idx = free_head_;
      free_head_ = nodes_[static_cast<std::size_t>(idx)].next;
      nodes_[static_cast<std::size_t>(idx)] = {t, std::move(p), -1};
    } else {
      idx = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back({t, std::move(p), -1});
    }
    const std::uint32_t s = static_cast<std::uint32_t>(t) & kMask;
    nodes_[static_cast<std::size_t>(idx)].next = bucket_head_[s];
    bucket_head_[s] = idx;
    words_[s >> 6] |= 1ull << (s & 63);
    summary_ |= 1ull << (s >> 6);
  }

  void clearBit(std::uint32_t s) {
    words_[s >> 6] &= ~(1ull << (s & 63));
    if (words_[s >> 6] == 0) summary_ &= ~(1ull << (s >> 6));
  }

  /// Refreshes the cached minimum after removals (one bitmap scan).
  void recomputeEarliest() {
    Time best = kTimeInfinity;
    if (size_ > overflow_.size()) best = ringEarliest();
    if (!overflow_.empty() && overflow_.front().t < best) {
      best = overflow_.front().t;
    }
    earliest_ = best;
  }

  /// First occupied slot in circular order from base_; the two-level
  /// bitmap makes this two word scans. Precondition: the ring is
  /// non-empty.
  [[nodiscard]] Time ringEarliest() const {
    const std::uint32_t sb = static_cast<std::uint32_t>(base_) & kMask;
    const std::uint32_t w0 = sb >> 6;
    std::uint32_t slot;
    const std::uint64_t head = words_[w0] & (~std::uint64_t{0} << (sb & 63));
    if (head != 0) {
      slot = (w0 << 6) +
             static_cast<std::uint32_t>(std::countr_zero(head));
    } else {
      // Rotate so word w0+1 lands at bit 0: the first set bit names the
      // next occupied word in circular order (w0 itself comes last and
      // then only its wrapped low bits can be set).
      const std::uint64_t rot =
          std::rotr(summary_, (static_cast<int>(w0) + 1) & 63);
      MPCP_DCHECK(rot != 0, "TimingWheel: bitmap empty but ring non-empty");
      const std::uint32_t wi =
          (w0 + 1 + static_cast<std::uint32_t>(std::countr_zero(rot))) & 63;
      slot = (wi << 6) +
             static_cast<std::uint32_t>(std::countr_zero(words_[wi]));
    }
    return base_ + static_cast<Time>((slot - sb) & kMask);
  }

  std::vector<Node> nodes_;
  std::int32_t free_head_ = -1;
  std::vector<std::int32_t> bucket_head_;   // per slot, -1 = empty
  std::vector<std::uint64_t> words_;        // occupancy bit per slot
  std::uint64_t summary_ = 0;               // occupancy bit per word
  std::vector<OverflowEntry> overflow_;     // min-heap, t >= base_+kSlots
  Time base_ = 0;
  std::size_t size_ = 0;
  Time earliest_ = kTimeInfinity;  // cached min; exact at all times
};

}  // namespace mpcp
