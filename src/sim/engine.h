// Discrete-event multiprocessor fixed-priority scheduling engine.
//
// The engine simulates the model of Section 3: statically-bound periodic
// tasks under priority-driven preemptive scheduling, with synchronization
// delegated to a pluggable SyncProtocol. Time is integral and the engine
// is fully deterministic: identical inputs produce identical traces.
//
// Structure of the main loop:
//   1. release jobs due now;
//   2. settle(): dispatch the highest effective-priority ready job on each
//      processor and consume all zero-duration ops (P/V, job completion),
//      repeating until no processor changes — P/V cascades (handoffs that
//      wake jobs on other processors, ceiling blocks, preemptions by
//      freshly-elevated gcs's) all resolve within the same instant;
//   3. advance the clock to the next event (release or compute-segment
//      completion), accruing per-job execution/blocking/preemption time.
//
// Hot-path data structures (ISSUE 1): job storage is a slot-indexed
// JobPool (O(1) release/retire/find, no per-job allocation); pending
// releases live in a min-heap keyed (time, task) instead of an O(tasks)
// scan; timed suspensions live in a lazily-invalidated min-heap; and each
// processor's ready set is a StablePriorityQueue ordered by (effective
// priority, global arrival seq), so dispatch peeks the front instead of
// scanning. Protocols that mutate a ready job's priority in place
// (inheritance, gcs elevation) MUST call notePriorityChanged() so the
// queue re-keys — wake()/migrate() re-key implicitly.
//
// Blocking attribution (used to validate the analysis): while a job J is
// not running, each tick counts as *preemption* if J's current processor
// is running a job with higher assigned (base) priority, and as *blocking*
// otherwise — i.e. whenever J waits on a semaphore, waits behind a
// lower-assigned-priority job boosted by inheritance or a gcs, or its
// processor idles while J is suspended remotely. This matches the paper's
// definition of blocking as "the duration a task waits additionally
// compared to the situation where no semaphores are present".
#pragma once

#include <atomic>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/stable_priority_queue.h"
#include "common/types.h"
#include "fault/plan.h"
#include "model/task_system.h"
#include "sim/job.h"
#include "sim/job_pool.h"
#include "sim/protocol.h"
#include "sim/result.h"

namespace mpcp {

struct SimConfig {
  /// Simulation end time; 0 = auto (max phase + 2 * hyperperiod, capped).
  Time horizon = 0;
  /// Cap applied to the auto horizon.
  Time horizon_cap = 1'000'000;
  /// Stop as soon as any deadline is missed (breakdown-utilization sweeps).
  bool stop_on_deadline_miss = false;
  /// Record the event trace and execution segments.
  bool record_trace = true;
  /// Safety valve: abort if more jobs than this are released.
  std::int64_t max_jobs = 2'000'000;
  /// Fault-injection plan (not owned; must outlive the engine). Null or
  /// empty = no injection, and every fault hook stays schedule-neutral.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Containment policies (all off by default).
  fault::ContainmentConfig containment;
  /// Cooperative cancellation (not owned): the run loop polls this flag
  /// and throws SimCancelled when it becomes true. Used by the sweep
  /// runner's wall-clock watchdog to stop runaway simulations.
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown by Engine::run() when SimConfig::cancel is raised mid-run.
class SimCancelled : public std::runtime_error {
 public:
  SimCancelled() : std::runtime_error("simulation cancelled") {}
};

class Engine {
 public:
  /// `protocol` must outlive the engine.
  Engine(const TaskSystem& system, SyncProtocol& protocol, SimConfig config);

  /// Runs the simulation to the horizon and returns the results.
  /// Single-shot: run() may only be called once.
  SimResult run();

  // ----- services available to protocols -----

  [[nodiscard]] const TaskSystem& system() const { return system_; }
  [[nodiscard]] Time now() const { return now_; }

  /// Parks the dispatched job as waiting on `r` (onLock kWaiting path).
  /// `blocker` (optional) is recorded in the trace.
  void parkWaiting(Job& j, ResourceId r, JobId blocker = {});

  /// Moves a waiting job back to ready on its `current` processor.
  void wake(Job& j);

  /// Moves a job to another processor (DPCP critical-section migration).
  void migrate(Job& j, ProcessorId target);

  /// Gives `j` a fresh FCFS arrival stamp (and re-keys its queue entry if
  /// ready). Agent dispatch to a sync processor uses this so equal-ceiling
  /// agents queue in *request* order — migrate() alone keeps the original
  /// stamp, which would let a never-blocked job's agent jump ahead of
  /// agents already granted and waiting for the sync CPU.
  void restampArrival(Job& j);

  /// Re-keys `j` in its processor's ready queue after the caller changed
  /// its inherited/elevated priority in place. No-op for non-ready jobs
  /// (they are keyed afresh on wake()). Protocols MUST call this after
  /// every in-place priority change of a job they did not just park/wake.
  void notePriorityChanged(Job& j);

  /// Emits a protocol-level trace event (engine fills the timestamp).
  void emit(TraceEvent e);

  /// Live job lookup by id — O(1) via the job pool (diagnostics;
  /// protocols keep their own queues). nullptr once a job finished.
  [[nodiscard]] Job* findJob(JobId id);

  /// Runtime counters for this run (part of the SimResult). Protocols
  /// bump protocol-level quantities here (handoffs, inheritance updates);
  /// the engine bumps everything on its own paths. Bumps must never
  /// influence scheduling decisions.
  [[nodiscard]] obs::Counters& counters() { return result_.counters; }

  /// Protocols report every global-semaphore holder transition here
  /// (acquire, handoff, or release with `holder == nullptr`) so the
  /// stuck-holder watchdog can time residence. No-op unless the watchdog
  /// policy is active and `r` is global.
  void noteGlobalHolder(ResourceId r, const Job* holder);

 private:
  /// Pending timed suspension, lazily invalidated: an entry is live iff
  /// its job still matches (id, kWaiting, suspended_until == t).
  struct SuspEntry {
    Time t = 0;
    std::uint64_t seq = 0;  // insertion order; FIFO among equal times
    Job* job = nullptr;
    JobId id;
  };
  struct SuspAfter {
    bool operator()(const SuspEntry& a, const SuspEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void releaseDueJobs();
  void wakeDueSuspensions();
  void settle();
  // ----- fault-injection / containment (src/fault) -----
  /// Applies the fault plan to a compute op about to start; records the
  /// injection (counter + trace instant) the first time each kind fires
  /// for a job.
  [[nodiscard]] Duration injectedComputeLen(Job& j, Duration base);
  void noteFault(Job& j, fault::FaultKind kind, ResourceId r);
  /// Emits kFaultInjected once per processor-stall window as the clock
  /// enters it.
  void noteStallWindows();
  /// Fires every containment policy whose trigger has been reached.
  /// Returns true if anything changed (caller re-settles).
  bool applyContainment();
  /// Arms the gcs budget when `j` enters the section whose LockOp is at
  /// the current op cursor.
  void armBudget(Job& j, ResourceId r);
  /// Watchdog action: revoke `r` (and anything nested above it) from `j`.
  void forceRelease(Job& j, ResourceId r);
  /// Budget-enforce action: abort the armed gcs and descend past its V().
  void budgetKill(Job& j);
  /// True while `j`'s op cursor sits on a global Lock op — the window in
  /// which a handoff may have designated `j` holder before it re-ran to
  /// consume the grant. Aborting there would dangle the protocol's
  /// holder pointer, so the miss policy waits it out.
  [[nodiscard]] bool atGlobalLockOp(const Job& j) const;
  /// Job-abort action: retire `j` (records an aborted JobRecord).
  void abortJob(Job& j);
  /// Consumes zero-duration ops for the dispatched job on `proc`.
  /// Returns true if any op was consumed (the job's eligibility or
  /// priority may have changed, so the caller must re-dispatch).
  bool processRunnableOps(int proc);
  void noteOverrunMisses(TaskId task);
  [[nodiscard]] Job* pickHighest(int proc) const;
  void finishJob(Job& j);
  /// Earliest upcoming release/wake/segment-completion time. Prunes stale
  /// suspension-heap entries, hence non-const.
  [[nodiscard]] Time nextEventTime();
  void advanceTo(Time t);
  void recordSegment(int proc, Job& j, Time begin, Time end);
  void noteDeadlineMissesAtHorizon();
  [[nodiscard]] ExecMode execModeOf(const Job& j) const;
  [[nodiscard]] bool suspEntryLive(const SuspEntry& e) const;
  [[nodiscard]] StablePriorityQueue<Job*>& readyQueue(ProcessorId p) {
    return ready_[static_cast<std::size_t>(p.value())];
  }
  /// Samples the ready-queue depth for the high-water-mark counter.
  void noteReadyDepth(ProcessorId p) {
    result_.counters.noteReadyDepth(p, readyQueue(p).size());
  }

  const TaskSystem& system_;
  SyncProtocol& protocol_;
  SimConfig config_;

  Time now_ = 0;
  Time horizon_ = 0;
  bool ran_ = false;
  bool miss_seen_ = false;

  JobPool pool_;  // live jobs; stable addresses, O(1) id lookup
  /// Per-processor ready set, best-first by (effective priority, arrival).
  std::vector<StablePriorityQueue<Job*>> ready_;
  std::vector<Job*> running_;  // per processor, null = idle
  /// Pending releases: min-heap of (release time, task index); ties pop in
  /// task order, matching the old per-task scan exactly.
  std::priority_queue<std::pair<Time, std::int32_t>,
                      std::vector<std::pair<Time, std::int32_t>>,
                      std::greater<>>
      release_heap_;
  std::vector<std::int64_t> instance_no_;  // per task
  std::uint64_t ready_seq_ = 0;
  std::int64_t released_count_ = 0;
  bool dirty_ = false;  // set by wake/migrate/park to re-run settle passes
  std::priority_queue<SuspEntry, std::vector<SuspEntry>, SuspAfter>
      susp_heap_;
  std::uint64_t susp_seq_ = 0;

  // ----- fault-injection / containment state -----
  /// Validated non-empty plan, or nullptr. armed_ is true when either a
  /// plan or any containment policy is active; every fault hook on a hot
  /// path is gated on it so fault-free runs take the exact HEAD schedule.
  const fault::FaultPlan* plan_ = nullptr;
  bool armed_ = false;
  /// Per-resource stuck-holder watchdog (sized when the policy is on).
  struct WatchdogEntry {
    JobId holder;
    Time since = -1;  ///< holder transition time; -1 = not held
  };
  std::vector<WatchdogEntry> watchdog_;
  /// Release-jitter deferral, one outstanding entry per task at most
  /// (jitter is clamped below the period).
  struct JitterPending {
    Time at = -1;      ///< deferred (actual) release time
    Time nominal = 0;  ///< nominal release the deadline stays tied to
  };
  std::vector<JitterPending> jitter_;       // per task
  std::vector<bool> skip_next_;             // per task (skip-next-release)
  std::vector<std::int64_t> skipped_;       // per task, suppressed releases
  std::vector<bool> stall_noted_;           // per plan spec (kProcStall)

  SimResult result_;
};

}  // namespace mpcp
