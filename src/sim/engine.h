// Discrete-event multiprocessor fixed-priority scheduling engine.
//
// The engine simulates the model of Section 3: statically-bound periodic
// tasks under priority-driven preemptive scheduling, with synchronization
// delegated to a pluggable SyncProtocol. Time is integral and the engine
// is fully deterministic: identical inputs produce identical traces.
//
// Structure of the main loop:
//   1. release jobs due now;
//   2. settle(): dispatch the highest effective-priority ready job on each
//      processor and consume all zero-duration ops (P/V, job completion),
//      repeating until no processor changes — P/V cascades (handoffs that
//      wake jobs on other processors, ceiling blocks, preemptions by
//      freshly-elevated gcs's) all resolve within the same instant;
//   3. advance the clock to the next event (release or compute-segment
//      completion), accruing per-job execution/blocking/preemption time.
//
// Hot-path data structures (ISSUE 1, reshaped in ISSUE 7): job storage is
// a slot-indexed JobPool whose parallel arrays carry the per-job hot
// state (phase, processor, base priority, wait accumulators) the advance
// loop streams; pending releases and timed suspensions live in calendar
// queues (TimingWheel) that batch-drain a whole tick at once; settle()
// visits only processors marked dirty by a state transition instead of
// sweeping all of them; and a per-run Arena carries the fixed scratch
// buffers so the steady-state loop performs zero heap allocations (see
// DESIGN.md, "Engine hot path"). Each processor's ready set is a
// StablePriorityQueue ordered by (effective priority, global arrival
// seq), so dispatch peeks the front instead of scanning. Protocols that
// mutate a ready job's priority in place (inheritance, gcs elevation)
// MUST call notePriorityChanged() so the queue re-keys — wake()/migrate()
// re-key implicitly.
//
// Blocking attribution (used to validate the analysis): while a job J is
// not running, each tick counts as *preemption* if J's current processor
// is running a job with higher assigned (base) priority, and as *blocking*
// otherwise — i.e. whenever J waits on a semaphore, waits behind a
// lower-assigned-priority job boosted by inheritance or a gcs, or its
// processor idles while J is suspended remotely. This matches the paper's
// definition of blocking as "the duration a task waits additionally
// compared to the situation where no semaphores are present".
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/stable_priority_queue.h"
#include "common/types.h"
#include "fault/plan.h"
#include "model/task_system.h"
#include "sim/job.h"
#include "sim/job_pool.h"
#include "sim/protocol.h"
#include "sim/result.h"
#include "sim/timing_wheel.h"

namespace mpcp {

struct SimConfig {
  /// Simulation end time; 0 = auto (max phase + 2 * hyperperiod, capped).
  Time horizon = 0;
  /// Cap applied to the auto horizon.
  Time horizon_cap = 1'000'000;
  /// Stop as soon as any deadline is missed (breakdown-utilization sweeps).
  bool stop_on_deadline_miss = false;
  /// Record the event trace and execution segments.
  bool record_trace = true;
  /// Safety valve: abort if more jobs than this are released.
  std::int64_t max_jobs = 2'000'000;
  /// Fault-injection plan (not owned; must outlive the engine). Null or
  /// empty = no injection, and every fault hook stays schedule-neutral.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Containment policies (all off by default).
  fault::ContainmentConfig containment;
  /// Cooperative cancellation (not owned): the run loop polls this flag
  /// and throws SimCancelled when it becomes true. Used by the sweep
  /// runner's wall-clock watchdog to stop runaway simulations.
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown by Engine::run() when SimConfig::cancel is raised mid-run.
class SimCancelled : public std::runtime_error {
 public:
  SimCancelled() : std::runtime_error("simulation cancelled") {}
};

class Engine {
 public:
  /// `protocol` must outlive the engine.
  Engine(const TaskSystem& system, SyncProtocol& protocol, SimConfig config);

  /// Runs the simulation to the horizon and returns the results.
  /// Single-shot: run() may only be called once.
  SimResult run();

  // ----- services available to protocols -----

  [[nodiscard]] const TaskSystem& system() const { return system_; }
  [[nodiscard]] Time now() const { return now_; }

  /// True when the run records a trace. Guard emit() calls that build a
  /// non-trivial TraceEvent so the hot path skips the construction too.
  [[nodiscard]] bool tracing() const { return config_.record_trace; }

  /// Parks the dispatched job as waiting on `r` (onLock kWaiting path).
  /// `blocker` (optional) is recorded in the trace.
  void parkWaiting(Job& j, ResourceId r, JobId blocker = {});

  /// Marks the dispatched job as busy-waiting on `r` (onLock kSpinning
  /// path). The job stays kReady and keeps occupying its processor, but
  /// its op cursor stalls at the LockOp and the wait is accounted as
  /// blocking. The protocol must have elevated the job into a
  /// non-preemptive band first (spin sections are non-preemptive), so
  /// the spinner cannot be displaced while it waits.
  void parkSpinning(Job& j, ResourceId r, JobId blocker = {});

  /// Hands the semaphore to a spinning job: clears the spin mark so the
  /// next settle visit re-runs onLock (which must now return kGranted).
  /// Called by the holder's onUnlock instead of wake().
  void noteSpinGranted(Job& j);

  /// Moves a waiting job back to ready on its `current` processor.
  void wake(Job& j);

  /// Moves a job to another processor (DPCP critical-section migration).
  void migrate(Job& j, ProcessorId target);

  /// Gives `j` a fresh FCFS arrival stamp (and re-keys its queue entry if
  /// ready). Agent dispatch to a sync processor uses this so equal-ceiling
  /// agents queue in *request* order — migrate() alone keeps the original
  /// stamp, which would let a never-blocked job's agent jump ahead of
  /// agents already granted and waiting for the sync CPU.
  void restampArrival(Job& j);

  /// Re-keys `j` in its processor's ready queue after the caller changed
  /// its inherited/elevated priority in place. No-op for non-ready jobs
  /// (they are keyed afresh on wake()). Protocols MUST call this after
  /// every in-place priority change of a job they did not just park/wake.
  void notePriorityChanged(Job& j);

  /// Emits a protocol-level trace event (engine fills the timestamp).
  void emit(TraceEvent e);

  /// Live job lookup by id (diagnostics; protocols keep their own
  /// queues). nullptr once a job finished.
  [[nodiscard]] Job* findJob(JobId id);

  /// Runtime counters for this run (part of the SimResult). Protocols
  /// bump protocol-level quantities here (handoffs, inheritance updates);
  /// the engine bumps everything on its own paths. Bumps must never
  /// influence scheduling decisions.
  [[nodiscard]] obs::Counters& counters() { return result_.counters; }

  /// Protocols report every global-semaphore holder transition here
  /// (acquire, handoff, or release with `holder == nullptr`) so the
  /// stuck-holder watchdog can time residence. No-op unless the watchdog
  /// policy is active and `r` is global.
  void noteGlobalHolder(ResourceId r, const Job* holder);

 private:
  /// Pending timed suspension. Validated at drain time — an entry is
  /// live iff its job still matches (id, kWaiting, suspended_until ==
  /// drain time); anything else went stale (retired or force-woken) and
  /// is dropped silently, as the old lazily-invalidated heap did.
  struct SuspPending {
    std::uint64_t seq = 0;  // insertion order; FIFO among equal times
    Job* job = nullptr;
    JobId id;
  };

  void releaseDueJobs();
  void wakeDueSuspensions();
  void settle();
  /// One dispatch-and-consume visit of processor `p` (the body of the old
  /// full settle pass); re-marks `p` dirty if anything changed.
  void settleProc(int p);
  // ----- fault-injection / containment (src/fault) -----
  /// Applies the fault plan to a compute op about to start; records the
  /// injection (counter + trace instant) the first time each kind fires
  /// for a job.
  [[nodiscard]] Duration injectedComputeLen(Job& j, Duration base);
  void noteFault(Job& j, fault::FaultKind kind, ResourceId r);
  /// Emits kFaultInjected once per processor-stall window as the clock
  /// enters it.
  void noteStallWindows();
  /// Fires every containment policy whose trigger has been reached.
  /// Returns true if anything changed (caller re-settles).
  bool applyContainment();
  /// Arms the gcs budget when `j` enters the section whose LockOp is at
  /// the current op cursor.
  void armBudget(Job& j, ResourceId r);
  /// Watchdog action: revoke `r` (and anything nested above it) from `j`.
  void forceRelease(Job& j, ResourceId r);
  /// Budget-enforce action: abort the armed gcs and descend past its V().
  void budgetKill(Job& j);
  /// True while `j`'s op cursor sits on a global Lock op — the window in
  /// which a handoff may have designated `j` holder before it re-ran to
  /// consume the grant. Aborting there would dangle the protocol's
  /// holder pointer, so the miss policy waits it out.
  [[nodiscard]] bool atGlobalLockOp(const Job& j) const;
  /// Job-abort action: retire `j` (records an aborted JobRecord).
  void abortJob(Job& j);
  /// Consumes zero-duration ops for the dispatched job on `proc`.
  /// Returns true if any op was consumed (the job's eligibility or
  /// priority may have changed, so the caller must re-dispatch).
  bool processRunnableOps(int proc);
  void noteOverrunMisses(TaskId task);
  [[nodiscard]] Job* pickHighest(int proc) const;
  void finishJob(Job& j);
  /// Earliest upcoming release/wake/segment-completion time.
  [[nodiscard]] Time nextEventTime();
  void advanceTo(Time t);
  void recordSegment(int proc, Job& j, Time begin, Time end);
  void noteDeadlineMissesAtHorizon();
  [[nodiscard]] ExecMode execModeOf(const Job& j) const;
  [[nodiscard]] StablePriorityQueue<Job*>& readyQueue(ProcessorId p) {
    return ready_[static_cast<std::size_t>(p.value())];
  }
  /// Samples the ready-queue depth for the high-water-mark counter.
  void noteReadyDepth(ProcessorId p) {
    result_.counters.noteReadyDepth(p, readyQueue(p).size());
  }
  // ----- lazy waiting-time attribution -----
  // A job's wait class (run / blocked / preempted / suspended) is
  // piecewise constant between state transitions, so instead of bumping
  // every live job's accumulator on every clock advance, the engine
  // flushes `now - mark` into the class's accumulator only when the
  // class's inputs change: the job's own phase/processor (transition
  // sites below) or its processor's dispatch signature (advanceTo's
  // per-processor sweep). The flushed sums are identical integer
  // intervals, merely grouped differently — bit-identical results.

  /// Credits the time since the slot's mark to its current class.
  void flushWait(std::uint32_t slot) {
    const Duration dt = now_ - pool_.waitMark(slot);
    if (dt > 0) {
      JobPool::Waits& w = pool_.waits(slot);
      switch (pool_.waitClass(slot)) {
        case JobPool::WaitClass::kRun:
          break;  // execution time is accounted on the running path
        case JobPool::WaitClass::kBlocked:
          w.blocked += dt;
          break;
        case JobPool::WaitClass::kPreempted:
          w.preempted += dt;
          break;
        case JobPool::WaitClass::kSuspended:
          w.suspended += dt;
          break;
      }
      pool_.setWaitMark(slot, now_);
    }
  }

  /// Recomputes the slot's wait class from its phase and its processor's
  /// dispatch signature. Callers flush first.
  void reclassifyWait(std::uint32_t slot) {
    using WC = JobPool::WaitClass;
    switch (pool_.phase(slot)) {
      case JobPool::Phase::kSuspended:
        pool_.setWaitClass(slot, WC::kSuspended);
        return;
      case JobPool::Phase::kBlocked:
        pool_.setWaitClass(slot, WC::kBlocked);
        return;
      case JobPool::Phase::kReady: {
        const auto p = static_cast<std::size_t>(pool_.procOf(slot));
        const std::int32_t rs = run_slot_[p];
        if (rs == static_cast<std::int32_t>(slot)) {
          // A dispatched spinner occupies the processor without making
          // progress: its busy-wait is blocking, not execution.
          pool_.setWaitClass(
              slot, pool_.jobAt(slot).spinning ? WC::kBlocked : WC::kRun);
        } else if (rs >= 0 && run_base_[p] > pool_.baseOf(slot)) {
          pool_.setWaitClass(slot, WC::kPreempted);
        } else {
          // Boosted lower-assigned-priority job, or an idle processor
          // while this job is ready: priority inversion.
          pool_.setWaitClass(slot, WC::kBlocked);
        }
        return;
      }
    }
  }

  /// flushWait + reclassifyWait at a transition site.
  void retimeWait(std::uint32_t slot) {
    flushWait(slot);
    reclassifyWait(slot);
  }

  // ----- per-processor running segments -----
  // The compute segment each processor is executing. The completion
  // times live in their own contiguous Time array (`seg_end_`, one
  // cache line per 8 processors, kTimeInfinity = idle) because the two
  // per-iteration loops — nextEventTime()'s min scan and advanceTo()'s
  // end==t scan — read nothing else; the {job, start} half is only
  // touched at the much rarer flush points. In lazy mode (trace off, no
  // faults armed) the running job's executed/op_remaining are not even
  // updated per advance — flushSeg() credits the elapsed run the next
  // time the processor is settled (the only point that reads them), at
  // migration, and once after the main loop. Eager mode (tracing or
  // armed) flushes every advance so traces, budgets, and fault hooks see
  // per-tick-accurate state.
  struct Seg {
    Job* job = nullptr;  ///< == running_[p]; null = idle
    Time start = 0;      ///< progress credited up to here
  };

  /// Credits `[start, t)` of p's segment to its job's executed /
  /// op_remaining and to the processor's busy total. No-op when idle or
  /// already flushed to `t`. Being the unique crediting point makes
  /// processor_busy exactly the per-processor sum of executed time, the
  /// same integer intervals the per-advance accrual summed before —
  /// advanceTo() no longer writes a vector entry per busy processor.
  void flushSeg(std::size_t p, Time t) {
    Seg& sg = seg_[p];
    if (sg.job == nullptr) return;
    const Duration run = t - sg.start;
    if (run > 0) {
      sg.job->executed += run;
      sg.job->op_remaining -= run;
      result_.processor_busy[p] += run;
      sg.start = t;
    }
  }

  /// Drops releases at/after the horizon (the old heap kept and never
  /// popped them; refusing up front keeps the wheel clean).
  void scheduleRelease(Time t, std::int32_t task_idx) {
    if (t < horizon_) release_wheel_.schedule(t, task_idx);
  }

  // ----- dirty-processor mask (settle) -----
  /// Marks `p` for (re)inspection by settle(). Every state transition
  /// that can change a dispatch decision funnels through this: ready-
  /// queue pushes/removes, running-slot changes, op progress, migrations.
  void touchProc(int p) {
    proc_dirty_[static_cast<std::size_t>(p) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(p) & 63);
  }
  void touchProc(ProcessorId p) { touchProc(p.value()); }
  void markAllProcs() {
    const int procs = system_.processorCount();
    for (int p = 0; p < procs; ++p) touchProc(p);
  }
  /// Lowest dirty processor with index >= `from`, or -1.
  [[nodiscard]] int nextDirtyProc(int from) const;

  const TaskSystem& system_;
  SyncProtocol& protocol_;
  SimConfig config_;

  Time now_ = 0;
  Time horizon_ = 0;
  bool ran_ = false;
  bool miss_seen_ = false;

  JobPool pool_;  // live jobs + slot-indexed hot state
  /// Per-processor ready set, best-first by (effective priority, arrival).
  std::vector<StablePriorityQueue<Job*>> ready_;
  std::vector<Job*> running_;  // per processor, null = idle
  /// Pending releases: calendar queue of task indices; a drained tick is
  /// sorted ascending, matching the old (time, task) heap's pop order.
  TimingWheel<std::int32_t> release_wheel_;
  /// Timed suspensions: calendar queue, sorted by seq at drain (FIFO
  /// among equal times, like the old heap).
  TimingWheel<SuspPending> susp_wheel_;
  std::vector<std::int32_t> release_batch_;  // drain scratch
  std::vector<SuspPending> susp_batch_;      // drain scratch
  std::vector<std::int64_t> instance_no_;    // per task
  std::uint64_t ready_seq_ = 0;
  std::int64_t released_count_ = 0;
  std::uint64_t susp_seq_ = 0;

  /// Per-run arena: fixed scratch buffers below are carved from it once
  /// in the constructor; nothing allocates after setup.
  Arena arena_;
  std::uint64_t* proc_dirty_ = nullptr;  // dirty mask words
  std::size_t dirty_words_ = 0;
  /// Per-processor dispatch signature the current wait classifications
  /// were computed against: running job's pool slot (-1 = idle) and its
  /// assigned-priority urgency. advanceTo() re-sweeps a processor's
  /// ready set only when its signature changed.
  std::int32_t* run_slot_ = nullptr;
  std::int32_t* run_base_ = nullptr;
  Seg* seg_ = nullptr;       ///< per-processor running segment
  Time* seg_end_ = nullptr;  ///< segment completion times; idle = infinity
  /// Flush segments on every advance (tracing or fault hooks active)
  /// instead of lazily at the next settle visit.
  bool eager_ = false;

  // ----- fault-injection / containment state -----
  /// Validated non-empty plan, or nullptr. armed_ is true when either a
  /// plan or any containment policy is active; every fault hook on a hot
  /// path is gated on it so fault-free runs take the exact HEAD schedule.
  const fault::FaultPlan* plan_ = nullptr;
  bool armed_ = false;
  /// Per-resource stuck-holder watchdog (sized when the policy is on).
  struct WatchdogEntry {
    JobId holder;
    Time since = -1;  ///< holder transition time; -1 = not held
  };
  std::vector<WatchdogEntry> watchdog_;
  /// Release-jitter deferral, one outstanding entry per task at most
  /// (jitter is clamped below the period).
  struct JitterPending {
    Time at = -1;      ///< deferred (actual) release time
    Time nominal = 0;  ///< nominal release the deadline stays tied to
  };
  std::vector<JitterPending> jitter_;       // per task
  std::vector<bool> skip_next_;             // per task (skip-next-release)
  std::vector<std::int64_t> skipped_;       // per task, suppressed releases
  std::vector<bool> stall_noted_;           // per plan spec (kProcStall)
  std::vector<Job*> contain_scratch_;       // applyContainment collect pass

  SimResult result_;
};

}  // namespace mpcp
