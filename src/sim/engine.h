// Discrete-event multiprocessor fixed-priority scheduling engine.
//
// The engine simulates the model of Section 3: statically-bound periodic
// tasks under priority-driven preemptive scheduling, with synchronization
// delegated to a pluggable SyncProtocol. Time is integral and the engine
// is fully deterministic: identical inputs produce identical traces.
//
// Structure of the main loop:
//   1. release jobs due now;
//   2. settle(): dispatch the highest effective-priority ready job on each
//      processor and consume all zero-duration ops (P/V, job completion),
//      repeating until no processor changes — P/V cascades (handoffs that
//      wake jobs on other processors, ceiling blocks, preemptions by
//      freshly-elevated gcs's) all resolve within the same instant;
//   3. advance the clock to the next event (release or compute-segment
//      completion), accruing per-job execution/blocking/preemption time.
//
// Blocking attribution (used to validate the analysis): while a job J is
// not running, each tick counts as *preemption* if J's current processor
// is running a job with higher assigned (base) priority, and as *blocking*
// otherwise — i.e. whenever J waits on a semaphore, waits behind a
// lower-assigned-priority job boosted by inheritance or a gcs, or its
// processor idles while J is suspended remotely. This matches the paper's
// definition of blocking as "the duration a task waits additionally
// compared to the situation where no semaphores are present".
#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "common/types.h"
#include "model/task_system.h"
#include "sim/job.h"
#include "sim/protocol.h"
#include "sim/result.h"

namespace mpcp {

struct SimConfig {
  /// Simulation end time; 0 = auto (max phase + 2 * hyperperiod, capped).
  Time horizon = 0;
  /// Cap applied to the auto horizon.
  Time horizon_cap = 1'000'000;
  /// Stop as soon as any deadline is missed (breakdown-utilization sweeps).
  bool stop_on_deadline_miss = false;
  /// Record the event trace and execution segments.
  bool record_trace = true;
  /// Safety valve: abort if more jobs than this are released.
  std::int64_t max_jobs = 2'000'000;
};

class Engine {
 public:
  /// `protocol` must outlive the engine.
  Engine(const TaskSystem& system, SyncProtocol& protocol, SimConfig config);

  /// Runs the simulation to the horizon and returns the results.
  /// Single-shot: run() may only be called once.
  SimResult run();

  // ----- services available to protocols -----

  [[nodiscard]] const TaskSystem& system() const { return system_; }
  [[nodiscard]] Time now() const { return now_; }

  /// Parks the dispatched job as waiting on `r` (onLock kWaiting path).
  /// `blocker` (optional) is recorded in the trace.
  void parkWaiting(Job& j, ResourceId r, JobId blocker = {});

  /// Moves a waiting job back to ready on its `current` processor.
  void wake(Job& j);

  /// Moves a job to another processor (DPCP critical-section migration).
  void migrate(Job& j, ProcessorId target);

  /// Emits a protocol-level trace event (engine fills the timestamp).
  void emit(TraceEvent e);

  /// All live jobs waiting on resource `r` (diagnostics; protocols keep
  /// their own queues).
  [[nodiscard]] Job* findJob(JobId id);

 private:
  void releaseDueJobs();
  void wakeDueSuspensions();
  void settle();
  /// Consumes zero-duration ops for the dispatched job on `proc`.
  /// Returns true if any op was consumed (the job's eligibility or
  /// priority may have changed, so the caller must re-dispatch).
  bool processRunnableOps(int proc);
  void noteOverrunMisses(TaskId task);
  [[nodiscard]] Job* pickHighest(int proc) const;
  void finishJob(Job& j);
  [[nodiscard]] Time nextEventTime() const;
  void advanceTo(Time t);
  void recordSegment(int proc, Job& j, Time begin, Time end);
  void noteDeadlineMissesAtHorizon();
  [[nodiscard]] ExecMode execModeOf(const Job& j) const;

  const TaskSystem& system_;
  SyncProtocol& protocol_;
  SimConfig config_;

  Time now_ = 0;
  Time horizon_ = 0;
  bool ran_ = false;
  bool miss_seen_ = false;

  std::list<Job> jobs_;                     // live jobs; stable addresses
  std::vector<std::vector<Job*>> ready_;    // per processor
  std::vector<Job*> running_;               // per processor, null = idle
  std::vector<Time> next_release_;          // per task
  std::vector<std::int64_t> instance_no_;   // per task
  std::uint64_t ready_seq_ = 0;
  std::int64_t released_count_ = 0;
  bool dirty_ = false;  // set by wake/migrate/park to re-run settle passes
  std::vector<Job*> timed_suspensions_;  // jobs with suspended_until >= 0

  SimResult result_;
};

}  // namespace mpcp
