#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

Engine::Engine(const TaskSystem& system, SyncProtocol& protocol,
               SimConfig config)
    : system_(system), protocol_(protocol), config_(config) {
  const int procs = system_.processorCount();
  ready_.resize(static_cast<std::size_t>(procs));
  running_.assign(static_cast<std::size_t>(procs), nullptr);

  const std::size_t n = system_.tasks().size();
  instance_no_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    release_heap_.push({system_.tasks()[i].phase,
                        static_cast<std::int32_t>(i)});
  }
  result_.processor_busy.assign(static_cast<std::size_t>(procs), 0);
  result_.counters.init(system_.resources().size(),
                        static_cast<std::size_t>(procs), n);
  result_.per_task.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result_.per_task[i].task = TaskId(static_cast<std::int32_t>(i));
  }

  if (config_.fault_plan != nullptr && !config_.fault_plan->empty()) {
    config_.fault_plan->validate(system_);
    plan_ = config_.fault_plan;
  }
  armed_ = plan_ != nullptr || config_.containment.any();
  if (armed_) {
    jitter_.assign(n, {});
    skip_next_.assign(n, false);
    skipped_.assign(n, 0);
  }
  if (config_.containment.holder_watchdog > 0) {
    watchdog_.assign(system_.resources().size(), {});
  }
  if (plan_ != nullptr && plan_->hasStalls()) {
    stall_noted_.assign(plan_->specs.size(), false);
  }

  if (config_.horizon > 0) {
    horizon_ = config_.horizon;
  } else {
    Time max_phase = 0;
    for (const Task& t : system_.tasks()) {
      max_phase = std::max(max_phase, t.phase);
    }
    const Time hp = system_.hyperperiod();
    horizon_ = (hp >= kTimeInfinity / 2) ? config_.horizon_cap
                                         : max_phase + 2 * hp;
    horizon_ = std::min(horizon_, config_.horizon_cap);
  }
  MPCP_CHECK(horizon_ > 0, "simulation horizon must be positive");

  // Reserve result storage up front: the expected job count is
  // sum_i(horizon / T_i), and every releasing job appends one JobRecord
  // (and, with the trace on, a handful of events and segments). Growing
  // these vectors dominated long trace-recording runs.
  std::int64_t expected_jobs = 0;
  for (const Task& t : system_.tasks()) {
    if (t.period > 0) expected_jobs += horizon_ / t.period + 1;
  }
  expected_jobs = std::min(expected_jobs, config_.max_jobs);
  result_.jobs.reserve(static_cast<std::size_t>(expected_jobs));
  if (config_.record_trace) {
    constexpr std::int64_t kTraceReserveCap = 1 << 20;
    result_.trace.reserve(static_cast<std::size_t>(
        std::min(expected_jobs * 8, kTraceReserveCap)));
    result_.segments.reserve(static_cast<std::size_t>(
        std::min(expected_jobs * 4, kTraceReserveCap / 2)));
  }
}

SimResult Engine::run() {
  MPCP_CHECK(!ran_, "Engine::run() may only be called once");
  ran_ = true;
  protocol_.attach(*this);

  while (true) {
    if (config_.cancel != nullptr &&
        config_.cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled();
    }
    releaseDueJobs();
    wakeDueSuspensions();
    if (!stall_noted_.empty()) noteStallWindows();
    settle();
    if (armed_) {
      while (applyContainment()) settle();
    }
    if (miss_seen_ && config_.stop_on_deadline_miss) break;
    Time next = std::min(nextEventTime(), horizon_);
    if (next <= now_) break;  // now_ == horizon_: done
    advanceTo(next);
    if (now_ >= horizon_) break;
  }

  // Completions landing exactly on the horizon are still completions:
  // drain the zero-duration ops (no further time passes, and no job is
  // released at the horizon itself).
  wakeDueSuspensions();
  settle();
  if (armed_) {
    while (applyContainment()) settle();
  }

  noteDeadlineMissesAtHorizon();

  // Per-task aggregates.
  for (const JobRecord& jr : result_.jobs) {
    TaskStats& st =
        result_.per_task[static_cast<std::size_t>(jr.id.task.value())];
    if (jr.finish >= 0) {
      st.jobs_finished++;
      st.max_response = std::max(st.max_response, jr.responseTime());
      st.avg_response += static_cast<double>(jr.responseTime());
      st.max_blocked = std::max(st.max_blocked, jr.blocked);
    }
    if (jr.missed) st.deadline_misses++;
  }
  for (TaskStats& st : result_.per_task) {
    if (st.jobs_finished > 0) {
      st.avg_response /= static_cast<double>(st.jobs_finished);
    }
  }
  result_.horizon = horizon_;
  result_.any_deadline_miss = miss_seen_;
  return std::move(result_);
}

void Engine::releaseDueJobs() {
  while (!release_heap_.empty()) {
    const auto [due, task_idx] = release_heap_.top();
    if (due > now_ || due >= horizon_) break;
    release_heap_.pop();
    const auto ti = static_cast<std::size_t>(task_idx);
    const Task& task = system_.tasks()[ti];

    // Fault hooks: release jitter defers the release (the deadline stays
    // tied to the nominal time), skip-next-release suppresses it outright.
    Time nominal = due;
    bool from_jitter = false;
    if (armed_) {
      if (jitter_[ti].at == due) {
        nominal = jitter_[ti].nominal;
        jitter_[ti] = {};
        from_jitter = true;
      } else if (plan_ != nullptr) {
        Duration jd = plan_->releaseJitter(task.id, instance_no_[ti]);
        jd = std::min<Duration>(jd, task.period - 1);
        if (jd > 0) {
          jitter_[ti] = {due + jd, due};
          release_heap_.push({due + jd, task_idx});
          release_heap_.push({due + task.period, task_idx});
          result_.counters.faults_injected++;
          emit({.t = now_, .kind = Ev::kFaultInjected,
                .job = JobId{task.id, instance_no_[ti]},
                .processor = task.processor});
          continue;
        }
      }
      if (!from_jitter && skip_next_[ti]) {
        skip_next_[ti] = false;
        skipped_[ti]++;
        result_.counters.releases_skipped++;
        result_.counters.faults_contained++;
        emit({.t = now_, .kind = Ev::kReleaseSkipped,
              .job = JobId{task.id, instance_no_[ti]++},
              .processor = task.processor});
        release_heap_.push({due + task.period, task_idx});
        continue;
      }
    }

    if (++released_count_ > config_.max_jobs) {
      throw InvariantError(strf("job cap exceeded (", config_.max_jobs,
                                "); runaway simulation?"));
    }
    // An unfinished previous instance past its deadline is a miss even
    // before it completes — note it as soon as the overrun is visible.
    noteOverrunMisses(task.id);

    Job& stored = pool_.allocate(JobId{task.id, instance_no_[ti]++});
    stored.host = task.processor;
    stored.current = task.processor;
    stored.release = due;
    stored.abs_deadline = nominal + task.relative_deadline;
    stored.base = task.priority;
    stored.state = JobState::kReady;
    stored.ready_seq = ++ready_seq_;
    // A jittered release already queued the next nominal one at deferral.
    if (!from_jitter) release_heap_.push({due + task.period, task_idx});

    readyQueue(stored.current)
        .pushSeq(&stored, stored.effectivePriority(), stored.ready_seq);
    result_.counters.jobs_released++;
    noteReadyDepth(stored.current);
    emit({.t = now_, .kind = Ev::kRelease, .job = stored.id,
          .processor = stored.host});
    protocol_.onJobReleased(stored);
  }
}

bool Engine::suspEntryLive(const SuspEntry& e) const {
  return e.job != nullptr && e.job->id == e.id &&
         e.job->state == JobState::kWaiting && e.job->suspended_until == e.t;
}

void Engine::wakeDueSuspensions() {
  while (!susp_heap_.empty()) {
    const SuspEntry e = susp_heap_.top();
    if (!suspEntryLive(e)) {  // retired or already woken: drop lazily
      susp_heap_.pop();
      continue;
    }
    if (e.t > now_) break;
    susp_heap_.pop();
    Job* j = e.job;
    j->suspended_until = -1;
    emit({.t = now_, .kind = Ev::kSelfResume, .job = j->id,
          .processor = j->current});
    wake(*j);
  }
}

void Engine::noteOverrunMisses(TaskId task) {
  pool_.forEachLive([&](Job& j) {
    // Strictly past the deadline: a job *at* its deadline with zero work
    // left completes within this instant's settle pass and is on time
    // (the finish-time check still catches every genuine late finish).
    if (j.id.task == task && now_ > j.abs_deadline && !j.miss_noted) {
      j.miss_noted = true;
      miss_seen_ = true;
      if (result_.counters.faults_injected > 0) {
        result_.counters.misses_while_degraded++;
      }
      emit({.t = now_, .kind = Ev::kDeadlineMiss, .job = j.id,
            .processor = j.host});
    }
  });
}

Job* Engine::pickHighest(int proc) const {
  const auto& q = ready_[static_cast<std::size_t>(proc)];
  if (q.empty()) return nullptr;
  Job* best = q.peek();
  MPCP_DCHECK(best->state == JobState::kReady &&
                  best->current.value() == proc,
              "ready queue corrupt on P" << proc);
  return best;
}

void Engine::settle() {
  const int procs = system_.processorCount();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int p = 0; p < procs; ++p) {
      // A transiently stalled processor dispatches nothing: its jobs stay
      // ready and the waiting time is attributed as blocking.
      Job* j = (!stall_noted_.empty() &&
                plan_->stalled(ProcessorId(p), now_))
                   ? nullptr
                   : pickHighest(p);
      if (j != running_[static_cast<std::size_t>(p)]) {
        Job* old = running_[static_cast<std::size_t>(p)];
        if (old != nullptr && old->state == JobState::kReady) {
          result_.counters.preemptions++;
          if (j != nullptr && j->elevated != kPriorityFloor) {
            result_.counters.gcs_preemptions++;
          }
          emit({.t = now_, .kind = Ev::kPreempt, .job = old->id,
                .processor = ProcessorId(p),
                .other = j ? j->id : JobId{}});
        }
        running_[static_cast<std::size_t>(p)] = j;
        if (j != nullptr) {
          emit({.t = now_, .kind = Ev::kStart, .job = j->id,
                .processor = ProcessorId(p)});
        }
        changed = true;
      }
      if (running_[static_cast<std::size_t>(p)] != nullptr) {
        // Any consumed op (lock, unlock, completion) can change priorities
        // or eligibility anywhere, so re-run the dispatch pass.
        changed |= processRunnableOps(p);
        if (running_[static_cast<std::size_t>(p)] == nullptr ||
            running_[static_cast<std::size_t>(p)]->state !=
                JobState::kReady) {
          changed = true;  // job finished or parked; re-dispatch
          running_[static_cast<std::size_t>(p)] = nullptr;
        }
      }
    }
    // Any wake()/migrate() triggered by op processing set dirty_.
    if (dirty_) {
      dirty_ = false;
      changed = true;
    }
  }
}

bool Engine::processRunnableOps(int proc) {
  Job*& slot = running_[static_cast<std::size_t>(proc)];
  bool progress = false;
  while (slot != nullptr && slot->state == JobState::kReady) {
    Job& j = *slot;
    const Task& task = system_.task(j.id.task);
    const auto& ops = task.body.ops();

    if (j.op_index >= ops.size()) {
      finishJob(j);
      slot = nullptr;
      return true;
    }

    const Op& op = ops[j.op_index];
    if (const auto* c = std::get_if<ComputeOp>(&op)) {
      if (j.op_remaining < 0) {
        j.op_remaining = plan_ != nullptr ? injectedComputeLen(j, c->duration)
                                          : c->duration;
      }
      if (j.op_remaining > 0) return progress;  // needs clock time
      j.op_index++;
      j.op_remaining = -1;
      progress = true;
      continue;
    }
    if (const auto* l = std::get_if<LockOp>(&op)) {
      // An earlier op in this drain (an unlock dropping j's elevation or
      // inheritance, a handoff elevating a peer) may have left a strictly
      // higher-priority job ready here. A real V() reevaluates scheduling
      // before the task can issue its next P(), so yield instead of
      // letting back-to-back critical sections run atomically — the F5
      // blocking bound's once-per-resume argument depends on exactly this
      // preemption point.
      if (progress) {
        Job* top = pickHighest(proc);
        if (top != nullptr && top != &j &&
            top->effectivePriority() > j.effectivePriority()) {
          return true;  // j stays ready; settle() dispatches the preemptor
        }
      }
      const LockOutcome outcome = protocol_.onLock(j, l->resource);
      if (outcome == LockOutcome::kGranted) {
        result_.counters.res(l->resource).acquisitions++;
        j.held.push_back(l->resource);
        if (config_.containment.budget_enforce &&
            system_.isGlobal(l->resource)) {
          armBudget(j, l->resource);
        }
        j.op_index++;
        emit({.t = now_, .kind = Ev::kLockGrant, .job = j.id,
              .processor = j.current, .resource = l->resource});
        progress = true;
        continue;
      }
      MPCP_CHECK(j.state == JobState::kWaiting,
                 protocol_.name()
                     << " returned kWaiting for " << j.id << " on "
                     << l->resource << " without parking the job");
      return true;
    }
    if (const auto* susp = std::get_if<SuspendOp>(&op)) {
      MPCP_CHECK(j.held.empty(),
                 j.id << " self-suspending while holding a semaphore");
      j.op_index++;
      j.suspended_until = now_ + susp->duration;
      j.state = JobState::kWaiting;
      readyQueue(j.current).remove(&j);
      susp_heap_.push({j.suspended_until, ++susp_seq_, &j, j.id});
      emit({.t = now_, .kind = Ev::kSelfSuspend, .job = j.id,
            .processor = j.current});
      slot = nullptr;
      dirty_ = true;
      return true;
    }
    const auto& u = std::get<UnlockOp>(op);
    if (armed_) {
      // The watchdog already revoked this semaphore: its V() is a no-op.
      const auto fr = std::find(j.force_released.begin(),
                                j.force_released.end(), u.resource);
      if (fr != j.force_released.end()) {
        j.force_released.erase(fr);
        j.op_index++;
        j.op_remaining = -1;
        progress = true;
        continue;
      }
      if (plan_ != nullptr && !j.held.empty() && j.held.back() == u.resource &&
          plan_->stuckAt(j.id.task, j.id.instance, u.resource)) {
        // Stuck holder: never executes this V() — burn clock time at the
        // unlock site until the horizon (or until a watchdog revocation
        // consumes the op from under us).
        noteFault(j, fault::FaultKind::kStuckHolder, u.resource);
        if (j.op_remaining <= 0) j.op_remaining = horizon_ - now_ + 1;
        return progress;
      }
    }
    MPCP_CHECK(!j.held.empty() && j.held.back() == u.resource,
               j.id << " unlocking " << u.resource
                    << " which is not its innermost held semaphore");
    protocol_.onUnlock(j, u.resource);
    j.held.pop_back();
    if (j.gcs_budget >= 0 && u.resource == j.gcs_resource) {
      j.gcs_budget = -1;  // section completed within budget: disarm
      j.gcs_consumed = 0;
    }
    j.op_index++;
    progress = true;
  }
  return progress;
}

void Engine::finishJob(Job& j) {
  MPCP_CHECK(j.held.empty(),
             j.id << " finished while holding " << j.held.size()
                  << " semaphore(s)");
  j.state = JobState::kFinished;
  j.finish = now_;
  readyQueue(j.current).remove(&j);

  emit({.t = now_, .kind = Ev::kFinish, .job = j.id, .processor = j.current});
  const bool missed = j.finish > j.abs_deadline;
  if (missed && !j.miss_noted) {
    j.miss_noted = true;
    if (result_.counters.faults_injected > 0) {
      result_.counters.misses_while_degraded++;
    }
    emit({.t = now_, .kind = Ev::kDeadlineMiss, .job = j.id,
          .processor = j.current});
  }
  if (missed) miss_seen_ = true;
  result_.counters.jobs_finished++;
  if (missed) result_.counters.deadline_misses++;
  result_.counters.recordBlocking(j.id.task, j.blocked);

  // Any suspension-heap entry for j goes stale here (state kFinished) and
  // is dropped lazily by wakeDueSuspensions()/nextEventTime().
  protocol_.onJobFinished(j);

  result_.jobs.push_back({.id = j.id,
                          .release = j.release,
                          .abs_deadline = j.abs_deadline,
                          .finish = j.finish,
                          .executed = j.executed,
                          .blocked = j.blocked,
                          .preempted = j.preempted,
                          .suspended = j.suspended,
                          .missed = missed});
  // Retire storage: recycle the pool slot.
  pool_.release(j);
}

Time Engine::nextEventTime() {
  Time next = kTimeInfinity;
  if (!release_heap_.empty()) {
    next = std::min(next, release_heap_.top().first);
  }
  while (!susp_heap_.empty() && !suspEntryLive(susp_heap_.top())) {
    susp_heap_.pop();
  }
  if (!susp_heap_.empty()) next = std::min(next, susp_heap_.top().t);
  for (const Job* j : running_) {
    if (j != nullptr) {
      MPCP_DCHECK(j->op_remaining > 0,
                  "settle left " << j->id << " dispatched but not computing");
      next = std::min(next, now_ + j->op_remaining);
    }
  }
  if (armed_) {
    const fault::ContainmentConfig& cc = config_.containment;
    if (!stall_noted_.empty()) {
      next = std::min(next, plan_->nextStallBoundary(now_));
    }
    if (cc.budget_enforce) {
      for (const Job* j : running_) {
        if (j != nullptr && j->gcs_budget >= 0) {
          next = std::min(next,
                          now_ + std::max<Duration>(
                                     1, j->gcs_budget + 1 - j->gcs_consumed));
        }
      }
    }
    if (cc.holder_watchdog > 0) {
      for (const WatchdogEntry& w : watchdog_) {
        if (w.since < 0) continue;
        const Time fire = w.since > kTimeInfinity - cc.holder_watchdog
                              ? kTimeInfinity
                              : w.since + cc.holder_watchdog;
        next = std::min(next, std::max(now_ + 1, fire));
      }
    }
    if (cc.on_miss != fault::MissAction::kNone) {
      pool_.forEachLive([&](Job& j) {
        if (j.miss_policy_applied) return;
        next = std::min(next, std::max(now_ + 1, j.abs_deadline + 1));
      });
    }
  }
  return next;
}

void Engine::advanceTo(Time t) {
  const Duration dt = t - now_;
  MPCP_CHECK(dt > 0, "advanceTo must move forward");

  for (std::size_t p = 0; p < running_.size(); ++p) {
    Job* j = running_[p];
    if (j == nullptr) continue;
    j->op_remaining -= dt;
    MPCP_DCHECK(j->op_remaining >= 0, "segment overrun for " << j->id);
    j->executed += dt;
    if (armed_ && j->gcs_budget >= 0) j->gcs_consumed += dt;
    result_.processor_busy[p] += dt;
    recordSegment(static_cast<int>(p), *j, now_, t);
  }

  // Waiting-time attribution for every job that is not running.
  pool_.forEachLive([&](Job& j) {
    const Job* on_proc = running_[static_cast<std::size_t>(j.current.value())];
    if (on_proc == &j) return;  // it ran; accounted above
    if (j.state == JobState::kWaiting) {
      if (j.suspended_until >= 0) {
        j.suspended += dt;  // voluntary: neither blocking nor preemption
      } else {
        j.blocked += dt;  // semaphore wait: blocking, never preemption
      }
    } else if (on_proc != nullptr && on_proc->base > j.base) {
      j.preempted += dt;  // legitimate higher-assigned-priority work
    } else {
      // Lower-assigned-priority job boosted by inheritance or a gcs, or
      // (pathologically) an idle processor while this job is ready: count
      // as priority inversion.
      j.blocked += dt;
    }
  });

  now_ = t;
}

void Engine::recordSegment(int proc, Job& j, Time begin, Time end) {
  if (!config_.record_trace) return;
  const ExecMode mode = execModeOf(j);
  if (!result_.segments.empty()) {
    ExecSegment& last = result_.segments.back();
    if (last.processor.value() == proc && last.job == j.id &&
        last.mode == mode && last.end == begin) {
      last.end = end;
      return;
    }
  }
  result_.segments.push_back({.processor = ProcessorId(proc),
                              .job = j.id,
                              .begin = begin,
                              .end = end,
                              .mode = mode});
}

ExecMode Engine::execModeOf(const Job& j) const {
  if (j.elevated != kPriorityFloor) return ExecMode::kGcs;
  if (!j.held.empty()) return ExecMode::kLocalCs;
  return ExecMode::kNormal;
}

void Engine::noteDeadlineMissesAtHorizon() {
  pool_.forEachLive([&](Job& j) {
    const bool missed = j.abs_deadline <= horizon_;
    if (missed) {
      miss_seen_ = true;
      result_.counters.deadline_misses++;
      if (!j.miss_noted && result_.counters.faults_injected > 0) {
        result_.counters.misses_while_degraded++;
      }
    }
    result_.jobs.push_back({.id = j.id,
                            .release = j.release,
                            .abs_deadline = j.abs_deadline,
                            .finish = -1,
                            .executed = j.executed,
                            .blocked = j.blocked,
                            .preempted = j.preempted,
                            .suspended = j.suspended,
                            .missed = missed});
  });
  for (std::size_t i = 0; i < instance_no_.size(); ++i) {
    result_.per_task[i].jobs_released =
        instance_no_[i] - (armed_ ? skipped_[i] : 0);
  }
}

// ----- fault-injection / containment (src/fault) -----

Duration Engine::injectedComputeLen(Job& j, Duration base) {
  const ResourceId inner = j.held.empty() ? ResourceId{} : j.held.back();
  const fault::ComputeEffect eff = plan_->computeEffect(
      j.id.task, j.id.instance, base, inner, !j.wcet_delta_applied);
  if (eff.delta_used) j.wcet_delta_applied = true;
  if ((eff.kinds & fault::bitOf(fault::FaultKind::kWcetOverrun)) != 0) {
    noteFault(j, fault::FaultKind::kWcetOverrun, ResourceId{});
  }
  if ((eff.kinds & fault::bitOf(fault::FaultKind::kCsOverrun)) != 0) {
    noteFault(j, fault::FaultKind::kCsOverrun, inner);
  }
  return eff.duration;
}

void Engine::noteFault(Job& j, fault::FaultKind kind, ResourceId r) {
  const std::uint32_t bit = fault::bitOf(kind);
  if ((j.faults_noted & bit) != 0) return;  // once per kind per job
  j.faults_noted |= bit;
  result_.counters.faults_injected++;
  emit({.t = now_, .kind = Ev::kFaultInjected, .job = j.id,
        .processor = j.current, .resource = r});
}

void Engine::noteStallWindows() {
  for (std::size_t i = 0; i < stall_noted_.size(); ++i) {
    const fault::FaultSpec& s = plan_->specs[i];
    if (stall_noted_[i] || s.kind != fault::FaultKind::kProcStall) continue;
    if (s.start <= now_ && now_ < s.start + s.length) {
      stall_noted_[i] = true;
      result_.counters.faults_injected++;
      emit({.t = now_, .kind = Ev::kFaultInjected, .processor = s.processor});
    }
  }
}

void Engine::noteGlobalHolder(ResourceId r, const Job* holder) {
  if (config_.containment.holder_watchdog <= 0) return;
  if (!system_.isGlobal(r)) return;
  WatchdogEntry& w = watchdog_[static_cast<std::size_t>(r.value())];
  if (holder == nullptr) {
    w = {};
    return;
  }
  if (w.since >= 0 && w.holder == holder->id) return;  // unchanged holder
  w.holder = holder->id;
  w.since = now_;
}

bool Engine::applyContainment() {
  bool fired = false;
  const fault::ContainmentConfig& cc = config_.containment;

  if (cc.holder_watchdog > 0) {
    for (std::size_t r = 0; r < watchdog_.size(); ++r) {
      WatchdogEntry& w = watchdog_[r];
      if (w.since < 0 || now_ - w.since < cc.holder_watchdog) continue;
      Job* h = pool_.find(w.holder);
      if (h == nullptr) {  // holder retired without a transition report
        w = {};
        continue;
      }
      if (h->state != JobState::kReady) continue;  // retry at a safe point
      forceRelease(*h, ResourceId(static_cast<std::int32_t>(r)));
      fired = true;
    }
  }

  if (cc.budget_enforce) {
    // Collect first: budgetKill hands the semaphore off and wakes peers,
    // which must not perturb this sweep.
    std::vector<Job*> kills;
    pool_.forEachLive([&](Job& j) {
      if (j.gcs_budget >= 0 && j.gcs_consumed > j.gcs_budget &&
          j.state == JobState::kReady) {
        kills.push_back(&j);
      }
    });
    for (Job* j : kills) {
      budgetKill(*j);
      fired = true;
    }
  }

  if (cc.on_miss != fault::MissAction::kNone) {
    std::vector<Job*> aborts;
    pool_.forEachLive([&](Job& j) {
      if (now_ > j.abs_deadline && !j.miss_policy_applied) {
        j.miss_policy_applied = true;
        if (!j.miss_noted) {
          j.miss_noted = true;
          miss_seen_ = true;
          if (result_.counters.faults_injected > 0) {
            result_.counters.misses_while_degraded++;
          }
          emit({.t = now_, .kind = Ev::kDeadlineMiss, .job = j.id,
                .processor = j.host});
        }
        if (cc.on_miss == fault::MissAction::kSkipNextRelease) {
          skip_next_[static_cast<std::size_t>(j.id.task.value())] = true;
        } else {
          j.abort_pending = true;
        }
      }
      // Abort only at a safe point: ready and holding nothing (aborting a
      // holder or a queued waiter would corrupt protocol state). A job
      // parked at a global Lock op may already be the *designated* holder
      // — rule 7 hands the semaphore over before the job re-dispatches to
      // consume the grant, and held stays empty across that gap — so
      // defer until the cursor moves past the op (the abort then fires
      // after its V(), when the job provably holds nothing).
      if (j.abort_pending && j.state == JobState::kReady && j.held.empty() &&
          !atGlobalLockOp(j)) {
        aborts.push_back(&j);
      }
    });
    for (Job* j : aborts) {
      abortJob(*j);
      fired = true;
    }
  }
  return fired;
}

void Engine::armBudget(Job& j, ResourceId r) {
  for (const CriticalSection& cs : system_.task(j.id.task).sections) {
    if (cs.lock_index != j.op_index) continue;
    MPCP_CHECK(cs.resource == r,
               "budget arming: section at op " << j.op_index
                                               << " locks a different semaphore");
    j.gcs_budget = std::llround(static_cast<double>(cs.duration) *
                                config_.containment.grace);
    j.gcs_consumed = 0;
    j.gcs_resource = r;
    j.gcs_unlock_index = cs.unlock_index;
    return;
  }
}

void Engine::forceRelease(Job& j, ResourceId r) {
  emit({.t = now_, .kind = Ev::kForcedRelease, .job = j.id,
        .processor = j.current, .resource = r});
  result_.counters.forced_releases++;
  result_.counters.faults_contained++;
  if (std::find(j.held.begin(), j.held.end(), r) == j.held.end()) {
    // The semaphore was handed to j but j has not re-dispatched to consume
    // the grant: revoke it at the protocol level only. j's pending P()
    // simply re-queues when it next runs.
    protocol_.onUnlock(j, r);
    dirty_ = true;
    return;
  }
  const auto& ops = system_.task(j.id.task).body.ops();
  while (!j.held.empty()) {
    const ResourceId top = j.held.back();
    protocol_.onUnlock(j, top);
    j.held.pop_back();
    if (j.gcs_budget >= 0 && top == j.gcs_resource) {
      j.gcs_budget = -1;
      j.gcs_consumed = 0;
    }
    const auto* u = j.op_index < ops.size()
                        ? std::get_if<UnlockOp>(&ops[j.op_index])
                        : nullptr;
    if (u != nullptr && u->resource == top) {
      // The job sits right at this V() (a stuck holder burning time):
      // consume the op so the rest of the body can run.
      j.op_index++;
      j.op_remaining = -1;
    } else {
      j.force_released.push_back(top);
    }
    if (top == r) break;
  }
  dirty_ = true;
}

void Engine::budgetKill(Job& j) {
  MPCP_CHECK(j.gcs_budget >= 0, "budgetKill on unarmed job " << j.id);
  const ResourceId r = j.gcs_resource;
  emit({.t = now_, .kind = Ev::kBudgetKill, .job = j.id,
        .processor = j.current, .resource = r});
  result_.counters.budget_kills++;
  result_.counters.faults_contained++;
  while (!j.held.empty()) {
    const ResourceId top = j.held.back();
    protocol_.onUnlock(j, top);
    j.held.pop_back();
    if (top == r) break;
  }
  // Descend: skip the rest of the section body and its V().
  j.op_index = j.gcs_unlock_index + 1;
  j.op_remaining = -1;
  j.gcs_budget = -1;
  j.gcs_consumed = 0;
  dirty_ = true;
}

bool Engine::atGlobalLockOp(const Job& j) const {
  const auto& ops = system_.task(j.id.task).body.ops();
  if (j.op_index >= ops.size()) return false;
  const auto* lock = std::get_if<LockOp>(&ops[j.op_index]);
  return lock != nullptr && system_.isGlobal(lock->resource);
}

void Engine::abortJob(Job& j) {
  MPCP_CHECK(j.held.empty(), "abortJob on holder " << j.id);
  emit({.t = now_, .kind = Ev::kJobAbort, .job = j.id,
        .processor = j.current});
  j.state = JobState::kFinished;
  readyQueue(j.current).remove(&j);
  auto& slot = running_[static_cast<std::size_t>(j.current.value())];
  if (slot == &j) slot = nullptr;
  result_.counters.jobs_aborted++;
  result_.counters.faults_contained++;
  result_.counters.deadline_misses++;
  result_.counters.recordBlocking(j.id.task, j.blocked);
  protocol_.onJobFinished(j);
  result_.jobs.push_back({.id = j.id,
                          .release = j.release,
                          .abs_deadline = j.abs_deadline,
                          .finish = -1,
                          .executed = j.executed,
                          .blocked = j.blocked,
                          .preempted = j.preempted,
                          .suspended = j.suspended,
                          .missed = true,
                          .aborted = true});
  pool_.release(j);
  dirty_ = true;
}

void Engine::parkWaiting(Job& j, ResourceId r, JobId blocker) {
  MPCP_CHECK(j.state == JobState::kReady,
             "parkWaiting on non-ready job " << j.id);
  j.state = JobState::kWaiting;
  j.waiting_for = r;
  result_.counters.res(r).contended_waits++;
  readyQueue(j.current).remove(&j);
  if (running_[static_cast<std::size_t>(j.current.value())] == &j) {
    running_[static_cast<std::size_t>(j.current.value())] = nullptr;
  }
  emit({.t = now_, .kind = Ev::kLockWait, .job = j.id,
        .processor = j.current, .resource = r, .other = blocker});
  dirty_ = true;
}

void Engine::wake(Job& j) {
  MPCP_CHECK(j.state == JobState::kWaiting, "wake on non-waiting " << j.id);
  j.state = JobState::kReady;
  j.waiting_for = ResourceId();
  j.ready_seq = ++ready_seq_;
  readyQueue(j.current).pushSeq(&j, j.effectivePriority(), j.ready_seq);
  noteReadyDepth(j.current);
  dirty_ = true;
}

void Engine::migrate(Job& j, ProcessorId target) {
  if (j.current == target) return;
  result_.counters.migrations++;
  readyQueue(j.current).remove(&j);
  if (running_[static_cast<std::size_t>(j.current.value())] == &j) {
    running_[static_cast<std::size_t>(j.current.value())] = nullptr;
  }
  emit({.t = now_, .kind = Ev::kMigrate, .job = j.id, .processor = target});
  j.current = target;
  if (j.state == JobState::kReady) {
    // Keep the original arrival stamp: a migrating job does not lose its
    // FCFS position among equal priorities.
    readyQueue(target).pushSeq(&j, j.effectivePriority(), j.ready_seq);
    noteReadyDepth(target);
  }
  dirty_ = true;
}

void Engine::restampArrival(Job& j) {
  j.ready_seq = ++ready_seq_;
  if (j.state == JobState::kReady) {
    auto& q = readyQueue(j.current);
    if (q.remove(&j)) {
      q.pushSeq(&j, j.effectivePriority(), j.ready_seq);
    }
    dirty_ = true;
  }
}

void Engine::notePriorityChanged(Job& j) {
  if (j.state != JobState::kReady) return;  // re-keyed on wake()
  auto& q = readyQueue(j.current);
  const bool was_queued = q.remove(&j);
  MPCP_DCHECK(was_queued,
              "notePriorityChanged: ready job " << j.id
                                                << " missing from queue");
  q.pushSeq(&j, j.effectivePriority(), j.ready_seq);
  dirty_ = true;
}

void Engine::emit(TraceEvent e) {
  if (!config_.record_trace) return;
  e.t = now_;
  result_.trace.push_back(e);
}

Job* Engine::findJob(JobId id) { return pool_.find(id); }

}  // namespace mpcp
