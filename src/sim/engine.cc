#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

Engine::Engine(const TaskSystem& system, SyncProtocol& protocol,
               SimConfig config)
    : system_(system), protocol_(protocol), config_(config) {
  const int procs = system_.processorCount();
  ready_.resize(static_cast<std::size_t>(procs));
  running_.assign(static_cast<std::size_t>(procs), nullptr);

  const std::size_t n = system_.tasks().size();
  instance_no_.assign(n, 0);
  result_.processor_busy.assign(static_cast<std::size_t>(procs), 0);
  result_.counters.init(system_.resources().size(),
                        static_cast<std::size_t>(procs), n);
  result_.per_task.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result_.per_task[i].task = TaskId(static_cast<std::int32_t>(i));
  }

  if (config_.fault_plan != nullptr && !config_.fault_plan->empty()) {
    config_.fault_plan->validate(system_);
    plan_ = config_.fault_plan;
  }
  armed_ = plan_ != nullptr || config_.containment.any();
  if (armed_) {
    jitter_.assign(n, {});
    skip_next_.assign(n, false);
    skipped_.assign(n, 0);
  }
  if (config_.containment.holder_watchdog > 0) {
    watchdog_.assign(system_.resources().size(), {});
  }
  if (plan_ != nullptr && plan_->hasStalls()) {
    stall_noted_.assign(plan_->specs.size(), false);
  }

  if (config_.horizon > 0) {
    horizon_ = config_.horizon;
  } else {
    Time max_phase = 0;
    for (const Task& t : system_.tasks()) {
      max_phase = std::max(max_phase, t.phase);
    }
    const Time hp = system_.hyperperiod();
    horizon_ = (hp >= kTimeInfinity / 2) ? config_.horizon_cap
                                         : max_phase + 2 * hp;
    horizon_ = std::min(horizon_, config_.horizon_cap);
  }
  MPCP_CHECK(horizon_ > 0, "simulation horizon must be positive");

  // Initial releases (after the horizon is known: scheduleRelease drops
  // entries the run could never process, as the old heap effectively did).
  for (std::size_t i = 0; i < n; ++i) {
    scheduleRelease(system_.tasks()[i].phase, static_cast<std::int32_t>(i));
  }

  // Reserve result storage up front: the expected job count is
  // sum_i(horizon / T_i), and every releasing job appends one JobRecord
  // (and, with the trace on, a handful of events and segments). Growing
  // these vectors dominated long trace-recording runs.
  std::int64_t expected_jobs = 0;
  for (const Task& t : system_.tasks()) {
    if (t.period > 0) expected_jobs += horizon_ / t.period + 1;
  }
  expected_jobs = std::min(expected_jobs, config_.max_jobs);
  result_.jobs.reserve(static_cast<std::size_t>(expected_jobs));
  if (config_.record_trace) {
    // Per-task op census instead of a flat per-job guess: each job emits
    // at most release/start/finish/miss plus per-op events (lock: wait +
    // grant + gcs-enter + handoff; unlock: gcs-exit + unlock; suspend:
    // suspend + resume), and causes at most 1 + suspends + 2*locks
    // dispatch changes, each emitting at most a preempt + a start on one
    // processor. Segments split at the same dispatch boundaries. Capped
    // (with ordinary vector growth as the fallback) so a degenerate
    // op-heavy system cannot over-reserve; tests/allocation_test.cc pins
    // trace-armed runs at zero post-setup allocations.
    constexpr std::int64_t kTraceReserveCap = 1 << 20;
    std::int64_t expected_events = 0;
    std::int64_t expected_segments = 0;
    for (const Task& t : system_.tasks()) {
      if (t.period <= 0) continue;
      const std::int64_t jobs_t = horizon_ / t.period + 1;
      std::int64_t locks = 0;
      std::int64_t suspends = 0;
      for (const Op& op : t.body.ops()) {
        if (std::holds_alternative<LockOp>(op)) {
          ++locks;
        } else if (std::holds_alternative<SuspendOp>(op)) {
          ++suspends;
        }
      }
      expected_events += jobs_t * (6 + 10 * locks + 4 * suspends);
      expected_segments += jobs_t * (2 + 4 * locks + 2 * suspends);
    }
    result_.trace.reserve(static_cast<std::size_t>(
        std::min(expected_events, kTraceReserveCap)));
    result_.segments.reserve(static_cast<std::size_t>(
        std::min(expected_segments, kTraceReserveCap / 2)));
  }

  // ----- allocation-free steady state (DESIGN.md, "Engine hot path") -----
  // Everything the run loop touches is sized here: pool slots (with
  // overrun headroom — an unfinished instance keeps its slot while the
  // next releases), per-slot held capacity (static nesting depth), ready
  // queues, calendar-queue node pools and drain batches, and the arena
  // scratch. A run that exceeds an estimate falls back to ordinary vector
  // growth rather than failing; tests/allocation_test.cc holds the line.
  std::size_t max_depth = 0;
  std::vector<std::size_t> tasks_on_proc(static_cast<std::size_t>(procs), 0);
  for (const Task& t : system_.tasks()) {
    tasks_on_proc[static_cast<std::size_t>(t.processor.value())]++;
    std::size_t depth = 0;
    std::size_t peak = 0;
    for (const Op& op : t.body.ops()) {
      if (std::holds_alternative<LockOp>(op)) {
        peak = std::max(peak, ++depth);
      } else if (std::holds_alternative<UnlockOp>(op) && depth > 0) {
        --depth;
      }
    }
    max_depth = std::max(max_depth, peak);
  }
  const std::size_t expected_live = 4 * n + 64;
  pool_.configure(n, expected_live, max_depth, /*per_task_reserve=*/8);
  for (std::size_t p = 0; p < ready_.size(); ++p) {
    ready_[p].reserve(4 * tasks_on_proc[p] + 16);
  }
  release_wheel_.reserve(2 * n + 8);
  susp_wheel_.reserve(expected_live);
  release_batch_.reserve(n + 8);
  susp_batch_.reserve(expected_live);
  if (armed_) contain_scratch_.reserve(expected_live);

  dirty_words_ = (static_cast<std::size_t>(procs) + 63) / 64;
  proc_dirty_ = arena_.allocZeroed<std::uint64_t>(dirty_words_);
  run_slot_ = arena_.alloc<std::int32_t>(static_cast<std::size_t>(procs));
  run_base_ = arena_.alloc<std::int32_t>(static_cast<std::size_t>(procs));
  seg_ = arena_.alloc<Seg>(static_cast<std::size_t>(procs));
  seg_end_ = arena_.alloc<Time>(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    run_slot_[static_cast<std::size_t>(p)] = -1;  // all idle initially
    run_base_[static_cast<std::size_t>(p)] = 0;
    seg_[static_cast<std::size_t>(p)] = {};
    seg_end_[static_cast<std::size_t>(p)] = kTimeInfinity;
  }
  eager_ = config_.record_trace || armed_;
}

SimResult Engine::run() {
  MPCP_CHECK(!ran_, "Engine::run() may only be called once");
  ran_ = true;
  protocol_.attach(*this);

  while (true) {
    if (config_.cancel != nullptr &&
        config_.cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled();
    }
    releaseDueJobs();
    wakeDueSuspensions();
    if (!stall_noted_.empty()) noteStallWindows();
    settle();
    if (armed_) {
      while (applyContainment()) settle();
    }
    if (miss_seen_ && config_.stop_on_deadline_miss) break;
    Time next = std::min(nextEventTime(), horizon_);
    if (next <= now_) break;  // now_ == horizon_: done
    advanceTo(next);
    if (now_ >= horizon_) break;
  }

  // Completions landing exactly on the horizon are still completions:
  // drain the zero-duration ops (no further time passes, and no job is
  // released at the horizon itself).
  wakeDueSuspensions();
  settle();
  if (armed_) {
    while (applyContainment()) settle();
  }
  // Credit any still-running segment its progress up to the final clock
  // (lazy mode defers this to settle visits, and an undisturbed segment
  // may span the horizon).
  for (std::size_t p = 0; p < running_.size(); ++p) flushSeg(p, now_);

  noteDeadlineMissesAtHorizon();

  // Per-task aggregates.
  for (const JobRecord& jr : result_.jobs) {
    TaskStats& st =
        result_.per_task[static_cast<std::size_t>(jr.id.task.value())];
    if (jr.finish >= 0) {
      st.jobs_finished++;
      st.max_response = std::max(st.max_response, jr.responseTime());
      st.avg_response += static_cast<double>(jr.responseTime());
      st.max_blocked = std::max(st.max_blocked, jr.blocked);
    }
    if (jr.missed) st.deadline_misses++;
  }
  for (TaskStats& st : result_.per_task) {
    if (st.jobs_finished > 0) {
      st.avg_response /= static_cast<double>(st.jobs_finished);
    }
  }
  result_.horizon = horizon_;
  result_.any_deadline_miss = miss_seen_;
  return std::move(result_);
}

void Engine::releaseDueJobs() {
  if (release_wheel_.earliest() > now_) return;
  release_wheel_.drainAt(now_, release_batch_);
  // Whole-tick batch; ascending task index matches the old heap's
  // (time, task) pop order exactly.
  std::sort(release_batch_.begin(), release_batch_.end());
  const Time due = now_;
  for (const std::int32_t task_idx : release_batch_) {
    const auto ti = static_cast<std::size_t>(task_idx);
    const Task& task = system_.tasks()[ti];

    // Fault hooks: release jitter defers the release (the deadline stays
    // tied to the nominal time), skip-next-release suppresses it outright.
    Time nominal = due;
    bool from_jitter = false;
    if (armed_) {
      if (jitter_[ti].at == due) {
        nominal = jitter_[ti].nominal;
        jitter_[ti] = {};
        from_jitter = true;
      } else if (plan_ != nullptr) {
        Duration jd = plan_->releaseJitter(task.id, instance_no_[ti]);
        jd = std::min<Duration>(jd, task.period - 1);
        if (jd > 0) {
          jitter_[ti] = {due + jd, due};
          scheduleRelease(due + jd, task_idx);
          scheduleRelease(due + task.period, task_idx);
          result_.counters.faults_injected++;
          emit({.kind = Ev::kFaultInjected,
                .job = JobId{task.id, instance_no_[ti]},
                .processor = task.processor});
          continue;
        }
      }
      if (!from_jitter && skip_next_[ti]) {
        skip_next_[ti] = false;
        skipped_[ti]++;
        result_.counters.releases_skipped++;
        result_.counters.faults_contained++;
        const JobId skipped_id{task.id, instance_no_[ti]++};
        emit({.kind = Ev::kReleaseSkipped, .job = skipped_id,
              .processor = task.processor});
        scheduleRelease(due + task.period, task_idx);
        continue;
      }
    }

    if (++released_count_ > config_.max_jobs) {
      throw InvariantError(strf("job cap exceeded (", config_.max_jobs,
                                "); runaway simulation?"));
    }
    // An unfinished previous instance past its deadline is a miss even
    // before it completes — note it as soon as the overrun is visible.
    noteOverrunMisses(task.id);

    Job& stored = pool_.allocate(JobId{task.id, instance_no_[ti]++});
    stored.host = task.processor;
    stored.current = task.processor;
    stored.release = due;
    stored.abs_deadline = nominal + task.relative_deadline;
    stored.base = task.priority;
    stored.state = JobState::kReady;
    stored.ready_seq = ++ready_seq_;
    stored.ops = task.body.ops().data();
    stored.op_count = task.body.ops().size();
    pool_.setProc(stored.pool_slot, task.processor.value());
    pool_.setBase(stored.pool_slot, task.priority.urgency());
    pool_.setWaitMark(stored.pool_slot, now_);
    reclassifyWait(stored.pool_slot);
    // A jittered release already queued the next nominal one at deferral.
    if (!from_jitter) scheduleRelease(due + task.period, task_idx);

    readyQueue(stored.current)
        .pushSeq(&stored, stored.effectivePriority(), stored.ready_seq);
    touchProc(stored.current);
    result_.counters.jobs_released++;
    noteReadyDepth(stored.current);
    if (tracing()) {
      emit({.kind = Ev::kRelease, .job = stored.id, .processor = stored.host});
    }
    protocol_.onJobReleased(stored);
  }
}

void Engine::wakeDueSuspensions() {
  if (susp_wheel_.earliest() > now_) return;
  susp_wheel_.drainAt(now_, susp_batch_);
  // FIFO among equal times, exactly the old heap's (t, seq) order.
  std::sort(susp_batch_.begin(), susp_batch_.end(),
            [](const SuspPending& a, const SuspPending& b) {
              return a.seq < b.seq;
            });
  for (const SuspPending& e : susp_batch_) {
    Job* j = e.job;
    // Stale entries (job retired, or no longer suspended to this tick)
    // are dropped silently, as the old lazily-invalidated heap did.
    if (j == nullptr || !(j->id == e.id) ||
        j->state != JobState::kWaiting || j->suspended_until != now_) {
      continue;
    }
    j->suspended_until = -1;
    if (tracing()) {
      emit({.kind = Ev::kSelfResume, .job = j->id, .processor = j->current});
    }
    wake(*j);
  }
}

void Engine::noteOverrunMisses(TaskId task) {
  // Live instances of one task, in release order — the old full live-list
  // walk filtered to this task visited them in exactly this order.
  for (const std::uint32_t s :
       pool_.taskSlots(static_cast<std::size_t>(task.value()))) {
    Job& j = pool_.jobAt(s);
    // Strictly past the deadline: a job *at* its deadline with zero work
    // left completes within this instant's settle pass and is on time
    // (the finish-time check still catches every genuine late finish).
    if (now_ > j.abs_deadline && !j.miss_noted) {
      j.miss_noted = true;
      miss_seen_ = true;
      if (result_.counters.faults_injected > 0) {
        result_.counters.misses_while_degraded++;
      }
      emit({.kind = Ev::kDeadlineMiss, .job = j.id, .processor = j.host});
    }
  }
}

Job* Engine::pickHighest(int proc) const {
  const auto& q = ready_[static_cast<std::size_t>(proc)];
  if (q.empty()) return nullptr;
  Job* best = q.peek();
  MPCP_DCHECK(best->state == JobState::kReady &&
                  best->current.value() == proc,
              "ready queue corrupt on P" << proc);
  return best;
}

int Engine::nextDirtyProc(int from) const {
  const int procs = system_.processorCount();
  if (from >= procs) return -1;
  std::size_t w = static_cast<std::size_t>(from) >> 6;
  std::uint64_t word =
      proc_dirty_[w] & (~std::uint64_t{0} << (static_cast<std::size_t>(from) & 63));
  while (true) {
    if (word != 0) {
      return static_cast<int>((w << 6) +
                              static_cast<std::size_t>(std::countr_zero(word)));
    }
    if (++w >= dirty_words_) return -1;
    word = proc_dirty_[w];
  }
}

void Engine::settle() {
  // Visit dirty processors in ascending order; a visit that changes
  // anything re-marks the processors it affected, and marks at or below
  // the cursor wait for the next scan. This replays the old full-pass
  // fixed point exactly: a pass visited every processor ascending, but
  // visits whose inputs had not changed were no-ops — the dirty mask
  // skips precisely those, so the sequence of *effective* visits (and
  // hence every emitted event) is identical.
  if (armed_) markAllProcs();  // fault hooks may act at a distance
  int cursor = 0;
  while (true) {
    const int p = nextDirtyProc(cursor);
    if (p < 0) {
      if (cursor == 0) return;  // a full scan found nothing: quiescent
      cursor = 0;               // wrap for the next scan
      continue;
    }
    proc_dirty_[static_cast<std::size_t>(p) >> 6] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(p) & 63));
    settleProc(p);
    cursor = p + 1;
  }
}

void Engine::settleProc(int p) {
  const auto pi = static_cast<std::size_t>(p);
  // Bring the running job's executed/op_remaining up to date before any
  // dispatch decision reads them (no-op in eager mode).
  flushSeg(pi, now_);
  // A transiently stalled processor dispatches nothing: its jobs stay
  // ready and the waiting time is attributed as blocking.
  Job* j = (!stall_noted_.empty() && plan_->stalled(ProcessorId(p), now_))
               ? nullptr
               : pickHighest(p);
  bool changed = false;
  if (j != running_[pi]) {
    Job* old = running_[pi];
    if (old != nullptr && old->state == JobState::kReady) {
      result_.counters.preemptions++;
      if (j != nullptr && j->elevated != kPriorityFloor) {
        result_.counters.gcs_preemptions++;
      }
      if (tracing()) {
        emit({.kind = Ev::kPreempt, .job = old->id,
              .processor = ProcessorId(p), .other = j ? j->id : JobId{}});
      }
    }
    running_[pi] = j;
    if (j != nullptr && tracing()) {
      emit({.kind = Ev::kStart, .job = j->id, .processor = ProcessorId(p)});
    }
    changed = true;
  }
  if (running_[pi] != nullptr) {
    // Any consumed op (lock, unlock, completion) can change priorities
    // or eligibility anywhere, so revisit this processor until stable.
    changed |= processRunnableOps(p);
    if (running_[pi] == nullptr ||
        running_[pi]->state != JobState::kReady) {
      changed = true;  // job finished or parked; re-dispatch
      running_[pi] = nullptr;
    }
  }
  // Re-anchor the processor's segment record to the (possibly new)
  // running job. Mid-settle a dispatched job can sit at a Lock op after
  // a yield (op_remaining <= 0) — the pass re-visits p before
  // convergence (changed is true) and re-anchors; at convergence every
  // running job is mid-ComputeOp.
  Job* rj = running_[pi];
  if (rj != nullptr && rj->op_remaining > 0) {
    seg_[pi] = {rj, now_};
    seg_end_[pi] = now_ + rj->op_remaining;
  } else {
    seg_[pi].job = nullptr;
    seg_end_[pi] = kTimeInfinity;
  }
  // Refresh the dispatch signature; when occupancy changed, the wait
  // classes of this processor's ready set were computed against stale
  // inputs — flush (zero elapsed within the instant) and reclassify
  // them. The ready queue holds exactly the Phase::kReady jobs of p,
  // including the running one. Doing this here keeps advanceTo() free of
  // per-Job dereferences.
  const std::int32_t rs =
      rj != nullptr ? static_cast<std::int32_t>(rj->pool_slot) : -1;
  const std::int32_t rb = rj != nullptr ? rj->base.urgency() : 0;
  if (rs != run_slot_[pi] || (rs >= 0 && rb != run_base_[pi])) {
    run_slot_[pi] = rs;
    run_base_[pi] = rb;
    for (const auto& e : ready_[pi].entries()) {
      retimeWait(e.value->pool_slot);
    }
  }
  if (changed) touchProc(p);
}

bool Engine::processRunnableOps(int proc) {
  Job*& slot = running_[static_cast<std::size_t>(proc)];
  bool progress = false;
  while (slot != nullptr && slot->state == JobState::kReady) {
    Job& j = *slot;

    if (j.op_index >= j.op_count) {
      finishJob(j);
      slot = nullptr;
      return true;
    }

    const Op& op = j.ops[j.op_index];
    if (const auto* c = std::get_if<ComputeOp>(&op)) {
      if (j.op_remaining < 0) {
        j.op_remaining = plan_ != nullptr ? injectedComputeLen(j, c->duration)
                                          : c->duration;
      }
      if (j.op_remaining > 0) return progress;  // needs clock time
      j.op_index++;
      j.op_remaining = -1;
      progress = true;
      continue;
    }
    if (const auto* l = std::get_if<LockOp>(&op)) {
      // An earlier op in this drain (an unlock dropping j's elevation or
      // inheritance, a handoff elevating a peer) may have left a strictly
      // higher-priority job ready here. A real V() reevaluates scheduling
      // before the task can issue its next P(), so yield instead of
      // letting back-to-back critical sections run atomically — the F5
      // blocking bound's once-per-resume argument depends on exactly this
      // preemption point.
      if (progress) {
        Job* top = pickHighest(proc);
        if (top != nullptr && top != &j &&
            top->effectivePriority() > j.effectivePriority()) {
          return true;  // j stays ready; settle() dispatches the preemptor
        }
      }
      const LockOutcome outcome = protocol_.onLock(j, l->resource);
      if (outcome == LockOutcome::kGranted) {
        result_.counters.res(l->resource).acquisitions++;
        j.held.push_back(l->resource);
        if (config_.containment.budget_enforce &&
            system_.isGlobal(l->resource)) {
          armBudget(j, l->resource);
        }
        j.op_index++;
        if (tracing()) {
          emit({.kind = Ev::kLockGrant, .job = j.id, .processor = j.current,
                .resource = l->resource});
        }
        progress = true;
        continue;
      }
      if (outcome == LockOutcome::kSpinning) {
        // Busy-wait: the job keeps the processor (the protocol elevated
        // it into a non-preemptive band) but the op cursor stalls here.
        // Return without re-marking the processor dirty on an idempotent
        // revisit — the grant (noteSpinGranted) re-touches it.
        MPCP_CHECK(j.spinning && j.state == JobState::kReady,
                   protocol_.name()
                       << " returned kSpinning for " << j.id << " on "
                       << l->resource << " without parkSpinning");
        return progress;
      }
      MPCP_CHECK(j.state == JobState::kWaiting,
                 protocol_.name()
                     << " returned kWaiting for " << j.id << " on "
                     << l->resource << " without parking the job");
      return true;
    }
    if (const auto* susp = std::get_if<SuspendOp>(&op)) {
      MPCP_CHECK(j.held.empty(),
                 j.id << " self-suspending while holding a semaphore");
      j.op_index++;
      j.suspended_until = now_ + susp->duration;
      j.state = JobState::kWaiting;
      pool_.setPhase(j.pool_slot, JobPool::Phase::kSuspended);
      retimeWait(j.pool_slot);
      readyQueue(j.current).remove(&j);
      // Wakes past the horizon can never fire (the run ends first); the
      // old heap kept and never popped them.
      if (j.suspended_until <= horizon_) {
        susp_wheel_.schedule(j.suspended_until, {++susp_seq_, &j, j.id});
      } else {
        ++susp_seq_;  // keep the stamp stream identical either way
      }
      if (tracing()) {
        emit({.kind = Ev::kSelfSuspend, .job = j.id, .processor = j.current});
      }
      slot = nullptr;
      touchProc(j.current);
      return true;
    }
    const auto& u = std::get<UnlockOp>(op);
    if (armed_) {
      // The watchdog already revoked this semaphore: its V() is a no-op.
      const auto fr = std::find(j.force_released.begin(),
                                j.force_released.end(), u.resource);
      if (fr != j.force_released.end()) {
        j.force_released.erase(fr);
        j.op_index++;
        j.op_remaining = -1;
        progress = true;
        continue;
      }
      if (plan_ != nullptr && !j.held.empty() && j.held.back() == u.resource &&
          plan_->stuckAt(j.id.task, j.id.instance, u.resource)) {
        // Stuck holder: never executes this V() — burn clock time at the
        // unlock site until the horizon (or until a watchdog revocation
        // consumes the op from under us).
        noteFault(j, fault::FaultKind::kStuckHolder, u.resource);
        if (j.op_remaining <= 0) j.op_remaining = horizon_ - now_ + 1;
        return progress;
      }
    }
    MPCP_CHECK(!j.held.empty() && j.held.back() == u.resource,
               j.id << " unlocking " << u.resource
                    << " which is not its innermost held semaphore");
    protocol_.onUnlock(j, u.resource);
    j.held.pop_back();
    if (j.gcs_budget >= 0 && u.resource == j.gcs_resource) {
      j.gcs_budget = -1;  // section completed within budget: disarm
      j.gcs_consumed = 0;
    }
    j.op_index++;
    progress = true;
  }
  return progress;
}

void Engine::finishJob(Job& j) {
  MPCP_CHECK(j.held.empty(),
             j.id << " finished while holding " << j.held.size()
                  << " semaphore(s)");
  j.state = JobState::kFinished;
  j.finish = now_;
  readyQueue(j.current).remove(&j);

  if (tracing()) {
    emit({.kind = Ev::kFinish, .job = j.id, .processor = j.current});
  }
  const bool missed = j.finish > j.abs_deadline;
  if (missed && !j.miss_noted) {
    j.miss_noted = true;
    if (result_.counters.faults_injected > 0) {
      result_.counters.misses_while_degraded++;
    }
    emit({.kind = Ev::kDeadlineMiss, .job = j.id, .processor = j.current});
  }
  if (missed) miss_seen_ = true;
  result_.counters.jobs_finished++;
  if (missed) result_.counters.deadline_misses++;
  flushWait(j.pool_slot);
  const JobPool::Waits w = pool_.waits(j.pool_slot);
  result_.counters.recordBlocking(j.id.task, w.blocked);

  // Any pending suspension entry for j goes stale here (state kFinished)
  // and is dropped at its drain tick.
  protocol_.onJobFinished(j);

  result_.jobs.push_back({.id = j.id,
                          .release = j.release,
                          .abs_deadline = j.abs_deadline,
                          .finish = j.finish,
                          .executed = j.executed,
                          .blocked = w.blocked,
                          .preempted = w.preempted,
                          .suspended = w.suspended,
                          .missed = missed});
  // Retire storage: recycle the pool slot.
  pool_.release(j);
}

Time Engine::nextEventTime() {
  Time next = release_wheel_.earliest();
  next = std::min(next, susp_wheel_.earliest());
  for (std::size_t p = 0; p < running_.size(); ++p) {
    MPCP_DCHECK(seg_[p].job == nullptr || seg_end_[p] > now_,
                "stale segment on P" << p);
    next = std::min(next, seg_end_[p]);
  }
  if (armed_) {
    const fault::ContainmentConfig& cc = config_.containment;
    if (!stall_noted_.empty()) {
      next = std::min(next, plan_->nextStallBoundary(now_));
    }
    if (cc.budget_enforce) {
      for (const Job* j : running_) {
        if (j != nullptr && j->gcs_budget >= 0) {
          next = std::min(next,
                          now_ + std::max<Duration>(
                                     1, j->gcs_budget + 1 - j->gcs_consumed));
        }
      }
    }
    if (cc.holder_watchdog > 0) {
      for (const WatchdogEntry& w : watchdog_) {
        if (w.since < 0) continue;
        const Time fire = w.since > kTimeInfinity - cc.holder_watchdog
                              ? kTimeInfinity
                              : w.since + cc.holder_watchdog;
        next = std::min(next, std::max(now_ + 1, fire));
      }
    }
    if (cc.on_miss != fault::MissAction::kNone) {
      pool_.forEachLive([&](Job& j) {
        if (j.miss_policy_applied) return;
        next = std::min(next, std::max(now_ + 1, j.abs_deadline + 1));
      });
    }
  }
  return next;
}

void Engine::advanceTo(Time t) {
  const Duration dt = t - now_;
  MPCP_CHECK(dt > 0, "advanceTo must move forward");

  // Dispatch signatures, wait classes, and busy accrual are all
  // maintained at settle/flush time — in lazy mode this loop only scans
  // the contiguous completion-time array (idle = infinity, never == t)
  // and marks processors whose segment completes at `t`.
  if (eager_) {
    for (std::size_t p = 0; p < running_.size(); ++p) {
      Job* j = seg_[p].job;
      if (j == nullptr) continue;
      MPCP_DCHECK(j == running_[p] && seg_end_[p] >= t,
                  "segment overrun for " << j->id);
      flushSeg(p, t);
      if (armed_ && j->gcs_budget >= 0) j->gcs_consumed += dt;
      recordSegment(static_cast<int>(p), *j, now_, t);
      if (seg_end_[p] == t) touchProc(static_cast<int>(p));
    }
  } else {
    for (std::size_t p = 0; p < running_.size(); ++p) {
      MPCP_DCHECK(seg_[p].job == nullptr ||
                      (seg_[p].job == running_[p] && seg_end_[p] >= t),
                  "segment overrun on P" << p);
      if (seg_end_[p] == t) touchProc(static_cast<int>(p));
    }
  }

  now_ = t;
}

void Engine::recordSegment(int proc, Job& j, Time begin, Time end) {
  if (!config_.record_trace) return;
  const ExecMode mode = execModeOf(j);
  if (!result_.segments.empty()) {
    ExecSegment& last = result_.segments.back();
    if (last.processor.value() == proc && last.job == j.id &&
        last.mode == mode && last.end == begin) {
      last.end = end;
      return;
    }
  }
  result_.segments.push_back({.processor = ProcessorId(proc),
                              .job = j.id,
                              .begin = begin,
                              .end = end,
                              .mode = mode});
}

ExecMode Engine::execModeOf(const Job& j) const {
  if (j.elevated != kPriorityFloor) return ExecMode::kGcs;
  if (!j.held.empty()) return ExecMode::kLocalCs;
  return ExecMode::kNormal;
}

void Engine::noteDeadlineMissesAtHorizon() {
  pool_.forEachLive([&](Job& j) {
    const bool missed = j.abs_deadline <= horizon_;
    if (missed) {
      miss_seen_ = true;
      result_.counters.deadline_misses++;
      if (!j.miss_noted && result_.counters.faults_injected > 0) {
        result_.counters.misses_while_degraded++;
      }
    }
    flushWait(j.pool_slot);
    const JobPool::Waits w = pool_.waits(j.pool_slot);
    result_.jobs.push_back({.id = j.id,
                            .release = j.release,
                            .abs_deadline = j.abs_deadline,
                            .finish = -1,
                            .executed = j.executed,
                            .blocked = w.blocked,
                            .preempted = w.preempted,
                            .suspended = w.suspended,
                            .missed = missed});
  });
  for (std::size_t i = 0; i < instance_no_.size(); ++i) {
    result_.per_task[i].jobs_released =
        instance_no_[i] - (armed_ ? skipped_[i] : 0);
  }
}

// ----- fault-injection / containment (src/fault) -----

Duration Engine::injectedComputeLen(Job& j, Duration base) {
  const ResourceId inner = j.held.empty() ? ResourceId{} : j.held.back();
  const fault::ComputeEffect eff = plan_->computeEffect(
      j.id.task, j.id.instance, base, inner, !j.wcet_delta_applied);
  if (eff.delta_used) j.wcet_delta_applied = true;
  if ((eff.kinds & fault::bitOf(fault::FaultKind::kWcetOverrun)) != 0) {
    noteFault(j, fault::FaultKind::kWcetOverrun, ResourceId{});
  }
  if ((eff.kinds & fault::bitOf(fault::FaultKind::kCsOverrun)) != 0) {
    noteFault(j, fault::FaultKind::kCsOverrun, inner);
  }
  return eff.duration;
}

void Engine::noteFault(Job& j, fault::FaultKind kind, ResourceId r) {
  const std::uint32_t bit = fault::bitOf(kind);
  if ((j.faults_noted & bit) != 0) return;  // once per kind per job
  j.faults_noted |= bit;
  result_.counters.faults_injected++;
  emit({.kind = Ev::kFaultInjected, .job = j.id, .processor = j.current,
        .resource = r});
}

void Engine::noteStallWindows() {
  for (std::size_t i = 0; i < stall_noted_.size(); ++i) {
    const fault::FaultSpec& s = plan_->specs[i];
    if (stall_noted_[i] || s.kind != fault::FaultKind::kProcStall) continue;
    if (s.start <= now_ && now_ < s.start + s.length) {
      stall_noted_[i] = true;
      result_.counters.faults_injected++;
      emit({.kind = Ev::kFaultInjected, .processor = s.processor});
    }
  }
}

void Engine::noteGlobalHolder(ResourceId r, const Job* holder) {
  if (config_.containment.holder_watchdog <= 0) return;
  if (!system_.isGlobal(r)) return;
  WatchdogEntry& w = watchdog_[static_cast<std::size_t>(r.value())];
  if (holder == nullptr) {
    w = {};
    return;
  }
  if (w.since >= 0 && w.holder == holder->id) return;  // unchanged holder
  w.holder = holder->id;
  w.since = now_;
}

bool Engine::applyContainment() {
  bool fired = false;
  const fault::ContainmentConfig& cc = config_.containment;

  if (cc.holder_watchdog > 0) {
    for (std::size_t r = 0; r < watchdog_.size(); ++r) {
      WatchdogEntry& w = watchdog_[r];
      if (w.since < 0 || now_ - w.since < cc.holder_watchdog) continue;
      Job* h = pool_.find(w.holder);
      if (h == nullptr) {  // holder retired without a transition report
        w = {};
        continue;
      }
      if (h->state != JobState::kReady) continue;  // retry at a safe point
      forceRelease(*h, ResourceId(static_cast<std::int32_t>(r)));
      fired = true;
    }
  }

  if (cc.budget_enforce) {
    // Collect first: budgetKill hands the semaphore off and wakes peers,
    // which must not perturb this sweep.
    contain_scratch_.clear();
    pool_.forEachLive([&](Job& j) {
      if (j.gcs_budget >= 0 && j.gcs_consumed > j.gcs_budget &&
          j.state == JobState::kReady) {
        contain_scratch_.push_back(&j);
      }
    });
    for (Job* j : contain_scratch_) {
      budgetKill(*j);
      fired = true;
    }
  }

  if (cc.on_miss != fault::MissAction::kNone) {
    contain_scratch_.clear();
    pool_.forEachLive([&](Job& j) {
      if (now_ > j.abs_deadline && !j.miss_policy_applied) {
        j.miss_policy_applied = true;
        if (!j.miss_noted) {
          j.miss_noted = true;
          miss_seen_ = true;
          if (result_.counters.faults_injected > 0) {
            result_.counters.misses_while_degraded++;
          }
          emit({.kind = Ev::kDeadlineMiss, .job = j.id, .processor = j.host});
        }
        if (cc.on_miss == fault::MissAction::kSkipNextRelease) {
          skip_next_[static_cast<std::size_t>(j.id.task.value())] = true;
        } else {
          j.abort_pending = true;
        }
      }
      // Abort only at a safe point: ready and holding nothing (aborting a
      // holder or a queued waiter would corrupt protocol state). A job
      // parked at a global Lock op may already be the *designated* holder
      // — rule 7 hands the semaphore over before the job re-dispatches to
      // consume the grant, and held stays empty across that gap — so
      // defer until the cursor moves past the op (the abort then fires
      // after its V(), when the job provably holds nothing).
      // A spinner is likewise unsafe: it sits in the protocol's spin
      // queue (or is the designated holder mid-handoff) by Job pointer.
      if (j.abort_pending && j.state == JobState::kReady && j.held.empty() &&
          !j.spinning && !atGlobalLockOp(j)) {
        contain_scratch_.push_back(&j);
      }
    });
    for (Job* j : contain_scratch_) {
      abortJob(*j);
      fired = true;
    }
  }
  return fired;
}

void Engine::armBudget(Job& j, ResourceId r) {
  for (const CriticalSection& cs : system_.task(j.id.task).sections) {
    if (cs.lock_index != j.op_index) continue;
    MPCP_CHECK(cs.resource == r,
               "budget arming: section at op " << j.op_index
                                               << " locks a different semaphore");
    j.gcs_budget = std::llround(static_cast<double>(cs.duration) *
                                config_.containment.grace);
    j.gcs_consumed = 0;
    j.gcs_resource = r;
    j.gcs_unlock_index = cs.unlock_index;
    return;
  }
}

void Engine::forceRelease(Job& j, ResourceId r) {
  emit({.kind = Ev::kForcedRelease, .job = j.id, .processor = j.current,
        .resource = r});
  result_.counters.forced_releases++;
  result_.counters.faults_contained++;
  if (std::find(j.held.begin(), j.held.end(), r) == j.held.end()) {
    // The semaphore was handed to j but j has not re-dispatched to consume
    // the grant: revoke it at the protocol level only. j's pending P()
    // simply re-queues when it next runs.
    protocol_.onUnlock(j, r);
    touchProc(j.current);
    return;
  }
  while (!j.held.empty()) {
    const ResourceId top = j.held.back();
    protocol_.onUnlock(j, top);
    j.held.pop_back();
    if (j.gcs_budget >= 0 && top == j.gcs_resource) {
      j.gcs_budget = -1;
      j.gcs_consumed = 0;
    }
    const auto* u = j.op_index < j.op_count
                        ? std::get_if<UnlockOp>(&j.ops[j.op_index])
                        : nullptr;
    if (u != nullptr && u->resource == top) {
      // The job sits right at this V() (a stuck holder burning time):
      // consume the op so the rest of the body can run.
      j.op_index++;
      j.op_remaining = -1;
    } else {
      j.force_released.push_back(top);
    }
    if (top == r) break;
  }
  touchProc(j.current);
}

void Engine::budgetKill(Job& j) {
  MPCP_CHECK(j.gcs_budget >= 0, "budgetKill on unarmed job " << j.id);
  const ResourceId r = j.gcs_resource;
  emit({.kind = Ev::kBudgetKill, .job = j.id, .processor = j.current,
        .resource = r});
  result_.counters.budget_kills++;
  result_.counters.faults_contained++;
  while (!j.held.empty()) {
    const ResourceId top = j.held.back();
    protocol_.onUnlock(j, top);
    j.held.pop_back();
    if (top == r) break;
  }
  // Descend: skip the rest of the section body and its V().
  j.op_index = j.gcs_unlock_index + 1;
  j.op_remaining = -1;
  j.gcs_budget = -1;
  j.gcs_consumed = 0;
  touchProc(j.current);
}

bool Engine::atGlobalLockOp(const Job& j) const {
  if (j.op_index >= j.op_count) return false;
  const auto* lock = std::get_if<LockOp>(&j.ops[j.op_index]);
  return lock != nullptr && system_.isGlobal(lock->resource);
}

void Engine::abortJob(Job& j) {
  MPCP_CHECK(j.held.empty(), "abortJob on holder " << j.id);
  emit({.kind = Ev::kJobAbort, .job = j.id, .processor = j.current});
  j.state = JobState::kFinished;
  readyQueue(j.current).remove(&j);
  auto& slot = running_[static_cast<std::size_t>(j.current.value())];
  if (slot == &j) {
    slot = nullptr;
    seg_[static_cast<std::size_t>(j.current.value())].job = nullptr;
    seg_end_[static_cast<std::size_t>(j.current.value())] = kTimeInfinity;
  }
  result_.counters.jobs_aborted++;
  result_.counters.faults_contained++;
  result_.counters.deadline_misses++;
  flushWait(j.pool_slot);
  const JobPool::Waits w = pool_.waits(j.pool_slot);
  result_.counters.recordBlocking(j.id.task, w.blocked);
  protocol_.onJobFinished(j);
  result_.jobs.push_back({.id = j.id,
                          .release = j.release,
                          .abs_deadline = j.abs_deadline,
                          .finish = -1,
                          .executed = j.executed,
                          .blocked = w.blocked,
                          .preempted = w.preempted,
                          .suspended = w.suspended,
                          .missed = true,
                          .aborted = true});
  touchProc(j.current);
  pool_.release(j);
}

void Engine::parkWaiting(Job& j, ResourceId r, JobId blocker) {
  MPCP_CHECK(j.state == JobState::kReady,
             "parkWaiting on non-ready job " << j.id);
  j.state = JobState::kWaiting;
  j.waiting_for = r;
  pool_.setPhase(j.pool_slot, JobPool::Phase::kBlocked);
  retimeWait(j.pool_slot);
  result_.counters.res(r).contended_waits++;
  readyQueue(j.current).remove(&j);
  if (running_[static_cast<std::size_t>(j.current.value())] == &j) {
    running_[static_cast<std::size_t>(j.current.value())] = nullptr;
    seg_[static_cast<std::size_t>(j.current.value())].job = nullptr;
    seg_end_[static_cast<std::size_t>(j.current.value())] = kTimeInfinity;
  }
  if (tracing()) {
    emit({.kind = Ev::kLockWait, .job = j.id, .processor = j.current,
          .resource = r, .other = blocker});
  }
  touchProc(j.current);
}

void Engine::parkSpinning(Job& j, ResourceId r, JobId blocker) {
  MPCP_CHECK(j.state == JobState::kReady,
             "parkSpinning on non-ready job " << j.id);
  MPCP_CHECK(!j.spinning, "parkSpinning on already-spinning job " << j.id);
  j.spinning = true;
  j.waiting_for = r;
  // The job stays kReady, queued, and (once dispatched) running_: it
  // occupies the processor without op progress. Its wait class flips to
  // blocked so busy-wait time is attributed like any other lock wait.
  retimeWait(j.pool_slot);
  result_.counters.res(r).contended_waits++;
  if (tracing()) {
    emit({.kind = Ev::kLockWait, .job = j.id, .processor = j.current,
          .resource = r, .other = blocker});
  }
  touchProc(j.current);
}

void Engine::noteSpinGranted(Job& j) {
  MPCP_CHECK(j.spinning, "noteSpinGranted on non-spinning job " << j.id);
  j.spinning = false;
  j.waiting_for = ResourceId();
  retimeWait(j.pool_slot);
  touchProc(j.current);
}

void Engine::wake(Job& j) {
  MPCP_CHECK(j.state == JobState::kWaiting, "wake on non-waiting " << j.id);
  j.state = JobState::kReady;
  j.waiting_for = ResourceId();
  j.ready_seq = ++ready_seq_;
  pool_.setPhase(j.pool_slot, JobPool::Phase::kReady);
  retimeWait(j.pool_slot);
  readyQueue(j.current).pushSeq(&j, j.effectivePriority(), j.ready_seq);
  noteReadyDepth(j.current);
  touchProc(j.current);
}

void Engine::migrate(Job& j, ProcessorId target) {
  if (j.current == target) return;
  result_.counters.migrations++;
  readyQueue(j.current).remove(&j);
  if (running_[static_cast<std::size_t>(j.current.value())] == &j) {
    const auto p = static_cast<std::size_t>(j.current.value());
    flushSeg(p, now_);  // preserve mid-segment progress across the move
    running_[p] = nullptr;
    seg_[p].job = nullptr;
    seg_end_[p] = kTimeInfinity;
  }
  if (tracing()) {
    emit({.kind = Ev::kMigrate, .job = j.id, .processor = target});
  }
  touchProc(j.current);
  j.current = target;
  pool_.setProc(j.pool_slot, target.value());
  retimeWait(j.pool_slot);
  if (j.state == JobState::kReady) {
    // Keep the original arrival stamp: a migrating job does not lose its
    // FCFS position among equal priorities.
    readyQueue(target).pushSeq(&j, j.effectivePriority(), j.ready_seq);
    noteReadyDepth(target);
  }
  touchProc(target);
}

void Engine::restampArrival(Job& j) {
  j.ready_seq = ++ready_seq_;
  if (j.state == JobState::kReady) {
    auto& q = readyQueue(j.current);
    if (q.remove(&j)) {
      q.pushSeq(&j, j.effectivePriority(), j.ready_seq);
    }
    touchProc(j.current);
  }
}

void Engine::notePriorityChanged(Job& j) {
  if (j.state != JobState::kReady) return;  // re-keyed on wake()
  auto& q = readyQueue(j.current);
  const bool was_queued = q.remove(&j);
  MPCP_DCHECK(was_queued,
              "notePriorityChanged: ready job " << j.id
                                                << " missing from queue");
  q.pushSeq(&j, j.effectivePriority(), j.ready_seq);
  touchProc(j.current);
}

void Engine::emit(TraceEvent e) {
  if (!config_.record_trace) return;
  e.t = now_;
  result_.trace.push_back(e);
}

Job* Engine::findJob(JobId id) { return pool_.find(id); }

}  // namespace mpcp
